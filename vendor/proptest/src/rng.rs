//! Deterministic splitmix64 RNG.
//!
//! Property runs must be reproducible in CI, so every test case derives its
//! seed from a fixed base (overridable via `PROPTEST_SEED`), the test name
//! and the case index.

/// A small, fast, deterministic PRNG (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is irrelevant at property-test sample counts.
        self.next_u64() % n
    }

    /// Uniform value in `[lo, hi)` over the i128 number line (covers every
    /// primitive integer range this crate supports).
    pub fn range_i128(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo < hi);
        let span = (hi - lo) as u128;
        let r = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
        lo + (r % span) as i128
    }
}
