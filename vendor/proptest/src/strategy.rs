//! The [`Strategy`] trait and the combinators this workspace uses:
//! `Just`, ranges, tuples, `prop_map`, `prop_recursive`, unions
//! (`prop_oneof!`) and boxed strategies.
//!
//! Unlike real proptest there is no `ValueTree`/shrinking machinery: a
//! strategy simply generates a value from a deterministic RNG. Failures are
//! reported with the full generated input so they can be committed as
//! deterministic regression tests.

use crate::rng::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Generates values of `Self::Value` from a deterministic RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `self` is the leaf; `recurse` wraps an
    /// inner strategy one level deeper. `_desired_size` and
    /// `_expected_branch_size` are accepted for API compatibility but the
    /// stand-in only honours `depth`.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            // Each level is a weighted choice between bottoming out at a
            // leaf and recursing one level deeper, so generated values mix
            // shallow and deep shapes.
            let deeper = recurse(current).boxed();
            current = Union::weighted(vec![(1, leaf.clone()), (2, deeper)]).boxed();
        }
        current
    }

    /// Type-erases the strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice among strategies of one value type (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Uniform choice among `arms`.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        Union::weighted(arms.into_iter().map(|s| (1, s)).collect())
    }

    /// Weighted choice among `arms`.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (weight, arm) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return arm.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weights exhausted")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.range_i128(self.start as i128, self.end as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.range_i128(*self.start() as i128, *self.end() as i128 + 1) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// String strategies from a regex-like pattern (subset: literal characters,
/// character classes with ranges/escapes, and `{m}` / `{m,n}` repetition).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}
