//! `proptest::collection::vec`.

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::ops::Range;

/// Element-count specification: an exact count or a half-open range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.lo + rng.below((self.size.hi - self.size.lo) as u64) as usize;
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

/// Generates vectors of values from `elem` with `size` elements.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}
