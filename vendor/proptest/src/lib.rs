//! Minimal offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no network access to a registry, so the
//! workspace vendors the subset of proptest's API its tests use:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_recursive`, `boxed`;
//! * [`strategy::Just`], integer-range strategies, tuple strategies, and
//!   string strategies from a regex subset (`"[ -~]{0,120}"`);
//! * [`arbitrary::any`] for primitive integers and `bool`;
//! * [`collection::vec`] with exact or ranged sizes;
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros;
//! * [`test_runner::ProptestConfig::with_cases`].
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case prints its full generated input and
//!   seed instead; commit the printed input as a deterministic regression
//!   test (that is this repo's policy anyway).
//! * **Deterministic by default.** Cases derive from a fixed seed (override
//!   with `PROPTEST_SEED`) so CI runs are reproducible.
//! * `prop_assert!` / `prop_assert_eq!` panic like `assert!` rather than
//!   returning `Err` — the runner catches the panic, reports the input and
//!   re-raises.

pub mod arbitrary;
pub mod collection;
pub mod rng;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything the workspace's tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests. Mirrors proptest's macro: an optional
/// `#![proptest_config(...)]` header followed by `#[test] fn` items whose
/// arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal muncher for [`proptest!`] — one test fn per step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            runner.run_named(
                stringify!($name),
                &($($strategy,)+),
                |($($arg,)+)| $body,
            );
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Uniform choice among strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts inside a property (panics; the runner reports the input).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}
