//! The case-running loop behind the `proptest!` macro.

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::fmt::Debug;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Runs a strategy's generated cases against a test closure.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Creates a runner with `config`.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Runs `config.cases` generated inputs through `test`. On a panic the
    /// offending input, test name and seed are printed before the panic is
    /// propagated, so the failure can be committed as a deterministic
    /// regression test.
    pub fn run_named<S, F>(&mut self, name: &str, strategy: &S, mut test: F)
    where
        S: Strategy,
        S::Value: Debug,
        F: FnMut(S::Value),
    {
        let base_seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0x0BAD_5EED_CAFE_F00D);
        let name_hash = fxhash(name);
        for case in 0..self.config.cases {
            let seed = base_seed ^ name_hash ^ (u64::from(case) << 32 | u64::from(case));
            let mut rng = TestRng::new(seed);
            let value = strategy.generate(&mut rng);
            let shown = format!("{value:?}");
            match catch_unwind(AssertUnwindSafe(|| test(value))) {
                Ok(()) => {}
                Err(payload) => {
                    eprintln!(
                        "proptest stand-in: test `{name}` failed at case {case}/{} \
                         (base seed {base_seed:#x})\n  input: {shown}",
                        self.config.cases
                    );
                    resume_unwind(payload);
                }
            }
        }
    }
}

/// Tiny FNV-1a so different tests in one binary see different streams.
fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}
