//! Random-string generation from a small regex subset.
//!
//! Supported syntax — exactly what the workspace's property tests need:
//!
//! * character classes `[...]` containing literal characters, ranges
//!   (`a-z`, ` -~`) and escapes (`\n`, `\t`, `\r`, `\\`, `\]`, `\-`);
//! * literal characters (with the same escapes) outside classes;
//! * repetition `{m}` / `{m,n}` applied to the preceding atom.
//!
//! Anything else (alternation, groups, `*`/`+`/`?`, anchors, `.`) panics
//! with a clear message so an unsupported pattern fails loudly instead of
//! silently generating the wrong distribution.

use crate::rng::TestRng;

enum Atom {
    /// Candidate characters (a literal is a 1-element class).
    Class(Vec<char>),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize, // inclusive
}

/// Generates one random string matching `pattern`.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let count = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
        let Atom::Class(chars) = &piece.atom;
        for _ in 0..count {
            out.push(chars[rng.below(chars.len() as u64) as usize]);
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let (class, next) = parse_class(pattern, &chars, i + 1);
                i = next;
                Atom::Class(class)
            }
            '\\' => {
                let (c, next) = parse_escape(pattern, &chars, i + 1);
                i = next;
                Atom::Class(vec![c])
            }
            c @ ('*' | '+' | '?' | '(' | ')' | '|' | '^' | '$' | '.') => {
                panic!(
                    "proptest stand-in: unsupported regex construct `{c}` in pattern {pattern:?}"
                )
            }
            c => {
                i += 1;
                Atom::Class(vec![c])
            }
        };
        let (min, max, next) = parse_repeat(pattern, &chars, i);
        i = next;
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// Parses the body of a `[...]` class starting at `i` (past the `[`).
/// Returns the candidate set and the index past the closing `]`.
fn parse_class(pattern: &str, chars: &[char], mut i: usize) -> (Vec<char>, usize) {
    let mut set = Vec::new();
    if chars.get(i) == Some(&'^') {
        panic!("proptest stand-in: negated classes unsupported in pattern {pattern:?}");
    }
    while i < chars.len() && chars[i] != ']' {
        let (lo, next) = if chars[i] == '\\' {
            parse_escape(pattern, chars, i + 1)
        } else {
            (chars[i], i + 1)
        };
        i = next;
        // Range `lo-hi` (a trailing `-` right before `]` is a literal).
        if chars.get(i) == Some(&'-') && chars.get(i + 1).is_some_and(|&c| c != ']') {
            let (hi, next) = if chars[i + 1] == '\\' {
                parse_escape(pattern, chars, i + 2)
            } else {
                (chars[i + 1], i + 2)
            };
            i = next;
            assert!(lo <= hi, "inverted class range in pattern {pattern:?}");
            for c in lo..=hi {
                set.push(c);
            }
        } else {
            set.push(lo);
        }
    }
    assert!(
        i < chars.len(),
        "unterminated `[` class in pattern {pattern:?}"
    );
    assert!(
        !set.is_empty(),
        "empty character class in pattern {pattern:?}"
    );
    (set, i + 1)
}

fn parse_escape(pattern: &str, chars: &[char], i: usize) -> (char, usize) {
    let c = *chars
        .get(i)
        .unwrap_or_else(|| panic!("dangling `\\` in pattern {pattern:?}"));
    let resolved = match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        '\\' | ']' | '[' | '-' | '{' | '}' | '.' | '*' | '+' | '?' | '(' | ')' | '|' | '^'
        | '$' => c,
        other => panic!("proptest stand-in: unsupported escape `\\{other}` in pattern {pattern:?}"),
    };
    (resolved, i + 1)
}

/// Parses an optional `{m}` / `{m,n}` at `i`. Returns (min, max, next index).
fn parse_repeat(pattern: &str, chars: &[char], i: usize) -> (usize, usize, usize) {
    if chars.get(i) != Some(&'{') {
        return (1, 1, i);
    }
    let close = chars[i..]
        .iter()
        .position(|&c| c == '}')
        .unwrap_or_else(|| panic!("unterminated `{{` in pattern {pattern:?}"))
        + i;
    let body: String = chars[i + 1..close].iter().collect();
    let (min, max) = match body.split_once(',') {
        Some((m, n)) => (
            m.trim().parse().expect("bad repeat lower bound"),
            n.trim().parse().expect("bad repeat upper bound"),
        ),
        None => {
            let exact = body.trim().parse().expect("bad repeat count");
            (exact, exact)
        }
    };
    assert!(
        min <= max,
        "inverted repeat `{{{body}}}` in pattern {pattern:?}"
    );
    (min, max, close + 1)
}
