//! Minimal offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access to a registry, so the
//! workspace vendors the tiny subset of criterion's API that
//! `crates/bench/benches/micro.rs` uses: [`Criterion::bench_function`],
//! [`Bencher::iter`], [`criterion_group!`] and [`criterion_main!`].
//!
//! Timing methodology is deliberately simple — per benchmark it runs a
//! short warm-up, then `sample_size` timed samples of an adaptively chosen
//! iteration count, and reports the median / mean / min per-iteration time.
//! It is good enough to compare the relative cost of the substrates; it is
//! not a replacement for real criterion's statistics.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Drives one benchmark's iterations and records per-sample wall time.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `iters_per_sample` calls of `f` and records the sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        self.samples.push(start.elapsed());
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration used to calibrate iteration counts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one named benchmark and prints a per-iteration summary line.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Calibration: run single iterations until the warm-up budget is
        // spent, deriving an iteration count that makes one sample take
        // roughly warm_up_time / sample_size.
        let calib_start = Instant::now();
        let mut calib_iters: u64 = 0;
        while calib_start.elapsed() < self.warm_up_time {
            let mut b = Bencher {
                iters_per_sample: 1,
                samples: Vec::new(),
            };
            f(&mut b);
            calib_iters += 1;
            if calib_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = calib_start.elapsed().as_nanos().max(1) / u128::from(calib_iters.max(1));
        let target_sample_nanos = (self.warm_up_time.as_nanos() / self.sample_size as u128).max(1);
        let iters_per_sample = ((target_sample_nanos / per_iter.max(1)) as u64).clamp(1, 1 << 20);

        let mut b = Bencher {
            iters_per_sample,
            samples: Vec::with_capacity(self.sample_size),
        };
        for _ in 0..self.sample_size {
            f(&mut b);
        }

        let mut per_iter_nanos: Vec<u128> = b
            .samples
            .iter()
            .map(|d| d.as_nanos() / u128::from(iters_per_sample))
            .collect();
        per_iter_nanos.sort_unstable();
        let median = per_iter_nanos[per_iter_nanos.len() / 2];
        let mean = per_iter_nanos.iter().sum::<u128>() / per_iter_nanos.len() as u128;
        let min = per_iter_nanos[0];
        println!(
            "{id:<40} median {:>12}  mean {:>12}  min {:>12}  ({} samples x {} iters)",
            fmt_nanos(median),
            fmt_nanos(mean),
            fmt_nanos(min),
            self.sample_size,
            iters_per_sample,
        );
        self
    }
}

fn fmt_nanos(n: u128) -> String {
    if n >= 1_000_000_000 {
        format!("{:.3} s", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.3} ms", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.3} us", n as f64 / 1e3)
    } else {
        format!("{n} ns")
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
