//! End-to-end tests of the live store fabric: multiple daemons on one
//! store path converging through solver-log tailing, and per-lease
//! deadlines reaping wedged workers without perturbing the merged
//! report's deterministic projection.

use overify::{prepare_job, OptLevel, StoreConfig, SuiteJob, SuiteJobResult, SymConfig};
use overify_serve::{protocol, start, Client, Event, JobSpec, Request, ServerConfig, ServerHandle};
use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use std::path::Path;
use std::time::{Duration, Instant};

/// A daemon over `root` that executes everything itself: report artifacts
/// are disabled so a resubmission re-runs (and is priced from the cost
/// log) instead of being answered from storage — which is exactly what
/// the fabric tests need to observe solver-layer behavior.
fn start_reportless(root: &Path, executors: usize) -> ServerHandle {
    start(ServerConfig {
        port: 0,
        executors,
        store: Some(StoreConfig {
            root: root.into(),
            solver_cache: true,
            reports: false,
        }),
        progress_interval: Duration::from_millis(10),
        tail_interval: Duration::from_millis(25),
        max_connections: None,
        queue_capacity: None,
    })
    .expect("server binds an ephemeral port")
}

/// Same branchy shape the distributed tests use: ~4 decision points per
/// input byte plus one guarded planted bug, deep enough to donate subtree
/// states while hunger is registered.
fn branchy_job(bytes: Vec<usize>, path_workers: usize) -> SuiteJob {
    SuiteJob {
        name: "fabric".into(),
        source: r#"
            int umain(unsigned char *in, int n) {
                int acc = 0;
                for (int i = 0; i < n; i++) {
                    if (in[i] > 'f') acc += 2;
                    else if (in[i] > 'c') acc += 1;
                    if (in[i] == 'x') acc *= 3;
                }
                if (in[0] == 'z' && n > 1 && in[1] == '!') {
                    int x = 0;
                    return 10 / x;
                }
                return acc;
            }
        "#
        .into(),
        entry: "umain".into(),
        opts: overify::BuildOptions::level(OptLevel::O0),
        bytes,
        cfg: SymConfig {
            pass_len_arg: true,
            collect_tests: true,
            ..Default::default()
        },
        path_workers,
    }
}

fn assert_canonically_equal(base: &SuiteJobResult, other: &SuiteJobResult) {
    assert_eq!(base.error, other.error);
    assert_eq!(base.runs.len(), other.runs.len());
    for ((bn, br), (on, or)) in base.runs.iter().zip(&other.runs) {
        assert_eq!(bn, on, "swept sizes align");
        assert_eq!(
            br.canonical_bytes(),
            or.canonical_bytes(),
            "deterministic projection must be byte-identical at {bn} input bytes"
        );
        assert_eq!(br.bugs, or.bugs);
        assert_eq!(br.exhausted, or.exhausted);
    }
}

fn tmp_root(name: &str) -> std::path::PathBuf {
    let root = std::env::temp_dir().join(format!("overify_fabric_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// A job whose branch conditions couple *pairs* of input bytes: the
/// enumeration fast path (single narrow symbol) cannot decide them, so
/// the cold run genuinely bit-blasts — which is what makes "zero SAT
/// calls on the warm daemon" a meaningful assertion.
fn sat_heavy_job(bytes: Vec<usize>, path_workers: usize) -> SuiteJob {
    SuiteJob {
        name: "sat_heavy".into(),
        source: r#"
            int umain(unsigned char *in, int n) {
                int acc = 0;
                for (int i = 0; i + 1 < n; i++) {
                    unsigned char mix = (unsigned char)(in[i] + in[i + 1]);
                    if (mix > 200) acc += 2;
                    if ((unsigned char)(in[i] ^ in[i + 1]) == 0x21) acc += 3;
                }
                if (n > 1 && (unsigned char)(in[0] * 3) == (unsigned char)(in[1] + 7)) {
                    int x = 0;
                    return acc / x;
                }
                return acc;
            }
        "#
        .into(),
        entry: "umain".into(),
        opts: overify::BuildOptions::level(OptLevel::O0),
        bytes,
        cfg: SymConfig {
            pass_len_arg: true,
            collect_tests: true,
            ..Default::default()
        },
        path_workers,
    }
}

/// The tentpole's coherence claim, end to end: daemon B boots against an
/// empty store, daemon A then learns verdicts by running a job, and B —
/// **without any restart** — absorbs them by tailing the shared solver
/// log, so B's own execution of the same key issues zero SAT calls.
#[test]
fn daemon_b_learns_daemon_a_verdicts_by_tailing_post_boot() {
    let root = tmp_root("two_daemons");
    // B first: its boot-time warm load sees an empty store, so anything
    // it knows later was learned live.
    let server_b = start_reportless(&root, 1);
    let server_a = start_reportless(&root, 1);

    let job = sat_heavy_job(vec![4], 1);
    let spec = JobSpec::from_suite_job(&job);
    let mut client_a = Client::connect(server_a.addr()).expect("connects to A");
    let result_a = client_a.submit(&spec).expect("cold run on A");
    assert!(result_a.error.is_none());
    let cold = &result_a.runs[0].1.solver;
    assert!(
        cold.solved_sat > 0,
        "the cold run must exercise the SAT layer: {cold:?}"
    );

    // B's tailer folds A's appended verdicts in on its own clock; no
    // submission, no restart, no explicit poke.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let tailed = server_b.stats().store.solver_entries_tailed;
        if tailed >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "daemon B never tailed daemon A's verdicts"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // B executes the same key itself (reports are off, so this cannot be
    // a stored-artifact answer): every query the cold run sent to SAT is
    // answered by the tailed shared cache, and the replay is
    // byte-identical.
    let mut client_b = Client::connect(server_b.addr()).expect("connects to B");
    let result_b = client_b.submit(&spec).expect("warm run on B");
    assert!(result_b.error.is_none());
    let warm = &result_b.runs[0].1.solver;
    assert_eq!(
        warm.solved_sat, 0,
        "daemon B re-derived verdicts it should have tailed: {warm:?}"
    );
    assert!(
        warm.solved_shared > 0,
        "daemon B never touched the shared cache: {warm:?}"
    );
    assert_canonically_equal(&result_a, &result_b);

    server_a.shutdown();
    server_b.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// A worker that takes a lease and wedges (alive, but never completing)
/// is reaped at its priced deadline: the subtree is restored and
/// re-explored, the sweep completes byte-identically, and the wedged
/// worker's late frames are ignored as stale instead of corrupting the
/// merge.
#[test]
fn wedged_worker_is_reaped_and_its_late_frames_are_ignored() {
    let root = tmp_root("wedged");
    let server = start_reportless(&root, 1);
    let addr = server.addr();

    let job = branchy_job(vec![4], 1);
    let spec = JobSpec::from_suite_job(&job);
    let baseline = prepare_job(&job, false)
        .expect("builds")
        .execute(None, None, None);

    // Cold run with no worker attached: records the observed cost, so
    // the resubmission below is *priced* and its leases carry real
    // deadlines.
    let mut client = Client::connect(addr).expect("connects");
    let cold = client.submit(&spec).expect("cold run");
    assert_canonically_equal(&baseline, &cold);

    // The wedged worker: attach, poll until granted a lease, then hold
    // the connection open without completing. When the test says so, it
    // fires its late frames and reports what came back.
    let (lease_tx, lease_rx) = std::sync::mpsc::channel::<u64>();
    let (fire_tx, fire_rx) = std::sync::mpsc::channel::<()>();
    let wedged = std::thread::spawn(move || -> (Event, Event) {
        let stream = TcpStream::connect(addr).expect("connects");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        match protocol::decode_event(&protocol::read_frame(&mut reader).expect("hello")) {
            Ok(Event::Hello { version }) => assert_eq!(version, protocol::VERSION),
            other => panic!("expected Hello, got {other:?}"),
        }
        let mut request = |req: &Request| -> Event {
            protocol::write_frame(&mut writer, &protocol::encode_request(req)).expect("send");
            protocol::decode_event(&protocol::read_frame(&mut reader).expect("recv"))
                .expect("decode")
        };
        assert!(matches!(
            request(&Request::AttachWorker {
                name: "wedged".into()
            }),
            Event::WorkerAttached { .. }
        ));
        let lease = loop {
            match request(&Request::StealJobs { max: 1 }) {
                Event::Leases { leases } if !leases.is_empty() => break leases[0].lease,
                Event::Leases { .. } => continue,
                other => panic!("expected Leases, got {other:?}"),
            }
        };
        lease_tx.send(lease).unwrap();
        fire_rx.recv().unwrap();
        // Late frames for a reaped lease. The report is poisoned on
        // purpose: if the daemon merged it anyway, the final report
        // could not be byte-identical to the baseline.
        let done = request(&Request::JobDone {
            lease,
            trace: 0,
            report: overify::VerificationReport {
                paths_completed: 9999,
                exhausted: true,
                ..Default::default()
            },
            cache_delta: Vec::new(),
        });
        let offer = request(&Request::OfferStates {
            lease,
            prefixes: vec![vec![true]],
        });
        (done, offer)
    });

    // The priced resubmission: its remote lease goes to the wedged
    // worker, which sits on it until the reaper restores the subtree.
    let submit = std::thread::spawn({
        let spec = spec.clone();
        move || {
            let mut client = Client::connect(addr).expect("connects");
            client.submit(&spec).expect("completes despite the wedge")
        }
    });

    let _lease = lease_rx
        .recv_timeout(Duration::from_secs(60))
        .expect("the wedged worker was granted a lease");

    // Wait for the reap, then fire the late frames — while the run is
    // (possibly) still re-exploring the restored subtree, which is
    // exactly when a merged stale report would do the most damage.
    let deadline = Instant::now() + Duration::from_secs(120);
    while server.stats().leases_reaped == 0 {
        assert!(
            Instant::now() < deadline,
            "the wedged lease was never reaped: {:?}",
            server.stats()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    fire_tx.send(()).unwrap();

    let (done, offer) = wedged.join().unwrap();
    assert!(
        matches!(done, Event::JobAck { .. }),
        "a late JobDone is acked (idempotent), got {done:?}"
    );
    assert!(
        matches!(offer, Event::StatesAccepted { accepted: 0 }),
        "late shed states are refused, got {offer:?}"
    );

    let warm = submit.join().unwrap();
    assert_canonically_equal(&baseline, &warm);

    let stats = server.stats();
    assert!(stats.leases_reaped >= 1, "reap counter: {stats:?}");
    assert!(
        stats.stale_frames >= 2,
        "both late frames count as stale: {stats:?}"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
