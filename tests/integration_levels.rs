//! Cross-crate integration: every optimization level preserves behaviour on
//! the Coreutils suite while monotonically improving verification metrics.

use overify::{BuildOptions, ExecConfig, OptLevel};
use overify_coreutils::{compile_utility, suite};

/// Compiles a utility at `level` with the level's default libc.
fn build(u: &overify_coreutils::Utility, level: OptLevel) -> overify::Module {
    let opts = BuildOptions::level(level);
    let mut m = compile_utility(u, opts.resolved_libc()).expect("compiles");
    overify::build::compile_module(&mut m, &opts);
    overify_ir::verify_module(&m).expect("well-formed after optimization");
    m
}

#[test]
fn every_utility_behaves_identically_across_levels() {
    let cfg = ExecConfig::default();
    let inputs: [&[u8]; 5] = [
        b"hello world\n\0",
        b"a:b,c\td\0",
        b"  -42  \0",
        b"\0",
        b"/usr/bin/env\0",
    ];
    for u in suite() {
        let reference = build(u, OptLevel::O0);
        for level in [OptLevel::O1, OptLevel::O2, OptLevel::O3, OptLevel::Overify] {
            let m = build(u, level);
            for input in inputs {
                let n = (input.len() - 1) as u64;
                let r0 = overify::run_with_buffer(&reference, "umain", input, &[n], &cfg);
                let r1 = overify::run_with_buffer(&m, "umain", input, &[n], &cfg);
                assert_eq!(
                    r0.outcome, r1.outcome,
                    "{} at {level}: outcome diverged on {:?}",
                    u.name, input
                );
                assert_eq!(
                    r0.ret, r1.ret,
                    "{} at {level}: return diverged on {:?}",
                    u.name, input
                );
                assert_eq!(
                    r0.output, r1.output,
                    "{} at {level}: output diverged on {:?}",
                    u.name, input
                );
            }
        }
    }
}

#[test]
fn optimization_reduces_static_size_overall() {
    // -O2 must shrink the suite's total instruction count vs -O0 (Table 1's
    // "# instructions" direction).
    let mut total0 = 0usize;
    let mut total2 = 0usize;
    for u in suite() {
        total0 += build(u, OptLevel::O0).live_inst_count();
        total2 += build(u, OptLevel::O2).live_inst_count();
    }
    assert!(
        total2 < total0,
        "O2 total {total2} should be below O0 total {total0}"
    );
}

#[test]
fn table3_shape_on_the_suite() {
    // Compiling the whole suite (libc held fixed so counters compare pass
    // behaviour): the -OSYMBEX column of Table 3 dominates the -O3 column,
    // and -O0 is all zeroes.
    let mut o3 = overify::OptStats::default();
    let mut ov = overify::OptStats::default();
    for u in suite() {
        let mut opts3 = BuildOptions::level(OptLevel::O3);
        opts3.libc = Some(overify::LibcVariant::Native);
        let mut m3 = compile_utility(u, overify::LibcVariant::Native).unwrap();
        o3 += overify::build::compile_module(&mut m3, &opts3);

        let mut optsv = BuildOptions::level(OptLevel::Overify);
        optsv.libc = Some(overify::LibcVariant::Native);
        let mut mv = compile_utility(u, overify::LibcVariant::Native).unwrap();
        ov += overify::build::compile_module(&mut mv, &optsv);
    }
    assert!(ov.functions_inlined >= o3.functions_inlined);
    assert!(ov.branches_converted > o3.branches_converted);
    assert!(ov.loops_unrolled >= o3.loops_unrolled);
    assert!(ov.loops_unswitched > o3.loops_unswitched);
    // -O0 performs no transformations at all.
    let opts0 = BuildOptions::level(OptLevel::O0);
    let mut m0 = compile_utility(&suite()[0], opts0.resolved_libc()).unwrap();
    let s0 = overify::build::compile_module(&mut m0, &opts0);
    assert_eq!(s0, overify::OptStats::default());
}

#[test]
fn build_chain_produces_three_distinct_configurations() {
    let chain = overify::BuildChain::new(suite()[0].source);
    let d = chain.debug().unwrap();
    let r = chain.release().unwrap();
    let v = chain.verification().unwrap();
    // Distinct levels, and the verification build links the verify libc.
    assert_eq!(d.level, OptLevel::O0);
    assert_eq!(r.level, OptLevel::O3);
    assert_eq!(v.level, OptLevel::Overify);
    assert!(d.module.global("__ctype_tab").is_some());
    assert!(v.module.global("__ctype_tab").is_none());
}
