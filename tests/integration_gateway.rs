//! End-to-end tests of the public verification gateway: a real serve
//! daemon and a real gateway in one process, HTTP flowing over real
//! localhost sockets, job records and verdicts flowing through a real
//! store directory.

use overify::StoreConfig;
use overify_gateway::{start as start_gateway, GatewayConfig, GatewayHandle, QuotaConfig};
use overify_serve::{start as start_daemon, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn tmp_root(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("overify_gw_it_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn daemon_at(root: &Path, port: u16) -> ServerHandle {
    let cfg = || ServerConfig {
        port,
        executors: 2,
        store: Some(StoreConfig::at(root)),
        progress_interval: Duration::from_millis(5),
        tail_interval: Duration::from_millis(50),
        max_connections: None,
        queue_capacity: None,
    };
    // A fixed-port restart may race the old listener's teardown.
    for _ in 0..200 {
        match start_daemon(cfg()) {
            Ok(h) => return h,
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
    panic!("daemon port {port} never became bindable");
}

fn gateway_at(
    daemon: SocketAddr,
    root: &Path,
    tweak: impl FnOnce(&mut GatewayConfig),
) -> GatewayHandle {
    let mut cfg = GatewayConfig::at(daemon, StoreConfig::at(root));
    tweak(&mut cfg);
    start_gateway(cfg).expect("gateway binds an ephemeral port")
}

/// One HTTP exchange over a fresh connection. Returns status, the raw
/// response head (for header assertions) and the body.
fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    token: Option<&str>,
    body: &str,
) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("gateway accepts");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let auth = token
        .map(|t| format!("Authorization: Bearer {t}\r\n"))
        .unwrap_or_default();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: gw\r\n{auth}Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("request writes");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("response reads");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad response: {raw:?}"));
    let (head, body) = raw.split_once("\r\n\r\n").expect("head/body split");
    (status, head.to_string(), body.to_string())
}

/// Pulls a `"key":"value"` string field out of a flat JSON body.
fn extract(body: &str, key: &str) -> Option<String> {
    let at = body.find(&format!("\"{key}\":\""))? + key.len() + 4;
    let rest = &body[at..];
    Some(rest[..rest.find('"')?].to_string())
}

/// A trivially verifiable submission; `salt` varies the content address.
fn spec_body(salt: usize) -> String {
    format!(
        "{{\"name\":\"gw-{salt}\",\"source\":\"int f(unsigned char *p, int n) \
         {{ int a = {salt}; if (n > 1 && p[0] > 'm') a += 2; return a; }}\",\
         \"entry\":\"f\",\"level\":\"O0\",\"bytes\":[2]}}"
    )
}

fn poll_terminal(addr: SocketAddr, token: Option<&str>, id: &str, deadline: Instant) -> String {
    loop {
        let (status, _, body) = request(addr, "GET", &format!("/v1/jobs/{id}"), token, "");
        if status == 200 {
            if let Some(s @ ("done" | "failed")) = extract(&body, "state").as_deref() {
                return s.to_string();
            }
        }
        assert!(
            Instant::now() < deadline,
            "job {id} not terminal in time (last: {status} {body})"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Reads one counter series out of the `/metrics` text.
fn scrape_counter(text: &str, series: &str) -> u64 {
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{series} ")))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

#[test]
fn submit_poll_registry_and_both_restarts() {
    let root = tmp_root("lifecycle");
    let daemon = daemon_at(&root, 0);
    let gw = gateway_at(daemon.addr(), &root, |_| {});
    let addr = gw.addr();

    // Defects are typed, not hangs: bad body, bad id, unknown id,
    // wrong method, no such route.
    let (status, _, body) = request(addr, "POST", "/v1/verify", None, "{\"name\":1}");
    assert_eq!((status, body.contains("error")), (400, true), "{body}");
    let (status, _, _) = request(addr, "GET", "/v1/jobs/zz", None, "");
    assert_eq!(status, 400);
    let (status, _, _) = request(addr, "GET", &format!("/v1/jobs/{:032x}", 7), None, "");
    assert_eq!(status, 404);
    let (status, _, _) = request(addr, "GET", "/v1/verify", None, "");
    assert_eq!(status, 405);
    let (status, _, _) = request(addr, "GET", "/v1/nope", None, "");
    assert_eq!(status, 404);
    let (status, _, body) = request(addr, "GET", "/healthz", None, "");
    assert_eq!((status, body.trim()), (200, "ok"));

    // Submit-then-poll: a 202 with a durable job id, immediately.
    let (status, _, body) = request(addr, "POST", "/v1/verify", None, &spec_body(1));
    assert_eq!(status, 202, "{body}");
    let id = extract(&body, "job_id").expect("job id in response");
    assert_eq!(id.len(), 32, "content-addressed id is 32 hex digits");
    assert_eq!(extract(&body, "state").as_deref(), Some("queued"));

    let state = poll_terminal(addr, None, &id, Instant::now() + Duration::from_secs(120));
    assert_eq!(state, "done");
    let (_, _, job) = request(addr, "GET", &format!("/v1/jobs/{id}"), None, "");
    assert_eq!(extract(&job, "grain").as_deref(), Some("module"), "{job}");
    let verdict_fp = extract(&job, "fingerprint").expect("verdict names its artifact");

    // Idempotent resubmission: same spec, same id, no second run.
    let (status, _, body) = request(addr, "POST", "/v1/verify", None, &spec_body(1));
    assert_eq!(status, 200, "{body}");
    assert_eq!(extract(&body, "job_id").as_deref(), Some(id.as_str()));
    assert!(body.contains("\"resubmitted\":true"), "{body}");

    // The registry lists the stored verdict the job resolved to.
    let (status, _, reg) = request(addr, "GET", "/v1/registry", None, "");
    assert_eq!(status, 200);
    assert!(
        reg.contains(&verdict_fp),
        "registry row for the verdict: {reg}"
    );
    assert!(reg.contains("\"grain\":\"module\""), "{reg}");

    // The gateway's own registry is scrapable.
    let (status, _, metrics) = request(addr, "GET", "/metrics", None, "");
    assert_eq!(status, 200);
    assert!(scrape_counter(&metrics, "overify_gateway_accepted_total") >= 1);
    assert!(scrape_counter(&metrics, "overify_gateway_http_requests_total") >= 5);

    // Gateway restart: a fresh gateway on the same store answers the
    // old job id — and the daemon being gone doesn't matter for polls.
    gw.shutdown();
    daemon.shutdown();
    let daemon2 = daemon_at(&root, 0);
    let gw2 = gateway_at(daemon2.addr(), &root, |_| {});
    let (status, _, job) = request(gw2.addr(), "GET", &format!("/v1/jobs/{id}"), None, "");
    assert_eq!(status, 200);
    assert_eq!(extract(&job, "state").as_deref(), Some("done"), "{job}");
    assert_eq!(
        extract(&job, "fingerprint").as_deref(),
        Some(verdict_fp.as_str())
    );
    gw2.shutdown();
    daemon2.shutdown();
}

#[test]
fn auth_and_quota_gate_submissions() {
    let root = tmp_root("quota");
    let daemon = daemon_at(&root, 0);
    let gw = gateway_at(daemon.addr(), &root, |cfg| {
        cfg.tokens = vec![("tok-q".into(), "quota-alice".into())];
        cfg.quota = QuotaConfig {
            burst: 2.0,
            per_sec: 0.25,
        };
    });
    let addr = gw.addr();

    // No token / unknown token → 401 (and no quota spent).
    let (status, _, _) = request(addr, "POST", "/v1/verify", None, &spec_body(10));
    assert_eq!(status, 401);
    let (status, _, _) = request(addr, "POST", "/v1/verify", Some("wrong"), &spec_body(10));
    assert_eq!(status, 401);

    // The burst is admitted; the next submission is quota-denied with
    // an honest Retry-After.
    for salt in [10, 11] {
        let (status, _, body) =
            request(addr, "POST", "/v1/verify", Some("tok-q"), &spec_body(salt));
        assert_eq!(status, 202, "{body}");
    }
    let (status, head, body) = request(addr, "POST", "/v1/verify", Some("tok-q"), &spec_body(12));
    assert_eq!(status, 429, "{body}");
    assert!(body.contains("quota"), "{body}");
    let retry_after: u64 = head
        .lines()
        .find_map(|l| l.strip_prefix("Retry-After: "))
        .and_then(|v| v.parse().ok())
        .expect("Retry-After header");
    assert!(retry_after >= 1, "refill at 0.25/s is seconds away");

    // The books match: exactly what we observed, per tenant.
    let (_, _, metrics) = request(addr, "GET", "/metrics", None, "");
    assert_eq!(
        scrape_counter(
            &metrics,
            "overify_gateway_tenant_accepted_total{tenant=\"quota-alice\"}"
        ),
        2
    );
    assert_eq!(
        scrape_counter(
            &metrics,
            "overify_gateway_tenant_quota_denied_total{tenant=\"quota-alice\"}"
        ),
        1
    );
    gw.shutdown();
    daemon.shutdown();
}

/// The acceptance flood: thousands of concurrent submissions against a
/// small queue bound, with the backing daemon killed and restarted
/// mid-flood. Zero lost jobs: every submission is either accepted (and
/// reaches `done`) or shed with a 429 — and the gateway's per-tenant
/// counters agree exactly with what the clients observed.
#[test]
fn flood_sheds_explicitly_and_loses_nothing_across_daemon_restart() {
    const SUBMISSIONS: usize = 2400;
    const THREADS: usize = 16;
    const DISTINCT: usize = 150;
    const RESTART_AFTER: u64 = 600;

    let root = tmp_root("flood");
    // A fixed daemon port so the restarted daemon is reachable at the
    // address the gateway was configured with.
    let port = {
        let probe = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        probe.local_addr().unwrap().port()
    };
    let daemon = daemon_at(&root, port);
    let gw = gateway_at(daemon.addr(), &root, |cfg| {
        cfg.queue_capacity = 4;
        cfg.dispatchers = 2;
        cfg.quota = QuotaConfig {
            burst: 1e9,
            per_sec: 1e9,
        };
        cfg.tokens = vec![
            ("tok-fa".into(), "flood-alice".into()),
            ("tok-fb".into(), "flood-bob".into()),
        ];
    });
    let addr = gw.addr();

    let submitted = AtomicU64::new(0);
    let accepted_new = [AtomicU64::new(0), AtomicU64::new(0)];
    let resubmitted = AtomicU64::new(0);
    let shed = [AtomicU64::new(0), AtomicU64::new(0)];
    let ids = std::sync::Mutex::new(std::collections::HashSet::new());

    let mut daemon = Some(daemon);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let (submitted, accepted_new, resubmitted, shed, ids) =
                (&submitted, &accepted_new, &resubmitted, &shed, &ids);
            scope.spawn(move || {
                let tenant = t % 2;
                let token = if tenant == 0 { "tok-fa" } else { "tok-fb" };
                for i in (t..SUBMISSIONS).step_by(THREADS) {
                    let body = spec_body(1000 + i % DISTINCT);
                    let (status, _, body) = request(addr, "POST", "/v1/verify", Some(token), &body);
                    match status {
                        202 => {
                            accepted_new[tenant].fetch_add(1, Ordering::Relaxed);
                            ids.lock()
                                .unwrap()
                                .insert(extract(&body, "job_id").unwrap());
                        }
                        200 => {
                            resubmitted.fetch_add(1, Ordering::Relaxed);
                            ids.lock()
                                .unwrap()
                                .insert(extract(&body, "job_id").unwrap());
                        }
                        429 => {
                            shed[tenant].fetch_add(1, Ordering::Relaxed);
                        }
                        other => panic!("unexpected status {other}: {body}"),
                    }
                    submitted.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        // Mid-flood, bounce the daemon. Accepted jobs must ride it out.
        while submitted.load(Ordering::Relaxed) < RESTART_AFTER {
            std::thread::sleep(Duration::from_millis(5));
        }
        daemon.take().unwrap().shutdown();
        daemon = Some(daemon_at(&root, port));
    });
    let daemon = daemon.unwrap();

    let acc: u64 = accepted_new.iter().map(|a| a.load(Ordering::Relaxed)).sum();
    let resub = resubmitted.load(Ordering::Relaxed);
    let shed_seen: u64 = shed.iter().map(|s| s.load(Ordering::Relaxed)).sum();
    assert_eq!(
        acc + resub + shed_seen,
        SUBMISSIONS as u64,
        "every submission got a definite answer"
    );
    assert!(shed_seen >= 1, "a 4-deep queue under this flood must shed");
    assert!(acc >= 1, "some submissions must get through");

    // Every accepted job reaches `done` — nothing is lost to the
    // restart, the shed daemon queue, or the gateway's own bound.
    let ids = ids.into_inner().unwrap();
    let deadline = Instant::now() + Duration::from_secs(600);
    for id in &ids {
        let state = poll_terminal(addr, Some("tok-fa"), id, deadline);
        assert_eq!(state, "done", "job {id}");
    }

    // The gateway's books agree exactly with what the clients counted.
    let (_, _, metrics) = request(addr, "GET", "/metrics", None, "");
    for (tenant, counts) in [("flood-alice", 0usize), ("flood-bob", 1)] {
        assert_eq!(
            scrape_counter(
                &metrics,
                &format!("overify_gateway_tenant_accepted_total{{tenant=\"{tenant}\"}}")
            ),
            accepted_new[counts].load(Ordering::Relaxed),
            "accepted ledger for {tenant}"
        );
        assert_eq!(
            scrape_counter(
                &metrics,
                &format!("overify_gateway_tenant_shed_total{{tenant=\"{tenant}\"}}")
            ),
            shed[counts].load(Ordering::Relaxed),
            "shed ledger for {tenant}"
        );
    }

    // The flood's verdicts are in the public registry.
    let (status, _, reg) = request(addr, "GET", "/v1/registry", Some("tok-fb"), "");
    assert_eq!(status, 200);
    let count: u64 = reg
        .split("\"count\":")
        .nth(1)
        .and_then(|r| r.trim_end_matches('}').parse().ok())
        .expect("registry count");
    assert!(count >= 1, "{reg}");

    gw.shutdown();
    daemon.shutdown();
}

/// A rebooted gateway replays interrupted (non-terminal) job records
/// back into its queue and finishes them.
#[test]
fn gateway_restart_recovers_interrupted_jobs() {
    let root = tmp_root("recovery");
    // Phase 1: a gateway accepts a job while the daemon is unreachable
    // (a port nothing listens on), then dies. The record stays queued.
    let dead_port = {
        let probe = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        probe.local_addr().unwrap().port()
    };
    let gw = gateway_at(SocketAddr::from(([127, 0, 0, 1], dead_port)), &root, |_| {});
    let (status, _, body) = request(gw.addr(), "POST", "/v1/verify", None, &spec_body(77));
    assert_eq!(status, 202, "{body}");
    let id = extract(&body, "job_id").unwrap();
    gw.shutdown();

    // Phase 2: a real daemon comes up, and a fresh gateway on the same
    // store replays the orphan to completion with no resubmission.
    let daemon = daemon_at(&root, 0);
    let gw2 = gateway_at(daemon.addr(), &root, |_| {});
    let state = poll_terminal(
        gw2.addr(),
        None,
        &id,
        Instant::now() + Duration::from_secs(120),
    );
    assert_eq!(state, "done", "recovered job finishes");
    gw2.shutdown();
    daemon.shutdown();
}
