//! Bug preservation across optimization levels (paper §4: "We verified that
//! indeed all bugs discovered by KLEE with -O0 and -O3 are also found with
//! -OSYMBEX") and §2.3's undefined-behaviour caveat.

use overify::{compile, verify_program, BugKind, BuildOptions, OptLevel, SymConfig};

/// Utilities seeded with distinct input-dependent bugs.
const SEEDED: &[(&str, BugKind, &str)] = &[
    (
        "overflow on long field",
        BugKind::OutOfBounds,
        r#"
        int umain(unsigned char *in, int n) {
            char buf[4];
            int k = 0;
            while (in[k]) {
                buf[k] = in[k];   // No bound check.
                k++;
            }
            return k;
        }
        "#,
    ),
    (
        "divide by digit count",
        BugKind::DivByZero,
        r#"
        int umain(unsigned char *in, int n) {
            int digits = 0;
            for (int i = 0; in[i]; i++) {
                if (isdigit(in[i])) digits++;
            }
            return 100 / digits;  // Zero when no digits.
        }
        "#,
    ),
    (
        "assert on magic byte",
        BugKind::AssertFail,
        r#"
        int umain(unsigned char *in, int n) {
            int seen = 0;
            for (int i = 0; in[i]; i++) {
                if (in[i] == 0x7f) seen = 1;
            }
            __assert(!seen);
            return 0;
        }
        "#,
    ),
];

fn hunt(src: &str, level: OptLevel) -> overify::VerificationReport {
    let prog = compile(src, &BuildOptions::level(level)).expect("compiles");
    verify_program(
        &prog,
        "umain",
        &SymConfig {
            input_bytes: 5,
            pass_len_arg: true,
            max_instructions: 20_000_000,
            ..Default::default()
        },
    )
}

#[test]
fn seeded_bugs_found_at_every_level() {
    for (what, kind, src) in SEEDED {
        for level in OptLevel::all() {
            let r = hunt(src, level);
            let kinds: Vec<BugKind> = r.bugs.iter().map(|b| b.kind).collect();
            assert!(
                kinds.contains(kind),
                "{what}: {level} found {kinds:?}, expected {kind:?}"
            );
        }
    }
}

#[test]
fn witnesses_reproduce_concretely() {
    // Every bug witness, replayed in the concrete interpreter on the -O0
    // build, must actually crash.
    for (what, _, src) in SEEDED {
        let prog = compile(src, &BuildOptions::level(OptLevel::O0)).unwrap();
        let r = hunt(src, OptLevel::O0);
        assert!(!r.bugs.is_empty(), "{what}");
        for bug in &r.bugs {
            let mut input = bug.input.clone();
            input.push(0);
            let res = overify::run_with_buffer(
                &prog.module,
                "umain",
                &input,
                &[(input.len() - 1) as u64],
                &overify::ExecConfig::default(),
            );
            assert!(
                matches!(res.outcome, overify::Outcome::Abort(_)),
                "{what}: witness {:?} did not crash concretely ({:?})",
                bug.input,
                res.outcome
            );
        }
    }
}

#[test]
fn clean_programs_stay_clean_at_overify() {
    // Runtime checks must not introduce false positives: a memory-safe
    // program verifies clean even with checks inserted.
    let src = r#"
        int umain(unsigned char *in, int n) {
            char window[8];
            for (int i = 0; i < 8; i++) window[i] = 0;
            for (int i = 0; in[i]; i++) {
                window[i & 7] = in[i];   // Masked: always in bounds.
            }
            int sum = 0;
            for (int i = 0; i < 8; i++) sum += window[i];
            return sum;
        }
    "#;
    let r = hunt(src, OptLevel::Overify);
    assert!(r.exhausted);
    assert!(r.bugs.is_empty(), "false positives: {:?}", r.bugs);
}

#[test]
fn overify_finds_bugs_with_less_work() {
    // The point of the whole exercise: same bugs, fewer resources.
    let (_, _, src) = SEEDED[0];
    let r0 = hunt(src, OptLevel::O0);
    let rv = hunt(src, OptLevel::Overify);
    assert_eq!(r0.bug_signature().len(), rv.bug_signature().len());
    assert!(
        rv.instructions <= r0.instructions,
        "OVERIFY interpreted {} vs O0 {}",
        rv.instructions,
        r0.instructions
    );
}
