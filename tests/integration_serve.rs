//! End-to-end tests of the resident verification service: server and
//! clients in one process over real localhost sockets, state flowing
//! through a real store directory.

use overify::{OptLevel, StoreConfig, SuiteJob, SymConfig};
use overify_serve::{start, Client, Event, JobSpec, ServerConfig, ServerHandle};
use std::path::PathBuf;
use std::time::Duration;

fn tmp_root(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("overify_serve_it_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn start_server(root: &PathBuf, executors: usize) -> ServerHandle {
    start(ServerConfig {
        port: 0,
        executors,
        store: Some(StoreConfig::at(root)),
        progress_interval: Duration::from_millis(5),
        tail_interval: Duration::from_millis(50),
        max_connections: None,
        queue_capacity: None,
    })
    .expect("server binds an ephemeral port")
}

fn small_cfg() -> SymConfig {
    SymConfig {
        pass_len_arg: true,
        collect_tests: true,
        ..Default::default()
    }
}

fn utility_spec(name: &str, level: OptLevel, bytes: &[usize]) -> JobSpec {
    let u = overify_coreutils::utility(name).expect("utility exists");
    JobSpec::from_suite_job(&SuiteJob::utility(u, level, bytes, &small_cfg()))
}

/// A branchy synthetic job: enough paths that a run spans several poller
/// ticks, so mid-flight progress is observable.
fn branchy_spec(bytes: Vec<usize>) -> JobSpec {
    JobSpec {
        name: "branchy".into(),
        source: r#"
            int umain(unsigned char *in, int n) {
                int acc = 0;
                for (int i = 0; i < n; i++) {
                    if (in[i] > 'f') acc += 2;
                    else if (in[i] > 'c') acc += 1;
                    if (in[i] == 'x') acc *= 3;
                }
                return acc;
            }
        "#
        .into(),
        entry: "umain".into(),
        level: OptLevel::O0,
        bytes,
        path_workers: 1,
        cfg: small_cfg(),
    }
}

#[test]
fn concurrent_clients_share_one_store_and_agree_byte_for_byte() {
    let root = tmp_root("concurrent");
    let server = start_server(&root, 2);
    let addr = server.addr();
    let specs = || {
        vec![
            utility_spec("echo", OptLevel::Overify, &[2]),
            utility_spec("wc_words", OptLevel::O0, &[2]),
            utility_spec("cat_n", OptLevel::O3, &[2]),
        ]
    };

    // Two clients race the same job set over one store.
    let results: Vec<Vec<overify::SuiteJobResult>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                scope.spawn(move || {
                    let mut c = Client::connect(addr).expect("connects");
                    c.submit_all(&specs()).expect("batch completes")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (a, b) in results[0].iter().zip(&results[1]) {
        assert_eq!(a.name, b.name);
        assert!(a.error.is_none(), "{}: {:?}", a.name, a.error);
        assert_eq!(a.runs, b.runs, "{}: reports must be byte-identical", a.name);
        assert!(a.exhausted(), "{}", a.name);
    }

    // A third, sequential client gets everything from the store without
    // the executor running again.
    let executed_before = server.stats().executed;
    let mut warm = Client::connect(addr).expect("connects");
    let mut saw_queue_or_schedule = false;
    let warm_results = warm
        .submit_all_with(&specs(), |ev| {
            if matches!(ev, Event::Queued { .. } | Event::Scheduled { .. }) {
                saw_queue_or_schedule = true;
            }
        })
        .expect("warm batch completes");
    assert!(warm_results.iter().all(|r| r.from_store), "all store hits");
    assert!(
        !saw_queue_or_schedule,
        "warm resubmits must never enter the scheduler"
    );
    assert_eq!(
        server.stats().executed,
        executed_before,
        "executor untouched by warm resubmits"
    );
    for (a, b) in results[0].iter().zip(&warm_results) {
        assert_eq!(a.runs, b.runs, "{}: stored report verbatim", a.name);
    }

    let stats = server.stats();
    assert_eq!(stats.submitted, 9);
    assert!(stats.answered_from_store >= 3);
    assert_eq!(
        stats.executed, 3,
        "single-flight coalescing: one execution per content address, \
         no matter how many clients race it"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn miss_jobs_stream_ordered_progress_events() {
    let root = tmp_root("progress");
    let server = start_server(&root, 1);
    let mut client = Client::connect(server.addr()).expect("connects");

    let mut events = Vec::new();
    let result = client
        .submit_with(&branchy_spec(vec![2, 3]), |ev| events.push(ev.clone()))
        .expect("job completes");
    assert!(!result.from_store);
    assert!(result.exhausted());

    // Stream shape: Queued, then Scheduled, then ≥1 Progress, then Report.
    let kinds: Vec<u8> = events
        .iter()
        .map(|e| match e {
            Event::Queued { .. } => 0,
            Event::Scheduled { .. } => 1,
            Event::Progress { .. } => 2,
            Event::Report { .. } => 3,
            other => panic!("unexpected event {other:?}"),
        })
        .collect();
    assert_eq!(kinds[0], 0, "first Queued: {events:?}");
    assert_eq!(kinds[1], 1, "then Scheduled");
    assert_eq!(*kinds.last().unwrap(), 3, "Report last");
    assert!(kinds[2..kinds.len() - 1].iter().all(|&k| k == 2));
    assert!(kinds.len() >= 4, "at least one progress frame: {kinds:?}");

    // Progress is monotone and totals match the final report.
    let progress: Vec<(u32, u32, u64)> = events
        .iter()
        .filter_map(|e| match e {
            Event::Progress {
                runs_done,
                runs_total,
                paths,
                ..
            } => Some((*runs_done, *runs_total, *paths)),
            _ => None,
        })
        .collect();
    assert!(progress.iter().all(|&(_, total, _)| total == 2));
    assert!(progress.windows(2).all(|w| w[0].2 <= w[1].2), "paths grow");
    let final_paths: u64 = result.runs.iter().map(|(_, r)| r.total_paths()).sum();
    assert_eq!(progress.last().unwrap().2, final_paths);
    assert_eq!(progress.last().unwrap().0, 2, "all runs done at the end");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn truncated_jobs_stream_a_final_report_but_are_never_persisted() {
    let root = tmp_root("truncated");
    let server = start_server(&root, 1);
    let mut client = Client::connect(server.addr()).expect("connects");

    let mut spec = branchy_spec(vec![5]);
    spec.cfg.max_instructions = 50; // far below what the job needs
    let mut first_events = Vec::new();
    let first = client
        .submit_with(&spec, |ev| first_events.push(ev.clone()))
        .expect("truncated job still reports");
    assert!(!first.from_store);
    assert!(
        first.runs.iter().any(|(_, r)| r.timed_out),
        "the budget genuinely tripped"
    );
    assert!(
        matches!(first_events.first(), Some(Event::Queued { .. })),
        "streamed, not answered from store"
    );
    assert!(
        matches!(first_events.last(), Some(Event::Report { .. })),
        "stream ends in the final (non-persisted) report"
    );

    // A resubmit is a miss again — truncated outcomes must never replay —
    // and the scheduler now prices it by its *observed* cost.
    let mut observed_cost_priced = false;
    let second = client
        .submit_with(&spec, |ev| {
            if let Event::Queued { predicted_cost, .. } = ev {
                // Observed costs are wall-clock nanos of the first run —
                // far below the static estimate class's values, and
                // nonzero.
                observed_cost_priced = *predicted_cost > 0;
            }
        })
        .expect("resubmit completes");
    assert!(!second.from_store, "truncated run must recompute");
    assert!(observed_cost_priced, "cost feedback reached the scheduler");
    assert_eq!(server.stats().executed, 2);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn build_failures_and_stats_flow_over_the_wire() {
    let root = tmp_root("failures");
    let server = start_server(&root, 1);
    let mut client = Client::connect(server.addr()).expect("connects");

    let mut spec = branchy_spec(vec![2]);
    spec.source = "int umain(unsigned char *in, int n) { syntax error }".into();
    let result = client.submit(&spec).expect("failure is a result");
    assert!(result.error.is_some());
    assert!(result.runs.is_empty());

    let ok = client
        .submit(&utility_spec("echo", OptLevel::Overify, &[2]))
        .expect("next job on the same connection");
    assert!(ok.error.is_none());

    let stats = client.stats().expect("stats answer");
    assert_eq!(stats.submitted, 2);
    assert_eq!(stats.executed, 1, "only the well-formed job ran");
    assert_eq!(stats.queued, 0);
    assert_eq!(stats.active, 0);
    assert_eq!(stats.store.reports_saved, 1);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn client_shutdown_drains_the_server() {
    let root = tmp_root("shutdown");
    let server = start_server(&root, 2);
    let addr = server.addr();
    let client = Client::connect(addr).expect("connects");
    client.shutdown().expect("acknowledged");
    // join() returns because the client-initiated shutdown drained the
    // executor pool, poller and accept loop.
    server.join();
    let _ = std::fs::remove_dir_all(&root);
}

/// A v5 client generation talking to this daemon — or, equivalently,
/// this client talking to an old daemon — must get a typed
/// `VersionSkew` refusal naming both versions, never a hang or a
/// garbled-frame error.
#[test]
fn version_skew_is_refused_by_name_not_by_hanging() {
    // A fake old daemon: leads with a Hello frame claiming protocol v5.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("binds");
    let addr = listener.local_addr().unwrap();
    let fake = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().expect("accepts");
        let mut payload = vec![0u8]; // Event::Hello tag
        payload.extend_from_slice(b"OVFYSRV\0");
        payload.extend_from_slice(&5u32.to_le_bytes());
        let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&payload);
        std::io::Write::write_all(&mut conn, &frame).expect("writes hello");
        std::io::Write::flush(&mut conn).expect("flushes");
        // Hold the socket open: the refusal must come from the version
        // check, not from a convenient EOF.
        std::thread::sleep(Duration::from_millis(500));
    });

    let Err(err) = Client::connect(addr) else {
        panic!("v5 hello must be refused")
    };
    let msg = err.to_string();
    assert!(msg.contains("protocol v5"), "names the peer version: {msg}");
    fake.join().unwrap();
}

/// The connection cap refuses extra clients with a typed `Busy` frame
/// (surfaced as `WouldBlock` plus a retry hint) instead of accepting
/// unboundedly — and a freed slot admits the next client.
#[test]
fn connection_cap_refuses_cleanly_and_frees_slots() {
    let root = tmp_root("conncap");
    let server = start(ServerConfig {
        port: 0,
        executors: 1,
        store: Some(StoreConfig::at(&root)),
        progress_interval: Duration::from_millis(5),
        tail_interval: Duration::from_millis(50),
        max_connections: Some(1),
        queue_capacity: None,
    })
    .expect("server binds");
    let addr = server.addr();

    let first = Client::connect(addr).expect("first client fills the cap");
    let Err(err) = Client::connect(addr) else {
        panic!("second client must be over the cap")
    };
    assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
    assert!(err.to_string().contains("connection cap"), "{err}");

    // Releasing the slot admits a new client (the server notices the
    // disconnect asynchronously, so poll briefly).
    drop(first);
    let mut admitted = None;
    for _ in 0..200 {
        match Client::connect(addr) {
            Ok(c) => {
                admitted = Some(c);
                break;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10))
            }
            Err(e) => panic!("unexpected connect error: {e}"),
        }
    }
    let client = admitted.expect("freed slot admits a client");
    client.shutdown().expect("acknowledged");
    server.join();
    let _ = std::fs::remove_dir_all(&root);
}

/// With a zero-capacity queue every submission is shed: the client gets
/// a per-job result naming the shed and a retry hint, not an error that
/// kills the batch.
#[test]
fn bounded_queue_sheds_submissions_as_typed_results() {
    let root = tmp_root("qshed");
    let server = start(ServerConfig {
        port: 0,
        executors: 1,
        store: Some(StoreConfig::at(&root)),
        progress_interval: Duration::from_millis(5),
        tail_interval: Duration::from_millis(50),
        max_connections: None,
        queue_capacity: Some(0),
    })
    .expect("server binds");
    let addr = server.addr();

    let mut client = Client::connect(addr).expect("connects");
    let result = client
        .submit_with_tenant(&branchy_spec(vec![1]), "shed-tenant", |_| {})
        .expect("the connection survives a shed");
    let err = result.error.expect("shed submissions carry an error");
    assert!(err.starts_with("shed: server queue full"), "{err}");
    assert!(err.contains("retry after"), "{err}");

    client.shutdown().expect("acknowledged");
    server.join();
    let _ = std::fs::remove_dir_all(&root);
}
