//! Determinism matrix for the work-stealing parallel driver.
//!
//! The merged report of `verify_parallel` must be a function of the
//! program alone, never of worker count or thread interleaving: identical
//! bug signatures, identical exhaustion status, identical sorted canonical
//! test-case sets — and every symbolic path explored by exactly one worker
//! (path multiplicity 1). Sallai et al. (size-reduction evaluation) argue
//! verifier-side claims need a diverse workload matrix; we run the whole
//! coreutils-style suite at both ends of the pipeline (`-O0`, `-OVERIFY`).

use overify::{
    compile_module, default_threads, verify_parallel, verify_parallel_cached, verify_suite,
    BuildOptions, Module, OptLevel, SharedQueryCache, SuiteJob, SymConfig, Utility,
};
use std::sync::Arc;

const WORKER_MATRIX: [usize; 4] = [1, 2, 4, 8];

fn build(u: &Utility, level: OptLevel) -> Module {
    let opts = BuildOptions::level(level);
    let mut m = overify_coreutils::compile_utility(u, opts.resolved_libc())
        .unwrap_or_else(|e| panic!("{} fails to build: {e}", u.name));
    compile_module(&mut m, &opts);
    m
}

fn matrix_cfg(input_bytes: usize) -> SymConfig {
    SymConfig {
        input_bytes,
        pass_len_arg: true,
        collect_tests: true,
        ..Default::default()
    }
}

/// Satellite: every suite utility, at -O0 and -OVERIFY, verified with
/// 1/2/4/8 workers, must produce identical bug signatures, exhaustion
/// status and merged (sorted) test-case sets.
#[test]
fn determinism_matrix_over_whole_suite() {
    for u in overify_coreutils::suite() {
        for level in [OptLevel::O0, OptLevel::Overify] {
            let t0 = std::time::Instant::now();
            let m = build(u, level);
            let cfg = matrix_cfg(2);
            // One warm cache across the whole worker sweep: verdicts are a
            // function of the formula, so cached runs must stay
            // bit-identical to the cold baseline.
            let cache = Arc::new(SharedQueryCache::new());
            let base = verify_parallel_cached(&m, "umain", &cfg, WORKER_MATRIX[0], &cache);
            assert!(
                base.exhausted,
                "{}@{level}: 2-byte run should be exhaustive",
                u.name
            );
            for &w in &WORKER_MATRIX[1..] {
                let r = verify_parallel_cached(&m, "umain", &cfg, w, &cache);
                let tag = format!("{}@{level} workers={w}", u.name);
                assert_eq!(r.bug_signature(), base.bug_signature(), "{tag}: bugs");
                assert_eq!(r.exhausted, base.exhausted, "{tag}: exhaustion");
                assert_eq!(r.tests, base.tests, "{tag}: canonical test sets");
                assert_eq!(r.path_ids, base.path_ids, "{tag}: explored path sets");
            }
            eprintln!("{:<14} {level:<8} {:?}", u.name, t0.elapsed());
        }
    }
}

/// Acceptance: no symbolic path is ever explored by more than one worker
/// (the old static partitioner re-explored shared prefixes in every
/// worker). Checked on path-rich utilities where stealing really happens.
#[test]
fn no_path_explored_twice() {
    for name in ["rot13", "wc_words", "tr_upper"] {
        let u = overify_coreutils::utility(name).unwrap();
        for level in [OptLevel::O0, OptLevel::Overify] {
            let m = build(u, level);
            // No test collection here: this test only checks exploration
            // accounting, and 4-byte runs are the expensive ones.
            let mut cfg = matrix_cfg(4);
            cfg.collect_tests = false;
            for &w in &WORKER_MATRIX {
                let r = verify_parallel(&m, "umain", &cfg, w);
                assert_eq!(
                    r.max_path_multiplicity(),
                    1,
                    "{name}@{level} workers={w}: a path was explored twice \
                     (paths={}, donations={})",
                    r.total_paths(),
                    r.donations,
                );
                assert_eq!(
                    r.steals,
                    r.donations + 1,
                    "{name}@{level} workers={w}: processed jobs must be \
                     exactly the root job plus every donation",
                );
            }
        }
    }
}

/// The batch driver must agree with itself at any thread count — the CI
/// thread matrix runs this with `OVERIFY_THREADS` ∈ {1, 4, 8}.
#[test]
fn suite_driver_deterministic_across_thread_counts() {
    let cfg = matrix_cfg(2);
    let jobs = |path_workers: usize| -> Vec<SuiteJob> {
        ["echo", "cat_n", "wc_words", "rot13", "tr_upper", "wc_bytes"]
            .iter()
            .flat_map(|name| {
                let u = overify_coreutils::utility(name).unwrap();
                [OptLevel::O0, OptLevel::Overify].map(|l| {
                    let mut j = SuiteJob::utility(u, l, &[2, 3], &cfg);
                    j.path_workers = path_workers;
                    j
                })
            })
            .collect()
    };
    let serial = verify_suite(jobs(1), 1);
    let parallel = verify_suite(jobs(default_threads()), default_threads());
    assert_eq!(serial.jobs.len(), parallel.jobs.len());
    for (a, b) in serial.jobs.iter().zip(&parallel.jobs) {
        let tag = format!("{}@{}", a.name, a.level);
        assert_eq!(a.bug_signature(), b.bug_signature(), "{tag}: bugs");
        assert_eq!(a.exhausted(), b.exhausted(), "{tag}: exhaustion");
        assert!(b.max_path_multiplicity() <= 1, "{tag}: duplicated paths");
        for ((na, ra), (nb, rb)) in a.runs.iter().zip(&b.runs) {
            assert_eq!(na, nb);
            assert_eq!(ra.tests, rb.tests, "{tag}/{na}B: canonical test sets");
            assert_eq!(ra.path_ids, rb.path_ids, "{tag}/{na}B: path sets");
        }
    }
}

/// Bug-positive determinism: utilities seeded with real bugs must report
/// the same counterexample locations at every worker count.
#[test]
fn buggy_programs_keep_signatures_across_workers() {
    let src = r#"
        int umain(unsigned char *in, int n) {
            int tab[4];
            tab[0] = 1; tab[1] = 2; tab[2] = 3; tab[3] = 4;
            if (in[0] == 'd' && in[1] == 'i' && in[2] == 'v') {
                return 7 / (in[3] - in[3]);
            }
            if (in[0] > 'w') {
                return tab[in[1] & 7];
            }
            return tab[in[0] & 3];
        }
    "#;
    let m = overify::compile(src, &BuildOptions::level(OptLevel::Overify))
        .unwrap()
        .module;
    let cfg = matrix_cfg(4);
    let base = verify_parallel(&m, "umain", &cfg, 1);
    assert!(
        !base.bug_signature().is_empty(),
        "seeded bugs should be found"
    );
    for &w in &WORKER_MATRIX[1..] {
        let r = verify_parallel(&m, "umain", &cfg, w);
        assert_eq!(r.bug_signature(), base.bug_signature(), "workers={w}");
        assert_eq!(r.tests, base.tests, "workers={w}");
        assert_eq!(r.max_path_multiplicity(), 1, "workers={w}");
    }
}
