//! End-to-end tests of cross-process frontier sharding: a daemon
//! dispatching path-level subtree jobs to remote workers over real
//! localhost sockets, with the merged report's deterministic projection
//! asserted bit-identical to a plain in-process run.
//!
//! The "remote worker processes" here are `run_worker` fleets in their
//! own threads speaking the real TCP protocol — the same code path the
//! `overify_worker` binary runs; CI's `distributed-smoke` job repeats the
//! exercise with genuinely separate OS processes.

use overify::{prepare_job, OptLevel, SuiteJob, SuiteJobResult, SymConfig};
use overify_serve::{
    protocol, run_worker, start, Client, Event, JobSpec, Request, ServerConfig, ServerHandle,
    WorkerConfig,
};
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn start_storeless(executors: usize) -> ServerHandle {
    start(ServerConfig {
        port: 0,
        executors,
        store: None,
        progress_interval: Duration::from_millis(10),
        tail_interval: Duration::from_millis(50),
        max_connections: None,
        queue_capacity: None,
    })
    .expect("server binds an ephemeral port")
}

fn small_cfg() -> SymConfig {
    SymConfig {
        pass_len_arg: true,
        collect_tests: true,
        ..Default::default()
    }
}

/// A branchy job with enough paths (~4 decision points per input byte)
/// that the run lasts long enough for remote workers to attach, register
/// hunger, and be fed donated frontier states.
fn branchy_job(bytes: Vec<usize>, path_workers: usize) -> SuiteJob {
    SuiteJob {
        name: "branchy".into(),
        source: r#"
            int umain(unsigned char *in, int n) {
                int acc = 0;
                for (int i = 0; i < n; i++) {
                    if (in[i] > 'f') acc += 2;
                    else if (in[i] > 'c') acc += 1;
                    if (in[i] == 'x') acc *= 3;
                }
                if (in[0] == 'z' && n > 1 && in[1] == '!') {
                    int x = 0;
                    return 10 / x;
                }
                return acc;
            }
        "#
        .into(),
        entry: "umain".into(),
        opts: overify::BuildOptions::level(OptLevel::O0),
        bytes,
        cfg: small_cfg(),
        path_workers,
    }
}

/// Asserts two results agree on everything deterministic: per-run
/// canonical bytes (exhaustion, bugs, canonical tests, path set).
fn assert_canonically_equal(base: &SuiteJobResult, distributed: &SuiteJobResult) {
    assert_eq!(base.error, distributed.error);
    assert_eq!(base.runs.len(), distributed.runs.len());
    for ((bn, br), (dn, dr)) in base.runs.iter().zip(&distributed.runs) {
        assert_eq!(bn, dn, "swept sizes align");
        assert_eq!(
            br.canonical_bytes(),
            dr.canonical_bytes(),
            "deterministic projection must be byte-identical at {bn} input bytes"
        );
        assert_eq!(br.bugs, dr.bugs);
        assert_eq!(br.tests, dr.tests);
        assert_eq!(br.path_ids, dr.path_ids);
        assert_eq!(br.exhausted, dr.exhausted);
        assert_eq!(dr.max_path_multiplicity(), 1, "no duplicated paths");
    }
}

#[test]
fn daemon_with_two_remote_workers_is_byte_identical_to_in_process() {
    // Baseline: plain in-process run with 4 path workers.
    let baseline = prepare_job(&branchy_job(vec![5], 4), false)
        .expect("builds")
        .execute(None, None, None);
    assert!(baseline.exhausted(), "baseline covers the whole path space");
    assert!(
        !baseline.runs[0].1.bugs.is_empty(),
        "the planted bug exists"
    );

    // Daemon with one executor and two local path workers per run; two
    // remote worker fleets attach over TCP before the job is submitted.
    let server = start_storeless(1);
    let addr = server.addr();
    let workers: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                run_worker(&WorkerConfig {
                    idle_exit: Some(Duration::from_millis(600)),
                    ..WorkerConfig::at(addr)
                })
            })
        })
        .collect();

    let mut client = Client::connect(addr).expect("client connects");
    let spec = JobSpec::from_suite_job(&branchy_job(vec![5], 2));
    let result = client.submit(&spec).expect("job completes");
    assert_canonically_equal(&baseline, &result);

    // The remote workers genuinely participated.
    let stats = server.stats();
    assert!(
        stats.remote_leases >= 1,
        "no subtree job was ever leased remotely: {stats:?}"
    );
    let mut stolen = 0;
    for w in workers {
        stolen += w
            .join()
            .unwrap()
            .expect("worker fleet exits cleanly")
            .stolen;
    }
    assert!(stolen >= 1, "workers report zero steals");
    server.shutdown();
}

#[test]
fn worker_that_dies_mid_lease_does_not_lose_the_subtree() {
    let server = start_storeless(1);
    let addr = server.addr();

    // A protocol-level "evil" worker: attach, poll until granted a
    // lease, then vanish without JobDone — simulating a crashed worker
    // process holding a leased subtree.
    let evil = std::thread::spawn(move || -> bool {
        let stream = TcpStream::connect(addr).expect("connects");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        match protocol::decode_event(&protocol::read_frame(&mut reader).expect("hello")) {
            Ok(Event::Hello { version }) => assert_eq!(version, protocol::VERSION),
            other => panic!("expected Hello, got {other:?}"),
        }
        let mut request = |req: &Request| -> Event {
            protocol::write_frame(&mut writer, &protocol::encode_request(req)).expect("send");
            protocol::decode_event(&protocol::read_frame(&mut reader).expect("recv"))
                .expect("decode")
        };
        assert!(matches!(
            request(&Request::AttachWorker {
                name: "evil".into()
            }),
            Event::WorkerAttached { .. }
        ));
        let deadline = Instant::now() + Duration::from_secs(60);
        while Instant::now() < deadline {
            match request(&Request::StealJobs { max: 1 }) {
                Event::Leases { leases } if !leases.is_empty() => return true,
                Event::Leases { .. } => continue,
                other => panic!("expected Leases, got {other:?}"),
            }
        }
        false
        // Dropping reader/writer here closes the socket with the lease
        // still held.
    });

    // One local path worker: donations flow the moment the evil worker's
    // pending steal registers hunger, so the lease is taken early in a
    // multi-second run.
    let job = branchy_job(vec![5], 1);
    let baseline = prepare_job(&job, false)
        .expect("builds")
        .execute(None, None, None);
    let mut client = Client::connect(addr).expect("client connects");
    let result = client
        .submit(&JobSpec::from_suite_job(&job))
        .expect("job completes despite the dead worker");

    assert!(evil.join().unwrap(), "the evil worker was granted a lease");
    assert_canonically_equal(&baseline, &result);
    let stats = server.stats();
    assert!(
        stats.leases_recovered >= 1,
        "the orphaned lease was never recovered: {stats:?}"
    );
    server.shutdown();
}

#[test]
fn worker_against_idle_daemon_attaches_and_exits_on_idle() {
    let server = start_storeless(1);
    let addr = server.addr();
    let stats = run_worker(&WorkerConfig {
        idle_exit: Some(Duration::from_millis(120)),
        ..WorkerConfig::at(addr)
    })
    .expect("attach + idle exit");
    assert_eq!(stats.stolen, 0);
    server.shutdown();
}

#[test]
fn workers_share_store_hits_with_clients() {
    // A daemon with a store: the first distributed run persists its
    // report; a resubmission is answered from the store without
    // publishing any frontier (remote workers see nothing new to steal).
    let root = std::env::temp_dir().join(format!("overify_dist_store_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let server = start(ServerConfig {
        port: 0,
        executors: 1,
        store: Some(overify::StoreConfig::at(&root)),
        progress_interval: Duration::from_millis(10),
        tail_interval: Duration::from_millis(50),
        max_connections: None,
        queue_capacity: None,
    })
    .expect("server starts");
    let addr = server.addr();
    let worker = std::thread::spawn(move || {
        run_worker(&WorkerConfig {
            idle_exit: Some(Duration::from_millis(600)),
            ..WorkerConfig::at(addr)
        })
    });

    let job = branchy_job(vec![4], 1);
    let spec = JobSpec::from_suite_job(&job);
    let mut client = Client::connect(addr).expect("connects");
    let cold = client.submit(&spec).expect("cold run");
    assert!(!cold.from_store);
    let warm = client.submit(&spec).expect("warm run");
    assert!(warm.from_store, "second submission is a store hit");
    assert_eq!(cold.runs, warm.runs, "stored report verbatim");
    worker.join().unwrap().expect("worker exits");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// SocketAddr helper kept local so the test file stays self-contained.
#[allow(dead_code)]
fn localhost(port: u16) -> SocketAddr {
    SocketAddr::from(([127, 0, 0, 1], port))
}
