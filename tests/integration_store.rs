//! The persistent verification store, end to end.
//!
//! Acceptance (ISSUE 3): a second `verify_suite` run against a populated
//! store skips unchanged jobs via report-level hits and reproduces
//! byte-identical reports; corrupted/truncated logs load gracefully
//! (entries before the corruption survive); version-mismatch headers are
//! rejected cleanly; and bug *witnesses* (not just signatures) are
//! deterministic across worker counts, cache states and store round
//! trips.

use overify::{
    compile, coreutils_jobs, default_threads, verify_parallel, verify_parallel_cached,
    verify_suite_stored, BuildOptions, OptLevel, SharedQueryCache, Store, StoreConfig, SuiteJob,
    SymConfig,
};
use std::path::PathBuf;
use std::sync::Arc;

fn store_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("overify_itest_store_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn suite_cfg() -> SymConfig {
    SymConfig {
        pass_len_arg: true,
        collect_tests: true,
        ..Default::default()
    }
}

/// Satellite: persist → reload → re-verify yields byte-identical reports
/// across the whole coreutils suite × {O0, OVERIFY}.
#[test]
fn whole_suite_round_trip_is_byte_identical() {
    let root = store_dir("roundtrip");
    let jobs = || coreutils_jobs(&[OptLevel::O0, OptLevel::Overify], &[2], &suite_cfg());
    let total = jobs().len();

    let cold_store = Store::open(StoreConfig::at(&root)).unwrap();
    let cold = verify_suite_stored(jobs(), default_threads(), Some(&cold_store));
    assert_eq!(cold.store_hits(), 0, "first run is all misses");
    assert!(cold.jobs.iter().all(|j| j.error.is_none()));
    let cold_stats = cold.store.unwrap();
    assert_eq!(cold_stats.report_misses as usize, total);
    assert_eq!(cold_stats.reports_saved as usize, total);

    // A *fresh handle* on the same directory — everything flows through
    // disk, nothing through shared memory.
    let warm_store = Store::open(StoreConfig::at(&root)).unwrap();
    let warm = verify_suite_stored(jobs(), default_threads(), Some(&warm_store));
    assert_eq!(warm.store_hits(), total, "every unchanged job skips");
    let warm_stats = warm.store.unwrap();
    assert_eq!(warm_stats.report_hits as usize, total);
    assert_eq!(warm_stats.report_misses, 0);

    for (a, b) in cold.jobs.iter().zip(&warm.jobs) {
        let tag = format!("{}@{}", a.name, a.level);
        assert!(b.from_store, "{tag}: expected a store hit");
        assert_eq!(
            a.runs, b.runs,
            "{tag}: stored reports must be byte-identical"
        );
        assert_eq!(a.bug_signature(), b.bug_signature(), "{tag}: signatures");
    }

    let _ = std::fs::remove_dir_all(&root);
}

/// Changing the program *or* the configuration changes the content
/// address: no stale hits.
#[test]
fn changed_program_or_budget_misses() {
    let root = store_dir("invalidation");
    let job = |src: &str, bytes: usize| SuiteJob {
        name: "probe".into(),
        source: src.into(),
        entry: "umain".into(),
        opts: BuildOptions::level(OptLevel::Overify),
        bytes: vec![bytes],
        cfg: suite_cfg(),
        path_workers: 1,
    };
    let v1 = "int umain(unsigned char *in, int n) { return in[0] == 'a'; }";
    let v2 = "int umain(unsigned char *in, int n) { return in[0] == 'b'; }";

    let store = Store::open(StoreConfig::at(&root)).unwrap();
    let first = verify_suite_stored(vec![job(v1, 2)], 1, Some(&store));
    assert_eq!(first.store_hits(), 0);

    // Same source, same budget: hit. Edited source: miss. Same source,
    // different sweep: miss.
    let store2 = Store::open(StoreConfig::at(&root)).unwrap();
    let again = verify_suite_stored(vec![job(v1, 2), job(v2, 2), job(v1, 3)], 1, Some(&store2));
    let hits: Vec<bool> = again.jobs.iter().map(|j| j.from_store).collect();
    assert_eq!(hits, [true, false, false]);

    let _ = std::fs::remove_dir_all(&root);
}

/// Satellite: corrupted/truncated solver logs load gracefully — entries
/// before the damage survive, the run completes, and the next save
/// compacts the log back to health.
#[test]
fn damaged_solver_log_degrades_gracefully() {
    let root = store_dir("damage");
    let jobs = || {
        vec![SuiteJob {
            name: "twosym".into(),
            // Two-symbol conditions reach the SAT layer, so the shared
            // cache (and hence the log) is guaranteed to have entries.
            source: "int umain(unsigned char *in, int n) { \
                     if (in[0] + in[1] == 9) return 1; \
                     if (in[0] * 3 == in[1]) return 2; return 0; }"
                .into(),
            entry: "umain".into(),
            opts: BuildOptions::level(OptLevel::O0),
            bytes: vec![2],
            cfg: suite_cfg(),
            path_workers: 1,
        }]
    };
    let store = Store::open(StoreConfig::at(&root)).unwrap();
    let cold = verify_suite_stored(jobs(), 1, Some(&store));
    let saved = cold.store.unwrap().solver_entries_saved;
    assert!(saved > 0, "SAT-layer verdicts must persist");

    // Tear the tail off the log (simulated crash mid-append).
    let log = root.join("solver.log");
    let bytes = std::fs::read(&log).unwrap();
    std::fs::write(&log, &bytes[..bytes.len() - 3]).unwrap();

    let store2 = Store::open(StoreConfig::at(&root)).unwrap();
    let recovered = verify_suite_stored(jobs(), 1, Some(&store2));
    let stats = recovered.store.unwrap();
    assert!(stats.log_bytes_dropped > 0, "damage detected");
    assert!(
        stats.solver_entries_loaded >= saved.saturating_sub(1)
            && stats.solver_entries_loaded < saved,
        "all but the torn record survive (loaded {} of {saved})",
        stats.solver_entries_loaded,
    );
    // The report layer is independent of the log damage: still a hit,
    // still byte-identical.
    assert_eq!(recovered.store_hits(), 1);
    assert_eq!(cold.jobs[0].runs, recovered.jobs[0].runs);

    // The save pass compacted the log: a third handle loads it cleanly.
    let store3 = Store::open(StoreConfig::at(&root)).unwrap();
    let clean = verify_suite_stored(jobs(), 1, Some(&store3));
    assert_eq!(
        clean.store.unwrap().log_bytes_dropped,
        0,
        "log was compacted"
    );

    let _ = std::fs::remove_dir_all(&root);
}

/// Satellite: a log with a future (or past) format version is rejected
/// cleanly — nothing partially applied, the sweep still runs, and the
/// stale file is rewritten at the current version.
#[test]
fn stale_log_version_is_rejected_then_rewritten() {
    let root = store_dir("version");
    std::fs::create_dir_all(&root).unwrap();
    let log = root.join("solver.log");
    let mut bogus = Vec::new();
    bogus.extend_from_slice(overify_store::log::MAGIC);
    bogus.extend_from_slice(&(overify_store::log::VERSION + 7).to_le_bytes());
    bogus.extend_from_slice(b"whatever follows must never be parsed");
    std::fs::write(&log, &bogus).unwrap();

    let jobs = || {
        vec![SuiteJob {
            name: "twosym".into(),
            source: "int umain(unsigned char *in, int n) { \
                     if (in[0] + in[1] == 4) return 1; return 0; }"
                .into(),
            entry: "umain".into(),
            opts: BuildOptions::level(OptLevel::O0),
            bytes: vec![2],
            cfg: suite_cfg(),
            path_workers: 1,
        }]
    };
    let store = Store::open(StoreConfig::at(&root)).unwrap();
    let r = verify_suite_stored(jobs(), 1, Some(&store));
    assert!(r.jobs[0].error.is_none());
    let stats = r.store.unwrap();
    assert_eq!(
        stats.solver_entries_loaded, 0,
        "stale log contributes nothing"
    );
    assert!(stats.solver_entries_saved > 0, "rewritten wholesale");

    // The rewrite produced a current-version log a fresh handle can read.
    let store2 = Store::open(StoreConfig::at(&root)).unwrap();
    let warm = store2.warm_solver_cache();
    assert!(!warm.is_empty());

    let _ = std::fs::remove_dir_all(&root);
}

/// Content addressing requires byte-stable compilation: recompiling the
/// same source at the same level must reproduce the exact module
/// fingerprint (this is the regression test for the `Loop::blocks`
/// iteration-order nondeterminism the store surfaced — LICM used to hoist
/// in `HashSet` order).
#[test]
fn module_fingerprints_are_stable_across_recompiles() {
    for u in overify_coreutils::suite() {
        for level in [OptLevel::O0, OptLevel::O3, OptLevel::Overify] {
            let opts = BuildOptions::level(level);
            let build = || {
                let mut m = overify_coreutils::compile_utility(u, opts.resolved_libc())
                    .unwrap_or_else(|e| panic!("{} fails to build: {e}", u.name));
                overify::compile_module(&mut m, &opts);
                overify::module_fingerprint(&m)
            };
            let base = build();
            for trial in 0..3 {
                assert_eq!(build(), base, "{}@{level} trial {trial}", u.name);
            }
        }
    }
}

/// Satellite: merged bug *witness inputs* — not just signatures — are
/// identical across worker counts and solver-cache states (the lexmin
/// constraint-slicing minimizer, shared with test-case emission).
#[test]
fn bug_witnesses_are_canonical_across_workers_and_caches() {
    let src = r#"
        int umain(unsigned char *in, int n) {
            int tab[4];
            tab[0] = 1; tab[1] = 2; tab[2] = 3; tab[3] = 4;
            if (in[0] > 'p' && in[1] > 'x') {
                return 7 / (in[2] - in[2]);
            }
            if (in[0] == 'Z') {
                return tab[in[1] & 7];
            }
            return tab[in[0] & 3];
        }
    "#;
    let m = compile(src, &BuildOptions::level(OptLevel::Overify))
        .unwrap()
        .module;
    let cfg = SymConfig {
        input_bytes: 3,
        pass_len_arg: true,
        ..Default::default()
    };
    let base = verify_parallel(&m, "umain", &cfg, 1);
    assert!(!base.bugs.is_empty(), "seeded bugs should be found");
    // Witnesses are lexmin: no byte can be anything but the smallest
    // value reaching the bug ('q', 'y' for the division).
    for w in [2, 4] {
        let r = verify_parallel(&m, "umain", &cfg, w);
        assert_eq!(r.bugs, base.bugs, "workers={w}: witness bytes drifted");
    }
    // A warm shared cache changes which models the solver *returns*, but
    // must not change the canonical witnesses.
    let cache = Arc::new(SharedQueryCache::new());
    let first = verify_parallel_cached(&m, "umain", &cfg, 2, &cache);
    assert_eq!(first.bugs, base.bugs, "cold shared cache");
    let rewarm = verify_parallel_cached(&m, "umain", &cfg, 2, &cache);
    assert_eq!(rewarm.bugs, base.bugs, "warm shared cache");
}
