//! Seeded chaos sweep over the store fabric: random worker kills plus a
//! daemon restart mid-sweep, all over one shared store. Whatever the
//! failure schedule, the surviving fabric must converge on the exact
//! same bytes a quiet in-process run produces — and the second daemon
//! must answer from what the first one persisted instead of re-deriving
//! it.
//!
//! The kill schedule derives from `OVERIFY_CHAOS_SEED` (default 1), so a
//! failure reproduces by exporting the seed CI printed. CI's
//! `chaos-smoke` job runs a small fixed seed matrix.

use overify::{prepare_job, OptLevel, StoreConfig, SuiteJob, SuiteJobResult, SymConfig};
use overify_serve::{
    protocol, run_worker, start, Client, Event, JobSpec, Request, ServerConfig, ServerHandle,
    WorkerConfig,
};
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn seed() -> u64 {
    std::env::var("OVERIFY_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// xorshift64*: tiny, deterministic, and plenty for a kill schedule.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

fn start_daemon(root: &std::path::Path) -> ServerHandle {
    start(ServerConfig {
        port: 0,
        executors: 2,
        store: Some(StoreConfig::at(root)),
        progress_interval: Duration::from_millis(10),
        tail_interval: Duration::from_millis(25),
        max_connections: None,
        queue_capacity: None,
    })
    .expect("server binds an ephemeral port")
}

fn chaos_job(name: &str, bytes: Vec<usize>) -> SuiteJob {
    SuiteJob {
        name: name.into(),
        // Single-byte comparisons for branchiness (donatable subtrees)
        // plus ONE two-byte coupling the enumeration fast path cannot
        // decide, so completed runs leave real SAT verdicts in the
        // store's solver log. One coupling only: chaining every adjacent
        // pair couples the whole input into a single constraint
        // component and blows the debug-build runtime through the roof.
        source: r#"
            int umain(unsigned char *in, int n) {
                int acc = 0;
                for (int i = 0; i < n; i++) {
                    if (in[i] > 'f') acc += 2;
                    else if (in[i] > 'c') acc += 1;
                    if (in[i] == 'x') acc *= 3;
                }
                if (n > 1 && (unsigned char)(in[0] + in[1]) > 200) acc += 5;
                if (in[0] == 'z' && n > 1 && in[1] == '!') {
                    int x = 0;
                    return 10 / x;
                }
                return acc;
            }
        "#
        .into(),
        entry: "umain".into(),
        opts: overify::BuildOptions::level(OptLevel::O0),
        bytes,
        cfg: SymConfig {
            pass_len_arg: true,
            collect_tests: true,
            ..Default::default()
        },
        path_workers: 2,
    }
}

fn assert_canonically_equal(base: &SuiteJobResult, other: &SuiteJobResult) {
    assert_eq!(base.error, other.error, "{}", base.name);
    assert_eq!(base.runs.len(), other.runs.len(), "{}", base.name);
    for ((bn, br), (on, or)) in base.runs.iter().zip(&other.runs) {
        assert_eq!(bn, on);
        assert_eq!(
            br.canonical_bytes(),
            or.canonical_bytes(),
            "{}: deterministic projection must be byte-identical at {bn} input bytes",
            base.name
        );
    }
}

/// One "doomed" worker: attaches over the real protocol, polls until it
/// is granted a lease, holds it for an rng-chosen beat, then vanishes
/// without completing — a worker crash with a subtree in hand. Returns
/// whether it ever held a lease.
fn doomed_worker(addr: SocketAddr, hold: Duration, give_up: Instant) -> bool {
    let Ok(stream) = TcpStream::connect(addr) else {
        return false;
    };
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = BufWriter::new(stream);
    match protocol::decode_event(&protocol::read_frame(&mut reader).expect("hello")) {
        Ok(Event::Hello { version }) => assert_eq!(version, protocol::VERSION),
        other => panic!("expected Hello, got {other:?}"),
    }
    let mut request = |req: &Request| -> Option<Event> {
        protocol::write_frame(&mut writer, &protocol::encode_request(req)).ok()?;
        protocol::decode_event(&protocol::read_frame(&mut reader).ok()?).ok()
    };
    match request(&Request::AttachWorker {
        name: "doomed".into(),
    }) {
        Some(Event::WorkerAttached { .. }) => {}
        other => panic!("expected WorkerAttached, got {other:?}"),
    }
    while Instant::now() < give_up {
        match request(&Request::StealJobs { max: 1 }) {
            Some(Event::Leases { leases }) if !leases.is_empty() => {
                std::thread::sleep(hold);
                return true; // drop the socket with the lease held
            }
            Some(Event::Leases { .. }) => continue,
            _ => return false, // daemon shut down first
        }
    }
    false
}

#[test]
fn fabric_survives_worker_kills_and_a_daemon_restart_mid_sweep() {
    let seed = seed();
    println!("chaos seed: {seed} (reproduce with OVERIFY_CHAOS_SEED={seed})");
    let mut rng = Rng::new(seed);
    let root = std::env::temp_dir().join(format!("overify_chaos_{}_{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // Quiet baselines, fully in-process: the bytes everything below must
    // reproduce regardless of the failure schedule.
    let jobs = [
        chaos_job("chaos_a", vec![4]),
        chaos_job("chaos_b", vec![5]),
        chaos_job("chaos_c", vec![3, 4]),
    ];
    let baselines: Vec<SuiteJobResult> = jobs
        .iter()
        .map(|j| {
            prepare_job(j, false)
                .expect("builds")
                .execute(None, None, None)
        })
        .collect();

    // Phase 1: daemon A with chaos around it — two doomed workers that
    // steal and vanish on an rng schedule, one legitimate worker fleet,
    // and a shutdown fired mid-sweep from another thread.
    let daemon_a = start_daemon(&root);
    let addr_a = daemon_a.addr();
    let give_up = Instant::now() + Duration::from_secs(60);
    let doomed: Vec<_> = (0..2)
        .map(|_| {
            let hold = Duration::from_millis(rng.below(30));
            std::thread::spawn(move || doomed_worker(addr_a, hold, give_up))
        })
        .collect();
    let legit = std::thread::spawn(move || {
        run_worker(&WorkerConfig {
            idle_exit: Some(Duration::from_millis(800)),
            ..WorkerConfig::at(addr_a)
        })
    });

    // First job synchronously (guarantees the store learns something),
    // the rest racing the shutdown below.
    let mut client_a = Client::connect(addr_a).expect("connects to A");
    let first = client_a
        .submit(&JobSpec::from_suite_job(&jobs[0]))
        .expect("first job completes on A");
    assert!(first.error.is_none(), "{:?}", first.error);
    assert_canonically_equal(&baselines[0], &first);

    let racers: Vec<_> = jobs[1..]
        .iter()
        .map(|job| {
            let spec = JobSpec::from_suite_job(job);
            std::thread::spawn(move || {
                Client::connect(addr_a)
                    .and_then(|mut c| c.submit(&spec))
                    .ok()
            })
        })
        .collect();

    // Let the racers get partway in, then yank the daemon mid-sweep.
    std::thread::sleep(Duration::from_millis(rng.below(400)));
    for d in doomed {
        assert!(
            d.join().unwrap(),
            "a doomed worker never got a lease to abandon (seed {seed})"
        );
    }
    let stats_a = daemon_a.stats();
    assert!(
        stats_a.leases_recovered >= 1,
        "no abandoned lease was recovered (seed {seed}): {stats_a:?}"
    );
    daemon_a.shutdown();
    let _ = legit.join().unwrap();

    // Jobs the shutdown caught in the queue come back with an explicit
    // abort error (never a hang, never wrong bytes); completed ones must
    // already be byte-identical.
    let mut survived = vec![true];
    for (job_ix, racer) in racers.into_iter().enumerate() {
        let ix = job_ix + 1;
        match racer.join().unwrap() {
            Some(result) if result.error.is_none() => {
                assert_canonically_equal(&baselines[ix], &result);
                survived.push(true);
            }
            Some(result) => {
                let msg = result.error.unwrap();
                assert!(
                    msg.contains("shutting down"),
                    "unexpected abort error: {msg}"
                );
                survived.push(false);
            }
            None => survived.push(false), // connection died with the daemon
        }
    }

    // Phase 2: daemon B over the same store. Everything daemon A
    // completed must be answered from the store — zero re-derivation —
    // and everything it dropped must complete now, byte-identical.
    let daemon_b = start_daemon(&root);
    let mut client_b = Client::connect(daemon_b.addr()).expect("connects to B");
    for (ix, job) in jobs.iter().enumerate() {
        let result = client_b
            .submit(&JobSpec::from_suite_job(job))
            .expect("completes on B");
        assert!(result.error.is_none(), "{:?}", result.error);
        assert_canonically_equal(&baselines[ix], &result);
        if survived[ix] {
            assert!(
                result.from_store,
                "{}: daemon B re-derived a report daemon A already persisted (seed {seed})",
                job.name
            );
        }
    }
    let stats_b = daemon_b.stats();
    assert!(
        stats_b.answered_from_store >= survived.iter().filter(|&&s| s).count() as u64,
        "warm counters disprove store reuse (seed {seed}): {stats_b:?}"
    );
    assert!(
        stats_b.store.solver_entries_loaded >= 1,
        "daemon B booted cold off a store daemon A wrote (seed {seed}): {stats_b:?}"
    );
    daemon_b.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
