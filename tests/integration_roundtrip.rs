//! Textual-IR roundtrip over the whole workload matrix: every coreutils
//! module, after each of the five pipeline levels, must survive
//! `print → parse → verify → print` with a byte-identical second print.
//!
//! This is the suite-level companion of `crates/ir/tests/prop_roundtrip`:
//! the property test covers random small functions; this covers every
//! construct the real pipeline emits (globals, annotations, multi-function
//! linkage, all five optimization levels).

use overify::{compile_module, BuildOptions, OptLevel};
use overify_ir::{parse_module, print::print_module, verify_module};

#[test]
fn print_parse_verify_roundtrip_every_utility_every_level() {
    for u in overify_coreutils::suite() {
        for level in OptLevel::all() {
            let opts = BuildOptions::level(level);
            let mut m = overify_coreutils::compile_utility(u, opts.resolved_libc())
                .unwrap_or_else(|e| panic!("{} fails to build: {e}", u.name));
            compile_module(&mut m, &opts);

            let tag = format!("{}@{level}", u.name);
            // One print→parse pass normalizes value numbering (the parser
            // assigns dense ids); from then on the textual form must be an
            // exact fixpoint.
            let raw = print_module(&m);
            let normalized =
                parse_module(&raw).unwrap_or_else(|e| panic!("{tag}: parse failed: {e}"));
            let first = print_module(&normalized);
            let reparsed =
                parse_module(&first).unwrap_or_else(|e| panic!("{tag}: re-parse failed: {e}"));
            verify_module(&reparsed)
                .unwrap_or_else(|e| panic!("{tag}: reparsed module malformed: {e}"));
            let second = print_module(&reparsed);
            if first != second {
                let diff = first
                    .lines()
                    .zip(second.lines())
                    .enumerate()
                    .find(|(_, (a, b))| a != b);
                panic!(
                    "{tag}: second print is not byte-identical to the first; \
                     first difference: {diff:?} (len {} vs {})",
                    first.len(),
                    second.len()
                );
            }
        }
    }
}

/// The reparsed module is not just well-formed but behaviourally the same
/// program: spot-check by verifying it symbolically and comparing bug
/// signatures and path counts against the original.
#[test]
fn reparsed_modules_verify_identically() {
    use overify::{verify_parallel, SymConfig};
    let cfg = SymConfig {
        input_bytes: 2,
        pass_len_arg: true,
        collect_tests: true,
        ..Default::default()
    };
    for name in ["wc_words", "rot13", "cat_n"] {
        let u = overify_coreutils::utility(name).unwrap();
        for level in [OptLevel::O0, OptLevel::Overify] {
            let opts = BuildOptions::level(level);
            let mut m = overify_coreutils::compile_utility(u, opts.resolved_libc()).unwrap();
            compile_module(&mut m, &opts);
            let reparsed = parse_module(&print_module(&m)).unwrap();

            let a = verify_parallel(&m, "umain", &cfg, 2);
            let b = verify_parallel(&reparsed, "umain", &cfg, 2);
            let tag = format!("{name}@{level}");
            assert_eq!(a.bug_signature(), b.bug_signature(), "{tag}");
            assert_eq!(a.total_paths(), b.total_paths(), "{tag}");
            assert_eq!(a.tests, b.tests, "{tag}");
        }
    }
}
