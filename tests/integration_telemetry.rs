//! End-to-end tests of the fleet telemetry plane: workers upstreaming
//! metrics deltas over `MetricsPush`, the daemon's per-worker tables and
//! fleet rollup, ring-derived health gauges, and the per-run resource
//! ledgers that ride every `Report`.
//!
//! The worker fleets here run in-process (threads speaking real TCP), so
//! worker pushes re-upload slices of the *same* registry the daemon
//! samples — the rollup legitimately double-counts in this arrangement.
//! These tests therefore assert structure (rollup lines, labeled series,
//! parse round-trip, ledger-vs-report sums); exact cross-process counter
//! reconciliation is CI's `fleet-metrics-smoke` job, where daemon and
//! workers are separate OS processes.

use overify::{OptLevel, Store, SuiteJob, SymConfig};
use overify_obs::metrics::Sample;
use overify_serve::{
    protocol, run_worker, start, Client, Event, JobSpec, MetricsScope, Request, ServerConfig,
    ServerHandle, WorkerConfig,
};
use std::io::{BufReader, BufWriter};
use std::net::TcpStream;
use std::time::Duration;

fn start_storeless(executors: usize) -> ServerHandle {
    start(ServerConfig {
        port: 0,
        executors,
        store: None,
        progress_interval: Duration::from_millis(10),
        tail_interval: Duration::from_millis(50),
        max_connections: None,
        queue_capacity: None,
    })
    .expect("server binds an ephemeral port")
}

fn branchy_job(bytes: Vec<usize>, path_workers: usize) -> SuiteJob {
    SuiteJob {
        name: "branchy".into(),
        source: r#"
            int umain(unsigned char *in, int n) {
                int acc = 0;
                for (int i = 0; i < n; i++) {
                    if (in[i] > 'f') acc += 2;
                    else if (in[i] > 'c') acc += 1;
                    if (in[i] == 'x') acc *= 3;
                }
                return acc;
            }
        "#
        .into(),
        entry: "umain".into(),
        opts: overify::BuildOptions::level(OptLevel::O0),
        bytes,
        cfg: SymConfig {
            pass_len_arg: true,
            collect_tests: true,
            ..Default::default()
        },
        path_workers,
    }
}

#[test]
fn fleet_scrape_carries_worker_tables_health_and_ledgers() {
    // Fast push cadence so idle-loop pushes land inside the test window;
    // the exit push alone would also do.
    std::env::set_var("OVERIFY_METRICS_PUSH_MS", "25");
    let server = start_storeless(1);
    let addr = server.addr();
    let worker = std::thread::spawn(move || {
        run_worker(&WorkerConfig {
            idle_exit: Some(Duration::from_millis(600)),
            name: "telemetry-w1".into(),
            ..WorkerConfig::at(addr)
        })
    });

    let mut client = Client::connect(addr).expect("client connects");
    let result = client
        .submit(&JobSpec::from_suite_job(&branchy_job(vec![4], 2)))
        .expect("job completes");

    // The per-run resource ledger rides the report and sums exactly what
    // the report itself says was done.
    let ledger = result.ledger.as_ref().expect("fresh run carries a ledger");
    assert_eq!(ledger.name, "branchy");
    assert!(!ledger.from_store);
    assert_eq!(ledger.runs, result.runs.len() as u64);
    assert_eq!(
        ledger.paths,
        result
            .runs
            .iter()
            .map(|(_, r)| r.total_paths())
            .sum::<u64>()
    );
    assert_eq!(
        ledger.sat_solves,
        result
            .runs
            .iter()
            .map(|(_, r)| r.solver.solved_sat)
            .sum::<u64>()
    );
    assert_eq!(
        ledger.solver_queries,
        result
            .runs
            .iter()
            .map(|(_, r)| r.solver.queries)
            .sum::<u64>()
    );
    assert_eq!(
        ledger.bytes_moved,
        result
            .runs
            .iter()
            .map(|(_, r)| r.canonical_bytes().len() as u64)
            .sum::<u64>()
    );
    assert!(ledger.verify_ns > 0, "wall time is charged");
    let mut sorted = ledger.workers.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(ledger.workers, sorted, "contributors are sorted and unique");

    // Let the worker fleet reach its idle exit: the final MetricsPush
    // lands before run_worker returns, so after join the daemon's fleet
    // table for "telemetry-w1" is populated.
    worker.join().unwrap().expect("worker exits cleanly");

    let (text, _slow) = client
        .metrics(MetricsScope::Fleet)
        .expect("fleet metrics snapshot");
    // Rollup lines (unlabeled), per-worker labeled series, ring-derived
    // series and health gauges all share the one exposition document.
    assert!(
        text.contains("\noverify_executor_paths_total "),
        "rollup line missing:\n{text}"
    );
    assert!(
        text.contains("{worker=\"telemetry-w1\"}"),
        "per-worker labeled series missing:\n{text}"
    );
    assert!(text.contains("overify_health_queue_saturation_milli"));
    assert!(text.contains("overify_health_reap_rate_milli"));
    assert!(text.contains("overify_health_tail_lag_ms"));

    // The scrape parses back: labeled series are skipped by design, so
    // what parse() yields is exactly the fleet rollup.
    let parsed = overify_obs::metrics::parse(&text);
    assert!(!parsed.is_empty());
    let paths = parsed
        .iter()
        .find(|(n, _)| n == "overify_executor_paths_total")
        .expect("rollup parses");
    assert!(
        matches!(paths.1, Sample::Counter(n) if n > 0),
        "paths rollup counts the run"
    );

    // Worker scope serves the one pushed table, unlabeled; an unknown
    // name is an empty document, not an error.
    let (wtext, _) = client
        .metrics(MetricsScope::Worker("telemetry-w1".into()))
        .expect("worker metrics snapshot");
    assert!(
        wtext.contains("overify_"),
        "worker table is empty:\n{wtext}"
    );
    assert!(!wtext.contains("{worker="), "worker scope is unlabeled");
    let (missing, _) = client
        .metrics(MetricsScope::Worker("no-such-worker".into()))
        .expect("unknown worker scrapes");
    assert!(missing.is_empty());

    server.shutdown();
}

#[test]
fn store_hit_ledgers_charge_no_execution_and_persist() {
    let root = std::env::temp_dir().join(format!("overify_telemetry_store_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let server = start(ServerConfig {
        port: 0,
        executors: 1,
        store: Some(overify::StoreConfig::at(&root)),
        progress_interval: Duration::from_millis(10),
        tail_interval: Duration::from_millis(50),
        max_connections: None,
        queue_capacity: None,
    })
    .expect("server starts");
    let spec = JobSpec::from_suite_job(&branchy_job(vec![3], 1));
    let mut client = Client::connect(server.addr()).expect("connects");

    let cold = client.submit(&spec).expect("cold run");
    let cold_ledger = cold.ledger.as_ref().expect("cold ledger");
    assert!(!cold_ledger.from_store);

    let warm = client.submit(&spec).expect("warm run");
    assert!(warm.from_store);
    let warm_ledger = warm.ledger.as_ref().expect("warm ledger");
    assert!(warm_ledger.from_store);
    // Nothing executed: the solver/path columns are zero; only the bytes
    // that moved out of the store are charged.
    assert_eq!(warm_ledger.verify_ns, 0);
    assert_eq!(warm_ledger.solver_ns, 0);
    assert_eq!(warm_ledger.paths, 0);
    assert_eq!(warm_ledger.sat_solves, 0);
    assert_eq!(warm_ledger.runs, cold_ledger.runs);
    assert_eq!(warm_ledger.bytes_moved, cold_ledger.bytes_moved);

    server.shutdown();

    // Only fresh runs are persisted to the ledger log (a hit costs the
    // fleet nothing), and what is persisted matches what was reported.
    let store = Store::open(overify::StoreConfig::at(&root)).expect("store reopens");
    let ledgers = store.load_ledgers();
    assert_eq!(ledgers.len(), 1, "one fresh run was recorded");
    assert_eq!(&ledgers[0], cold_ledger);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn metrics_push_without_attachment_drops_the_connection() {
    let server = start_storeless(1);
    let stream = TcpStream::connect(server.addr()).expect("connects");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = BufWriter::new(stream);
    match protocol::decode_event(&protocol::read_frame(&mut reader).expect("hello")) {
        Ok(Event::Hello { version }) => assert_eq!(version, protocol::VERSION),
        other => panic!("expected Hello, got {other:?}"),
    }
    protocol::write_frame(
        &mut writer,
        &protocol::encode_request(&Request::MetricsPush {
            text: "overify_bogus_total 1\n".into(),
            slow: Vec::new(),
        }),
    )
    .expect("frame sends");
    use std::io::Write as _;
    writer.flush().expect("flush");
    // A push from a connection that never attached as a worker is a
    // protocol violation: the server hangs up instead of answering.
    assert!(
        protocol::read_frame(&mut reader).is_err(),
        "unattached MetricsPush must not be acknowledged"
    );
    server.shutdown();
}
