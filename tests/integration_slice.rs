//! Function-grained incremental re-verification, end to end.
//!
//! Acceptance (ISSUE 6): the function slice is the unit of verification
//! identity. Slice fingerprints must be bit-identical across recompiles,
//! optimization levels and *processes* (they content-address persistent
//! artifacts shared between machines); editing one function in a
//! warm-store suite must re-execute exactly that function's slice while
//! every untouched slice splices in from the store; and the spliced
//! report must equal a cold full run byte-for-byte at any worker count
//! (the CI thread matrix runs this with `OVERIFY_THREADS` ∈ {1, 4, 8}).

use overify::{
    compile, default_threads, slice_fingerprints, verify_suite_stored, BuildOptions, OptLevel,
    Store, StoreConfig, SuiteJob, SymConfig,
};
use std::path::PathBuf;

fn store_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("overify_itest_slice_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn suite_cfg() -> SymConfig {
    SymConfig {
        pass_len_arg: true,
        collect_tests: true,
        ..Default::default()
    }
}

/// Every function's slice fingerprint of every suite utility at every
/// level, as stable text lines — the comparison currency of the
/// in-process and cross-process stability checks below.
fn fingerprint_table() -> Vec<String> {
    let mut lines = Vec::new();
    for u in overify::coreutils_suite() {
        for level in OptLevel::all() {
            let prog = compile(u.source, &BuildOptions::level(level)).expect(u.name);
            for (func, fp) in slice_fingerprints(&prog.module) {
                lines.push(format!("SLICEFP {} {} {} {:032x}", u.name, level, func, fp));
            }
        }
    }
    lines
}

/// Recompiling the whole suite matrix must reproduce every slice
/// fingerprint bit-for-bit — the fingerprint is a pure function of the
/// slice, never of allocation order, hash-map iteration or wall clock.
#[test]
fn slice_fingerprints_stable_across_recompiles() {
    let first = fingerprint_table();
    assert!(!first.is_empty());
    let second = fingerprint_table();
    assert_eq!(first, second, "recompile changed a slice fingerprint");
}

/// Child half of the cross-process check: when the parent re-runs this
/// test binary with `OVERIFY_SLICE_FP_CHILD=1`, dump the table and exit.
/// (Without the variable this test is an instant no-op.)
#[test]
fn child_dump_slice_fingerprints() {
    if std::env::var("OVERIFY_SLICE_FP_CHILD").is_err() {
        return;
    }
    for line in fingerprint_table() {
        println!("{line}");
    }
}

/// Slice fingerprints content-address artifacts shared across machines
/// and daemon restarts, so two *processes* compiling the same suite must
/// agree on every single one. The second process is this same test
/// binary re-run against the child dump test above.
#[test]
fn slice_fingerprints_stable_across_processes() {
    let ours = fingerprint_table();
    let exe = std::env::current_exe().expect("test binary path");
    let out = std::process::Command::new(exe)
        .args(["--exact", "child_dump_slice_fingerprints", "--nocapture"])
        .env("OVERIFY_SLICE_FP_CHILD", "1")
        .output()
        .expect("spawn child process");
    assert!(out.status.success(), "child process failed: {out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf8 child output");
    // The libtest harness glues its own "test ... " prefix onto the first
    // printed line, so slice each line from the marker instead of
    // requiring it at column zero.
    let theirs: Vec<&str> = stdout
        .lines()
        .filter_map(|l| l.find("SLICEFP ").map(|i| &l[i..]))
        .collect();
    assert_eq!(
        ours.len(),
        theirs.len(),
        "child computed a different number of fingerprints"
    );
    for (a, b) in ours.iter().zip(&theirs) {
        assert_eq!(a, b, "slice fingerprint differs across processes");
    }
}

/// A four-function program verified through two entries, so one source
/// edit can land inside exactly one entry's dependency slice.
fn two_entry_jobs(other_body: &str, path_workers: usize) -> Vec<SuiteJob> {
    let source = format!(
        "int work(unsigned char *in, int n) {{ if (in[0] == 'a') return 1; return 0; }}\n\
         int other(unsigned char *in, int n) {{ {other_body} }}\n\
         int umain(unsigned char *in, int n) {{ return work(in, n); }}\n\
         int umain2(unsigned char *in, int n) {{ return other(in, n); }}\n"
    );
    ["umain", "umain2"]
        .iter()
        .map(|entry| SuiteJob {
            name: format!("touch_{entry}"),
            source: source.clone(),
            entry: entry.to_string(),
            opts: BuildOptions::level(OptLevel::O0),
            bytes: vec![2],
            cfg: suite_cfg(),
            path_workers,
        })
        .collect()
}

/// The acceptance scenario: warm a store, edit **one** function, re-sweep.
/// Exactly the changed function's slice re-executes (store counters prove
/// it); every untouched slice splices in from the store; and the spliced
/// report is byte-identical to a cold full run — at the ambient worker
/// count, so the CI thread matrix pins splice-vs-full determinism too.
#[test]
fn touching_one_function_reexecutes_exactly_that_slice() {
    let root = store_dir("touch_one");
    let workers = default_threads();
    let v1 = "if (in[0] == 'b') return 1; return 0;";
    let v2 = "if (in[0] == 'c') return 2; return 0;";

    // Cold sweep of v1: both entries execute and persist both grains.
    let store = Store::open(StoreConfig::at(&root)).unwrap();
    let cold = verify_suite_stored(two_entry_jobs(v1, workers), 2, Some(&store));
    assert_eq!(cold.store_hits(), 0);
    let stats = cold.store.as_ref().unwrap();
    assert_eq!(stats.reports_saved, 2);
    assert_eq!(stats.slices_saved, 2);

    // Edit one function (`other`, reachable only from umain2) and
    // re-sweep: the module fingerprint moves for *both* jobs, but only
    // umain2's slice fingerprint does.
    let store2 = Store::open(StoreConfig::at(&root)).unwrap();
    let warm = verify_suite_stored(two_entry_jobs(v2, workers), 2, Some(&store2));
    let by_name = |name: &str| {
        warm.jobs
            .iter()
            .find(|j| j.name == name)
            .unwrap_or_else(|| panic!("{name} missing"))
    };
    let untouched = by_name("touch_umain");
    let touched = by_name("touch_umain2");
    assert!(
        untouched.from_store && untouched.from_slice,
        "the untouched entry must splice from the slice store"
    );
    assert!(
        !touched.from_store,
        "the touched entry must re-execute, not replay a stale verdict"
    );
    assert_eq!(warm.store_hits(), 1);
    assert_eq!(warm.splice_hits(), 1);
    let wstats = warm.store.as_ref().unwrap();
    assert_eq!(wstats.report_hits, 0, "the whole module changed");
    assert_eq!(wstats.report_misses, 2);
    assert_eq!(wstats.splice_hits, 1, "exactly one slice answered");
    assert_eq!(wstats.splice_misses, 1, "exactly one slice re-executed");
    assert_eq!(wstats.reports_saved, 1);
    assert_eq!(wstats.slices_saved, 1);

    // Byte-identity: the warm (spliced + one executed) sweep must equal a
    // cold full run of the edited program, report for report.
    let fresh = verify_suite_stored(two_entry_jobs(v2, workers), 2, None);
    for (a, b) in warm.jobs.iter().zip(&fresh.jobs) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.runs.len(), b.runs.len());
        for ((na, ra), (nb, rb)) in a.runs.iter().zip(&b.runs) {
            assert_eq!(na, nb);
            assert_eq!(
                ra.canonical_bytes(),
                rb.canonical_bytes(),
                "{}: spliced sweep must match a cold full run byte-for-byte",
                a.name
            );
        }
    }
    let _ = std::fs::remove_dir_all(&root);
}
