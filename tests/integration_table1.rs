//! The Table 1 shape, asserted mechanically: exhaustive symbolic execution
//! of Listing 1's `wc` across optimization levels.
//!
//! | metric        | expected ordering                        |
//! |---------------|------------------------------------------|
//! | # paths       | O0 == O2  >  O3  >>  OVERIFY (== n+2)    |
//! | # interpreted | O0 > O2 > OVERIFY                        |
//! | t_run cycles  | O3 < OVERIFY (speculation costs cycles)  |

use overify::{
    compile, run_program, verify_program, BuildOptions, ExecConfig, OptLevel, SymArg, SymConfig,
};

const WC: &str = r#"
int wc(unsigned char *str, int any) {
    int res = 0;
    int new_word = 1;
    for (unsigned char *p = str; *p; ++p) {
        if (isspace(*p) || (any && !isalpha(*p))) {
            new_word = 1;
        } else {
            if (new_word) {
                ++res;
                new_word = 0;
            }
        }
    }
    return res;
}
"#;

const SYM_BYTES: usize = 4;

fn verify_at(level: OptLevel) -> overify::VerificationReport {
    let prog = compile(WC, &BuildOptions::level(level)).expect("wc compiles");
    let r = verify_program(
        &prog,
        "wc",
        &SymConfig {
            input_bytes: SYM_BYTES,
            pass_len_arg: false,
            extra_args: vec![SymArg::Symbolic], // `any` is a symbolic flag.
            ..Default::default()
        },
    );
    assert!(r.exhausted, "{level}: must explore the full path space");
    assert!(r.bugs.is_empty(), "{level}: wc has no bugs");
    r
}

#[test]
fn paths_collapse_in_the_paper_order() {
    let r0 = verify_at(OptLevel::O0);
    let r2 = verify_at(OptLevel::O2);
    let r3 = verify_at(OptLevel::O3);
    let rv = verify_at(OptLevel::Overify);

    // -O2 does not change the program's path structure (Table 1: identical
    // path counts at -O0 and -O2).
    assert_eq!(
        r0.paths_completed, r2.paths_completed,
        "O0 and O2 explore the same paths"
    );
    // -O3 (unswitching) cuts paths; -OVERIFY cuts them to linear.
    assert!(
        r3.paths_completed < r2.paths_completed,
        "O3 {} must be below O2 {}",
        r3.paths_completed,
        r2.paths_completed
    );
    assert!(
        rv.paths_completed < r3.paths_completed,
        "OVERIFY {} must be below O3 {}",
        rv.paths_completed,
        r3.paths_completed
    );
    // The flattened loop forks only at the exit test per byte, plus the
    // initial `any` fork: paths = 2 * (n + 1) at most (and at least n+1).
    assert!(
        rv.paths_completed <= 2 * (SYM_BYTES as u64 + 1),
        "OVERIFY paths {} exceed the linear bound",
        rv.paths_completed
    );
}

#[test]
fn interpreted_instructions_follow_paths() {
    let r0 = verify_at(OptLevel::O0);
    let r2 = verify_at(OptLevel::O2);
    let rv = verify_at(OptLevel::Overify);
    assert!(
        r2.instructions < r0.instructions,
        "O2 interprets less than O0"
    );
    assert!(
        rv.instructions < r2.instructions / 4,
        "OVERIFY {} should be far below O2 {}",
        rv.instructions,
        r2.instructions
    );
}

#[test]
fn concrete_execution_is_slower_under_overify_than_o3() {
    // Table 1's t_run row: the branch-free version executes *more*
    // instructions on a CPU. 2.5x in the paper; we assert the direction.
    let mut text: Vec<u8> = b"alpha beta! gamma,42 delta "
        .iter()
        .copied()
        .cycle()
        .take(4096)
        .collect();
    text.push(0);
    let cfg = ExecConfig::default();

    let p3 = compile(WC, &BuildOptions::level(OptLevel::O3)).unwrap();
    let pv = compile(WC, &BuildOptions::level(OptLevel::Overify)).unwrap();
    let r3 = run_program(&p3, "wc", &text, &[1], &cfg);
    let rv = run_program(&pv, "wc", &text, &[1], &cfg);
    assert_eq!(r3.ret, rv.ret, "same word count");
    assert!(
        rv.cycles > r3.cycles,
        "OVERIFY run ({} cycles) must cost more than O3 ({} cycles)",
        rv.cycles,
        r3.cycles
    );
}

#[test]
fn all_levels_count_words_identically() {
    let cfg = ExecConfig::default();
    let texts: [&[u8]; 4] = [b"hello world\0", b"one, two; three!\0", b"\t\n \0", b"a\0"];
    let progs: Vec<_> = OptLevel::all()
        .into_iter()
        .map(|l| compile(WC, &BuildOptions::level(l)).unwrap())
        .collect();
    for t in texts {
        for any in [0u64, 1] {
            let reference = run_program(&progs[0], "wc", t, &[any], &cfg);
            for p in &progs[1..] {
                let r = run_program(p, "wc", t, &[any], &cfg);
                assert_eq!(reference.ret, r.ret, "{} any={any} {:?}", p.level, t);
            }
        }
    }
}
