//! Property-based differential testing: random MiniC-expressible programs,
//! random inputs — every optimization level must agree with `-O0`
//! observably. This mechanizes the equivalence argument of paper §2.3
//! ("end-users get not exactly what was tested and verified" — so we test
//! that our levels preserve behaviour exactly).

use overify::{compile, BuildOptions, ExecConfig, OptLevel};
use proptest::prelude::*;

/// A restricted program generator: straight-line statements over three int
/// variables plus input bytes, wrapped in data-dependent control flow.
#[derive(Clone, Debug)]
enum Stmt {
    AddVar(usize, usize),
    SubConst(usize, i32),
    MulConst(usize, i32),
    XorInput(usize, usize),
    IfPositive(usize, Box<Stmt>),
    IfInputEq(usize, u8, Box<Stmt>),
}

fn emit(s: &Stmt, out: &mut String) {
    match s {
        Stmt::AddVar(a, b) => out.push_str(&format!("v{} += v{};\n", a % 3, b % 3)),
        Stmt::SubConst(a, k) => out.push_str(&format!("v{} -= {};\n", a % 3, k)),
        Stmt::MulConst(a, k) => out.push_str(&format!("v{} *= {};\n", a % 3, k)),
        Stmt::XorInput(a, i) => out.push_str(&format!("v{} ^= in[{}];\n", a % 3, i % 4)),
        Stmt::IfPositive(a, inner) => {
            out.push_str(&format!("if (v{} > 0) {{\n", a % 3));
            emit(inner, out);
            out.push_str("}\n");
        }
        Stmt::IfInputEq(i, k, inner) => {
            out.push_str(&format!("if (in[{}] == {}) {{\n", i % 4, k));
            emit(inner, out);
            out.push_str("}\n");
        }
    }
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Stmt::AddVar(a, b)),
        (any::<usize>(), -50..50i32).prop_map(|(a, k)| Stmt::SubConst(a, k)),
        (any::<usize>(), -5..5i32).prop_map(|(a, k)| Stmt::MulConst(a, k)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, i)| Stmt::XorInput(a, i)),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (any::<usize>(), inner.clone()).prop_map(|(a, s)| Stmt::IfPositive(a, Box::new(s))),
            (any::<usize>(), any::<u8>(), inner).prop_map(|(i, k, s)| Stmt::IfInputEq(
                i,
                k,
                Box::new(s)
            )),
        ]
    })
}

fn program_of(stmts: &[Stmt]) -> String {
    let mut body = String::new();
    for s in stmts {
        emit(s, &mut body);
    }
    format!(
        r#"
        int umain(unsigned char *in, int n) {{
            int v0 = 1; int v1 = 2; int v2 = 3;
            int guard = 0;
            while (in[guard] && guard < 4) {{
                {body}
                guard++;
            }}
            return v0 ^ v1 ^ v2;
        }}
        "#
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn levels_agree_on_random_programs(
        stmts in proptest::collection::vec(arb_stmt(), 1..6),
        inputs in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 4), 4),
    ) {
        let src = program_of(&stmts);
        let cfg = ExecConfig::default();
        let reference = compile(&src, &BuildOptions::level(OptLevel::O0))
            .expect("generated program compiles");
        let optimized: Vec<_> = [OptLevel::O2, OptLevel::O3, OptLevel::Overify]
            .into_iter()
            .map(|l| compile(&src, &BuildOptions::level(l)).unwrap())
            .collect();
        for input in &inputs {
            let mut buf = input.clone();
            buf.push(0);
            let r0 = overify::run_with_buffer(&reference.module, "umain", &buf, &[4], &cfg);
            for p in &optimized {
                let r = overify::run_with_buffer(&p.module, "umain", &buf, &[4], &cfg);
                prop_assert_eq!(r0.ret, r.ret,
                    "level {} diverged on {:?}\nsource:\n{}", p.level, input, src);
                prop_assert_eq!(&r0.outcome, &r.outcome,
                    "level {} outcome diverged on {:?}", p.level, input);
            }
        }
    }
}

/// Symbolic/concrete cross-check on a fixed but branchy program: every test
/// case the symbolic engine generates must replay to the same return value
/// the engine could have predicted.
#[test]
fn symbolic_tests_replay_across_levels() {
    let src = r#"
        int umain(unsigned char *in, int n) {
            int state = 0;
            for (int i = 0; in[i]; i++) {
                if (in[i] == '(') state++;
                else if (in[i] == ')') { if (state > 0) state--; else state = 99; }
            }
            return state;
        }
    "#;
    let p0 = compile(src, &BuildOptions::level(OptLevel::O0)).unwrap();
    let pv = compile(src, &BuildOptions::level(OptLevel::Overify)).unwrap();
    let report = overify::verify_program(
        &pv,
        "umain",
        &overify::SymConfig {
            input_bytes: 3,
            pass_len_arg: true,
            collect_tests: true,
            ..Default::default()
        },
    );
    assert!(report.exhausted);
    assert!(!report.tests.is_empty());
    let cfg = ExecConfig::default();
    for t in &report.tests {
        let mut buf = t.input.clone();
        buf.push(0);
        let r0 = overify::run_with_buffer(&p0.module, "umain", &buf, &[3], &cfg);
        let rv = overify::run_with_buffer(&pv.module, "umain", &buf, &[3], &cfg);
        assert_eq!(r0.ret, rv.ret, "input {:?}", t.input);
    }
}
