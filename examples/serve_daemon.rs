//! The verification daemon: a resident `overify_serve` server.
//!
//! ```sh
//! OVERIFY_STORE=/tmp/ovstore cargo run --release --example serve_daemon -- --port 7979
//! ```
//!
//! The daemon binds 127.0.0.1, opens the store named by `--store` (or
//! `OVERIFY_STORE`, or a temp directory), prints the bound address, and
//! serves until a client sends a shutdown request (`serve_client --
//! --shutdown`). All clients share the daemon's store and warm solver
//! cache: the second client to submit an unchanged job gets it answered
//! from the report store without touching the executor.

use overify::StoreConfig;
use overify_serve::{start, ServerConfig};
use std::path::PathBuf;
use std::time::Duration;

fn main() {
    let mut cfg = ServerConfig {
        progress_interval: Duration::from_millis(10),
        ..ServerConfig::default()
    };
    let mut metrics_dump: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--port" => {
                cfg.port = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--port needs a number"))
            }
            "--threads" => {
                cfg.executors = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--threads needs a number"))
            }
            "--store" => {
                cfg.store = Some(StoreConfig::at(
                    args.next().unwrap_or_else(|| usage("--store needs a path")),
                ))
            }
            "--max-conns" => {
                cfg.max_connections = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--max-conns needs a number")),
                )
            }
            "--queue-cap" => {
                cfg.queue_capacity = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--queue-cap needs a number")),
                )
            }
            "--metrics-dump" => {
                metrics_dump = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| usage("--metrics-dump needs a path")),
                ))
            }
            _ => usage(&format!("unknown argument {arg}")),
        }
    }
    if cfg.store.is_none() {
        let tmp = std::env::temp_dir().join(format!("overify_serve_{}", std::process::id()));
        eprintln!(
            "serve_daemon: no --store/OVERIFY_STORE; using {}",
            tmp.display()
        );
        cfg.store = Some(StoreConfig::at(tmp));
    }

    let store_root = cfg.store.as_ref().map(|s| s.root.clone());
    let executors = cfg.executors;
    let handle = match start(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("serve_daemon: failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "serve_daemon: listening on {} ({} executor(s), store {})",
        handle.addr(),
        executors,
        store_root
            .map(|p| p.display().to_string())
            .unwrap_or_else(|| "<none>".into()),
    );
    // The stats snapshot must be taken before `join` consumes the handle;
    // the registry is process-global, so it renders after the drain.
    let final_stats = metrics_dump.as_ref().map(|_| handle.stats());
    handle.join();
    if let (Some(path), Some(stats)) = (&metrics_dump, final_stats) {
        // Same shape `serve_client --metrics` scrapes live: service-level
        // counters first, then every registry metric this process touched.
        let _ = std::fs::write(path, format!("{}{}", stats, overify_obs::metrics::render()));
    }
    if let Some(path) = overify_obs::trace::dump_default() {
        println!("serve_daemon: flight recorder dumped to {}", path.display());
    }
    println!("serve_daemon: shut down cleanly");
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "serve_daemon: {msg}\nusage: serve_daemon [--port P] [--threads N] [--store DIR] \
         [--max-conns N] [--queue-cap N] [--metrics-dump FILE]"
    );
    std::process::exit(2);
}
