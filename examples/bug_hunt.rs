//! Bug hunting with -OVERIFY: seed a utility with an input-dependent bug
//! and watch every optimization level find it — the paper's §4 check that
//! "all bugs discovered by KLEE with -O0 and -O3 are also found with
//! -OSYMBEX" — then diff how much work each level spent.
//!
//! ```sh
//! cargo run --release --example bug_hunt
//! ```

use overify::{compile, verify_program, BuildOptions, OptLevel, SymConfig};

const BUGGY_FIELD_PARSER: &str = r#"
// Splits colon-separated fields and copies the second field into a fixed
// buffer. The copy forgets to bound the write: a field longer than 7 bytes
// smashes `field`. Classic.
int umain(unsigned char *in, int n) {
    char field[8];
    int i = 0;
    while (in[i] && in[i] != ':') i++;
    if (!in[i]) return 0;
    i++;
    int k = 0;
    while (in[i]) {
        field[k] = in[i];   // Missing: k < 8 check.
        k++;
        i++;
    }
    field[k] = 0;
    int digits = 0;
    for (int j = 0; field[j]; j++) {
        if (isdigit(field[j])) digits++;
    }
    return digits;
}
"#;

fn main() {
    println!("hunting a seeded buffer overflow at every optimization level\n");
    println!(
        "{:<10} {:>6} {:>9} {:>10} {:>22}",
        "level", "bugs", "paths", "queries", "witness input"
    );

    let mut signatures = Vec::new();
    for level in OptLevel::all() {
        let prog = compile(BUGGY_FIELD_PARSER, &BuildOptions::level(level)).expect("compiles");
        let report = verify_program(
            &prog,
            "umain",
            &SymConfig {
                input_bytes: 10,
                pass_len_arg: true,
                max_instructions: 30_000_000,
                ..Default::default()
            },
        );
        let witness = report
            .bugs
            .first()
            .map(|b| {
                b.input
                    .iter()
                    .map(|&c| {
                        if (32..127).contains(&c) {
                            (c as char).to_string()
                        } else {
                            format!("\\x{c:02x}")
                        }
                    })
                    .collect::<String>()
            })
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<10} {:>6} {:>9} {:>10} {:>22}",
            level.name(),
            report.bugs.len(),
            report.total_paths(),
            report.solver.queries,
            witness
        );
        let kinds: Vec<_> = report.bug_signature().iter().map(|(k, _)| *k).collect();
        signatures.push(kinds);
    }

    // Bug preservation: every level that found bugs found the same kinds.
    let reference = signatures
        .iter()
        .find(|s| !s.is_empty())
        .expect("the seeded bug must be found");
    for (i, s) in signatures.iter().enumerate() {
        assert_eq!(s, reference, "level {:?} missed bugs", OptLevel::all()[i]);
    }
    println!("\nall levels report the same bug kinds — optimization did not");
    println!("hide the overflow, it only changed how fast we got there.");
}
