//! A miniature Figure 4: verify a handful of Coreutils-style utilities at
//! `-O0`, `-O3` and `-OVERIFY` and print per-program totals.
//!
//! ```sh
//! cargo run --release --example coreutils_sweep [n_bytes] [utilities...]
//! ```

use overify::{verify_program, BuildOptions, CompiledProgram, OptLevel, SymConfig};
use overify_coreutils::{compile_utility, suite, Utility};
use std::time::Duration;

fn build(u: &Utility, level: OptLevel) -> CompiledProgram {
    let opts = BuildOptions::level(level);
    let mut module = compile_utility(u, opts.resolved_libc()).expect("utility compiles");
    let stats = overify::build::compile_module(&mut module, &opts);
    CompiledProgram {
        module,
        stats,
        level,
        libc: Some(opts.resolved_libc()),
        compile_time: Duration::ZERO,
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let selected: Vec<String> = args.collect();

    let utilities: Vec<&Utility> = suite()
        .iter()
        .filter(|u| selected.is_empty() || selected.iter().any(|s| s == u.name))
        .take(if selected.is_empty() { 8 } else { usize::MAX })
        .collect();

    println!("coreutils sweep: {n} symbolic input bytes\n");
    println!(
        "{:<14} {:>12} {:>12} {:>12}   (total analysis time; paths)",
        "utility", "-O0", "-O3", "-OVERIFY"
    );

    for u in utilities {
        let mut cells = Vec::new();
        for level in [OptLevel::O0, OptLevel::O3, OptLevel::Overify] {
            let prog = build(u, level);
            let report = verify_program(
                &prog,
                "umain",
                &SymConfig {
                    input_bytes: n,
                    pass_len_arg: true,
                    max_instructions: 20_000_000,
                    timeout: Duration::from_secs(60),
                    ..Default::default()
                },
            );
            let marker = if report.exhausted { "" } else { "*" };
            cells.push(format!(
                "{:>7.2?}/{}{}",
                report.time,
                report.total_paths(),
                marker
            ));
        }
        println!(
            "{:<14} {:>12} {:>12} {:>12}",
            u.name, cells[0], cells[1], cells[2]
        );
    }
    println!("\n(* = budget exhausted before the path space was covered)");
}
