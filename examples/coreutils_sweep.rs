//! A miniature Figure 4: verify Coreutils-style utilities at `-O0`, `-O3`
//! and `-OVERIFY` through the batch suite driver, fanning jobs across
//! worker threads (and printing a live progress line).
//!
//! ```sh
//! cargo run --release --example coreutils_sweep [n_bytes] [utilities...]
//! OVERIFY_THREADS=4 cargo run --release --example coreutils_sweep 4
//! ```

use overify::{default_threads, verify_suite_with, OptLevel, SuiteJob, SymConfig, Utility};
use overify_coreutils::suite;
use std::io::Write;
use std::time::Duration;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let selected: Vec<String> = args.collect();

    let utilities: Vec<&Utility> = suite()
        .iter()
        .filter(|u| selected.is_empty() || selected.iter().any(|s| s == u.name))
        .take(if selected.is_empty() { 8 } else { usize::MAX })
        .collect();
    let levels = [OptLevel::O0, OptLevel::O3, OptLevel::Overify];

    let cfg = SymConfig {
        pass_len_arg: true,
        max_instructions: 20_000_000,
        timeout: Duration::from_secs(60),
        ..Default::default()
    };
    let jobs: Vec<SuiteJob> = utilities
        .iter()
        .flat_map(|u| levels.map(|l| SuiteJob::utility(u, l, &[n], &cfg)))
        .collect();

    let threads = default_threads();
    println!(
        "coreutils sweep: {n} symbolic input bytes, {} jobs on {threads} thread(s)\n",
        jobs.len()
    );

    let report = verify_suite_with(jobs, threads, |r, done, total| {
        eprint!(
            "\r[{done}/{total}] {:<14} {:<8} ",
            r.name,
            r.level.to_string()
        );
        let _ = std::io::stderr().flush();
    });
    eprintln!();

    println!(
        "{:<14} {:>12} {:>12} {:>12}   (total analysis time; paths)",
        "utility", "-O0", "-O3", "-OVERIFY"
    );
    for u in &utilities {
        let mut cells = Vec::new();
        for level in levels {
            let job = report.job(u.name, level).expect("job ran");
            let cell = match (&job.error, job.runs.first()) {
                (Some(e), _) => {
                    // The table cell below is the user-facing signal; the
                    // compiler error detail is a diagnostic for the
                    // leveled log (`OVERIFY_LOG=warn`).
                    overify_obs::warn!("sweep", "{}@{level}: build failed: {e}", u.name);
                    "build-error".to_string()
                }
                (None, None) => "-".to_string(),
                (None, Some((_, r))) => {
                    let marker = if job.exhausted() { "" } else { "*" };
                    // A budget-truncated run may have completed no paths
                    // (multiplicity 0); more than once is the bug.
                    assert!(
                        r.max_path_multiplicity() <= 1,
                        "{}@{level}: a path was explored twice",
                        u.name
                    );
                    format!("{:>7.2?}/{}{}", r.time, r.total_paths(), marker)
                }
            };
            cells.push(cell);
        }
        println!(
            "{:<14} {:>12} {:>12} {:>12}",
            u.name, cells[0], cells[1], cells[2]
        );
    }
    println!(
        "\nwall {:.2?} vs per-job total {:.2?} ({}x thread speedup)",
        report.wall,
        report.total_time(),
        (report.total_time().as_secs_f64() / report.wall.as_secs_f64().max(1e-9)).round(),
    );
    println!("(* = budget exhausted before the path space was covered)");
}
