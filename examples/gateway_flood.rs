//! Floods a gateway with concurrent submissions and reports the
//! admission outcome — the load-shedding smoke check.
//!
//! ```sh
//! cargo run --release --example gateway_flood -- \
//!     http://127.0.0.1:8080 --jobs 2000 --threads 32 [--token sekrit] [--distinct]
//! ```
//!
//! Every submission is answered 202/200 (accepted), 429 (shed or
//! quota-denied) or an error; accepted job ids are then polled until
//! every one reaches a terminal state. Exit status 0 means zero lost
//! jobs: accepted + shed == submitted and all accepted ids terminal.

use std::collections::HashSet;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

fn main() {
    let mut args = std::env::args().skip(1);
    let base = args.next().unwrap_or_else(|| usage("gateway URL required"));
    let mut jobs = 2000usize;
    let mut threads = 32usize;
    let mut token: Option<String> = None;
    let mut distinct = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" => jobs = num(args.next()),
            "--threads" => threads = num(args.next()),
            "--token" => {
                token = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--token needs a value")),
                )
            }
            "--distinct" => distinct = true,
            _ => usage(&format!("unknown argument {arg}")),
        }
    }
    let host = base
        .trim_start_matches("http://")
        .trim_end_matches('/')
        .to_string();

    let accepted = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let ids: Mutex<HashSet<String>> = Mutex::new(HashSet::new());
    let started = Instant::now();

    std::thread::scope(|scope| {
        for t in 0..threads {
            let (host, token) = (&host, &token);
            let (accepted, shed, failed, ids) = (&accepted, &shed, &failed, &ids);
            scope.spawn(move || {
                for i in (t..jobs).step_by(threads) {
                    // Distinct specs defeat content-address dedup (each
                    // submission is its own job); the default reuses a
                    // small spec pool, exercising idempotent resubmits.
                    let salt = if distinct { i } else { i % 8 };
                    let body = format!(
                        "{{\"name\":\"flood-{salt}\",\"source\":\"int f(unsigned char *p, int n) \
                         {{ int a = {salt}; if (n > 1 && p[0] > 'm') a += 2; return a; }}\",\
                         \"entry\":\"f\",\"level\":\"O0\",\"bytes\":[2]}}"
                    );
                    match request(host, "POST", "/v1/verify", token.as_deref(), Some(&body)) {
                        Ok((status, body)) if status == 202 || status == 200 => {
                            accepted.fetch_add(1, Ordering::Relaxed);
                            if let Some(id) = extract(&body, "job_id") {
                                ids.lock().unwrap().insert(id);
                            }
                        }
                        Ok((429, _)) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok((status, body)) => {
                            eprintln!("gateway_flood: unexpected {status}: {body}");
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            eprintln!("gateway_flood: transport error: {e}");
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    let (acc, sh, fl) = (
        accepted.load(Ordering::Relaxed),
        shed.load(Ordering::Relaxed),
        failed.load(Ordering::Relaxed),
    );
    println!(
        "gateway_flood: submitted {jobs} in {:?}: accepted {acc}, shed {sh}, errors {fl}",
        started.elapsed()
    );
    if fl > 0 || acc + sh != jobs as u64 {
        eprintln!("gateway_flood: lost submissions");
        std::process::exit(1);
    }

    // Poll every accepted id to a terminal state.
    let ids = ids.into_inner().unwrap();
    let deadline = Instant::now() + Duration::from_secs(600);
    let mut pending: Vec<String> = ids.into_iter().collect();
    let mut done = 0u64;
    let mut job_failed = 0u64;
    while !pending.is_empty() {
        if Instant::now() > deadline {
            eprintln!(
                "gateway_flood: {} jobs never reached a terminal state",
                pending.len()
            );
            std::process::exit(1);
        }
        pending.retain(|id| {
            match request(
                &host,
                "GET",
                &format!("/v1/jobs/{id}"),
                token.as_deref(),
                None,
            ) {
                Ok((200, body)) => match extract(&body, "state").as_deref() {
                    Some("done") => {
                        done += 1;
                        false
                    }
                    Some("failed") => {
                        job_failed += 1;
                        eprintln!("gateway_flood: job {id} failed: {body}");
                        false
                    }
                    _ => true,
                },
                _ => true,
            }
        });
        if !pending.is_empty() {
            std::thread::sleep(Duration::from_millis(100));
        }
    }
    println!("gateway_flood: terminal states: done {done}, failed {job_failed}");
    if job_failed > 0 {
        std::process::exit(1);
    }
}

/// One HTTP exchange over a fresh connection (the gateway closes after
/// every response).
fn request(
    host: &str,
    method: &str,
    path: &str,
    token: Option<&str>,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(host)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let auth = token
        .map(|t| format!("Authorization: Bearer {t}\r\n"))
        .unwrap_or_default();
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {host}\r\n{auth}Content-Length: {}\r\n\r\n{body}",
        body.len()
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let payload = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, payload))
}

/// Pulls a `"key":"value"` string field out of a flat JSON body.
fn extract(body: &str, key: &str) -> Option<String> {
    let at = body.find(&format!("\"{key}\":\""))? + key.len() + 4;
    let rest = &body[at..];
    Some(rest[..rest.find('"')?].to_string())
}

fn num(v: Option<String>) -> usize {
    v.and_then(|s| s.parse().ok())
        .unwrap_or_else(|| usage("expected a number"))
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "gateway_flood: {msg}\nusage: gateway_flood http://HOST:PORT [--jobs N] [--threads N] \
         [--token T] [--distinct]"
    );
    std::process::exit(2);
}
