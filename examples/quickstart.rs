//! Quickstart: compile one function at every optimization level, verify it
//! symbolically, and watch what `-OVERIFY` does to the verification cost.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use overify::{compile, verify_program, BuildOptions, OptLevel, SymConfig};

fn main() {
    // A little parser: accepts strings like "+42" / "-7" and returns the
    // value. Branchy enough that path counts differ visibly across levels.
    let src = r#"
        int umain(unsigned char *in, int n) {
            int i = 0;
            int sign = 1;
            if (in[0] == '+') { i = 1; }
            else if (in[0] == '-') { sign = -1; i = 1; }
            int v = 0;
            while (isdigit(in[i])) {
                v = v * 10 + (in[i] - '0');
                i++;
            }
            return sign * v;
        }
    "#;

    println!("verifying the same source at every optimization level");
    println!("(4 symbolic input bytes, exhaustive exploration)\n");
    println!(
        "{:<10} {:>8} {:>10} {:>12} {:>10} {:>9}",
        "level", "paths", "forks", "instructions", "queries", "time"
    );

    for level in OptLevel::all() {
        let prog = compile(src, &BuildOptions::level(level)).expect("compiles");
        let report = verify_program(
            &prog,
            "umain",
            &SymConfig {
                input_bytes: 4,
                pass_len_arg: true,
                ..Default::default()
            },
        );
        assert!(report.exhausted, "{level}: exploration must finish");
        assert!(report.bugs.is_empty(), "{level}: no bugs expected");
        println!(
            "{:<10} {:>8} {:>10} {:>12} {:>10} {:>8.1?}",
            level.name(),
            report.paths_completed,
            report.forks,
            report.instructions,
            report.solver.queries,
            report.time
        );
    }

    println!("\n-OVERIFY explores the fewest paths: branches became selects,");
    println!("the ctype table lookup became comparisons, and small helpers");
    println!("were inlined and folded away.");
}
