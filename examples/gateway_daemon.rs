//! The public verification gateway: an HTTP submit-then-poll tier in
//! front of a running `serve_daemon`.
//!
//! ```sh
//! cargo run --release --example serve_daemon -- --port 7979 --store /tmp/ovstore &
//! cargo run --release --example gateway_daemon -- \
//!     --daemon 127.0.0.1:7979 --store /tmp/ovstore --port 8080 \
//!     --queue-cap 64 --token sekrit=alice
//! curl -s -X POST http://127.0.0.1:8080/v1/verify \
//!     -H 'Authorization: Bearer sekrit' \
//!     -d '{"name":"t","source":"int f(unsigned char*p,int n){return n;}","entry":"f","level":"overify","bytes":[2]}'
//! ```
//!
//! The gateway and the daemon must share one store directory — that is
//! where job records and the verdict registry live.

use overify::StoreConfig;
use overify_gateway::{start, GatewayConfig, QuotaConfig};
use std::net::SocketAddr;

fn main() {
    let mut port = 0u16;
    let mut daemon: Option<SocketAddr> = None;
    let mut store: Option<StoreConfig> = None;
    let mut dispatchers = 2usize;
    let mut queue_cap = 256usize;
    let mut quota = QuotaConfig::default();
    let mut tokens: Vec<(String, String)> = Vec::new();
    let mut upstream = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next = |what: &str| args.next().unwrap_or_else(|| usage(what));
        match arg.as_str() {
            "--port" => port = parse(&next("--port needs a number")),
            "--daemon" => daemon = Some(parse(&next("--daemon needs HOST:PORT"))),
            "--store" => store = Some(StoreConfig::at(next("--store needs a path"))),
            "--dispatchers" => dispatchers = parse(&next("--dispatchers needs a number")),
            "--queue-cap" => queue_cap = parse(&next("--queue-cap needs a number")),
            "--quota-burst" => quota.burst = parse(&next("--quota-burst needs a number")),
            "--quota-per-sec" => quota.per_sec = parse(&next("--quota-per-sec needs a number")),
            "--token" => {
                let pair = next("--token needs TOKEN=TENANT");
                let Some((token, tenant)) = pair.split_once('=') else {
                    usage("--token needs TOKEN=TENANT")
                };
                tokens.push((token.to_string(), tenant.to_string()));
            }
            "--upstream-metrics" => upstream = true,
            _ => usage(&format!("unknown argument {arg}")),
        }
    }
    let Some(daemon) = daemon else {
        usage("--daemon is required")
    };
    let store = store.or_else(StoreConfig::from_env).unwrap_or_else(|| {
        usage("--store (or OVERIFY_STORE) is required — the gateway and daemon share it")
    });

    let store_root = store.root.clone();
    let cfg = GatewayConfig {
        port,
        daemon,
        store,
        dispatchers,
        queue_capacity: queue_cap,
        quota,
        tokens,
        upstream_metrics: upstream,
    };
    match start(cfg) {
        Ok(handle) => {
            println!(
                "gateway_daemon: listening on {} (daemon {daemon}, store {})",
                handle.addr(),
                store_root.display(),
            );
            handle.join();
        }
        Err(e) => {
            eprintln!("gateway_daemon: failed to start: {e}");
            std::process::exit(1);
        }
    }
}

fn parse<T: std::str::FromStr>(v: &str) -> T {
    v.parse()
        .unwrap_or_else(|_| usage(&format!("cannot parse '{v}'")))
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "gateway_daemon: {msg}\nusage: gateway_daemon --daemon HOST:PORT [--store DIR] [--port P] \
         [--dispatchers N] [--queue-cap N] [--quota-burst N] [--quota-per-sec N] \
         [--token TOKEN=TENANT]... [--upstream-metrics]"
    );
    std::process::exit(2);
}
