//! A remote verification worker: attaches to a running `serve_daemon`
//! and lends this machine's cores to its path-level frontier.
//!
//! ```sh
//! cargo run --release --example serve_daemon  -- --port 7979 &
//! cargo run --release --example overify_worker -- --port 7979 --threads 4
//! ```
//!
//! The worker steals serialized decision-trace subtree jobs, explores
//! them locally (sharing one process-wide solver cache across leases),
//! sheds its biggest pending subtrees back when the fleet is hungry, and
//! returns partial reports the daemon merges bit-identically with its own
//! workers'. It exits when the daemon goes away, or after `--idle-exit-ms`
//! without work; `--expect-steals N` makes the exit code assert that at
//! least N subtree jobs were actually stolen (CI's distributed-smoke
//! canary).

use overify_serve::{run_worker, WorkerConfig};
use std::net::{Ipv4Addr, SocketAddr};
use std::time::Duration;

fn main() {
    let mut port: u16 = 7979;
    let mut threads: usize = 1;
    let mut idle_exit_ms: Option<u64> = None;
    let mut expect_steals: u64 = 0;
    let mut metrics_dump: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--port" => port = num(&mut args, "--port") as u16,
            "--threads" => threads = num(&mut args, "--threads") as usize,
            "--idle-exit-ms" => idle_exit_ms = Some(num(&mut args, "--idle-exit-ms")),
            "--expect-steals" => expect_steals = num(&mut args, "--expect-steals"),
            "--metrics-dump" => {
                metrics_dump = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--metrics-dump needs a path")),
                )
            }
            _ => usage(&format!("unknown argument {arg}")),
        }
    }

    let cfg = WorkerConfig {
        addr: SocketAddr::from((Ipv4Addr::LOCALHOST, port)),
        threads: threads.max(1),
        steal_batch: 1,
        idle_exit: idle_exit_ms.map(Duration::from_millis),
        name: format!("overify-worker:{}", std::process::id()),
    };
    println!(
        "overify_worker: attaching {} connection(s) to {}",
        cfg.threads, cfg.addr
    );
    let stats = match run_worker(&cfg) {
        Ok(s) => s,
        Err(e) => {
            // Diagnostic, not payload: route through the leveled log
            // (`OVERIFY_LOG=error` surfaces it); exit code 1 is the
            // machine-readable signal either way.
            overify_obs::error!("worker", "cannot serve {}: {e}", cfg.addr);
            std::process::exit(1);
        }
    };
    // `WorkerStats` renders the text exposition format itself; no
    // hand-rolled summary line to drift out of sync with the fields.
    println!("overify_worker: done");
    print!("{stats}");
    if let Some(path) = &metrics_dump {
        let _ = std::fs::write(path, format!("{stats}{}", overify_obs::metrics::render()));
    }
    if let Some(path) = overify_obs::trace::dump_default() {
        println!(
            "overify_worker: flight recorder dumped to {}",
            path.display()
        );
    }
    if stats.stolen < expect_steals {
        eprintln!(
            "overify_worker: FAIL — expected ≥{expect_steals} steals, got {}",
            stats.stolen
        );
        std::process::exit(1);
    }
}

fn num(args: &mut impl Iterator<Item = String>, flag: &str) -> u64 {
    args.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a number")))
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "overify_worker: {msg}\nusage: overify_worker [--port P] [--threads N] \
         [--idle-exit-ms M] [--expect-steals K] [--metrics-dump FILE]"
    );
    std::process::exit(2);
}
