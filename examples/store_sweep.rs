//! Cold → warm suite sweeps through the persistent verification store.
//!
//! Runs the coreutils workload twice against the same store directory —
//! once to populate it, once to demonstrate warm-start: the second sweep
//! answers unchanged jobs from stored report artifacts (verification
//! skipped entirely) and warm-starts the solver fleet from the persisted
//! verdict log. The two sweeps use *separate store handles*, so
//! everything flows through disk, exactly as it would across CI runs.
//!
//! ```sh
//! cargo run --release --example store_sweep [n_bytes]
//! OVERIFY_STORE=/tmp/ovstore cargo run --release --example store_sweep
//! # Second invocation against the same path: sweep 1 is already warm.
//! OVERIFY_STORE=/tmp/ovstore cargo run --release --example store_sweep -- --expect-warm-start
//! ```
//!
//! With `--expect-warm-start` the example asserts that the *first* sweep
//! of this process already reports store hits — the cross-process
//! warm-start check the CI `warm-start` job runs.
//!
//! The incremental flags drive the **function-slice** grain (the CI
//! `incremental-smoke` job):
//!
//! * `--append-dead-code` appends an uncalled helper to every utility
//!   source — every *module* fingerprint moves, no *slice* fingerprint
//!   does, so against a warm store every job splices its stored
//!   function-slice verdict instead of re-verifying;
//! * `--touch <utility>` additionally edits that utility's `umain` slice
//!   (wrapping it in a fresh entry), so exactly its jobs re-execute;
//! * `--expect-splice N` asserts the first sweep answered ≥ N jobs by
//!   slice splicing, and `--expect-executed N` asserts exactly N jobs
//!   re-executed — together they pin "edit one function, re-verify one
//!   slice" from the command line.

use overify::{
    default_threads, verify_suite_stored_with, OptLevel, Store, StoreConfig, SuiteJob, SuiteReport,
    SymConfig, Utility,
};
use overify_coreutils::suite;
use std::io::Write;
use std::time::Duration;

fn main() {
    let mut n: usize = 3;
    let mut expect_warm_start = false;
    let mut append_dead_code = false;
    let mut touch: Option<String> = None;
    let mut expect_splice: Option<usize> = None;
    let mut expect_executed: Option<usize> = None;
    fn usage() -> ! {
        eprintln!(
            "usage: store_sweep [n_bytes] [--expect-warm-start] [--append-dead-code] \
             [--touch <utility>] [--expect-splice <n>] [--expect-executed <n>]"
        );
        std::process::exit(2);
    }
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--expect-warm-start" => expect_warm_start = true,
            "--append-dead-code" => append_dead_code = true,
            "--touch" => touch = Some(args.next().unwrap_or_else(|| usage())),
            "--expect-splice" => {
                expect_splice = args.next().and_then(|v| v.parse().ok()).or_else(|| usage())
            }
            "--expect-executed" => {
                expect_executed = args.next().and_then(|v| v.parse().ok()).or_else(|| usage())
            }
            other => match other.parse() {
                Ok(v) => n = v,
                Err(_) => usage(),
            },
        }
    }

    let root = std::env::var("OVERIFY_STORE")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| {
            std::env::temp_dir().join(format!("overify_store_sweep_{}", std::process::id()))
        });
    let threads = default_threads();

    let utilities: Vec<&Utility> = suite().iter().take(8).collect();
    let levels = [OptLevel::O0, OptLevel::O3, OptLevel::Overify];
    let cfg = SymConfig {
        pass_len_arg: true,
        collect_tests: true,
        max_instructions: 20_000_000,
        timeout: Duration::from_secs(60),
        ..Default::default()
    };
    if let Some(name) = &touch {
        if !utilities.iter().any(|u| u.name == name) {
            // Runs before the suite driver, so arm the log level first;
            // exit code 2 carries the failure for scripts either way.
            overify_obs::init();
            overify_obs::error!("sweep", "--touch {name}: no such utility in the sweep");
            std::process::exit(2);
        }
    }
    let jobs = || -> Vec<SuiteJob> {
        utilities
            .iter()
            .flat_map(|u| levels.map(|l| SuiteJob::utility(u, l, &[n], &cfg)))
            .map(|mut j| {
                // An *uncalled* helper moves every module fingerprint while
                // leaving every entry slice untouched: against a warm store
                // this turns whole-module hits into function-slice splices.
                if append_dead_code {
                    j.source
                        .push_str("\nint unused_probe(unsigned char *in, int n) { return 42; }\n");
                }
                // Touching a utility edits its *entry slice* (the original
                // umain survives as a callee of a fresh wrapper), so its
                // jobs — and only its jobs — re-execute.
                if touch.as_deref() == Some(j.name.as_str()) {
                    j.source = j.source.replace("int umain(", "int umain_inner(");
                    j.source.push_str(
                        "\nint umain(unsigned char *in, int n) { return umain_inner(in, n); }\n",
                    );
                }
                j
            })
            .collect()
    };
    let total = jobs().len();

    println!(
        "store sweep: {n} symbolic input bytes, {total} jobs on {threads} thread(s)\nstore: {}\n",
        root.display()
    );

    let run = |label: &str| -> SuiteReport {
        // A fresh handle per sweep: state flows through disk only.
        let store = Store::open(StoreConfig::at(&root)).expect("store directory is writable");
        let report = verify_suite_stored_with(jobs(), threads, Some(&store), |r, done, total| {
            let mark = if r.from_slice {
                "~"
            } else if r.from_store {
                "="
            } else {
                ">"
            };
            eprint!(
                "\r[{label} {done}/{total}] {mark} {:<14} {:<8} ",
                r.name,
                r.level.to_string()
            );
            let _ = std::io::stderr().flush();
        });
        eprintln!();
        let s = report.store.expect("ran with a store");
        println!(
            "{label:<5} wall {:>9.2?}  report hits {:>2}/{total} ({} spliced)  \
             solver verdicts: {} loaded, {} saved",
            report.wall,
            report.store_hits(),
            report.splice_hits(),
            s.solver_entries_loaded,
            s.solver_entries_saved,
        );
        report
    };

    let first = run("cold");
    if let Some(min) = expect_splice {
        assert!(
            first.splice_hits() >= min,
            "--expect-splice {min}: only {} of {total} jobs answered by \
             function-slice splicing (a previous process must have warmed \
             this store and the edit must stay outside the entry slices)",
            first.splice_hits()
        );
        println!(
            "slice splices confirmed: {}/{total} jobs answered from stored slice verdicts",
            first.splice_hits()
        );
    }
    if let Some(want) = expect_executed {
        let executed = first
            .jobs
            .iter()
            .filter(|j| !j.from_store && j.error.is_none())
            .count();
        assert_eq!(
            executed, want,
            "--expect-executed {want}: {executed} of {total} jobs re-executed — \
             an incremental re-sweep must re-verify exactly the touched slices"
        );
        println!("incremental re-verification confirmed: exactly {executed} job(s) re-executed");
    }
    if expect_warm_start {
        assert!(
            first.store_hits() > 0,
            "--expect-warm-start: a previous process populated this store, \
             so the first sweep must already report hits"
        );
        println!(
            "cross-process warm start confirmed: {} hits",
            first.store_hits()
        );
    }

    let second = run("warm");

    // Acceptance: the populated store skips unchanged jobs and reproduces
    // byte-identical reports with identical bug signatures.
    assert!(
        second.store_hits() > 0,
        "second sweep must skip at least one unchanged job"
    );
    for (a, b) in first.jobs.iter().zip(&second.jobs) {
        let tag = format!("{}@{}", a.name, a.level);
        assert_eq!(
            a.bug_signature(),
            b.bug_signature(),
            "{tag}: bug signature drifted"
        );
        assert_eq!(a.runs, b.runs, "{tag}: stored report not byte-identical");
    }

    let speedup = first.wall.as_secs_f64() / second.wall.as_secs_f64().max(1e-9);
    println!(
        "\nwarm sweep: {}/{} jobs from the store, {speedup:.1}x wall-clock vs the first sweep",
        second.store_hits(),
        total,
    );
    println!("(> = verified fresh, = = whole-module store hit, ~ = function-slice splice)");
}
