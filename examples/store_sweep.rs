//! Cold → warm suite sweeps through the persistent verification store.
//!
//! Runs the coreutils workload twice against the same store directory —
//! once to populate it, once to demonstrate warm-start: the second sweep
//! answers unchanged jobs from stored report artifacts (verification
//! skipped entirely) and warm-starts the solver fleet from the persisted
//! verdict log. The two sweeps use *separate store handles*, so
//! everything flows through disk, exactly as it would across CI runs.
//!
//! ```sh
//! cargo run --release --example store_sweep [n_bytes]
//! OVERIFY_STORE=/tmp/ovstore cargo run --release --example store_sweep
//! # Second invocation against the same path: sweep 1 is already warm.
//! OVERIFY_STORE=/tmp/ovstore cargo run --release --example store_sweep -- --expect-warm-start
//! ```
//!
//! With `--expect-warm-start` the example asserts that the *first* sweep
//! of this process already reports store hits — the cross-process
//! warm-start check the CI `warm-start` job runs.

use overify::{
    default_threads, verify_suite_stored_with, OptLevel, Store, StoreConfig, SuiteJob, SuiteReport,
    SymConfig, Utility,
};
use overify_coreutils::suite;
use std::io::Write;
use std::time::Duration;

fn main() {
    let mut n: usize = 3;
    let mut expect_warm_start = false;
    for arg in std::env::args().skip(1) {
        if arg == "--expect-warm-start" {
            expect_warm_start = true;
        } else if let Ok(v) = arg.parse() {
            n = v;
        } else {
            eprintln!("usage: store_sweep [n_bytes] [--expect-warm-start]");
            std::process::exit(2);
        }
    }

    let root = std::env::var("OVERIFY_STORE")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| {
            std::env::temp_dir().join(format!("overify_store_sweep_{}", std::process::id()))
        });
    let threads = default_threads();

    let utilities: Vec<&Utility> = suite().iter().take(8).collect();
    let levels = [OptLevel::O0, OptLevel::O3, OptLevel::Overify];
    let cfg = SymConfig {
        pass_len_arg: true,
        collect_tests: true,
        max_instructions: 20_000_000,
        timeout: Duration::from_secs(60),
        ..Default::default()
    };
    let jobs = || -> Vec<SuiteJob> {
        utilities
            .iter()
            .flat_map(|u| levels.map(|l| SuiteJob::utility(u, l, &[n], &cfg)))
            .collect()
    };
    let total = jobs().len();

    println!(
        "store sweep: {n} symbolic input bytes, {total} jobs on {threads} thread(s)\nstore: {}\n",
        root.display()
    );

    let run = |label: &str| -> SuiteReport {
        // A fresh handle per sweep: state flows through disk only.
        let store = Store::open(StoreConfig::at(&root)).expect("store directory is writable");
        let report = verify_suite_stored_with(jobs(), threads, Some(&store), |r, done, total| {
            let mark = if r.from_store { "=" } else { ">" };
            eprint!(
                "\r[{label} {done}/{total}] {mark} {:<14} {:<8} ",
                r.name,
                r.level.to_string()
            );
            let _ = std::io::stderr().flush();
        });
        eprintln!();
        let s = report.store.expect("ran with a store");
        println!(
            "{label:<5} wall {:>9.2?}  report hits {:>2}/{total}  solver verdicts: {} loaded, {} saved",
            report.wall, report.store_hits(), s.solver_entries_loaded, s.solver_entries_saved,
        );
        report
    };

    let first = run("cold");
    if expect_warm_start {
        assert!(
            first.store_hits() > 0,
            "--expect-warm-start: a previous process populated this store, \
             so the first sweep must already report hits"
        );
        println!(
            "cross-process warm start confirmed: {} hits",
            first.store_hits()
        );
    }

    let second = run("warm");

    // Acceptance: the populated store skips unchanged jobs and reproduces
    // byte-identical reports with identical bug signatures.
    assert!(
        second.store_hits() > 0,
        "second sweep must skip at least one unchanged job"
    );
    for (a, b) in first.jobs.iter().zip(&second.jobs) {
        let tag = format!("{}@{}", a.name, a.level);
        assert_eq!(
            a.bug_signature(),
            b.bug_signature(),
            "{tag}: bug signature drifted"
        );
        assert_eq!(a.runs, b.runs, "{tag}: stored report not byte-identical");
    }

    let speedup = first.wall.as_secs_f64() / second.wall.as_secs_f64().max(1e-9);
    println!(
        "\nwarm sweep: {}/{} jobs from the store, {speedup:.1}x wall-clock vs the first sweep",
        second.store_hits(),
        total,
    );
    println!("(> = verified fresh, = = answered from the store)");
}
