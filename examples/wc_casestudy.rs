//! The paper's motivating example (§1): Listing 1's `wc`, compiled at
//! `-O0`, `-O2`, `-O3` and `-OVERIFY`, reproducing Table 1's shape:
//! time-to-verify collapses, paths collapse, but *concrete* execution gets
//! slower.
//!
//! ```sh
//! cargo run --release --example wc_casestudy
//! ```

use overify::{
    compile, run_program, verify_program, BuildOptions, ExecConfig, OptLevel, SymConfig,
};

/// Listing 1, verbatim modulo MiniC syntax.
pub const WC_SOURCE: &str = r#"
int wc(unsigned char *str, int any) {
    int res = 0;
    int new_word = 1;
    for (unsigned char *p = str; *p; ++p) {
        if (isspace(*p) || (any && !isalpha(*p))) {
            new_word = 1;
        } else {
            if (new_word) {
                ++res;
                new_word = 0;
            }
        }
    }
    return res;
}
"#;

fn main() {
    let sym_bytes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);

    // A long concrete text for the t_run measurement.
    let mut text: Vec<u8> = b"lorem ipsum,dolor sit 42 amet! "
        .iter()
        .copied()
        .cycle()
        .take(8192)
        .collect();
    text.push(0);

    println!("wc case study ({sym_bytes} symbolic bytes; Table 1's shape)\n");
    println!(
        "{:<10} {:>10} {:>10} {:>8} {:>12} {:>12}",
        "level", "t_verify", "t_compile", "paths", "interp-insts", "t_run(cyc)"
    );

    for level in [OptLevel::O0, OptLevel::O2, OptLevel::O3, OptLevel::Overify] {
        let prog = compile(WC_SOURCE, &BuildOptions::level(level)).expect("compiles");
        let report = verify_program(
            &prog,
            "wc",
            &SymConfig {
                input_bytes: sym_bytes,
                pass_len_arg: false,
                extra_args: vec![overify::SymArg::Symbolic], // `any` is symbolic.
                ..Default::default()
            },
        );
        let run = run_program(&prog, "wc", &text, &[1], &ExecConfig::default());
        println!(
            "{:<10} {:>9.1?} {:>9.1?} {:>8} {:>12} {:>12}",
            level.name(),
            report.time,
            prog.compile_time,
            report.total_paths(),
            report.instructions,
            run.cycles
        );
    }

    println!("\nExpected shape (Table 1): paths O0 == O2 > O3 >> OVERIFY;");
    println!("verification time follows paths; concrete cycles are LOWEST at");
    println!("-O3 and higher again at -OVERIFY (speculation has a CPU cost).");
}
