//! A verification client: submits the coreutils workload to a running
//! `serve_daemon` and streams its progress.
//!
//! ```sh
//! cargo run --release --example serve_client -- --port 7979                  # cold sweep
//! cargo run --release --example serve_client -- --port 7979 --expect-all-hits # warm sweep
//! cargo run --release --example serve_client -- --port 7979 --shutdown       # stop the daemon
//! ```
//!
//! The job set is a deterministic slice of the suite (first `--utilities`
//! utilities × three levels, cost-descending), pipelined so the daemon's
//! cost-first scheduler — not submission order — decides execution order.
//!
//! Exit is nonzero when `--expect-all-hits` sees a miss (the daemon had to
//! verify something that should have been stored), `--expect-progress`
//! sees no mid-flight progress event for any miss (nothing streamed), or
//! `--baseline-check` finds any daemon-produced report whose deterministic
//! projection differs from a plain in-process run of the same job — the
//! distributed-verification canary: however the daemon split the work
//! (local path workers, remote worker processes), the report must be
//! byte-identical to single-process verification.

use overify::{coreutils_jobs, prepare_job, OptLevel, SuiteJob, SymConfig};
use overify_serve::{Client, Event, JobSpec};
use std::net::{Ipv4Addr, SocketAddr};
use std::time::Duration;

fn main() {
    let mut port: u16 = 7979;
    let mut utilities: usize = 8;
    let mut bytes: usize = 3;
    let mut expect_all_hits = false;
    let mut expect_progress = false;
    let mut baseline_check = false;
    let mut shutdown = false;
    let mut metrics = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--port" => port = num(&mut args, "--port") as u16,
            "--utilities" => utilities = num(&mut args, "--utilities") as usize,
            "--bytes" => bytes = num(&mut args, "--bytes") as usize,
            "--expect-all-hits" => expect_all_hits = true,
            "--expect-progress" => expect_progress = true,
            "--baseline-check" => baseline_check = true,
            "--shutdown" => shutdown = true,
            "--metrics" => metrics = true,
            _ => usage(&format!("unknown argument {arg}")),
        }
    }

    let addr = SocketAddr::from((Ipv4Addr::LOCALHOST, port));
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("serve_client: cannot reach a daemon at {addr}: {e}");
            std::process::exit(1);
        }
    };

    if metrics {
        // Scrape and print the daemon's metrics (text exposition format:
        // service-level counters, then the daemon's metrics registry).
        let text = client.metrics().expect("metrics snapshot");
        print!("{text}");
        if shutdown {
            client.shutdown().expect("shutdown acknowledged");
            println!("serve_client: daemon is shutting down");
        }
        return;
    }
    if shutdown {
        client.shutdown().expect("shutdown acknowledged");
        println!("serve_client: daemon is shutting down");
        return;
    }

    let cfg = SymConfig {
        pass_len_arg: true,
        collect_tests: true,
        max_instructions: 20_000_000,
        timeout: Duration::from_secs(60),
        ..Default::default()
    };
    // coreutils_jobs is cost-descending and deterministic; keep the first
    // `utilities` distinct utilities (all their levels) so cold runs
    // exercise the scheduler on the most expensive slice of the suite.
    let levels = [OptLevel::O0, OptLevel::O3, OptLevel::Overify];
    let mut names_in_order: Vec<String> = Vec::new();
    let jobs: Vec<SuiteJob> = coreutils_jobs(&levels, &[bytes], &cfg)
        .into_iter()
        .filter(|j| {
            if names_in_order.contains(&j.name) {
                true
            } else if names_in_order.len() < utilities {
                names_in_order.push(j.name.clone());
                true
            } else {
                false
            }
        })
        .collect();
    let specs: Vec<JobSpec> = jobs.iter().map(JobSpec::from_suite_job).collect();

    println!(
        "serve_client: submitting {} jobs ({} utilities × {} levels, {} symbolic bytes) to {addr}",
        specs.len(),
        names_in_order.len(),
        levels.len(),
        bytes
    );

    let mut progress_frames = 0u64;
    let results = client
        .submit_all_with(&specs, |ev| match ev {
            Event::Queued {
                job,
                position,
                predicted_cost,
            } => println!("  job {job}: queued at position {position} (cost ~{predicted_cost})"),
            Event::Scheduled { job } => println!("  job {job}: scheduled"),
            Event::Progress {
                job,
                runs_done,
                runs_total,
                paths,
                bugs,
                ..
            } => {
                progress_frames += 1;
                println!("  job {job}: run {runs_done}/{runs_total}, {paths} paths, {bugs} buggy");
            }
            Event::Report { job, outcome } => println!(
                "  job {job}: {} {:?} — {}",
                outcome.name,
                outcome.level,
                if outcome.from_store {
                    "from store".to_string()
                } else if let Some(e) = &outcome.error {
                    format!("build error: {e}")
                } else {
                    "verified".to_string()
                }
            ),
            _ => {}
        })
        .expect("batch completes");

    let hits = results.iter().filter(|r| r.from_store).count();
    let misses = results.len() - hits;
    let errors = results.iter().filter(|r| r.error.is_some()).count();
    let exhausted = results
        .iter()
        .filter(|r| r.error.is_none() && r.exhausted())
        .count();
    println!(
        "\nserve_client: {} jobs — {hits} store hit(s), {misses} miss(es), \
         {exhausted} exhausted, {errors} error(s), {progress_frames} progress frame(s)",
        results.len()
    );

    if baseline_check {
        // Recompute every job in this process (single-machine, no daemon,
        // no remote workers) and demand the deterministic projection of
        // each report — exhaustion, bugs, canonical tests, path set — is
        // byte-identical to what the daemon returned.
        let mut mismatches = 0usize;
        for (job, served) in jobs.iter().zip(&results) {
            if served.error.is_some() {
                continue;
            }
            let local = match prepare_job(job, false) {
                Ok(p) => p.execute(None, None, None),
                Err(_) => continue,
            };
            let agree = local.runs.len() == served.runs.len()
                && local
                    .runs
                    .iter()
                    .zip(&served.runs)
                    .all(|((bn, br), (sn, sr))| {
                        bn == sn && br.canonical_bytes() == sr.canonical_bytes()
                    });
            if !agree {
                mismatches += 1;
                eprintln!(
                    "serve_client: BASELINE MISMATCH for {} {:?}",
                    job.name, job.opts.level
                );
            }
        }
        if mismatches > 0 {
            eprintln!(
                "serve_client: FAIL — {mismatches} report(s) differ from the \
                 single-process baseline"
            );
            std::process::exit(1);
        }
        println!(
            "serve_client: baseline check passed — every report byte-identical \
             to single-process verification"
        );
    }
    if expect_all_hits && misses > 0 {
        eprintln!("serve_client: FAIL — expected every job from the store, {misses} missed");
        std::process::exit(1);
    }
    if expect_progress && misses > 0 && progress_frames == 0 {
        eprintln!("serve_client: FAIL — misses ran but nothing streamed progress");
        std::process::exit(1);
    }
    if errors > 0 {
        eprintln!("serve_client: FAIL — {errors} job(s) failed to build");
        std::process::exit(1);
    }
}

fn num(args: &mut impl Iterator<Item = String>, flag: &str) -> u64 {
    args.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a number")))
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "serve_client: {msg}\nusage: serve_client [--port P] [--utilities N] [--bytes N] \
         [--expect-all-hits] [--expect-progress] [--baseline-check] [--metrics] [--shutdown]"
    );
    std::process::exit(2);
}
