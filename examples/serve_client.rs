//! A verification client: submits the coreutils workload to a running
//! `serve_daemon` and streams its progress.
//!
//! ```sh
//! cargo run --release --example serve_client -- --port 7979                  # cold sweep
//! cargo run --release --example serve_client -- --port 7979 --expect-all-hits # warm sweep
//! cargo run --release --example serve_client -- --port 7979 --metrics fleet  # fleet scrape
//! cargo run --release --example serve_client -- --port 7979 --top            # live dashboard
//! cargo run --release --example serve_client -- --port 7979 --shutdown       # stop the daemon
//! ```
//!
//! The job set is a deterministic slice of the suite (first `--utilities`
//! utilities × three levels, cost-descending), pipelined so the daemon's
//! cost-first scheduler — not submission order — decides execution order.
//!
//! Exit is nonzero when `--expect-all-hits` sees a miss (the daemon had to
//! verify something that should have been stored), `--expect-progress`
//! sees no mid-flight progress event for any miss (nothing streamed), or
//! `--baseline-check` finds any daemon-produced report whose deterministic
//! projection differs from a plain in-process run of the same job — the
//! distributed-verification canary: however the daemon split the work
//! (local path workers, remote worker processes), the report must be
//! byte-identical to single-process verification.

use overify::{coreutils_jobs, prepare_job, OptLevel, SuiteJob, SymConfig};
use overify_serve::{Client, Event, JobSpec, MetricsScope};
use std::collections::BTreeMap;
use std::net::{Ipv4Addr, SocketAddr};
use std::time::Duration;

fn main() {
    let mut port: u16 = 7979;
    let mut utilities: usize = 8;
    let mut bytes: usize = 3;
    let mut expect_all_hits = false;
    let mut expect_progress = false;
    let mut baseline_check = false;
    let mut shutdown = false;
    let mut metrics = false;
    let mut scope = MetricsScope::Daemon;
    let mut top = false;
    let mut interval_ms: u64 = 1000;
    let mut frames: u64 = 0;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--port" => port = num(&mut args, "--port") as u16,
            "--utilities" => utilities = num(&mut args, "--utilities") as usize,
            "--bytes" => bytes = num(&mut args, "--bytes") as usize,
            "--expect-all-hits" => expect_all_hits = true,
            "--expect-progress" => expect_progress = true,
            "--baseline-check" => baseline_check = true,
            "--shutdown" => shutdown = true,
            "--metrics" => {
                metrics = true;
                // An optional scope token rides after the flag:
                // `daemon` (default), `fleet`, or `worker=<name>`.
                if let Some(tok) = args.peek() {
                    if let Some(s) = parse_scope(tok) {
                        scope = s;
                        args.next();
                    }
                }
            }
            "--top" => top = true,
            "--interval-ms" => interval_ms = num(&mut args, "--interval-ms"),
            "--frames" => frames = num(&mut args, "--frames"),
            _ => usage(&format!("unknown argument {arg}")),
        }
    }

    let addr = SocketAddr::from((Ipv4Addr::LOCALHOST, port));
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("serve_client: cannot reach a daemon at {addr}: {e}");
            std::process::exit(1);
        }
    };

    if top {
        run_top(&mut client, addr, interval_ms, frames);
        if shutdown {
            client.shutdown().expect("shutdown acknowledged");
            println!("serve_client: daemon is shutting down");
        }
        return;
    }
    if metrics {
        // Scrape and print metrics (text exposition format). Scope
        // `daemon` is the daemon process's own registry; `fleet` adds the
        // cross-worker rollup, per-worker labeled series, ring-derived
        // rates/quantiles and health gauges; `worker=<name>` is one
        // pushed table.
        let (text, _slow) = client.metrics(scope).expect("metrics snapshot");
        print!("{text}");
        if shutdown {
            client.shutdown().expect("shutdown acknowledged");
            println!("serve_client: daemon is shutting down");
        }
        return;
    }
    if shutdown {
        client.shutdown().expect("shutdown acknowledged");
        println!("serve_client: daemon is shutting down");
        return;
    }

    let cfg = SymConfig {
        pass_len_arg: true,
        collect_tests: true,
        max_instructions: 20_000_000,
        timeout: Duration::from_secs(60),
        ..Default::default()
    };
    // coreutils_jobs is cost-descending and deterministic; keep the first
    // `utilities` distinct utilities (all their levels) so cold runs
    // exercise the scheduler on the most expensive slice of the suite.
    let levels = [OptLevel::O0, OptLevel::O3, OptLevel::Overify];
    let mut names_in_order: Vec<String> = Vec::new();
    let jobs: Vec<SuiteJob> = coreutils_jobs(&levels, &[bytes], &cfg)
        .into_iter()
        .filter(|j| {
            if names_in_order.contains(&j.name) {
                true
            } else if names_in_order.len() < utilities {
                names_in_order.push(j.name.clone());
                true
            } else {
                false
            }
        })
        .collect();
    let specs: Vec<JobSpec> = jobs.iter().map(JobSpec::from_suite_job).collect();

    println!(
        "serve_client: submitting {} jobs ({} utilities × {} levels, {} symbolic bytes) to {addr}",
        specs.len(),
        names_in_order.len(),
        levels.len(),
        bytes
    );

    let mut progress_frames = 0u64;
    let results = client
        .submit_all_with(&specs, |ev| match ev {
            Event::Queued {
                job,
                position,
                predicted_cost,
            } => println!("  job {job}: queued at position {position} (cost ~{predicted_cost})"),
            Event::Scheduled { job } => println!("  job {job}: scheduled"),
            Event::Progress {
                job,
                runs_done,
                runs_total,
                paths,
                bugs,
                ..
            } => {
                progress_frames += 1;
                println!("  job {job}: run {runs_done}/{runs_total}, {paths} paths, {bugs} buggy");
            }
            Event::Report { job, outcome } => println!(
                "  job {job}: {} {:?} — {}",
                outcome.name,
                outcome.level,
                if outcome.from_store {
                    "from store".to_string()
                } else if let Some(e) = &outcome.error {
                    format!("build error: {e}")
                } else {
                    "verified".to_string()
                }
            ),
            _ => {}
        })
        .expect("batch completes");

    let hits = results.iter().filter(|r| r.from_store).count();
    let misses = results.len() - hits;
    let errors = results.iter().filter(|r| r.error.is_some()).count();
    let exhausted = results
        .iter()
        .filter(|r| r.error.is_none() && r.exhausted())
        .count();
    println!(
        "\nserve_client: {} jobs — {hits} store hit(s), {misses} miss(es), \
         {exhausted} exhausted, {errors} error(s), {progress_frames} progress frame(s)",
        results.len()
    );

    if baseline_check {
        // Recompute every job in this process (single-machine, no daemon,
        // no remote workers) and demand the deterministic projection of
        // each report — exhaustion, bugs, canonical tests, path set — is
        // byte-identical to what the daemon returned.
        let mut mismatches = 0usize;
        for (job, served) in jobs.iter().zip(&results) {
            if served.error.is_some() {
                continue;
            }
            let local = match prepare_job(job, false) {
                Ok(p) => p.execute(None, None, None),
                Err(_) => continue,
            };
            let agree = local.runs.len() == served.runs.len()
                && local
                    .runs
                    .iter()
                    .zip(&served.runs)
                    .all(|((bn, br), (sn, sr))| {
                        bn == sn && br.canonical_bytes() == sr.canonical_bytes()
                    });
            if !agree {
                mismatches += 1;
                eprintln!(
                    "serve_client: BASELINE MISMATCH for {} {:?}",
                    job.name, job.opts.level
                );
            }
        }
        if mismatches > 0 {
            eprintln!(
                "serve_client: FAIL — {mismatches} report(s) differ from the \
                 single-process baseline"
            );
            std::process::exit(1);
        }
        println!(
            "serve_client: baseline check passed — every report byte-identical \
             to single-process verification"
        );
    }
    if expect_all_hits && misses > 0 {
        eprintln!("serve_client: FAIL — expected every job from the store, {misses} missed");
        std::process::exit(1);
    }
    if expect_progress && misses > 0 && progress_frames == 0 {
        eprintln!("serve_client: FAIL — misses ran but nothing streamed progress");
        std::process::exit(1);
    }
    if errors > 0 {
        eprintln!("serve_client: FAIL — {errors} job(s) failed to build");
        std::process::exit(1);
    }
}

/// `daemon` | `fleet` | `worker=<name>`, or `None` if the token is some
/// other flag (so `--metrics --shutdown` keeps meaning "daemon scope").
fn parse_scope(tok: &str) -> Option<MetricsScope> {
    match tok {
        "daemon" => Some(MetricsScope::Daemon),
        "fleet" => Some(MetricsScope::Fleet),
        _ => tok
            .strip_prefix("worker=")
            .map(|name| MetricsScope::Worker(name.to_string())),
    }
}

/// One frame's worth of fleet scrape, split into the unlabeled rollup and
/// the `{worker="…"}` labeled series (metric → worker → value). Values
/// are parsed as plain integers; histogram `_bucket`/`_sum`/`_count`
/// lines land under their full suffixed names.
fn scrape(
    text: &str,
) -> (
    BTreeMap<String, i128>,
    BTreeMap<String, BTreeMap<String, i128>>,
) {
    let mut plain = BTreeMap::new();
    let mut labeled: BTreeMap<String, BTreeMap<String, i128>> = BTreeMap::new();
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        let Some((name_part, value_part)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(value) = value_part.parse::<i128>() else {
            continue;
        };
        if let Some((name, rest)) = name_part.split_once("{worker=\"") {
            let Some((worker, _)) = rest.split_once('"') else {
                continue;
            };
            // Skip per-worker bucket lines: the table only wants scalars.
            if rest.contains("le=\"") {
                continue;
            }
            labeled
                .entry(name.to_string())
                .or_default()
                .insert(worker.to_string(), value);
        } else if !name_part.contains('{') {
            plain.insert(name_part.to_string(), value);
        }
    }
    (plain, labeled)
}

fn fmt_rate(milli: i128) -> String {
    format!("{:.1}/s", milli as f64 / 1000.0)
}

fn fmt_ns(ns: i128) -> String {
    match ns {
        n if n >= 1_000_000_000 => format!("{:.2}s", n as f64 / 1e9),
        n if n >= 1_000_000 => format!("{:.1}ms", n as f64 / 1e6),
        n if n >= 1_000 => format!("{:.1}µs", n as f64 / 1e3),
        n => format!("{n}ns"),
    }
}

/// The live dashboard: scrapes the fleet scope every `interval_ms` and
/// redraws. `frames == 0` runs until interrupted; a finite count (used by
/// CI) draws that many frames and returns.
fn run_top(client: &mut Client, addr: SocketAddr, interval_ms: u64, frames: u64) {
    let mut frame = 0u64;
    loop {
        frame += 1;
        // The daemon can vanish between frames (restart, crash, drain) —
        // that ends the dashboard, it must not end it with a panic.
        let (text, slow) = match client.metrics(MetricsScope::Fleet) {
            Ok(snapshot) => snapshot,
            Err(e) => {
                eprintln!("serve_client: daemon at {addr} went away mid---top: {e}");
                std::process::exit(1);
            }
        };
        let (plain, labeled) = scrape(&text);
        let get = |name: &str| plain.get(name).copied().unwrap_or(0);

        let mut out = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(out, "overify --top @ {addr}  (frame {frame})");
        let _ = writeln!(
            out,
            "health  queue saturation {:.2}  |  lease reaps {}  |  tail lag {}ms",
            get("overify_health_queue_saturation_milli") as f64 / 1000.0,
            fmt_rate(get("overify_health_reap_rate_milli")),
            get("overify_health_tail_lag_ms"),
        );
        let _ = writeln!(
            out,
            "totals  submitted {}  executed {}  store hits {}  |  paths {}  sat {}  |  \
             ledger runs {}  solver {}  moved {}B",
            get("overify_serve_submitted"),
            get("overify_serve_executed"),
            get("overify_serve_answered_from_store"),
            get("overify_executor_paths_total"),
            get("overify_ledger_sat_solves_total"),
            get("overify_ledger_runs_total"),
            fmt_ns(get("overify_ledger_solver_ns_total")),
            get("overify_ledger_bytes_moved_total"),
        );

        // The busiest counters over the ring window, hottest first.
        let mut rates: Vec<(&String, i128)> = plain
            .iter()
            .filter(|(n, _)| n.ends_with("_rate_milli") && !n.starts_with("overify_health_"))
            .map(|(n, &v)| (n, v))
            .collect();
        rates.sort_by_key(|&(_, v)| std::cmp::Reverse(v));
        let _ = writeln!(out, "rates");
        for (name, v) in rates.iter().take(6) {
            let base = name.trim_end_matches("_rate_milli");
            let _ = writeln!(out, "  {base:<44} {}", fmt_rate(*v));
        }

        let mut lat: Vec<&String> = plain.keys().filter(|n| n.ends_with("_p99")).collect();
        lat.sort();
        let _ = writeln!(out, "latency (ring window)");
        for name in lat.iter().take(6) {
            let base = name.trim_end_matches("_p99");
            let _ = writeln!(
                out,
                "  {base:<44} p50 {:>10}  p99 {:>10}",
                fmt_ns(get(&format!("{base}_p50"))),
                fmt_ns(*plain.get(*name).unwrap_or(&0)),
            );
        }

        // Per-worker table from the labeled series.
        let mut workers: Vec<&String> = labeled
            .values()
            .flat_map(|per| per.keys())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        workers.sort();
        let _ = writeln!(
            out,
            "workers ({})\n  {:<24} {:>8} {:>9} {:>9} {:>10}",
            workers.len(),
            "name",
            "stolen",
            "returned",
            "verdicts",
            "paths"
        );
        let cell = |metric: &str, w: &str| {
            labeled
                .get(metric)
                .and_then(|per| per.get(w))
                .copied()
                .unwrap_or(0)
        };
        for w in &workers {
            let _ = writeln!(
                out,
                "  {w:<24} {:>8} {:>9} {:>9} {:>10}",
                cell("overify_worker_stolen_total", w),
                cell("overify_worker_states_returned_total", w),
                cell("overify_worker_verdicts_uploaded_total", w),
                cell("overify_executor_paths_total", w),
            );
        }

        let _ = writeln!(out, "slowest solver queries ({})", slow.len());
        for (fp, ns) in slow.iter().take(8) {
            let _ = writeln!(out, "  {:032x}  {}", fp, fmt_ns(*ns as i128));
        }

        if frames == 0 || frame > 1 {
            // Redraw in place (clear screen, home cursor). The very first
            // frame of a finite run prints plainly so CI logs stay clean.
            print!("\x1b[2J\x1b[H");
        }
        print!("{out}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();

        if frames != 0 && frame >= frames {
            return;
        }
        std::thread::sleep(Duration::from_millis(interval_ms.max(50)));
    }
}

fn num(args: &mut impl Iterator<Item = String>, flag: &str) -> u64 {
    args.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a number")))
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "serve_client: {msg}\nusage: serve_client [--port P] [--utilities N] [--bytes N] \
         [--expect-all-hits] [--expect-progress] [--baseline-check] \
         [--metrics [daemon|fleet|worker=<name>]] [--top] [--interval-ms N] [--frames N] \
         [--shutdown]"
    );
    std::process::exit(2);
}
