//! Optimization levels and the pass pipeline.
//!
//! | Level | Contents |
//! |---|---|
//! | `-O0` | nothing (the honest KLEE-on-unoptimized-code baseline) |
//! | `-O1` | mem2reg, folding, DCE, CFG cleanup |
//! | `-O2` | `-O1` + SROA, GVN, LICM, small inlining — *reduces instruction count but leaves the path structure intact* (Table 1: `-O2` explores exactly as many paths as `-O0`) |
//! | `-O3` | `-O2` + jump threading, unswitching, unrolling, if-conversion under the **CPU** cost model |
//! | `-OVERIFY` | the `-O3` passes under the **verification** cost model, plus program annotations and runtime checks |

use crate::cost::CostModel;
use crate::passes;
use crate::passes::checks::CheckOptions;
use crate::stats::OptStats;
use overify_ir::{Function, Module, Ty};

/// The compiler optimization switch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OptLevel {
    O0,
    O1,
    O2,
    O3,
    /// The paper's contribution: optimize for fast verification.
    Overify,
}

impl OptLevel {
    /// Command-line style name.
    pub fn name(self) -> &'static str {
        match self {
            OptLevel::O0 => "-O0",
            OptLevel::O1 => "-O1",
            OptLevel::O2 => "-O2",
            OptLevel::O3 => "-O3",
            OptLevel::Overify => "-OVERIFY",
        }
    }

    /// All levels, for sweeps.
    pub fn all() -> [OptLevel; 5] {
        [
            OptLevel::O0,
            OptLevel::O1,
            OptLevel::O2,
            OptLevel::O3,
            OptLevel::Overify,
        ]
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Pipeline configuration.
#[derive(Clone, Debug)]
pub struct PipelineOptions {
    pub level: OptLevel,
    /// Cost model override (defaults to CPU for `-O1..3`, verification for
    /// `-OVERIFY`).
    pub cost: Option<CostModel>,
    /// Insert runtime checks (default: only at `-OVERIFY`).
    pub runtime_checks: Option<bool>,
    /// Compute program annotations (default: only at `-OVERIFY`).
    pub annotations: Option<bool>,
    /// Re-verify the module after every pass (slow; on in tests).
    pub verify_each_pass: bool,
}

impl PipelineOptions {
    /// Defaults for a level.
    pub fn level(level: OptLevel) -> PipelineOptions {
        PipelineOptions {
            level,
            cost: None,
            runtime_checks: None,
            annotations: None,
            verify_each_pass: cfg!(debug_assertions),
        }
    }

    fn resolved_cost(&self) -> CostModel {
        self.cost.clone().unwrap_or_else(|| match self.level {
            OptLevel::Overify => CostModel::verification(),
            _ => CostModel::cpu(),
        })
    }
}

/// Alternates if-conversion (which needs the module for load
/// dereferenceability) with folding and CFG cleanup until stable.
fn ifconvert_fixpoint(m: &mut Module, fi: usize, cost: &CostModel, stats: &mut OptStats) -> bool {
    let mut changed = false;
    let mut f = std::mem::replace(&mut m.functions[fi], Function::new("<swap>", &[], Ty::Void));
    for _ in 0..10 {
        let c1 = passes::ifconvert::run(m, &mut f, cost, stats);
        let c2 = passes::instsimplify::run(&mut f, stats);
        let c3 = passes::simplifycfg::run(&mut f, stats);
        changed |= c1 || c2 || c3;
        if !(c1 || c2 || c3) {
            break;
        }
    }
    m.functions[fi] = f;
    changed
}

/// Runs the pipeline for `opts.level` over the module. Returns the
/// transformation statistics (Table 3's counters).
pub fn optimize(m: &mut Module, opts: &PipelineOptions) -> OptStats {
    let mut stats = OptStats::default();
    if opts.level == OptLevel::O0 {
        return stats;
    }
    let cost = opts.resolved_cost();
    let level = opts.level;
    let structural = level >= OptLevel::O3;

    let check = |m: &Module, pass: &str| {
        if let Err(e) = overify_ir::verify_module(m) {
            panic!("IR broken after pass `{pass}`: {e}");
        }
    };

    let rounds = match level {
        OptLevel::O1 => 1,
        OptLevel::O2 => 2,
        _ => 3,
    };
    for _ in 0..rounds {
        let mut changed = false;

        if level >= OptLevel::O2 {
            changed |= passes::inline::run(m, &cost, &mut stats);
            if opts.verify_each_pass {
                check(m, "inline");
            }
        }

        for fi in 0..m.functions.len() {
            if m.functions[fi].is_declaration {
                continue;
            }
            // Function passes that never need the module.
            {
                let f = &mut m.functions[fi];
                changed |= passes::mem2reg::run(f, &mut stats);
                changed |= passes::instsimplify::run(f, &mut stats);
                if level >= OptLevel::O2 {
                    changed |= passes::sroa::run(f, &mut stats);
                    changed |= passes::mem2reg::run(f, &mut stats);
                    changed |= passes::instsimplify::run(f, &mut stats);
                }
                if level >= OptLevel::O2 {
                    changed |= passes::gvn::run(f, &mut stats);
                }
                changed |= passes::dce::run(f, &mut stats);
                changed |= passes::simplifycfg::run(f, &mut stats);
                if level >= OptLevel::O2 {
                    changed |= passes::licm::run(f, &mut stats);
                }
                if structural {
                    changed |= passes::jump_threading::run(f, &mut stats);
                    changed |= passes::simplifycfg::run(f, &mut stats);
                }
            }
            if structural {
                // If-conversion runs BEFORE unswitching: a branch that
                // converts to selects (the wc loop body) needs no loop
                // duplication at all; unswitching then only fires on the
                // invariant branches speculation could not remove (bodies
                // with stores, calls, unprovable loads).
                changed |= ifconvert_fixpoint(m, fi, &cost, &mut stats);
                {
                    let f = &mut m.functions[fi];
                    changed |= passes::unswitch::run(f, &cost, &mut stats);
                    changed |= passes::simplifycfg::run(f, &mut stats);
                    changed |= passes::unroll::run(f, &cost, &mut stats);
                    changed |= passes::instsimplify::run(f, &mut stats);
                    // Threading kills the residual loop left by peeling.
                    changed |= passes::jump_threading::run(f, &mut stats);
                    changed |= passes::simplifycfg::run(f, &mut stats);
                }
                // A second round flattens the specialized loop copies.
                changed |= ifconvert_fixpoint(m, fi, &cost, &mut stats);
            }
            {
                let f = &mut m.functions[fi];
                changed |= passes::gvn::run(f, &mut stats);
                changed |= passes::dce::run(f, &mut stats);
                changed |= passes::simplifycfg::run(f, &mut stats);
            }
            if opts.verify_each_pass {
                check(m, "function-pipeline");
            }
        }

        if !changed {
            break;
        }
    }

    // -OVERIFY extras: annotations feed check elision, then a final
    // annotation round covers the check-inserted code too.
    let want_annotations = opts.annotations.unwrap_or(level == OptLevel::Overify);
    let want_checks = opts.runtime_checks.unwrap_or(level == OptLevel::Overify);
    if want_annotations {
        for f in &mut m.functions {
            if !f.is_declaration {
                passes::annotate::run(f, &mut stats);
            }
        }
    }
    if want_checks {
        let opts_c = CheckOptions {
            use_annotations: want_annotations,
            ..Default::default()
        };
        for fi in 0..m.functions.len() {
            if m.functions[fi].is_declaration {
                continue;
            }
            let mut f =
                std::mem::replace(&mut m.functions[fi], Function::new("<swap>", &[], Ty::Void));
            passes::checks::run(m, &mut f, &opts_c, &mut stats);
            m.functions[fi] = f;
        }
        if opts.verify_each_pass {
            check(m, "checks");
        }
    }
    if want_annotations {
        for f in &mut m.functions {
            if !f.is_declaration {
                passes::annotate::run(f, &mut stats);
            }
        }
    }
    if opts.verify_each_pass {
        check(m, "final");
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use overify_interp::{run_with_buffer, ExecConfig};
    use overify_ir::Terminator;

    const WC: &str = r#"
        int isspace2(int c) { return c == ' ' || c == '\t' || c == '\n'; }
        int isalpha2(int c) {
            return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
        }
        int wc(unsigned char *str, int any) {
            int res = 0;
            int new_word = 1;
            for (unsigned char *p = str; *p; ++p) {
                if (isspace2(*p) || (any && !isalpha2(*p))) {
                    new_word = 1;
                } else {
                    if (new_word) {
                        ++res;
                        new_word = 0;
                    }
                }
            }
            return res;
        }
    "#;

    fn compile_at(src: &str, level: OptLevel) -> (overify_ir::Module, OptStats) {
        let mut m = overify_lang::compile(src).unwrap();
        let stats = optimize(&mut m, &PipelineOptions::level(level));
        overify_ir::verify_module(&m).unwrap();
        (m, stats)
    }

    fn loop_condbrs(m: &overify_ir::Module, name: &str) -> usize {
        m.function(name)
            .unwrap()
            .blocks
            .iter()
            .filter(|b| matches!(b.term, Terminator::CondBr { .. }))
            .count()
    }

    #[test]
    fn wc_levels_preserve_behaviour() {
        let texts: [&[u8]; 5] = [
            b"hello world\0",
            b"a  b\tc\0",
            b"...!!!\0",
            b"\0",
            b"one, two; three\0",
        ];
        let (m0, _) = compile_at(WC, OptLevel::O0);
        for level in [OptLevel::O1, OptLevel::O2, OptLevel::O3, OptLevel::Overify] {
            let (m, _) = compile_at(WC, level);
            let cfg = ExecConfig::default();
            for any in [0u64, 1] {
                for t in texts {
                    let r0 = run_with_buffer(&m0, "wc", t, &[any], &cfg);
                    let r1 = run_with_buffer(&m, "wc", t, &[any], &cfg);
                    assert_eq!(r0.ret, r1.ret, "{level} any={any} text={t:?}");
                    assert_eq!(r0.outcome, r1.outcome, "{level}");
                }
            }
        }
    }

    #[test]
    fn overify_flattens_wc_loop_to_single_branch() {
        // The paper's headline structural claim (Listing 2): under
        // -OVERIFY the only conditional branch left in wc is the loop exit
        // test.
        let (m, stats) = compile_at(WC, OptLevel::Overify);
        assert!(stats.functions_inlined >= 2, "ctype helpers must inline");
        assert!(stats.branches_converted >= 3);
        let brs = loop_condbrs(&m, "wc");
        assert_eq!(brs, 1, "-OVERIFY wc must keep only the loop-exit branch");
    }

    #[test]
    fn overify_has_fewest_static_branches() {
        // Static branch counts: -OVERIFY is far below both baselines. (-O3
        // can match or exceed -O0's static count because unswitching
        // *duplicates* loops — it trades code size for fewer dynamic paths,
        // exactly the paper's Table 1 size column.)
        let (m0, _) = compile_at(WC, OptLevel::O0);
        let (m3, _) = compile_at(WC, OptLevel::O3);
        let (mv, _) = compile_at(WC, OptLevel::Overify);
        let (b0, b3, bv) = (
            loop_condbrs(&m0, "wc"),
            loop_condbrs(&m3, "wc"),
            loop_condbrs(&mv, "wc"),
        );
        assert!(bv < b3, "OVERIFY {bv} vs O3 {b3}");
        assert!(bv < b0, "OVERIFY {bv} vs O0 {b0}");
        assert_eq!(bv, 1, "the flattened wc keeps only the loop exit test");
    }

    #[test]
    fn o2_reduces_instructions_not_structure() {
        let (m0, _) = compile_at(WC, OptLevel::O0);
        let (m2, stats2) = compile_at(WC, OptLevel::O2);
        assert!(m2.live_inst_count() < m0.live_inst_count());
        // No structural transformations at O2.
        assert_eq!(stats2.loops_unswitched, 0);
        assert_eq!(stats2.loops_unrolled, 0);
        assert_eq!(stats2.branches_converted, 0);
        assert_eq!(stats2.jumps_threaded, 0);
    }

    #[test]
    fn overify_stats_dominate_o3_stats() {
        // Table 3's shape on a richer program.
        // The inner branch's arm is multiply-heavy: cheap enough for the
        // verification budget, too expensive for a CPU mispredict.
        let src = r#"
            int classify(int c) {
                if (c >= '0' && c <= '9') return 1;
                if (c >= 'a' && c <= 'z') return 2;
                return 0;
            }
            int process(unsigned char *buf, int flag) {
                int acc = 0;
                for (int i = 0; i < 6; i++) {
                    int c = classify(buf[i]);
                    if (flag) acc += c * c * c * c;
                    else acc -= c;
                }
                return acc;
            }
        "#;
        let (_, s3) = compile_at(src, OptLevel::O3);
        let (_, sv) = compile_at(src, OptLevel::Overify);
        assert!(
            sv.functions_inlined >= s3.functions_inlined,
            "inlined: {} vs {}",
            sv.functions_inlined,
            s3.functions_inlined
        );
        assert!(sv.branches_converted > s3.branches_converted);
        assert!(sv.loops_unrolled >= s3.loops_unrolled);
    }

    #[test]
    fn pipeline_is_deterministic() {
        let (m1, s1) = compile_at(WC, OptLevel::Overify);
        let (m2, s2) = compile_at(WC, OptLevel::Overify);
        assert_eq!(s1, s2);
        assert_eq!(
            overify_ir::print::print_module(&m1),
            overify_ir::print::print_module(&m2)
        );
    }
}
