//! `overify-opt`: the optimization pipeline behind the `-OVERIFY` switch.
//!
//! The paper's central claim is that the *same* compiler machinery serves
//! two masters with different cost models:
//!
//! * **CPU execution** — branches are nearly free, code size is precious
//!   (caches), so speculation and loop restructuring are applied sparingly.
//! * **Verification** — every conditional branch can double the number of
//!   paths a tool must explore, so a branch is worth hundreds of ALU
//!   instructions, and code size barely matters.
//!
//! [`CostModel::cpu`] and [`CostModel::verification`] encode those two
//! regimes; the pass implementations are shared. [`pipeline::optimize`]
//! assembles them into the `-O0`/`-O1`/`-O2`/`-O3`/`-OVERIFY` levels and
//! returns the [`OptStats`] counters reported in Table 3 of the paper.

pub mod cost;
pub mod passes;
pub mod pipeline;
pub mod stats;
pub mod util;

pub use cost::CostModel;
pub use pipeline::{optimize, OptLevel, PipelineOptions};
pub use stats::OptStats;
