//! Optimization statistics: the counters behind Table 3 of the paper.

use std::fmt;
use std::ops::AddAssign;

/// Counts of transformations applied during one compilation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Call sites replaced by the callee body (Table 3, "# functions
    /// inlined").
    pub functions_inlined: u64,
    /// Loops duplicated on a loop-invariant condition (Table 3, "# loops
    /// unswitched").
    pub loops_unswitched: u64,
    /// Loops fully unrolled (Table 3, "# loops unrolled").
    pub loops_unrolled: u64,
    /// Conditional branches turned into straight-line `select` code
    /// (Table 3, "# branches converted").
    pub branches_converted: u64,
    /// Jump-threading rewrites.
    pub jumps_threaded: u64,
    /// Allocas promoted to SSA registers by mem2reg.
    pub allocas_promoted: u64,
    /// Allocas split into scalars by SROA.
    pub allocas_split: u64,
    /// Instructions folded or simplified away.
    pub insts_simplified: u64,
    /// Loop-invariant instructions hoisted.
    pub insts_hoisted: u64,
    /// Runtime checks inserted.
    pub checks_inserted: u64,
    /// Runtime checks skipped because annotations proved them safe.
    pub checks_elided: u64,
    /// Value-range / trip-count facts recorded as program annotations.
    pub annotations_added: u64,
}

impl AddAssign for OptStats {
    fn add_assign(&mut self, o: OptStats) {
        self.functions_inlined += o.functions_inlined;
        self.loops_unswitched += o.loops_unswitched;
        self.loops_unrolled += o.loops_unrolled;
        self.branches_converted += o.branches_converted;
        self.jumps_threaded += o.jumps_threaded;
        self.allocas_promoted += o.allocas_promoted;
        self.allocas_split += o.allocas_split;
        self.insts_simplified += o.insts_simplified;
        self.insts_hoisted += o.insts_hoisted;
        self.checks_inserted += o.checks_inserted;
        self.checks_elided += o.checks_elided;
        self.annotations_added += o.annotations_added;
    }
}

impl fmt::Display for OptStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# functions inlined   {:>8}", self.functions_inlined)?;
        writeln!(f, "# loops unswitched    {:>8}", self.loops_unswitched)?;
        writeln!(f, "# loops unrolled      {:>8}", self.loops_unrolled)?;
        writeln!(f, "# branches converted  {:>8}", self.branches_converted)?;
        writeln!(f, "# jumps threaded      {:>8}", self.jumps_threaded)?;
        writeln!(f, "# allocas promoted    {:>8}", self.allocas_promoted)?;
        writeln!(f, "# insts simplified    {:>8}", self.insts_simplified)?;
        write!(
            f,
            "# checks ins/elided   {:>4}/{}",
            self.checks_inserted, self.checks_elided
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_accumulates() {
        let mut a = OptStats::default();
        let b = OptStats {
            functions_inlined: 3,
            branches_converted: 5,
            ..Default::default()
        };
        a += b;
        a += b;
        assert_eq!(a.functions_inlined, 6);
        assert_eq!(a.branches_converted, 10);
    }
}
