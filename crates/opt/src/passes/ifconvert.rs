//! If-conversion: turn conditional branches into straight-line `select`
//! code by speculating side-effect-free blocks.
//!
//! This is the pass that produces Listing 2 of the paper — the branch-free
//! `wc` loop body. A traditional compiler does this only when the hoisted
//! work is cheaper than a branch (GCC's `if (test) x = 0;` →
//! `x &= -(test == 0);`); under the verification cost model a branch is
//! worth ~1000 instructions, so whole nests of diamonds collapse.

use crate::cost::CostModel;
use crate::stats::OptStats;
use crate::util::provably_dereferenceable_with;
use overify_ir::{
    BinOp, BlockId, Cfg, Function, InstKind, Module, Operand, Terminator, ValueId, ValueRange,
};
use std::collections::HashMap;

/// Value-range facts used to prove variable-offset loads in bounds.
type Ranges = HashMap<ValueId, ValueRange>;

/// Runs if-conversion to a fixpoint on one function.
pub fn run(m: &Module, f: &mut Function, cost: &CostModel, stats: &mut OptStats) -> bool {
    let mut changed = false;
    for _ in 0..50 {
        // Range facts let the verification cost model speculate bounded
        // table lookups (`tab[c & 255]`). Recomputed per round: conversions
        // only add values, so stale entries stay sound.
        let ranges = if cost.speculate_loads {
            Some(crate::passes::annotate::compute_ranges(f))
        } else {
            None
        };
        if !convert_one(m, f, cost, ranges.as_ref(), stats) {
            break;
        }
        changed = true;
    }
    changed
}

/// Cost of speculating one instruction (CPU-ish weights).
fn spec_cost(kind: &InstKind) -> u64 {
    match kind {
        InstKind::Bin { op, .. } => match op {
            BinOp::Mul => 3,
            BinOp::UDiv | BinOp::SDiv | BinOp::URem | BinOp::SRem => 10,
            _ => 1,
        },
        InstKind::Load { .. } => 4,
        InstKind::Nop => 0,
        _ => 1,
    }
}

/// Whether `b`'s instructions can all be executed unconditionally; returns
/// the summed speculation cost.
fn hoistable(
    m: &Module,
    f: &Function,
    b: BlockId,
    cost: &CostModel,
    ranges: Option<&Ranges>,
) -> Option<u64> {
    let mut total = 0;
    for &id in &f.block(b).insts {
        let inst = f.inst(id);
        match &inst.kind {
            InstKind::Nop => {}
            InstKind::Load { ty, addr } => {
                if !(cost.speculate_loads
                    && provably_dereferenceable_with(m, f, *addr, ty.bytes(), ranges))
                {
                    return None;
                }
                total += spec_cost(&inst.kind);
            }
            k if k.is_speculatable() => total += spec_cost(k),
            _ => return None,
        }
    }
    Some(total)
}

fn convert_one(
    m: &Module,
    f: &mut Function,
    cost: &CostModel,
    ranges: Option<&Ranges>,
    stats: &mut OptStats,
) -> bool {
    let cfg = Cfg::compute(f);
    for a in f.block_ids().collect::<Vec<_>>() {
        let Terminator::CondBr {
            cond,
            on_true: t,
            on_false: fl,
        } = f.block(a).term
        else {
            continue;
        };
        if t == fl || t == a || fl == a {
            continue;
        }

        // Fold a chained branch into this one when they share a destination
        // (LLVM's FoldBranchToCommonDest) — this is what dissolves
        // short-circuit `&&`/`||` chains into boolean arithmetic.
        if fold_common_dest(m, f, &cfg, a, cond, t, fl, cost, ranges) {
            stats.branches_converted += 1;
            return true;
        }

        // Diamond: A -> {T, F} -> M.
        if cfg.preds(t) == [a] && cfg.preds(fl) == [a] {
            let (Terminator::Br { target: mt }, Terminator::Br { target: mf }) =
                (&f.block(t).term, &f.block(fl).term)
            else {
                continue;
            };
            let (mt, mf) = (*mt, *mf);
            if mt == mf && mt != a && mt != t && mt != fl {
                let (Some(ct), Some(cf)) = (
                    hoistable(m, f, t, cost, ranges),
                    hoistable(m, f, fl, cost, ranges),
                ) else {
                    continue;
                };
                if ct + cf > cost.branch_cost {
                    continue;
                }
                convert_diamond(f, a, cond, t, fl, mt);
                stats.branches_converted += 1;
                return true;
            }
        }

        // Triangle with the true side speculated: A -> T -> M, A -> M.
        if cfg.preds(t) == [a] {
            if let Terminator::Br { target: mn } = f.block(t).term {
                if mn == fl && mn != a && mn != t {
                    if let Some(c) = hoistable(m, f, t, cost, ranges) {
                        if c <= cost.branch_cost {
                            convert_triangle(f, a, cond, t, mn, true);
                            stats.branches_converted += 1;
                            return true;
                        }
                    }
                }
            }
        }
        // Mirror triangle: A -> F -> M, A -> M.
        if cfg.preds(fl) == [a] {
            if let Terminator::Br { target: mn } = f.block(fl).term {
                if mn == t && mn != a && mn != fl {
                    if let Some(c) = hoistable(m, f, fl, cost, ranges) {
                        if c <= cost.branch_cost {
                            convert_triangle(f, a, cond, fl, mn, false);
                            stats.branches_converted += 1;
                            return true;
                        }
                    }
                }
            }
        }
    }
    false
}

/// Folds `B`'s conditional branch into `A` when they share a successor:
///
/// ```text
///   A: condbr c1, SHARED, B        A: condbr (c1 | cb), SHARED, OTHER
///   B: condbr c2, t2, f2      =>      (B's instructions hoisted into A)
/// ```
///
/// where one of `t2`/`f2` is `SHARED`, and `cb` is `c2` (or its negation)
/// oriented toward `SHARED`. Phis in `SHARED` merge their `A`/`B` incomings
/// through a select on `c1`.
#[allow(clippy::too_many_arguments)]
fn fold_common_dest(
    m: &Module,
    f: &mut Function,
    cfg: &Cfg,
    a: BlockId,
    c1: Operand,
    on_true: BlockId,
    on_false: BlockId,
    cost: &CostModel,
    ranges: Option<&Ranges>,
) -> bool {
    for (b, shared, a_direct_on_true) in [(on_false, on_true, true), (on_true, on_false, false)] {
        if b == shared || cfg.preds(b) != [a] {
            continue;
        }
        let Terminator::CondBr {
            cond: c2,
            on_true: t2,
            on_false: f2,
        } = f.block(b).term
        else {
            continue;
        };
        if t2 == f2 {
            continue;
        }
        let (cb_positive, other) = if t2 == shared {
            (true, f2)
        } else if f2 == shared {
            (false, t2)
        } else {
            continue;
        };
        if other == a || other == b || other == shared {
            continue;
        }
        let Some(c) = hoistable(m, f, b, cost, ranges) else {
            continue;
        };
        if c > cost.branch_cost {
            continue;
        }

        // Hoist B's body, then compute the combined condition in A.
        hoist_into(f, a, b);
        let tru = Operand::Const(overify_ir::Const::bool(true));
        let mk = |f: &mut Function, kind: InstKind| -> Operand {
            f.append_inst(a, kind, Some(overify_ir::Ty::I1))
                .map(Operand::Value)
                .unwrap()
        };
        // cb: "B would go to SHARED".
        let cb = if cb_positive {
            c2
        } else {
            mk(
                f,
                InstKind::Bin {
                    op: BinOp::Xor,
                    ty: overify_ir::Ty::I1,
                    lhs: c2,
                    rhs: tru,
                },
            )
        };
        // ca: "A goes to SHARED directly".
        let ca = if a_direct_on_true {
            c1
        } else {
            mk(
                f,
                InstKind::Bin {
                    op: BinOp::Xor,
                    ty: overify_ir::Ty::I1,
                    lhs: c1,
                    rhs: tru,
                },
            )
        };
        let combined = mk(
            f,
            InstKind::Bin {
                op: BinOp::Or,
                ty: overify_ir::Ty::I1,
                lhs: ca,
                rhs: cb,
            },
        );

        // SHARED's phis: merge the A and B incomings through ca.
        let ids: Vec<_> = f.block(shared).insts.clone();
        for id in ids {
            let InstKind::Phi { ty, incomings } = f.inst(id).kind.clone() else {
                continue;
            };
            let va = incomings.iter().find(|(p, _)| *p == a).map(|(_, v)| *v);
            let vb = incomings.iter().find(|(p, _)| *p == b).map(|(_, v)| *v);
            let (Some(va), Some(vb)) = (va, vb) else {
                continue;
            };
            let merged = if va == vb {
                va
            } else {
                f.append_inst(
                    a,
                    InstKind::Select {
                        ty,
                        cond: ca,
                        on_true: va,
                        on_false: vb,
                    },
                    Some(ty),
                )
                .map(Operand::Value)
                .unwrap()
            };
            if let InstKind::Phi { incomings, .. } = &mut f.inst_mut(id).kind {
                incomings.retain(|(p, _)| *p != a && *p != b);
                incomings.push((a, merged));
            }
        }
        // OTHER's phis: the edge now comes from A.
        f.retarget_phis(other, b, a);

        f.set_term(
            a,
            Terminator::CondBr {
                cond: combined,
                on_true: shared,
                on_false: other,
            },
        );
        f.set_term(b, Terminator::Unreachable);
        return true;
    }
    false
}

/// Moves a block's instructions into `a` (before its terminator).
fn hoist_into(f: &mut Function, a: BlockId, from: BlockId) {
    let moved: Vec<_> = std::mem::take(&mut f.blocks[from.index()].insts);
    f.blocks[a.index()].insts.extend(moved);
}

fn convert_diamond(
    f: &mut Function,
    a: BlockId,
    cond: Operand,
    t: BlockId,
    fl: BlockId,
    merge: BlockId,
) {
    hoist_into(f, a, t);
    hoist_into(f, a, fl);
    // Phi (T: vt, F: vf) pairs become selects in A.
    let ids: Vec<_> = f.block(merge).insts.clone();
    for id in ids {
        let InstKind::Phi { ty, incomings } = f.inst(id).kind.clone() else {
            continue;
        };
        let vt = incomings.iter().find(|(p, _)| *p == t).map(|(_, v)| *v);
        let vf = incomings.iter().find(|(p, _)| *p == fl).map(|(_, v)| *v);
        let (Some(vt), Some(vf)) = (vt, vf) else {
            continue;
        };
        let sel = if vt == vf {
            vt
        } else {
            f.append_inst(
                a,
                InstKind::Select {
                    ty,
                    cond,
                    on_true: vt,
                    on_false: vf,
                },
                Some(ty),
            )
            .map(Operand::Value)
            .unwrap()
        };
        if let InstKind::Phi { incomings, .. } = &mut f.inst_mut(id).kind {
            incomings.retain(|(p, _)| *p != t && *p != fl);
            incomings.push((a, sel));
        }
    }
    f.set_term(a, Terminator::Br { target: merge });
    f.set_term(t, Terminator::Unreachable);
    f.set_term(fl, Terminator::Unreachable);
}

fn convert_triangle(
    f: &mut Function,
    a: BlockId,
    cond: Operand,
    side: BlockId,
    merge: BlockId,
    side_is_true: bool,
) {
    hoist_into(f, a, side);
    let ids: Vec<_> = f.block(merge).insts.clone();
    for id in ids {
        let InstKind::Phi { ty, incomings } = f.inst(id).kind.clone() else {
            continue;
        };
        let vs = incomings.iter().find(|(p, _)| *p == side).map(|(_, v)| *v);
        let va = incomings.iter().find(|(p, _)| *p == a).map(|(_, v)| *v);
        let (Some(vs), Some(va)) = (vs, va) else {
            continue;
        };
        let (on_true, on_false) = if side_is_true { (vs, va) } else { (va, vs) };
        let sel = if on_true == on_false {
            on_true
        } else {
            f.append_inst(
                a,
                InstKind::Select {
                    ty,
                    cond,
                    on_true,
                    on_false,
                },
                Some(ty),
            )
            .map(Operand::Value)
            .unwrap()
        };
        if let InstKind::Phi { incomings, .. } = &mut f.inst_mut(id).kind {
            incomings.retain(|(p, _)| *p != side && *p != a);
            incomings.push((a, sel));
        }
    }
    f.set_term(a, Terminator::Br { target: merge });
    f.set_term(side, Terminator::Unreachable);
}

#[cfg(test)]
mod tests {
    use super::*;
    use overify_interp::{run_module, ExecConfig};

    fn prep(src: &str) -> Module {
        let mut m = overify_lang::compile(src).unwrap();
        let mut stats = OptStats::default();
        for f in &mut m.functions {
            super::super::mem2reg::run(f, &mut stats);
            super::super::instsimplify::run(f, &mut stats);
            super::super::simplifycfg::run(f, &mut stats);
        }
        m
    }

    fn opt(m: &mut Module, cost: &CostModel) -> OptStats {
        let mut stats = OptStats::default();
        for i in 0..m.functions.len() {
            let mut f = std::mem::replace(
                &mut m.functions[i],
                Function::new("tmp", &[], overify_ir::Ty::Void),
            );
            // Alternate until stable so nested diamonds collapse.
            for _ in 0..10 {
                let c1 = run(m, &mut f, cost, &mut stats);
                let c2 = super::super::simplifycfg::run(&mut f, &mut stats);
                let c3 = super::super::instsimplify::run(&mut f, &mut stats);
                if !(c1 || c2 || c3) {
                    break;
                }
            }
            m.functions[i] = f;
        }
        stats
    }

    fn count_condbrs(m: &Module, name: &str) -> usize {
        m.function(name)
            .unwrap()
            .blocks
            .iter()
            .filter(|b| matches!(b.term, Terminator::CondBr { .. }))
            .count()
    }

    #[test]
    fn paper_example_conditional_store() {
        // Paper §3: GCC converts `if (test) x = 0;` into branch-free code.
        let src = "int f(int test, int x) { if (test) x = 0; return x; }";
        let mut m = prep(src);
        let stats = opt(&mut m, &CostModel::verification());
        assert!(stats.branches_converted >= 1);
        assert_eq!(count_condbrs(&m, "f"), 0);
        overify_ir::verify_module(&m).unwrap();
        let cfg = ExecConfig::default();
        for (t, x) in [(0u64, 5u64), (1, 5), (2, 7)] {
            let r = run_module(&m, "f", &[t, x], &cfg);
            assert_eq!(r.ret, Some(if t != 0 { 0 } else { x }));
        }
    }

    #[test]
    fn converts_diamond_to_select() {
        let src =
            "int maxv(int a, int b) { int m; if (a > b) { m = a; } else { m = b; } return m; }";
        let mut m = prep(src);
        let stats = opt(&mut m, &CostModel::verification());
        assert!(stats.branches_converted >= 1);
        assert_eq!(count_condbrs(&m, "maxv"), 0);
        let cfg = ExecConfig::default();
        for (a, b) in [(3u64, 9u64), (9, 3), (5, 5)] {
            let r = run_module(&m, "maxv", &[a, b], &cfg);
            assert_eq!(r.ret, Some(a.max(b)));
        }
    }

    #[test]
    fn nested_conditions_fully_flatten() {
        // The wc-style condition nest: everything speculatable.
        let src = r#"
            int f(int c, int any) {
                int r;
                if (c == 32 || (any && c > 64)) { r = 1; } else { r = 2; }
                return r;
            }
        "#;
        let mut m = prep(src);
        let mut stats = OptStats::default();
        // Jump threading first (the || produces a phi-of-const block).
        let fi = m.function_index("f").unwrap();
        super::super::jump_threading::run(&mut m.functions[fi], &mut stats);
        super::super::simplifycfg::run(&mut m.functions[fi], &mut stats);
        let st = opt(&mut m, &CostModel::verification());
        let _ = st;
        assert_eq!(count_condbrs(&m, "f"), 0, "all branches must convert");
        overify_ir::verify_module(&m).unwrap();
        let cfg = ExecConfig::default();
        for c in [32u64, 65, 10] {
            for any in [0u64, 1] {
                let r = run_module(&m, "f", &[c, any], &cfg);
                let expect = if c == 32 || (any != 0 && c > 64) {
                    1
                } else {
                    2
                };
                assert_eq!(r.ret, Some(expect), "c={c} any={any}");
            }
        }
    }

    #[test]
    fn cpu_model_keeps_expensive_branches() {
        // A heavy body (multiplies) exceeds the CPU branch budget.
        let src = r#"
            int f(int t, int x) {
                int r = 0;
                if (t) { r = x * x * x * x * x; }
                return r;
            }
        "#;
        let mut m = prep(src);
        let stats = opt(&mut m, &CostModel::cpu());
        assert_eq!(stats.branches_converted, 0);
        assert!(count_condbrs(&m, "f") >= 1);
    }

    #[test]
    fn does_not_speculate_stores_or_calls() {
        let src = r#"
            int g(int x) { return x; }
            int f(int t, int *p) {
                if (t) { *p = 1; g(2); }
                return t;
            }
        "#;
        let mut m = prep(src);
        let stats = opt(&mut m, &CostModel::verification());
        assert_eq!(stats.branches_converted, 0);
    }

    #[test]
    fn speculates_provable_loads_under_verification_model() {
        let src = r#"
            const char tab[4] = {10, 20, 30, 40};
            int f(int t) {
                int r = 0;
                if (t) { r = tab[2]; }
                return r;
            }
        "#;
        let mut m = prep(src);
        let stats = opt(&mut m, &CostModel::verification());
        assert!(stats.branches_converted >= 1);
        let cfg = ExecConfig::default();
        assert_eq!(run_module(&m, "f", &[1], &cfg).ret, Some(30));
        assert_eq!(run_module(&m, "f", &[0], &cfg).ret, Some(0));
    }
}
