//! Scalar replacement of aggregates.
//!
//! Paper §3: *"splitting large objects into independent smaller objects,
//! thereby reducing the opportunities for memory access aliasing."* An
//! alloca accessed only at constant offsets splits into one scalar alloca
//! per field, which mem2reg then promotes entirely out of memory.

use crate::stats::OptStats;
use overify_ir::{Function, InstId, InstKind, Operand, Terminator, Ty, ValueId};
use std::collections::HashMap;

/// Runs SROA on one function.
pub fn run(f: &mut Function, stats: &mut OptStats) -> bool {
    let candidates = find_candidates(f);
    if candidates.is_empty() {
        return false;
    }
    let mut changed = false;
    for c in candidates {
        split(f, &c);
        stats.allocas_split += 1;
        changed = true;
    }
    if changed {
        f.purge_nops();
    }
    changed
}

struct Candidate {
    alloca: InstId,
    /// Constant-offset pointer derivations to drop.
    ptradds: Vec<InstId>,
    /// (offset, width) -> accesses rewritten to the new scalar.
    fields: HashMap<(u64, u64), Vec<InstId>>,
}

fn find_candidates(f: &Function) -> Vec<Candidate> {
    // alloca value -> size.
    let mut allocas: HashMap<ValueId, (InstId, u64)> = HashMap::new();
    for b in f.block_ids() {
        for &id in &f.block(b).insts {
            if let InstKind::Alloca { size } = f.inst(id).kind {
                if let Some(r) = f.inst(id).result {
                    allocas.insert(r, (id, size));
                }
            }
        }
    }
    if allocas.is_empty() {
        return Vec::new();
    }

    // ptradd(alloca, const) results and their base/offset.
    let mut derived: HashMap<ValueId, (ValueId, u64)> = HashMap::new();
    for b in f.block_ids() {
        for &id in &f.block(b).insts {
            if let InstKind::PtrAdd {
                base: Operand::Value(bv),
                offset: Operand::Const(c),
            } = &f.inst(id).kind
            {
                if allocas.contains_key(bv) {
                    if let Some(r) = f.inst(id).result {
                        derived.insert(r, (*bv, c.bits));
                    }
                }
            }
        }
    }

    // Classify every use; disqualify allocas with non-splittable uses.
    let mut bad: HashMap<ValueId, bool> = HashMap::new();
    let mut accesses: HashMap<ValueId, Vec<(u64, u64, InstId)>> = HashMap::new();
    let mut ptradd_of: HashMap<ValueId, Vec<InstId>> = HashMap::new();
    let base_of = |v: &ValueId| -> Option<(ValueId, u64)> {
        if allocas.contains_key(v) {
            Some((*v, 0))
        } else {
            derived.get(v).copied()
        }
    };

    for b in f.block_ids() {
        for &id in &f.block(b).insts {
            let inst = f.inst(id);
            match &inst.kind {
                InstKind::Load { ty, addr } => {
                    if let Some(v) = addr.as_value() {
                        if let Some((base, off)) = base_of(&v) {
                            accesses
                                .entry(base)
                                .or_default()
                                .push((off, ty.bytes(), id));
                        }
                    }
                }
                InstKind::Store { ty, addr, value } => {
                    if let Some(v) = value.as_value() {
                        if allocas.contains_key(&v) || derived.contains_key(&v) {
                            if let Some((base, _)) = base_of(&v) {
                                bad.insert(base, true);
                            }
                        }
                    }
                    if let Some(v) = addr.as_value() {
                        if let Some((base, off)) = base_of(&v) {
                            accesses
                                .entry(base)
                                .or_default()
                                .push((off, ty.bytes(), id));
                        }
                    }
                }
                InstKind::PtrAdd { base, offset } => {
                    if let Some(v) = base.as_value() {
                        if let Some((root, _)) = base_of(&v) {
                            match offset {
                                Operand::Const(_) if allocas.contains_key(&v) => {
                                    ptradd_of.entry(root).or_default().push(id);
                                }
                                _ => {
                                    // Variable offset or chained derivation:
                                    // give up on this alloca.
                                    bad.insert(root, true);
                                }
                            }
                        }
                    }
                    if let Some(v) = offset.as_value() {
                        if let Some((root, _)) = base_of(&v) {
                            bad.insert(root, true);
                        }
                    }
                }
                other => {
                    other.for_each_operand(|op| {
                        if let Some(v) = op.as_value() {
                            if let Some((root, _)) = base_of(&v) {
                                bad.insert(root, true);
                            }
                        }
                    });
                }
            }
        }
        match &f.block(b).term {
            Terminator::CondBr { cond, .. } => {
                if let Some(v) = cond.as_value() {
                    if let Some((root, _)) = base_of(&v) {
                        bad.insert(root, true);
                    }
                }
            }
            Terminator::Ret { value: Some(v) } => {
                if let Some(v) = v.as_value() {
                    if let Some((root, _)) = base_of(&v) {
                        bad.insert(root, true);
                    }
                }
            }
            _ => {}
        }
    }

    let mut out = Vec::new();
    'alloca: for (av, (aid, size)) in allocas {
        if bad.get(&av).copied().unwrap_or(false) {
            continue;
        }
        let Some(accs) = accesses.get(&av) else {
            continue;
        };
        // Group by (offset, width); ranges must be identical or disjoint,
        // and at least two distinct fields must exist (otherwise mem2reg
        // alone handles it).
        let mut fields: HashMap<(u64, u64), Vec<InstId>> = HashMap::new();
        for &(off, w, id) in accs {
            if off + w > size {
                continue 'alloca; // Statically OOB: let the engines trap it.
            }
            fields.entry((off, w)).or_default().push(id);
        }
        let keys: Vec<(u64, u64)> = fields.keys().copied().collect();
        for (i, &(o1, w1)) in keys.iter().enumerate() {
            for &(o2, w2) in &keys[i + 1..] {
                let disjoint = o1 + w1 <= o2 || o2 + w2 <= o1;
                if !disjoint {
                    continue 'alloca;
                }
            }
        }
        if keys.len() < 2 {
            continue;
        }
        out.push(Candidate {
            alloca: aid,
            ptradds: ptradd_of.get(&av).cloned().unwrap_or_default(),
            fields,
        });
    }
    out.sort_by_key(|c| c.alloca);
    out
}

fn split(f: &mut Function, c: &Candidate) {
    // Locate the alloca's block/position so the scalars land there.
    let mut place = None;
    'find: for b in f.block_ids() {
        for (i, &id) in f.block(b).insts.iter().enumerate() {
            if id == c.alloca {
                place = Some((b, i));
                break 'find;
            }
        }
    }
    let Some((b, pos)) = place else { return };

    let mut fields: Vec<(&(u64, u64), &Vec<InstId>)> = c.fields.iter().collect();
    fields.sort_by_key(|(k, _)| **k);
    for ((_, width), users) in fields {
        let nv = f
            .insert_inst(b, pos, InstKind::Alloca { size: *width }, Some(Ty::Ptr))
            .unwrap();
        for &uid in users {
            match &mut f.inst_mut(uid).kind {
                InstKind::Load { addr, .. } => *addr = Operand::Value(nv),
                InstKind::Store { addr, .. } => *addr = Operand::Value(nv),
                _ => {}
            }
        }
    }
    f.kill_inst(c.alloca);
    for &p in &c.ptradds {
        f.kill_inst(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overify_interp::{run_module, ExecConfig};

    #[test]
    fn splits_fixed_offset_buffer() {
        let src = r#"
            int f(int a, int b) {
                int pair[2];
                pair[0] = a;
                pair[1] = b;
                return pair[0] * pair[1];
            }
        "#;
        let mut m = overify_lang::compile(src).unwrap();
        let mut stats = OptStats::default();
        let fi = m.function_index("f").unwrap();
        // Fold the constant index scaling so offsets become literal.
        super::super::instsimplify::run(&mut m.functions[fi], &mut stats);
        assert!(run(&mut m.functions[fi], &mut stats));
        assert_eq!(stats.allocas_split, 1);
        overify_ir::verify_module(&m).unwrap();
        // After SROA + mem2reg no memory traffic remains.
        super::super::mem2reg::run(&mut m.functions[fi], &mut stats);
        let f = m.function("f").unwrap();
        assert!(!f
            .insts
            .iter()
            .any(|i| matches!(i.kind, InstKind::Load { .. } | InstKind::Store { .. })));
        let r = run_module(&m, "f", &[6, 7], &ExecConfig::default());
        assert_eq!(r.ret, Some(42));
    }

    #[test]
    fn variable_index_disqualifies() {
        let src = r#"
            int f(int i) {
                int arr[4];
                arr[0] = 1; arr[1] = 2; arr[2] = 3; arr[3] = 4;
                return arr[i];
            }
        "#;
        let mut m = overify_lang::compile(src).unwrap();
        let mut stats = OptStats::default();
        let fi = m.function_index("f").unwrap();
        assert!(!run(&mut m.functions[fi], &mut stats));
        let r = run_module(&m, "f", &[2], &ExecConfig::default());
        assert_eq!(r.ret, Some(3));
    }

    #[test]
    fn escaping_buffer_disqualifies() {
        let src = r#"
            int g(int *p) { return p[0]; }
            int f() {
                int pair[2];
                pair[0] = 9; pair[1] = 1;
                return g(pair);
            }
        "#;
        let mut m = overify_lang::compile(src).unwrap();
        let mut stats = OptStats::default();
        let fi = m.function_index("f").unwrap();
        assert!(!run(&mut m.functions[fi], &mut stats));
    }

    #[test]
    fn overlapping_widths_disqualify() {
        // i32 store overlapping i8 loads through the same buffer.
        let src = r#"
            int f() {
                char buf[4];
                int *p = (char*)buf;
                buf[0] = 1;
                return buf[0] + buf[1];
            }
        "#;
        // MiniC has no char*->int* cast, so build the conflict directly.
        let _ = src;
        let mut f = Function::new("t", &[], Ty::I32);
        let mut c = overify_ir::Cursor::new(&mut f);
        let a = c.alloca(4);
        c.store(Ty::I32, c.imm(Ty::I32, 0x01020304), a);
        let lo = c.load(Ty::I8, a);
        let z = c.cast(overify_ir::CastOp::Zext, Ty::I32, lo);
        c.ret(Some(z));
        let mut stats = OptStats::default();
        assert!(!run(&mut f, &mut stats));
    }
}
