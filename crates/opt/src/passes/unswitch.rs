//! Loop unswitching.
//!
//! The paper's motivating example (§1): at `-O3` the compiler unswitches the
//! loop in `wc` on the loop-invariant condition `any != 0`, emitting
//! simplified copies of the loop body for each case. This cuts the paths
//! through `wc` from O(3^n) to O(2^n). Under the verification cost model
//! the pass accepts far bigger loops and more duplication (Table 3 shows
//! 3,022 unswitched loops at `-OSYMBEX` vs 377 at `-O3`).

use crate::cost::CostModel;
use crate::stats::OptStats;
use crate::util::{clone_region, inst_blocks, make_loop_closed};
use overify_ir::{
    Cfg, Const, DomTree, Function, InstKind, LoopForest, Operand, Terminator, ValueDef,
};

/// Runs unswitching on one function, up to the cost model's per-function
/// budget.
pub fn run(f: &mut Function, cost: &CostModel, stats: &mut OptStats) -> bool {
    let mut done = 0usize;
    while done < cost.unswitch_per_function {
        if !unswitch_one(f, cost, stats) {
            break;
        }
        done += 1;
    }
    done > 0
}

fn unswitch_one(f: &mut Function, cost: &CostModel, stats: &mut OptStats) -> bool {
    let cfg = Cfg::compute(f);
    let dom = DomTree::compute(&cfg);
    let forest = LoopForest::compute(&cfg, &dom);
    let blocks_of = inst_blocks(f);

    for lp in &forest.loops {
        let size: usize = lp.blocks.iter().map(|&b| f.block(b).insts.len()).sum();
        if size > cost.unswitch_size_limit {
            continue;
        }
        // Find a conditional branch on a loop-invariant condition. The
        // condition value may itself be computed inside the loop from
        // invariant operands (`flag != 0`); such a chain is hoisted to the
        // preheader before duplication.
        let mut candidate = None;
        // `Loop::blocks` is an ordered set, so this walk is deterministic.
        let blocks: Vec<_> = lp.blocks.iter().copied().collect();
        'search: for &b in &blocks {
            if let Terminator::CondBr {
                cond: Operand::Value(v),
                on_true,
                on_false,
            } = f.block(b).term
            {
                if on_true == on_false {
                    continue;
                }
                if let Some(chain) = invariant_chain(f, lp, &blocks_of, v) {
                    candidate = Some((b, Operand::Value(v), chain));
                    break 'search;
                }
            }
        }
        let Some((branch_block, cond, hoist_chain)) = candidate else {
            continue;
        };

        // Structural prerequisites. Exits are re-dedicated first: after a
        // previous unswitch the sibling copy shares the exit block, which
        // would otherwise block loop closure.
        if crate::util::ensure_dedicated_exits(f, lp) {
            // The CFG (and this loop's exit list) changed; retry from a
            // fresh analysis.
            return unswitch_one_retry(f, cost, stats);
        }
        if !make_loop_closed(f, lp) {
            continue;
        }
        let cfg = Cfg::compute(f);
        let outside: Vec<_> = cfg
            .preds(lp.header)
            .iter()
            .copied()
            .filter(|p| !lp.contains(*p))
            .collect();
        if outside.len() != 1 {
            continue;
        }
        let pre = overify_ir::loops::ensure_preheader(f, lp);

        // Hoist the condition chain (dependencies first) so the preheader
        // can branch on it.
        let mut remaining = hoist_chain.clone();
        while !remaining.is_empty() {
            let mut progressed = false;
            for i in 0..remaining.len() {
                let id = remaining[i];
                let mut ready = true;
                f.inst(id).kind.for_each_operand(|op| {
                    if let Operand::Value(d) = op {
                        if let ValueDef::Inst(di) = f.values[d.index()].def {
                            if di != id && remaining.contains(&di) {
                                ready = false;
                            }
                        }
                    }
                });
                if !ready {
                    continue;
                }
                if let Some(db) = crate::util::inst_blocks(f)[id.index()] {
                    let pos = f.blocks[db.index()]
                        .insts
                        .iter()
                        .position(|&x| x == id)
                        .unwrap();
                    f.blocks[db.index()].insts.remove(pos);
                    f.blocks[pre.index()].insts.push(id);
                }
                remaining.remove(i);
                progressed = true;
                break;
            }
            assert!(progressed, "dependency cycle in invariant chain");
        }

        // Clone the loop: the original becomes the condition-true version.
        let map = clone_region(f, &blocks, "unsw");

        // Route the preheader through the condition.
        f.set_term(
            pre,
            Terminator::CondBr {
                cond,
                on_true: lp.header,
                on_false: map.block(lp.header),
            },
        );

        // Exit-block phis gain incomings from the cloned exiting blocks.
        for &exit in &lp.exits {
            let ids: Vec<_> = f.block(exit).insts.clone();
            for id in ids {
                if let InstKind::Phi { incomings, .. } = &f.inst(id).kind {
                    let adds: Vec<(overify_ir::BlockId, Operand)> = incomings
                        .iter()
                        .filter(|(p, _)| lp.contains(*p))
                        .map(|(p, v)| (map.block(*p), map.operand(*v)))
                        .collect();
                    if let InstKind::Phi { incomings, .. } = &mut f.inst_mut(id).kind {
                        incomings.extend(adds);
                    }
                }
            }
        }

        // Specialize both versions: the branch condition is decided.
        let set_decided = |f: &mut Function, b: overify_ir::BlockId, val: bool| {
            if let Terminator::CondBr {
                on_true, on_false, ..
            } = f.block(b).term
            {
                f.set_term(
                    b,
                    Terminator::CondBr {
                        cond: Operand::Const(Const::bool(val)),
                        on_true,
                        on_false,
                    },
                );
            }
        };
        set_decided(f, branch_block, true);
        set_decided(f, map.block(branch_block), false);

        stats.loops_unswitched += 1;
        return true;
    }
    false
}

/// Re-entry point after exit dedication changed the CFG: recurse once with
/// fresh analyses (bounded by the caller's budget loop).
fn unswitch_one_retry(f: &mut Function, cost: &CostModel, stats: &mut OptStats) -> bool {
    unswitch_one(f, cost, stats)
}

/// If `v` is loop-invariant, returns the (possibly empty) chain of in-loop
/// speculatable instructions that must be hoisted to make it available
/// outside, in use-before-def order. `None` when `v` is genuinely variant.
fn invariant_chain(
    f: &Function,
    lp: &overify_ir::Loop,
    blocks_of: &[Option<overify_ir::BlockId>],
    v: overify_ir::ValueId,
) -> Option<Vec<overify_ir::InstId>> {
    let mut chain = Vec::new();
    let mut work = vec![v];
    while let Some(v) = work.pop() {
        let id = match f.values[v.index()].def {
            ValueDef::Param(_) => continue,
            ValueDef::Inst(i) => i,
        };
        let db = blocks_of[id.index()]?;
        if !lp.contains(db) {
            continue; // Already outside.
        }
        let inst = f.inst(id);
        if !inst.kind.is_speculatable() || chain.len() >= 6 {
            return None;
        }
        if !chain.contains(&id) {
            chain.push(id);
        }
        let mut deps = Vec::new();
        inst.kind.for_each_operand(|op| {
            if let Operand::Value(d) = op {
                deps.push(*d);
            }
        });
        work.extend(deps);
    }
    Some(chain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use overify_interp::{run_module, run_with_buffer, ExecConfig};

    fn prep(src: &str) -> overify_ir::Module {
        let mut m = overify_lang::compile(src).unwrap();
        let mut stats = OptStats::default();
        for f in &mut m.functions {
            super::super::mem2reg::run(f, &mut stats);
            super::super::instsimplify::run(f, &mut stats);
            super::super::simplifycfg::run(f, &mut stats);
        }
        m
    }

    #[test]
    fn unswitches_invariant_condition() {
        let src = r#"
            int f(int n, int flag) {
                int s = 0;
                for (int i = 0; i < n; i++) {
                    if (flag) { s += 2; } else { s += 3; }
                }
                return s;
            }
        "#;
        let mut m = prep(src);
        let mut stats = OptStats::default();
        let fi = m.function_index("f").unwrap();
        assert!(run(
            &mut m.functions[fi],
            &CostModel::verification(),
            &mut stats
        ));
        assert_eq!(stats.loops_unswitched, 1);
        overify_ir::verify_module(&m).unwrap();
        // Behaviour must be identical on both flag settings.
        let cfg = ExecConfig::default();
        for (n, flag) in [(5u64, 0u64), (5, 1), (0, 1)] {
            let r = run_module(&m, "f", &[n, flag], &cfg);
            let expect = if flag != 0 { n * 2 } else { n * 3 };
            assert_eq!(r.ret, Some(expect), "n={n} flag={flag}");
        }
        // After simplification the two versions have straight-line bodies.
        super::super::simplifycfg::run(&mut m.functions[fi], &mut stats);
        overify_ir::verify_module(&m).unwrap();
        for (n, flag) in [(7u64, 0u64), (7, 1)] {
            let r = run_module(&m, "f", &[n, flag], &cfg);
            let expect = if flag != 0 { n * 2 } else { n * 3 };
            assert_eq!(r.ret, Some(expect));
        }
    }

    #[test]
    fn respects_size_budget() {
        let src = r#"
            int f(int n, int flag) {
                int s = 0;
                for (int i = 0; i < n; i++) {
                    if (flag) { s += 2; } else { s += 3; }
                    s = s * 3 + s * 5 + s * 7 + s * 11 + s * 13;
                    s = s ^ (s >> 3) ^ (s << 2) ^ (s >> 7);
                }
                return s;
            }
        "#;
        let mut m = prep(src);
        let mut stats = OptStats::default();
        let mut tiny = CostModel::cpu();
        tiny.unswitch_size_limit = 2;
        let fi = m.function_index("f").unwrap();
        assert!(!run(&mut m.functions[fi], &tiny, &mut stats));
        assert_eq!(stats.loops_unswitched, 0);
    }

    #[test]
    fn wc_like_loop_with_buffer() {
        // The motivating structure: scan a string, invariant `any` flag.
        let src = r#"
            int wcish(unsigned char *p, int any) {
                int res = 0;
                int i = 0;
                while (p[i]) {
                    if (any) {
                        if (p[i] == 32) res++;
                    } else {
                        if (p[i] == 32 || p[i] == 9) res++;
                    }
                    i++;
                }
                return res;
            }
        "#;
        let m0 = prep(src);
        let mut m1 = m0.clone();
        let mut stats = OptStats::default();
        let fi = m1.function_index("wcish").unwrap();
        run(
            &mut m1.functions[fi],
            &CostModel::verification(),
            &mut stats,
        );
        super::super::simplifycfg::run(&mut m1.functions[fi], &mut stats);
        overify_ir::verify_module(&m1).unwrap();
        assert!(stats.loops_unswitched >= 1);
        let cfg = ExecConfig::default();
        for any in [0u64, 1] {
            for text in [&b"a b\tc\0"[..], b"  x \0", b"\0"] {
                let r0 = run_with_buffer(&m0, "wcish", text, &[any], &cfg);
                let r1 = run_with_buffer(&m1, "wcish", text, &[any], &cfg);
                assert_eq!(r0.ret, r1.ret, "any={any} text={text:?}");
            }
        }
    }
}
