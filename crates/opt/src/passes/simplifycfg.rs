//! CFG cleanup: fold constant branches, drop unreachable blocks, merge
//! straight-line block chains and bypass empty forwarding blocks.
//!
//! Runs after every structural pass; it is what turns "the unswitched loop
//! version where the condition folded to false" into actually smaller code.

use crate::stats::OptStats;
use crate::util::{apply_replacements, compact_blocks};
use overify_ir::{Cfg, Function, InstId, InstKind, Operand, Terminator};
use std::collections::HashMap;

/// Runs CFG simplification to a fixpoint on one function.
pub fn run(f: &mut Function, stats: &mut OptStats) -> bool {
    let mut changed = false;
    for _ in 0..20 {
        let mut local = false;
        local |= fold_const_branches(f);
        local |= compact_blocks(f);
        local |= merge_chains(f);
        local |= skip_forwarders(f);
        if !local {
            break;
        }
        stats.insts_simplified += 1;
        changed = true;
    }
    changed
}

/// `condbr const, a, b` -> `br`, and `condbr c, x, x` -> `br x`.
fn fold_const_branches(f: &mut Function) -> bool {
    let mut changed = false;
    for b in f.block_ids().collect::<Vec<_>>() {
        match f.block(b).term.clone() {
            Terminator::CondBr {
                cond: Operand::Const(c),
                on_true,
                on_false,
            } => {
                let (taken, dead) = if c.bits != 0 {
                    (on_true, on_false)
                } else {
                    (on_false, on_true)
                };
                f.set_term(b, Terminator::Br { target: taken });
                if dead != taken {
                    f.remove_phi_edge(dead, b);
                }
                changed = true;
            }
            Terminator::CondBr {
                on_true, on_false, ..
            } if on_true == on_false => {
                f.set_term(b, Terminator::Br { target: on_true });
                changed = true;
            }
            _ => {}
        }
    }
    changed
}

/// Merges `b -> s` when `s` is `b`'s unique successor and `b` is `s`'s
/// unique predecessor.
fn merge_chains(f: &mut Function) -> bool {
    let mut changed = false;
    loop {
        let cfg = Cfg::compute(f);
        let mut merged = false;
        for b in f.block_ids().collect::<Vec<_>>() {
            let Terminator::Br { target: s } = f.block(b).term else {
                continue;
            };
            if s == b || s == f.entry() || cfg.preds(s) != [b] {
                continue;
            }
            // Phis in `s` have one incoming; they become aliases.
            let mut repl: HashMap<overify_ir::ValueId, Operand> = HashMap::new();
            let s_insts: Vec<InstId> = f.block(s).insts.clone();
            let mut keep: Vec<InstId> = Vec::new();
            for id in s_insts {
                match &f.inst(id).kind {
                    InstKind::Phi { incomings, .. } => {
                        let result = f.inst(id).result.unwrap();
                        let op = incomings
                            .first()
                            .map(|(_, op)| *op)
                            .unwrap_or(Operand::Const(overify_ir::Const::zero(f.value_ty(result))));
                        repl.insert(result, op);
                        f.kill_inst(id);
                    }
                    InstKind::Nop => {}
                    _ => keep.push(id),
                }
            }
            // Splice.
            let term = f.block(s).term.clone();
            f.blocks[s.index()].insts.clear();
            f.set_term(s, Terminator::Unreachable);
            f.blocks[b.index()].insts.extend(keep);
            for succ in term.successors() {
                f.retarget_phis(succ, s, b);
            }
            f.set_term(b, term);
            apply_replacements(f, &repl);
            merged = true;
            changed = true;
            break; // CFG snapshot is stale; recompute.
        }
        if !merged {
            return changed;
        }
    }
}

/// Redirects predecessors of an empty block that only branches onward,
/// when the destination has no phis (so no merge bookkeeping is needed).
fn skip_forwarders(f: &mut Function) -> bool {
    let mut changed = false;
    for b in f.block_ids().collect::<Vec<_>>() {
        if b == f.entry() {
            continue;
        }
        let block = f.block(b);
        if !block
            .insts
            .iter()
            .all(|&i| matches!(f.inst(i).kind, InstKind::Nop))
        {
            continue;
        }
        let Terminator::Br { target } = block.term else {
            continue;
        };
        if target == b {
            continue;
        }
        // Destination must be phi-free.
        let has_phi = f
            .block(target)
            .insts
            .iter()
            .any(|&i| matches!(f.inst(i).kind, InstKind::Phi { .. }));
        if has_phi {
            continue;
        }
        let cfg = Cfg::compute(f);
        let preds: Vec<_> = cfg.preds(b).to_vec();
        if preds.is_empty() {
            continue;
        }
        for p in preds {
            f.block_mut(p).term.retarget(b, target);
            changed = true;
        }
        // `b` is now unreachable; compaction removes it.
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use overify_ir::{Const, Cursor, Module, Ty};

    #[test]
    fn folds_constant_condbr_and_removes_dead_arm() {
        let mut f = Function::new("t", &[], Ty::I32);
        let mut c = Cursor::new(&mut f);
        let t = c.add_block("t");
        let e = c.add_block("e");
        c.condbr(Operand::Const(Const::bool(true)), t, e);
        c.at(t);
        c.ret(Some(c.imm(Ty::I32, 1)));
        c.at(e);
        c.ret(Some(c.imm(Ty::I32, 2)));
        let mut stats = OptStats::default();
        assert!(run(&mut f, &mut stats));
        // Everything merges into one block returning 1.
        assert_eq!(f.blocks.len(), 1);
        match f.blocks[0].term {
            Terminator::Ret {
                value: Some(Operand::Const(c)),
            } => assert_eq!(c.bits, 1),
            ref t => panic!("{t:?}"),
        }
    }

    #[test]
    fn merges_straightline_chains() {
        let src = "int f(int x) { int y = x + 1; { int z = y * 2; return z; } }";
        let mut m = overify_lang::compile(src).unwrap();
        let mut stats = OptStats::default();
        let fi = m.function_index("f").unwrap();
        run(&mut m.functions[fi], &mut stats);
        overify_ir::verify_module(&m).unwrap();
    }

    #[test]
    fn single_pred_phi_becomes_alias() {
        // entry -> a -> m with a phi in m having one incoming.
        let mut f = Function::new("t", &[Ty::I32], Ty::I32);
        let p = Operand::Value(f.params[0]);
        let mut c = Cursor::new(&mut f);
        let a = c.add_block("a");
        let m = c.add_block("m");
        c.br(a);
        c.at(a);
        c.br(m);
        c.at(m);
        let phi = c.phi(Ty::I32, vec![(a, p)]);
        c.ret(Some(Operand::Value(phi)));
        let mut stats = OptStats::default();
        run(&mut f, &mut stats);
        assert_eq!(f.blocks.len(), 1);
        match f.blocks[0].term {
            Terminator::Ret { value: Some(v) } => assert_eq!(v, p),
            ref t => panic!("{t:?}"),
        }
        let mut module = Module::new();
        module.functions.push(f);
        overify_ir::verify_module(&module).unwrap();
    }

    #[test]
    fn behaviour_preserved_on_branchy_program() {
        let src = r#"
            int classify(int x) {
                if (x < 0) { if (x < -100) return -2; return -1; }
                if (x == 0) return 0;
                if (x > 100) return 2;
                return 1;
            }
        "#;
        let m0 = overify_lang::compile(src).unwrap();
        let mut m1 = m0.clone();
        let mut stats = OptStats::default();
        for f in &mut m1.functions {
            super::super::mem2reg::run(f, &mut stats);
            super::super::instsimplify::run(f, &mut stats);
            run(f, &mut stats);
        }
        overify_ir::verify_module(&m1).unwrap();
        let cfg = overify_interp::ExecConfig::default();
        for x in [-200i64, -50, 0, 1, 50, 101] {
            let xa = (x as u64) & 0xffff_ffff;
            let r0 = overify_interp::run_module(&m0, "classify", &[xa], &cfg);
            let r1 = overify_interp::run_module(&m1, "classify", &[xa], &cfg);
            assert_eq!(r0.ret, r1.ret, "x={x}");
        }
    }
}
