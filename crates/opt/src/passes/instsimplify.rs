//! Constant folding and algebraic simplification.
//!
//! Paper §3, "Instruction simplification": standard simplifications "are good
//! for execution speed, but can be even better for verification" — a folded
//! comparison is a solver query that never happens.

use crate::stats::OptStats;
use crate::util::apply_replacements;
use overify_ir::{
    fold, BinOp, CastOp, CmpPred, Const, Function, InstKind, Operand, Ty, ValueDef, ValueId,
};
use std::collections::HashMap;

/// Runs folding/simplification to a local fixpoint on one function.
pub fn run(f: &mut Function, stats: &mut OptStats) -> bool {
    let mut changed = false;
    for _ in 0..10 {
        if !round(f, stats) {
            break;
        }
        changed = true;
    }
    changed
}

/// The definition of `op`, if it is a value defined by an instruction.
fn def_of(f: &Function, op: Operand) -> Option<&InstKind> {
    let v = op.as_value()?;
    match f.values[v.index()].def {
        ValueDef::Inst(i) => Some(&f.inst(i).kind),
        ValueDef::Param(_) => None,
    }
}

fn round(f: &mut Function, stats: &mut OptStats) -> bool {
    let mut repl: HashMap<ValueId, Operand> = HashMap::new();
    let mut rewrites: Vec<(usize, InstKind)> = Vec::new();

    for b in f.block_ids() {
        for &id in &f.block(b).insts {
            let inst = f.inst(id);
            let Some(result) = inst.result else { continue };
            let outcome = simplify(f, &inst.kind);
            match outcome {
                Simplified::None => {}
                Simplified::Replace(op) => {
                    if op != Operand::Value(result) {
                        repl.insert(result, op);
                    }
                }
                Simplified::Rewrite(kind) => rewrites.push((id.index(), kind)),
            }
        }
    }

    let changed = !repl.is_empty() || !rewrites.is_empty();
    stats.insts_simplified += repl.len() as u64 + rewrites.len() as u64;
    for (idx, kind) in rewrites {
        f.insts[idx].kind = kind;
    }
    // Kill the defs of replaced values so they don't linger.
    let killed: Vec<ValueId> = repl.keys().copied().collect();
    apply_replacements(f, &repl);
    for v in killed {
        if let ValueDef::Inst(i) = f.values[v.index()].def {
            f.kill_inst(i);
        }
    }
    f.purge_nops();
    changed
}

enum Simplified {
    None,
    /// The instruction's result equals this operand.
    Replace(Operand),
    /// The instruction should be rewritten in place.
    Rewrite(InstKind),
}

fn cnst(ty: Ty, bits: u64) -> Operand {
    Operand::Const(Const::new(ty, bits))
}

fn simplify(f: &Function, kind: &InstKind) -> Simplified {
    match kind {
        InstKind::Bin { op, ty, lhs, rhs } => simplify_bin(f, *op, *ty, *lhs, *rhs),
        InstKind::Cmp { pred, ty, lhs, rhs } => simplify_cmp(f, *pred, *ty, *lhs, *rhs),
        InstKind::Cast { op, to, value } => {
            let from = f.operand_ty(*value);
            if let Operand::Const(c) = value {
                return Simplified::Replace(cnst(*to, fold::eval_cast(*op, from, *to, c.bits)));
            }
            // trunc/zext/sext of a widening cast collapses to one cast from
            // the original source.
            if let Some(InstKind::Cast {
                op: inner_op,
                value: inner_val,
                ..
            }) = def_of(f, *value)
            {
                if matches!(inner_op, CastOp::Zext | CastOp::Sext) && *op == CastOp::Trunc {
                    let src = f.operand_ty(*inner_val);
                    if src == *to {
                        return Simplified::Replace(*inner_val);
                    }
                    if src.bits() < to.bits() {
                        return Simplified::Rewrite(InstKind::Cast {
                            op: *inner_op,
                            to: *to,
                            value: *inner_val,
                        });
                    }
                    if src.bits() > to.bits() {
                        return Simplified::Rewrite(InstKind::Cast {
                            op: CastOp::Trunc,
                            to: *to,
                            value: *inner_val,
                        });
                    }
                }
                // zext(zext x) / sext(sext x) -> single cast.
                if *op == *inner_op && matches!(op, CastOp::Zext | CastOp::Sext) {
                    return Simplified::Rewrite(InstKind::Cast {
                        op: *op,
                        to: *to,
                        value: *inner_val,
                    });
                }
                // zext(sext x) keeps sign bits of the narrow value: not
                // collapsible in general; skip.
            }
            Simplified::None
        }
        InstKind::Select {
            ty,
            cond,
            on_true,
            on_false,
        } => {
            if let Operand::Const(c) = cond {
                return Simplified::Replace(if c.bits != 0 { *on_true } else { *on_false });
            }
            if on_true == on_false {
                return Simplified::Replace(*on_true);
            }
            if *ty == Ty::I1 {
                // select c, true, false -> c ; select c, false, true -> !c
                if on_true.is_const_bits(1) && on_false.is_const_bits(0) {
                    return Simplified::Replace(*cond);
                }
                if on_true.is_const_bits(0) && on_false.is_const_bits(1) {
                    return Simplified::Rewrite(InstKind::Bin {
                        op: BinOp::Xor,
                        ty: Ty::I1,
                        lhs: *cond,
                        rhs: cnst(Ty::I1, 1),
                    });
                }
            }
            Simplified::None
        }
        InstKind::Phi { incomings, .. } => {
            // A phi whose incomings are all the same operand (or itself) is
            // that operand.
            let mut unique: Option<Operand> = None;
            for (_, op) in incomings {
                // Self-references do not count.
                if let Operand::Value(v) = op {
                    if let ValueDef::Inst(_) = f.values[v.index()].def {
                        // (The self-check happens below via equality with the
                        // phi's own result; cheap approximation: skip exact
                        // self operands.)
                    }
                }
                match unique {
                    None => unique = Some(*op),
                    Some(u) if u == *op => {}
                    _ => return Simplified::None,
                }
            }
            match unique {
                Some(u) => Simplified::Replace(u),
                None => Simplified::None,
            }
        }
        _ => Simplified::None,
    }
}

fn simplify_bin(f: &Function, op: BinOp, ty: Ty, lhs: Operand, rhs: Operand) -> Simplified {
    // Constant folding (division by zero folds to nothing; engines trap it).
    if let (Operand::Const(a), Operand::Const(b)) = (lhs, rhs) {
        if let Some(v) = fold::eval_bin(op, ty, a.bits, b.bits) {
            return Simplified::Replace(cnst(ty, v));
        }
        return Simplified::None;
    }
    // Canonicalize constants to the right for commutative operations.
    if op.is_commutative() && matches!(lhs, Operand::Const(_)) {
        return Simplified::Rewrite(InstKind::Bin {
            op,
            ty,
            lhs: rhs,
            rhs: lhs,
        });
    }
    let rhs_c = rhs.as_const();
    match op {
        BinOp::Add => {
            if rhs.is_const_bits(0) {
                return Simplified::Replace(lhs);
            }
            // add (add x, C1), C2 -> add x, (C1+C2)
            if let (
                Some(c2),
                Some(InstKind::Bin {
                    op: BinOp::Add,
                    lhs: x,
                    rhs: Operand::Const(c1),
                    ..
                }),
            ) = (rhs_c, def_of(f, lhs))
            {
                let sum = fold::eval_bin(BinOp::Add, ty, c1.bits, c2.bits).unwrap();
                return Simplified::Rewrite(InstKind::Bin {
                    op: BinOp::Add,
                    ty,
                    lhs: *x,
                    rhs: cnst(ty, sum),
                });
            }
        }
        BinOp::Sub => {
            if rhs.is_const_bits(0) {
                return Simplified::Replace(lhs);
            }
            if lhs == rhs {
                return Simplified::Replace(cnst(ty, 0));
            }
            // Canonicalize sub-by-const to add of the negation.
            if let Some(c) = rhs_c {
                return Simplified::Rewrite(InstKind::Bin {
                    op: BinOp::Add,
                    ty,
                    lhs,
                    rhs: cnst(ty, c.bits.wrapping_neg()),
                });
            }
        }
        BinOp::Mul => {
            if rhs.is_const_bits(1) {
                return Simplified::Replace(lhs);
            }
            if rhs.is_const_bits(0) {
                return Simplified::Replace(cnst(ty, 0));
            }
        }
        BinOp::UDiv | BinOp::SDiv if rhs.is_const_bits(1) => {
            return Simplified::Replace(lhs);
        }
        BinOp::URem if rhs.is_const_bits(1) => {
            return Simplified::Replace(cnst(ty, 0));
        }
        BinOp::And => {
            if rhs.is_const_bits(0) {
                return Simplified::Replace(cnst(ty, 0));
            }
            if rhs.is_const_bits(ty.mask()) || lhs == rhs {
                return Simplified::Replace(lhs);
            }
        }
        BinOp::Or => {
            if rhs.is_const_bits(0) || lhs == rhs {
                return Simplified::Replace(lhs);
            }
            if rhs.is_const_bits(ty.mask()) {
                return Simplified::Replace(cnst(ty, ty.mask()));
            }
        }
        BinOp::Xor => {
            if rhs.is_const_bits(0) {
                return Simplified::Replace(lhs);
            }
            if lhs == rhs {
                return Simplified::Replace(cnst(ty, 0));
            }
            // xor (xor x, C1), C2 -> xor x, C1^C2  (double negation of
            // booleans collapses this way).
            if let (
                Some(c2),
                Some(InstKind::Bin {
                    op: BinOp::Xor,
                    lhs: x,
                    rhs: Operand::Const(c1),
                    ..
                }),
            ) = (rhs_c, def_of(f, lhs))
            {
                let v = c1.bits ^ c2.bits;
                if v == 0 {
                    return Simplified::Replace(*x);
                }
                return Simplified::Rewrite(InstKind::Bin {
                    op: BinOp::Xor,
                    ty,
                    lhs: *x,
                    rhs: cnst(ty, v),
                });
            }
        }
        BinOp::Shl | BinOp::LShr | BinOp::AShr if rhs.is_const_bits(0) => {
            return Simplified::Replace(lhs);
        }
        _ => {}
    }
    Simplified::None
}

fn simplify_cmp(f: &Function, pred: CmpPred, ty: Ty, lhs: Operand, rhs: Operand) -> Simplified {
    if let (Operand::Const(a), Operand::Const(b)) = (lhs, rhs) {
        return Simplified::Replace(cnst(
            Ty::I1,
            fold::eval_cmp(pred, ty, a.bits, b.bits) as u64,
        ));
    }
    // Constants to the right.
    if matches!(lhs, Operand::Const(_)) {
        return Simplified::Rewrite(InstKind::Cmp {
            pred: pred.swap(),
            ty,
            lhs: rhs,
            rhs: lhs,
        });
    }
    if lhs == rhs {
        let v = matches!(
            pred,
            CmpPred::Eq | CmpPred::Ule | CmpPred::Uge | CmpPred::Sle | CmpPred::Sge
        );
        return Simplified::Replace(cnst(Ty::I1, v as u64));
    }
    // Trivially decided unsigned bounds.
    if let Some(c) = rhs.as_const() {
        match pred {
            CmpPred::Ult if c.bits == 0 => return Simplified::Replace(cnst(Ty::I1, 0)),
            CmpPred::Uge if c.bits == 0 => return Simplified::Replace(cnst(Ty::I1, 1)),
            CmpPred::Ugt if c.bits == ty.mask() => return Simplified::Replace(cnst(Ty::I1, 0)),
            CmpPred::Ule if c.bits == ty.mask() => return Simplified::Replace(cnst(Ty::I1, 1)),
            _ => {}
        }
    }
    // icmp (zext x), C -> icmp x, C' when C fits in the source, narrowing
    // the comparison the solver must reason about. `zext` preserves the
    // unsigned order; for signed predicates the zext result is non-negative
    // so signed and unsigned agree when C is also in the non-negative range.
    if let (
        Some(c),
        Some(InstKind::Cast {
            op: CastOp::Zext,
            value: x,
            ..
        }),
    ) = (rhs.as_const(), def_of(f, lhs))
    {
        let src = f.operand_ty(*x);
        let fits_unsigned = c.bits <= src.mask();
        match pred {
            CmpPred::Eq | CmpPred::Ne => {
                if fits_unsigned {
                    return Simplified::Rewrite(InstKind::Cmp {
                        pred,
                        ty: src,
                        lhs: *x,
                        rhs: cnst(src, c.bits),
                    });
                }
                // Comparison can never hold / always holds.
                return Simplified::Replace(cnst(Ty::I1, (pred == CmpPred::Ne) as u64));
            }
            CmpPred::Ult | CmpPred::Ule | CmpPred::Ugt | CmpPred::Uge => {
                if fits_unsigned {
                    return Simplified::Rewrite(InstKind::Cmp {
                        pred,
                        ty: src,
                        lhs: *x,
                        rhs: cnst(src, c.bits),
                    });
                }
            }
            CmpPred::Slt | CmpPred::Sle | CmpPred::Sgt | CmpPred::Sge => {
                // C must be non-negative in `ty` and fit the source width.
                let signed_c = Const::new(ty, c.bits).as_signed();
                if signed_c >= 0 && (signed_c as u64) <= src.mask() {
                    let upred = match pred {
                        CmpPred::Slt => CmpPred::Ult,
                        CmpPred::Sle => CmpPred::Ule,
                        CmpPred::Sgt => CmpPred::Ugt,
                        CmpPred::Sge => CmpPred::Uge,
                        _ => unreachable!(),
                    };
                    return Simplified::Rewrite(InstKind::Cmp {
                        pred: upred,
                        ty: src,
                        lhs: *x,
                        rhs: cnst(src, signed_c as u64),
                    });
                }
            }
        }
    }
    // icmp ne (i1 x), 0 -> x ; icmp eq (i1 x), 0 -> !x
    if ty == Ty::I1 {
        if let Some(c) = rhs.as_const() {
            match (pred, c.bits) {
                (CmpPred::Ne, 0) | (CmpPred::Eq, 1) => return Simplified::Replace(lhs),
                (CmpPred::Eq, 0) | (CmpPred::Ne, 1) => {
                    return Simplified::Rewrite(InstKind::Bin {
                        op: BinOp::Xor,
                        ty: Ty::I1,
                        lhs,
                        rhs: cnst(Ty::I1, 1),
                    })
                }
                _ => {}
            }
        }
    }
    Simplified::None
}

#[cfg(test)]
mod tests {
    use super::*;
    use overify_ir::{Cursor, Module, Terminator};

    fn check_ret_const(f: &Function, expect: u64) {
        match f.blocks.last().map(|b| &b.term).unwrap() {
            Terminator::Ret {
                value: Some(Operand::Const(c)),
            } => assert_eq!(c.bits, expect),
            t => panic!("expected constant return, got {t:?}"),
        }
    }

    #[test]
    fn folds_constant_chains() {
        let mut f = Function::new("t", &[], Ty::I32);
        let mut c = Cursor::new(&mut f);
        let a = c.bin(BinOp::Add, Ty::I32, c.imm(Ty::I32, 20), c.imm(Ty::I32, 22));
        let b = c.bin(BinOp::Mul, Ty::I32, a, c.imm(Ty::I32, 2));
        c.ret(Some(b));
        let mut stats = OptStats::default();
        assert!(run(&mut f, &mut stats));
        check_ret_const(&f, 84);
        assert_eq!(f.live_inst_count(), 0);
    }

    #[test]
    fn identities() {
        // (x + 0) * 1 - x == 0 after simplification... well, sub x,x -> 0.
        let mut f = Function::new("t", &[Ty::I32], Ty::I32);
        let p = Operand::Value(f.params[0]);
        let mut c = Cursor::new(&mut f);
        let a = c.bin(BinOp::Add, Ty::I32, p, c.imm(Ty::I32, 0));
        let b = c.bin(BinOp::Mul, Ty::I32, a, c.imm(Ty::I32, 1));
        let d = c.bin(BinOp::Sub, Ty::I32, b, p);
        c.ret(Some(d));
        let mut stats = OptStats::default();
        run(&mut f, &mut stats);
        check_ret_const(&f, 0);
    }

    #[test]
    fn paper_example_input_minus_copy() {
        // Paper §3: `x = input(); y = x; x -= y;` becomes `x = 0`.
        // After mem2reg this is exactly `sub x, x`.
        let mut f = Function::new("t", &[Ty::I32], Ty::I32);
        let x = Operand::Value(f.params[0]);
        let mut c = Cursor::new(&mut f);
        let r = c.bin(BinOp::Sub, Ty::I32, x, x);
        c.ret(Some(r));
        let mut stats = OptStats::default();
        run(&mut f, &mut stats);
        check_ret_const(&f, 0);
    }

    #[test]
    fn narrows_zext_comparisons() {
        // icmp eq (zext i8 x to i32), 65 -> icmp eq i8 x, 65
        let mut f = Function::new("t", &[Ty::I8], Ty::I1);
        let p = Operand::Value(f.params[0]);
        let mut c = Cursor::new(&mut f);
        let z = c.cast(CastOp::Zext, Ty::I32, p);
        let e = c.cmp(CmpPred::Eq, Ty::I32, z, c.imm(Ty::I32, 65));
        c.ret(Some(e));
        let mut stats = OptStats::default();
        run(&mut f, &mut stats);
        let cmp = f
            .insts
            .iter()
            .find_map(|i| match &i.kind {
                InstKind::Cmp { ty, .. } => Some(*ty),
                _ => None,
            })
            .unwrap();
        assert_eq!(cmp, Ty::I8);
    }

    #[test]
    fn impossible_zext_compare_decides() {
        // icmp eq (zext i8 x to i32), 300 is always false.
        let mut f = Function::new("t", &[Ty::I8], Ty::I1);
        let p = Operand::Value(f.params[0]);
        let mut c = Cursor::new(&mut f);
        let z = c.cast(CastOp::Zext, Ty::I32, p);
        let e = c.cmp(CmpPred::Eq, Ty::I32, z, c.imm(Ty::I32, 300));
        c.ret(Some(e));
        let mut stats = OptStats::default();
        run(&mut f, &mut stats);
        check_ret_const(&f, 0);
    }

    #[test]
    fn collapses_double_negation() {
        // xor (xor x, 1), 1 -> x on i1.
        let mut f = Function::new("t", &[Ty::I1], Ty::I1);
        let p = Operand::Value(f.params[0]);
        let mut c = Cursor::new(&mut f);
        let a = c.bin(BinOp::Xor, Ty::I1, p, c.imm(Ty::I1, 1));
        let b = c.bin(BinOp::Xor, Ty::I1, a, c.imm(Ty::I1, 1));
        c.ret(Some(b));
        let mut stats = OptStats::default();
        run(&mut f, &mut stats);
        match f.blocks[0].term {
            Terminator::Ret { value: Some(v) } => assert_eq!(v, p),
            _ => panic!(),
        }
    }

    #[test]
    fn does_not_fold_division_by_zero() {
        let mut f = Function::new("t", &[], Ty::I32);
        let mut c = Cursor::new(&mut f);
        let d = c.bin(BinOp::UDiv, Ty::I32, c.imm(Ty::I32, 1), c.imm(Ty::I32, 0));
        c.ret(Some(d));
        let mut stats = OptStats::default();
        run(&mut f, &mut stats);
        // The trapping division must survive.
        assert_eq!(f.live_inst_count(), 1);
    }

    #[test]
    fn preserves_behaviour_on_minic_program() {
        let src = r#"
            int f(int a, unsigned char c) {
                int t = (a + 0) * 1;
                int u = t - a;
                return u + (c == 65 ? 10 : 20);
            }
        "#;
        let m0 = overify_lang::compile(src).unwrap();
        let mut m1 = m0.clone();
        let mut stats = OptStats::default();
        for f in &mut m1.functions {
            super::super::mem2reg::run(f, &mut stats);
            run(f, &mut stats);
        }
        overify_ir::verify_module(&m1).unwrap();
        let cfg = overify_interp::ExecConfig::default();
        for (a, ch) in [(3u64, 65u64), (100, 66), (0, 0)] {
            let r0 = overify_interp::run_module(&m0, "f", &[a, ch], &cfg);
            let r1 = overify_interp::run_module(&m1, "f", &[a, ch], &cfg);
            assert_eq!(r0.ret, r1.ret);
        }
        let _ = Module::new();
    }
}
