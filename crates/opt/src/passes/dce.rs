//! Dead code elimination, including dead stores to non-escaping allocas.

use crate::stats::OptStats;
use overify_ir::{Function, InstId, InstKind, Operand, Terminator};
use std::collections::HashMap;

/// Removes instructions whose results are unused and whose execution has no
/// observable effect.
pub fn run(f: &mut Function, stats: &mut OptStats) -> bool {
    let mut changed = dead_store_elim(f, stats);

    // Use counts over live instructions and terminators.
    let mut uses: Vec<u32> = vec![0; f.values.len()];
    let mut def_inst: Vec<Option<InstId>> = vec![None; f.values.len()];
    for b in f.block_ids() {
        for &id in &f.block(b).insts {
            let inst = f.inst(id);
            if let Some(r) = inst.result {
                def_inst[r.index()] = Some(id);
            }
            inst.kind.for_each_operand(|op| {
                if let Operand::Value(v) = op {
                    uses[v.index()] += 1;
                }
            });
        }
        match &f.block(b).term {
            Terminator::CondBr {
                cond: Operand::Value(v),
                ..
            } => uses[v.index()] += 1,
            Terminator::Ret {
                value: Some(Operand::Value(v)),
            } => uses[v.index()] += 1,
            _ => {}
        }
    }

    // Worklist: start from every dead-result instruction.
    let removable = |kind: &InstKind| -> bool {
        match kind {
            InstKind::Store { .. } | InstKind::Call { .. } | InstKind::Nop => false,
            InstKind::Bin { .. } => kind.is_speculatable(),
            _ => true,
        }
    };

    let mut work: Vec<InstId> = Vec::new();
    for b in f.block_ids() {
        for &id in &f.block(b).insts {
            let inst = f.inst(id);
            if let Some(r) = inst.result {
                if uses[r.index()] == 0 && removable(&inst.kind) {
                    work.push(id);
                }
            }
        }
    }

    while let Some(id) = work.pop() {
        let inst = f.inst(id);
        if matches!(inst.kind, InstKind::Nop) {
            continue;
        }
        // Re-check: the result may have gained uses? It cannot — we only
        // remove uses. But it may already be dead.
        if let Some(r) = inst.result {
            if uses[r.index()] != 0 {
                continue;
            }
        }
        let mut freed: Vec<InstId> = Vec::new();
        inst.kind.for_each_operand(|op| {
            if let Operand::Value(v) = op {
                uses[v.index()] -= 1;
                if uses[v.index()] == 0 {
                    if let Some(d) = def_inst[v.index()] {
                        freed.push(d);
                    }
                }
            }
        });
        f.kill_inst(id);
        changed = true;
        for d in freed {
            if removable(&f.inst(d).kind) {
                work.push(d);
            }
        }
    }

    if changed {
        f.purge_nops();
    }
    changed
}

/// Removes allocas whose only uses are stores (the stored values are never
/// observable), together with those stores.
fn dead_store_elim(f: &mut Function, _stats: &mut OptStats) -> bool {
    // alloca value -> (only_stored_to, uses_elsewhere)
    let mut candidates: HashMap<u32, bool> = HashMap::new();
    for inst in f.insts.iter() {
        if let (InstKind::Alloca { .. }, Some(r)) = (&inst.kind, inst.result) {
            candidates.insert(r.0, true);
        }
    }
    if candidates.is_empty() {
        return false;
    }
    for b in f.block_ids() {
        for &id in &f.block(b).insts {
            let inst = f.inst(id);
            match &inst.kind {
                InstKind::Store { addr, value, .. } => {
                    // Address position is fine; value position escapes.
                    if let Operand::Value(v) = value {
                        candidates.remove(&v.0);
                    }
                    let _ = addr;
                }
                other => {
                    other.for_each_operand(|op| {
                        if let Operand::Value(v) = op {
                            candidates.remove(&v.0);
                        }
                    });
                }
            }
        }
        match &f.block(b).term {
            Terminator::CondBr {
                cond: Operand::Value(v),
                ..
            } => {
                candidates.remove(&v.0);
            }
            Terminator::Ret {
                value: Some(Operand::Value(v)),
            } => {
                candidates.remove(&v.0);
            }
            _ => {}
        }
    }
    if candidates.is_empty() {
        return false;
    }
    // Kill the stores and the allocas.
    let mut changed = false;
    for i in 0..f.insts.len() {
        let kill = match &f.insts[i].kind {
            InstKind::Store {
                addr: Operand::Value(v),
                ..
            } => candidates.contains_key(&v.0),
            InstKind::Alloca { .. } => f.insts[i]
                .result
                .is_some_and(|r| candidates.contains_key(&r.0)),
            _ => false,
        };
        if kill {
            f.kill_inst(InstId(i as u32));
            changed = true;
        }
    }
    if changed {
        f.purge_nops();
    }
    changed
}

/// Removes values whose defs are gone — helper for tests and pipelines that
/// want the value table compacted implicitly. (Values are never reindexed;
/// dead entries are simply unreferenced.)
#[allow(dead_code)]
fn _doc_note() {}

#[cfg(test)]
mod tests {
    use super::*;
    use overify_ir::{BinOp, Cursor, Ty};

    #[test]
    fn removes_unused_chain() {
        let mut f = Function::new("t", &[Ty::I32], Ty::I32);
        let p = Operand::Value(f.params[0]);
        let mut c = Cursor::new(&mut f);
        let a = c.bin(BinOp::Add, Ty::I32, p, c.imm(Ty::I32, 1));
        let _b = c.bin(BinOp::Mul, Ty::I32, a, c.imm(Ty::I32, 3)); // Dead chain.
        c.ret(Some(p));
        let mut stats = OptStats::default();
        assert!(run(&mut f, &mut stats));
        assert_eq!(f.live_inst_count(), 0);
    }

    #[test]
    fn keeps_side_effects() {
        let src = "int g(int x) { return x; } int f(int x) { g(x); int dead = x * 2; return x; }";
        let mut m = overify_lang::compile(src).unwrap();
        let mut stats = OptStats::default();
        // Promote first so the dead multiply becomes visible.
        let fi = m.function_index("f").unwrap();
        super::super::mem2reg::run(&mut m.functions[fi], &mut stats);
        run(&mut m.functions[fi], &mut stats);
        let f = m.function("f").unwrap();
        // The call must survive; the multiply must not.
        assert!(f
            .insts
            .iter()
            .any(|i| matches!(i.kind, InstKind::Call { .. })));
        assert!(!f
            .insts
            .iter()
            .any(|i| matches!(i.kind, InstKind::Bin { op: BinOp::Mul, .. })));
        overify_ir::verify_module(&m).unwrap();
    }

    #[test]
    fn removes_write_only_allocas() {
        let src = "int f(int x) { int unused_buffer = 7; unused_buffer = x; return x; }";
        let mut m = overify_lang::compile(src).unwrap();
        let mut stats = OptStats::default();
        let fi = m.function_index("f").unwrap();
        run(&mut m.functions[fi], &mut stats);
        let f = m.function("f").unwrap();
        // The x-spill alloca remains (it is loaded); the write-only one dies.
        let stores = f
            .insts
            .iter()
            .filter(|i| matches!(i.kind, InstKind::Store { .. }))
            .count();
        assert_eq!(stores, 1, "only the parameter spill store should remain");
        overify_ir::verify_module(&m).unwrap();
    }

    #[test]
    fn dead_division_by_variable_survives() {
        // x/y can trap: not removable even if unused.
        let mut f = Function::new("t", &[Ty::I32, Ty::I32], Ty::I32);
        let (a, b) = (Operand::Value(f.params[0]), Operand::Value(f.params[1]));
        let mut c = Cursor::new(&mut f);
        let _dead = c.bin(BinOp::UDiv, Ty::I32, a, b);
        c.ret(Some(a));
        let mut stats = OptStats::default();
        run(&mut f, &mut stats);
        assert_eq!(f.live_inst_count(), 1);
    }
}
