//! The optimization passes.
//!
//! Every pass is a free function `run(...) -> bool` returning whether it
//! changed anything; [`crate::pipeline`] composes them per optimization
//! level and iterates to a fixpoint.

pub mod annotate;
pub mod checks;
pub mod dce;
pub mod gvn;
pub mod ifconvert;
pub mod inline;
pub mod instsimplify;
pub mod jump_threading;
pub mod licm;
pub mod mem2reg;
pub mod simplifycfg;
pub mod sroa;
pub mod unroll;
pub mod unswitch;
