//! Full loop unrolling by iterated peeling.
//!
//! Paper §4: `-OSYMBEX` "removes loops from the program whenever possible,
//! even if this increases the program size" — a loop with a known trip count
//! contributes `trips × paths(body)` paths when explored iteration by
//! iteration, but a straight-line unrolled body lets the engine fold every
//! iteration's branches independently.
//!
//! Peeling keeps the residual loop's header test in place, so the transform
//! is a semantic identity even if the trip analysis were wrong; constant
//! folding later collapses the dead residue.

use crate::cost::CostModel;
use crate::stats::OptStats;
use crate::util::{clone_region, make_loop_closed, trip_count};
use overify_ir::{Cfg, DomTree, Function, InstKind, LoopForest, Operand};

/// Fully unrolls eligible counted loops.
pub fn run(f: &mut Function, cost: &CostModel, stats: &mut OptStats) -> bool {
    let mut changed = false;
    // Unrolling inner loops can expose outer ones; a few rounds suffice.
    for _ in 0..4 {
        if !unroll_one(f, cost, stats) {
            break;
        }
        changed = true;
    }
    changed
}

fn unroll_one(f: &mut Function, cost: &CostModel, stats: &mut OptStats) -> bool {
    let cfg = Cfg::compute(f);
    let dom = DomTree::compute(&cfg);
    let forest = LoopForest::compute(&cfg, &dom);

    // Innermost loops first: they are the cheapest and unrolling them may
    // make outer trip counts computable.
    let mut loops = forest.loops.clone();
    loops.sort_by_key(|l| std::cmp::Reverse(l.depth));

    for lp in &loops {
        let Some(counted) = trip_count(f, lp, cost.unroll_max_trips) else {
            continue;
        };
        let n = counted.trip_count;
        let body_size: usize = lp.blocks.iter().map(|&b| f.block(b).insts.len()).sum();
        if n == 0 {
            continue; // Never runs; constant folding will kill it.
        }
        if (n as usize).saturating_mul(body_size) > cost.unroll_total_budget {
            continue;
        }
        if !make_loop_closed(f, lp) {
            continue;
        }
        // Peel the body `n` times; the residual header test then always
        // exits.
        for _ in 0..n {
            if !peel_once(f, lp.header) {
                return false;
            }
        }
        stats.loops_unrolled += 1;
        return true;
    }
    false
}

/// Peels one iteration off the loop headed at `header`. The loop must be
/// closed (see [`make_loop_closed`]). Returns false if the loop vanished.
fn peel_once(f: &mut Function, header: overify_ir::BlockId) -> bool {
    let cfg = Cfg::compute(f);
    let dom = DomTree::compute(&cfg);
    let forest = LoopForest::compute(&cfg, &dom);
    let Some(lp) = forest.loop_with_header(header) else {
        return false;
    };
    let lp = lp.clone();

    // `Loop::blocks` is an ordered set, so the clone order is
    // deterministic.
    let blocks: Vec<_> = lp.blocks.iter().copied().collect();
    let map = clone_region(f, &blocks, "peel");
    let clone_header = map.block(lp.header);

    // 1. Outside entries now enter the peeled copy.
    let outside: Vec<_> = cfg
        .preds(lp.header)
        .iter()
        .copied()
        .filter(|p| !lp.contains(*p))
        .collect();
    for o in &outside {
        f.block_mut(*o).term.retarget(lp.header, clone_header);
    }

    // 2. The peeled copy's back edges flow into the original loop.
    for &l in &lp.latches {
        let cl = map.block(l);
        f.block_mut(cl).term.retarget(clone_header, lp.header);
    }

    // 3. Phi surgery.
    //    Clone header keeps only outside incomings.
    let clone_phis: Vec<_> = f.block(clone_header).insts.clone();
    for id in clone_phis {
        if let InstKind::Phi { incomings, .. } = &mut f.inst_mut(id).kind {
            incomings.retain(|(p, _)| outside.contains(p));
        }
    }
    //    Original header swaps outside incomings for peeled-latch incomings.
    let latch_map: Vec<(overify_ir::BlockId, overify_ir::BlockId)> =
        lp.latches.iter().map(|&l| (l, map.block(l))).collect();
    let orig_phis: Vec<_> = f.block(lp.header).insts.clone();
    for id in orig_phis {
        let adds: Vec<(overify_ir::BlockId, Operand)> = match &f.inst(id).kind {
            InstKind::Phi { incomings, .. } => latch_map
                .iter()
                .filter_map(|(l, cl)| {
                    incomings
                        .iter()
                        .find(|(p, _)| p == l)
                        .map(|(_, v)| (*cl, map.operand(*v)))
                })
                .collect(),
            _ => continue,
        };
        if let InstKind::Phi { incomings, .. } = &mut f.inst_mut(id).kind {
            incomings.retain(|(p, _)| !outside.contains(p));
            incomings.extend(adds);
        }
    }

    // 4. Exit phis gain the peeled copy's exiting edges.
    for &exit in &lp.exits {
        let ids: Vec<_> = f.block(exit).insts.clone();
        for id in ids {
            if let InstKind::Phi { incomings, .. } = &f.inst(id).kind {
                let adds: Vec<(overify_ir::BlockId, Operand)> = incomings
                    .iter()
                    .filter(|(p, _)| lp.contains(*p))
                    .map(|(p, v)| (map.block(*p), map.operand(*v)))
                    .collect();
                if let InstKind::Phi { incomings, .. } = &mut f.inst_mut(id).kind {
                    incomings.extend(adds);
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use overify_interp::{run_module, ExecConfig};
    use overify_ir::Terminator;

    fn prep(src: &str) -> overify_ir::Module {
        let mut m = overify_lang::compile(src).unwrap();
        let mut stats = OptStats::default();
        for f in &mut m.functions {
            super::super::mem2reg::run(f, &mut stats);
            super::super::instsimplify::run(f, &mut stats);
            super::super::simplifycfg::run(f, &mut stats);
        }
        m
    }

    fn cleanup(m: &mut overify_ir::Module) {
        let mut stats = OptStats::default();
        for f in &mut m.functions {
            for _ in 0..4 {
                let mut c = false;
                c |= super::super::instsimplify::run(f, &mut stats);
                c |= super::super::dce::run(f, &mut stats);
                c |= super::super::jump_threading::run(f, &mut stats);
                c |= super::super::simplifycfg::run(f, &mut stats);
                if !c {
                    break;
                }
            }
        }
    }

    #[test]
    fn unrolls_constant_loop_to_straight_line() {
        let src = r#"
            int f(int x) {
                int s = x;
                for (int i = 0; i < 8; i++) { s = s * 2 + 1; }
                return s;
            }
        "#;
        let mut m = prep(src);
        let mut stats = OptStats::default();
        let fi = m.function_index("f").unwrap();
        assert!(run(
            &mut m.functions[fi],
            &CostModel::verification(),
            &mut stats
        ));
        assert_eq!(stats.loops_unrolled, 1);
        overify_ir::verify_module(&m).unwrap();
        cleanup(&mut m);
        overify_ir::verify_module(&m).unwrap();
        // After cleanup: no conditional branches should survive — the loop
        // is gone entirely.
        let f = m.function("f").unwrap();
        let condbrs = f
            .blocks
            .iter()
            .filter(|b| matches!(b.term, Terminator::CondBr { .. }))
            .count();
        assert_eq!(condbrs, 0, "loop should fold away completely");
        let r = run_module(&m, "f", &[1], &ExecConfig::default());
        // s: 1 -> 3 -> 7 -> ... (2s+1 eight times) = 2^8 * 1 + 255 = 511
        assert_eq!(r.ret, Some(511));
    }

    #[test]
    fn respects_budget() {
        let src = r#"
            int f(int x) {
                int s = x;
                for (int i = 0; i < 1000; i++) { s = s * 2 + 1; }
                return s;
            }
        "#;
        let mut m = prep(src);
        let mut stats = OptStats::default();
        let fi = m.function_index("f").unwrap();
        // CPU model caps trips at 16: the 1000-trip loop is left alone.
        assert!(!run(&mut m.functions[fi], &CostModel::cpu(), &mut stats));
        assert_eq!(stats.loops_unrolled, 0);
    }

    #[test]
    fn symbolic_bound_is_not_unrolled() {
        let src = r#"
            int f(int n) {
                int s = 0;
                for (int i = 0; i < n; i++) { s += i; }
                return s;
            }
        "#;
        let mut m = prep(src);
        let mut stats = OptStats::default();
        let fi = m.function_index("f").unwrap();
        assert!(!run(
            &mut m.functions[fi],
            &CostModel::verification(),
            &mut stats
        ));
    }

    #[test]
    fn behaviour_preserved_with_breaks() {
        let src = r#"
            int f(int x) {
                int s = 0;
                for (int i = 0; i < 10; i++) {
                    s += i;
                    if (s > x) break;
                }
                return s;
            }
        "#;
        let m0 = prep(src);
        let mut m1 = m0.clone();
        let mut stats = OptStats::default();
        let fi = m1.function_index("f").unwrap();
        run(
            &mut m1.functions[fi],
            &CostModel::verification(),
            &mut stats,
        );
        overify_ir::verify_module(&m1).unwrap();
        cleanup(&mut m1);
        overify_ir::verify_module(&m1).unwrap();
        let cfg = ExecConfig::default();
        for x in [0u64, 5, 100] {
            let r0 = run_module(&m0, "f", &[x], &cfg);
            let r1 = run_module(&m1, "f", &[x], &cfg);
            assert_eq!(r0.ret, r1.ret, "x={x}");
        }
    }

    #[test]
    fn nested_constant_loops_unroll() {
        let src = r#"
            int f() {
                int s = 0;
                for (int i = 0; i < 3; i++)
                    for (int j = 0; j < 4; j++)
                        s += i * j;
                return s;
            }
        "#;
        let mut m = prep(src);
        let mut stats = OptStats::default();
        let fi = m.function_index("f").unwrap();
        // Multiple rounds: inner loop then outer.
        while run(&mut m.functions[fi], &CostModel::verification(), &mut stats) {
            cleanup(&mut m);
        }
        overify_ir::verify_module(&m).unwrap();
        assert!(
            stats.loops_unrolled >= 2,
            "unrolled {}",
            stats.loops_unrolled
        );
        let r = run_module(&m, "f", &[], &ExecConfig::default());
        assert_eq!(r.ret, Some(18)); // sum i*j, i<3, j<4 = (0+1+2)*(0+1+2+3)
    }
}
