//! Global value numbering (a dominator-scoped CSE).
//!
//! Redundant computations are redundant solver terms; removing them shrinks
//! both the instruction count KLEE interprets and the expressions it sends
//! to the constraint solver.

use crate::stats::OptStats;
use crate::util::apply_replacements;
use overify_ir::{BinOp, CastOp, Cfg, CmpPred, DomTree, Function, InstKind, Operand, Ty, ValueId};
use std::collections::HashMap;

/// One canonical expression key.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum Key {
    Bin(BinOp, Ty, Operand, Operand),
    Cmp(CmpPred, Ty, Operand, Operand),
    Cast(CastOp, Ty, Operand),
    Select(Operand, Operand, Operand),
    PtrAdd(Operand, Operand),
    Global(u32),
}

/// Total order on operands for canonicalizing commutative keys.
fn op_rank(op: Operand) -> (u8, u64) {
    match op {
        Operand::Const(c) => (0, c.bits),
        Operand::Value(v) => (1, v.0 as u64),
    }
}

/// Runs value numbering over the dominator tree.
pub fn run(f: &mut Function, stats: &mut OptStats) -> bool {
    let cfg = Cfg::compute(f);
    let dom = DomTree::compute(&cfg);
    let n = f.blocks.len();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for b in f.block_ids() {
        if let Some(p) = dom.idom(b) {
            children[p.index()].push(b.index());
        }
    }

    let mut repl: HashMap<ValueId, Operand> = HashMap::new();
    let mut killed: Vec<overify_ir::InstId> = Vec::new();

    // Scoped table: the undo log records insertions to pop on exit from a
    // dominator subtree.
    let mut table: HashMap<Key, Operand> = HashMap::new();
    enum Ev {
        Enter(usize),
        Exit(Vec<Key>),
    }
    let mut stack = vec![Ev::Enter(0)];
    while let Some(ev) = stack.pop() {
        match ev {
            Ev::Exit(keys) => {
                for k in keys {
                    table.remove(&k);
                }
            }
            Ev::Enter(b) => {
                let mut inserted: Vec<Key> = Vec::new();
                let inst_ids: Vec<_> = f.blocks[b].insts.clone();
                for id in inst_ids {
                    let inst = f.inst(id);
                    let Some(result) = inst.result else { continue };
                    // Resolve operands through pending replacements so
                    // chains number identically.
                    let resolve = |op: Operand| -> Operand {
                        let mut cur = op;
                        for _ in 0..16 {
                            match cur {
                                Operand::Value(v) => match repl.get(&v) {
                                    Some(&n) => cur = n,
                                    None => break,
                                },
                                _ => break,
                            }
                        }
                        cur
                    };
                    let key = match &inst.kind {
                        InstKind::Bin { op, ty, lhs, rhs } => {
                            let (mut a, mut c) = (resolve(*lhs), resolve(*rhs));
                            if op.is_commutative() && op_rank(a) > op_rank(c) {
                                std::mem::swap(&mut a, &mut c);
                            }
                            // Trapping ops are not freely replaceable unless
                            // speculatable (identical non-trapping divisor).
                            if op.can_trap() && !inst.kind.is_speculatable() {
                                continue;
                            }
                            Key::Bin(*op, *ty, a, c)
                        }
                        InstKind::Cmp { pred, ty, lhs, rhs } => {
                            let (a, c) = (resolve(*lhs), resolve(*rhs));
                            // Canonicalize via the swapped form when it
                            // orders lower.
                            if op_rank(a) > op_rank(c) {
                                Key::Cmp(pred.swap(), *ty, c, a)
                            } else {
                                Key::Cmp(*pred, *ty, a, c)
                            }
                        }
                        InstKind::Cast { op, to, value } => Key::Cast(*op, *to, resolve(*value)),
                        InstKind::Select {
                            cond,
                            on_true,
                            on_false,
                            ..
                        } => Key::Select(resolve(*cond), resolve(*on_true), resolve(*on_false)),
                        InstKind::PtrAdd { base, offset } => {
                            Key::PtrAdd(resolve(*base), resolve(*offset))
                        }
                        InstKind::GlobalAddr { global } => Key::Global(global.0),
                        _ => continue,
                    };
                    match table.get(&key) {
                        Some(&existing) => {
                            repl.insert(result, existing);
                            killed.push(id);
                        }
                        None => {
                            table.insert(key.clone(), Operand::Value(result));
                            inserted.push(key);
                        }
                    }
                }
                stack.push(Ev::Exit(inserted));
                for &c in &children[b] {
                    stack.push(Ev::Enter(c));
                }
            }
        }
    }

    let mut changed = false;
    if !repl.is_empty() {
        stats.insts_simplified += repl.len() as u64;
        apply_replacements(f, &repl);
        for id in killed {
            f.kill_inst(id);
        }
        f.purge_nops();
        changed = true;
    }
    changed |= load_cse(f, stats);
    changed
}

/// Redundant-load elimination: a load whose address was already loaded by a
/// dominating load, with no possible clobber (store or call) on any path in
/// between, reuses the earlier value.
///
/// This is what lets if-conversion flatten inlined libc code: the inliner
/// leaves a reload of `*p` per inlined callee, and a reload from a
/// non-provable pointer blocks speculation.
fn load_cse(f: &mut Function, stats: &mut OptStats) -> bool {
    let cfg = Cfg::compute(f);
    let dom = DomTree::compute(&cfg);
    let nblocks = f.blocks.len();

    // Which blocks contain a clobber (store or any call), and where.
    let mut clobber_at: Vec<Vec<usize>> = vec![Vec::new(); nblocks];
    for b in f.block_ids() {
        for (pos, &id) in f.block(b).insts.iter().enumerate() {
            if matches!(
                f.inst(id).kind,
                InstKind::Store { .. } | InstKind::Call { .. }
            ) {
                clobber_at[b.index()].push(pos);
            }
        }
    }
    let has_clobber = |b: usize| !clobber_at[b].is_empty();

    // All loads, grouped by (address operand, type).
    type LoadSite = (overify_ir::BlockId, usize, overify_ir::InstId);
    let mut groups: HashMap<(Operand, Ty), Vec<LoadSite>> = HashMap::new();
    for b in f.block_ids() {
        for (pos, &id) in f.block(b).insts.iter().enumerate() {
            if let InstKind::Load { ty, addr } = f.inst(id).kind {
                groups.entry((addr, ty)).or_default().push((b, pos, id));
            }
        }
    }

    // Forward/backward reachability helpers.
    let succs: Vec<Vec<usize>> = (0..nblocks)
        .map(|i| {
            f.block(overify_ir::BlockId(i as u32))
                .term
                .successors()
                .iter()
                .map(|s| s.index())
                .collect()
        })
        .collect();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); nblocks];
    for (i, ss) in succs.iter().enumerate() {
        for &s in ss {
            preds[s].push(i);
        }
    }
    let reach = |from: usize, edges: &[Vec<usize>]| -> Vec<bool> {
        let mut seen = vec![false; nblocks];
        let mut stack = vec![from];
        while let Some(x) = stack.pop() {
            for &n in &edges[x] {
                if !seen[n] {
                    seen[n] = true;
                    stack.push(n);
                }
            }
        }
        seen
    };

    let mut repl: HashMap<overify_ir::ValueId, Operand> = HashMap::new();
    let mut killed: Vec<overify_ir::InstId> = Vec::new();
    // Deterministic processing order (HashMap iteration order is not).
    let mut group_list: Vec<Vec<LoadSite>> = groups.into_values().collect();
    group_list.sort_by_key(|sites| sites.first().map(|s| s.2).unwrap_or(overify_ir::InstId(0)));
    for sites in group_list {
        if sites.len() < 2 {
            continue;
        }
        for (i, &(b2, p2, l2)) in sites.iter().enumerate() {
            if killed.contains(&l2) {
                continue;
            }
            // Find a dominating earlier load.
            for &(b1, p1, l1) in &sites[..i] {
                if killed.contains(&l1) {
                    continue;
                }
                let safe = if b1 == b2 {
                    p1 < p2 && !clobber_at[b1.index()].iter().any(|&c| c > p1 && c < p2)
                } else if dom.dominates(b1, b2) {
                    // No clobber after L1 in B1 or before L2 in B2.
                    let tail_ok = !clobber_at[b1.index()].iter().any(|&c| c > p1);
                    let head_ok = !clobber_at[b2.index()].iter().any(|&c| c < p2);
                    if !(tail_ok && head_ok) {
                        false
                    } else {
                        // Every block on a path B1 -> B2 must be clean; if
                        // the path can revisit B1/B2 (a loop), they must be
                        // entirely clean too.
                        let fwd = reach(b1.index(), &succs);
                        let bwd = reach(b2.index(), &preds);
                        let mut ok = true;
                        for x in 0..nblocks {
                            if x == b1.index() || x == b2.index() {
                                if fwd[x] && bwd[x] && has_clobber(x) {
                                    ok = false; // Revisited through a cycle.
                                }
                                continue;
                            }
                            if fwd[x] && bwd[x] && has_clobber(x) {
                                ok = false;
                            }
                        }
                        ok
                    }
                } else {
                    false
                };
                if safe {
                    let v1 = f.inst(l1).result.unwrap();
                    let v2 = f.inst(l2).result.unwrap();
                    repl.insert(v2, Operand::Value(v1));
                    killed.push(l2);
                    break;
                }
            }
        }
    }

    if repl.is_empty() {
        return false;
    }
    stats.insts_simplified += repl.len() as u64;
    apply_replacements(f, &repl);
    for id in killed {
        f.kill_inst(id);
    }
    f.purge_nops();
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use overify_ir::{Cursor, Module};

    #[test]
    fn dedupes_identical_computation() {
        let mut f = Function::new("t", &[Ty::I32, Ty::I32], Ty::I32);
        let (a, b) = (Operand::Value(f.params[0]), Operand::Value(f.params[1]));
        let mut c = Cursor::new(&mut f);
        let x = c.bin(BinOp::Add, Ty::I32, a, b);
        let y = c.bin(BinOp::Add, Ty::I32, b, a); // Commutative duplicate.
        let z = c.bin(BinOp::Mul, Ty::I32, x, y);
        c.ret(Some(z));
        let mut stats = OptStats::default();
        assert!(run(&mut f, &mut stats));
        assert_eq!(f.live_inst_count(), 2); // One add, one mul.
        let mut m = Module::new();
        m.functions.push(f);
        overify_ir::verify_module(&m).unwrap();
    }

    #[test]
    fn respects_dominance_scope() {
        // Identical adds on two sides of a diamond must NOT be merged
        // (neither dominates the other).
        let mut f = Function::new("t", &[Ty::I32, Ty::I1], Ty::I32);
        let a = Operand::Value(f.params[0]);
        let cond = Operand::Value(f.params[1]);
        let mut c = Cursor::new(&mut f);
        let l = c.add_block("l");
        let r = c.add_block("r");
        let m = c.add_block("m");
        c.condbr(cond, l, r);
        c.at(l);
        let x = c.bin(BinOp::Add, Ty::I32, a, c.imm(Ty::I32, 1));
        c.br(m);
        c.at(r);
        let y = c.bin(BinOp::Add, Ty::I32, a, c.imm(Ty::I32, 1));
        c.br(m);
        c.at(m);
        let phi = c.phi(Ty::I32, vec![(l, x), (r, y)]);
        c.ret(Some(Operand::Value(phi)));
        let mut stats = OptStats::default();
        run(&mut f, &mut stats);
        assert_eq!(f.live_inst_count(), 3, "cross-branch CSE would be unsound");
    }

    #[test]
    fn dominating_value_replaces_dominated_duplicate() {
        // add in entry, duplicate add in successor -> replaced.
        let mut f = Function::new("t", &[Ty::I32], Ty::I32);
        let a = Operand::Value(f.params[0]);
        let mut c = Cursor::new(&mut f);
        let next = c.add_block("next");
        let x = c.bin(BinOp::Add, Ty::I32, a, c.imm(Ty::I32, 7));
        c.br(next);
        c.at(next);
        let y = c.bin(BinOp::Add, Ty::I32, a, c.imm(Ty::I32, 7));
        let z = c.bin(BinOp::Mul, Ty::I32, y, x);
        c.ret(Some(z));
        let mut stats = OptStats::default();
        assert!(run(&mut f, &mut stats));
        assert_eq!(f.live_inst_count(), 2);
    }

    #[test]
    fn trapping_division_not_merged_blindly() {
        let mut f = Function::new("t", &[Ty::I32, Ty::I32], Ty::I32);
        let (a, b) = (Operand::Value(f.params[0]), Operand::Value(f.params[1]));
        let mut c = Cursor::new(&mut f);
        let x = c.bin(BinOp::UDiv, Ty::I32, a, b);
        let y = c.bin(BinOp::UDiv, Ty::I32, a, b);
        let z = c.bin(BinOp::Add, Ty::I32, x, y);
        c.ret(Some(z));
        let mut stats = OptStats::default();
        run(&mut f, &mut stats);
        // Both divisions survive (they can trap; merging is legal but we
        // are conservative).
        assert_eq!(f.live_inst_count(), 3);
    }
}
