//! Program annotations (paper §3).
//!
//! *"Compilers also do not keep information computed during compilation,
//! such as alias information, variable ranges, loop invariants, or trip
//! counts. This information however is priceless for verification tools,
//! and could be easily preserved in the form of program metadata."*
//!
//! This pass computes unsigned value ranges (a forward dataflow with a
//! bounded number of iterations) and constant loop trip counts, and stores
//! them in [`overify_ir::Annotations`]. Consumers:
//!
//! * the runtime-checks pass elides checks the ranges prove safe,
//! * the symbolic executor decides annotated branches without solver calls.

use crate::stats::OptStats;
use crate::util::trip_count;
use overify_ir::{
    BinOp, CastOp, Cfg, DomTree, Function, InstKind, LoopForest, Operand, Ty, ValueId, ValueRange,
};
use std::collections::HashMap;

/// Computes and stores annotations for one function.
pub fn run(f: &mut Function, stats: &mut OptStats) -> bool {
    let ranges = compute_ranges(f);
    let mut added = 0u64;
    f.annotations.value_ranges.clear();
    for (v, r) in ranges {
        let full = ValueRange::full(f.value_ty(v).bits());
        if r != full {
            f.annotations.value_ranges.insert(v, r);
            added += 1;
        }
    }

    // Loop trip counts.
    f.annotations.trip_counts.clear();
    let cfg = Cfg::compute(f);
    let dom = DomTree::compute(&cfg);
    let forest = LoopForest::compute(&cfg, &dom);
    for lp in &forest.loops {
        if let Some(c) = trip_count(f, lp, 1 << 20) {
            f.annotations.trip_counts.insert(lp.header, c.trip_count);
            added += 1;
        }
    }

    stats.annotations_added += added;
    added > 0
}

/// Bounded-iteration forward range analysis.
pub fn compute_ranges(f: &Function) -> HashMap<ValueId, ValueRange> {
    let mut ranges: HashMap<ValueId, ValueRange> = HashMap::new();
    let cfg = Cfg::compute(f);
    let dom = DomTree::compute(&cfg);
    let rpo: Vec<_> = dom.rpo().to_vec();

    let range_of = |ranges: &HashMap<ValueId, ValueRange>, op: Operand, ty: Ty| -> ValueRange {
        match op {
            Operand::Const(c) => ValueRange::point(c.bits),
            Operand::Value(v) => ranges
                .get(&v)
                .copied()
                .unwrap_or_else(|| ValueRange::full(ty.bits())),
        }
    };

    // Three rounds handles the phi cycles we care about without widening
    // machinery; anything unresolved stays at full range (sound).
    for _ in 0..3 {
        let mut changed = false;
        for &b in &rpo {
            for &id in &f.block(b).insts {
                let inst = f.inst(id);
                let Some(result) = inst.result else { continue };
                let out_ty = f.value_ty(result);
                let full = ValueRange::full(out_ty.bits());
                let r = match &inst.kind {
                    InstKind::Cmp { .. } => ValueRange { umin: 0, umax: 1 },
                    InstKind::Cast { op, to, value } => {
                        let from = f.operand_ty(*value);
                        let vr = range_of(&ranges, *value, from);
                        match op {
                            CastOp::Zext => vr,
                            CastOp::Trunc => {
                                if vr.umax <= to.mask() {
                                    vr
                                } else {
                                    full
                                }
                            }
                            CastOp::Sext => {
                                // Only safe when the source is provably
                                // non-negative.
                                let smax = (1u64 << (from.bits() - 1)) - 1;
                                if vr.umax <= smax {
                                    vr
                                } else {
                                    full
                                }
                            }
                        }
                    }
                    InstKind::Bin { op, ty, lhs, rhs } => {
                        let a = range_of(&ranges, *lhs, *ty);
                        let c = range_of(&ranges, *rhs, *ty);
                        bin_range(*op, *ty, a, c).unwrap_or(full)
                    }
                    InstKind::Select {
                        ty,
                        on_true,
                        on_false,
                        ..
                    } => {
                        let a = range_of(&ranges, *on_true, *ty);
                        let b2 = range_of(&ranges, *on_false, *ty);
                        ValueRange {
                            umin: a.umin.min(b2.umin),
                            umax: a.umax.max(b2.umax),
                        }
                    }
                    InstKind::Phi { ty, incomings } => {
                        let mut acc: Option<ValueRange> = None;
                        for (_, op) in incomings {
                            let r = range_of(&ranges, *op, *ty);
                            acc = Some(match acc {
                                None => r,
                                Some(a) => ValueRange {
                                    umin: a.umin.min(r.umin),
                                    umax: a.umax.max(r.umax),
                                },
                            });
                        }
                        acc.unwrap_or(full)
                    }
                    InstKind::Load { ty, .. } => ValueRange::full(ty.bits()),
                    _ => full,
                };
                let prev = ranges.get(&result).copied();
                if prev != Some(r) {
                    ranges.insert(result, r);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    ranges
}

/// Range transfer for a binary operation; `None` means "unknown".
fn bin_range(op: BinOp, ty: Ty, a: ValueRange, b: ValueRange) -> Option<ValueRange> {
    let mask = ty.mask();
    match op {
        BinOp::Add => {
            let lo = a.umin.checked_add(b.umin)?;
            let hi = a.umax.checked_add(b.umax)?;
            if hi <= mask {
                Some(ValueRange { umin: lo, umax: hi })
            } else {
                None
            }
        }
        BinOp::Mul => {
            let lo = a.umin.checked_mul(b.umin)?;
            let hi = a.umax.checked_mul(b.umax)?;
            if hi <= mask {
                Some(ValueRange { umin: lo, umax: hi })
            } else {
                None
            }
        }
        BinOp::And => {
            // Result cannot exceed either operand's max.
            Some(ValueRange {
                umin: 0,
                umax: a.umax.min(b.umax),
            })
        }
        BinOp::Or | BinOp::Xor => {
            // The result fits in as many bits as the wider operand: bound
            // by the next power of two above the larger maximum.
            let m = a.umax.max(b.umax);
            let bound = m
                .checked_add(1)
                .and_then(u64::checked_next_power_of_two)
                .map_or(mask, |p| p - 1);
            Some(ValueRange {
                umin: 0,
                umax: bound.min(mask),
            })
        }
        BinOp::UDiv => {
            if b.umin == 0 {
                return None;
            }
            Some(ValueRange {
                umin: a.umin / b.umax,
                umax: a.umax / b.umin,
            })
        }
        BinOp::URem => {
            if b.umin == 0 {
                return None;
            }
            Some(ValueRange {
                umin: 0,
                umax: b.umax - 1,
            })
        }
        BinOp::LShr => {
            if b.is_point() && b.umin < 64 {
                Some(ValueRange {
                    umin: a.umin >> b.umin,
                    umax: a.umax >> b.umin,
                })
            } else {
                Some(ValueRange {
                    umin: 0,
                    umax: a.umax,
                })
            }
        }
        BinOp::Shl => {
            if b.is_point() && b.umin < 64 {
                let hi = a.umax.checked_shl(b.umin as u32)?;
                if hi <= mask {
                    return Some(ValueRange {
                        umin: a.umin << b.umin,
                        umax: hi,
                    });
                }
            }
            None
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prep(src: &str) -> overify_ir::Module {
        let mut m = overify_lang::compile(src).unwrap();
        let mut stats = OptStats::default();
        for f in &mut m.functions {
            super::super::mem2reg::run(f, &mut stats);
            super::super::instsimplify::run(f, &mut stats);
            super::super::simplifycfg::run(f, &mut stats);
        }
        m
    }

    #[test]
    fn byte_ranges_propagate_through_zext() {
        let src = "int f(unsigned char c) { return c + 1; }";
        let mut m = prep(src);
        let mut stats = OptStats::default();
        let fi = m.function_index("f").unwrap();
        assert!(run(&mut m.functions[fi], &mut stats));
        let f = m.function("f").unwrap();
        // Some value (the zext or the add) must carry a <= 256 range.
        let tight = f.annotations.value_ranges.values().any(|r| r.umax <= 256);
        assert!(tight, "ranges: {:?}", f.annotations.value_ranges);
    }

    #[test]
    fn masked_value_gets_tight_range() {
        let src = "int f(int x) { return (x & 15) + 3; }";
        let mut m = prep(src);
        let mut stats = OptStats::default();
        let fi = m.function_index("f").unwrap();
        run(&mut m.functions[fi], &mut stats);
        let f = m.function("f").unwrap();
        let has_mask_range = f.annotations.value_ranges.values().any(|r| r.umax == 15);
        let has_sum_range = f
            .annotations
            .value_ranges
            .values()
            .any(|r| r.umin == 3 && r.umax == 18);
        assert!(
            has_mask_range && has_sum_range,
            "{:?}",
            f.annotations.value_ranges
        );
    }

    #[test]
    fn records_trip_counts() {
        let src = "int f() { int s = 0; for (int i = 0; i < 12; i++) s += i; return s; }";
        let mut m = prep(src);
        let mut stats = OptStats::default();
        let fi = m.function_index("f").unwrap();
        run(&mut m.functions[fi], &mut stats);
        let f = m.function("f").unwrap();
        let trips: Vec<u64> = f.annotations.trip_counts.values().copied().collect();
        assert_eq!(trips, vec![12]);
    }

    #[test]
    fn urem_range() {
        let src = "unsigned int f(unsigned int x) { return x % 10; }";
        let mut m = prep(src);
        let mut stats = OptStats::default();
        let fi = m.function_index("f").unwrap();
        run(&mut m.functions[fi], &mut stats);
        let f = m.function("f").unwrap();
        assert!(f.annotations.value_ranges.values().any(|r| r.umax == 9));
    }
}
