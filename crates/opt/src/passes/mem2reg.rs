//! Promote memory to registers (SSA construction).
//!
//! The paper (§3, "Instruction simplification"): *"A compiler can easily help
//! by converting values that reside in memory to register values"* — memory
//! accesses are what force a verifier to do alias reasoning, so this pass is
//! in every optimizing pipeline, and it is the enabler for everything else
//! (only register values participate in folding, unswitching and
//! if-conversion).

use crate::stats::OptStats;
use crate::util::{apply_replacements, compact_blocks};
use overify_ir::{
    Cfg, Const, DomTree, Function, InstId, InstKind, Operand, Terminator, Ty, ValueId,
};
use std::collections::{HashMap, HashSet};

/// Runs mem2reg on one function.
pub fn run(f: &mut Function, stats: &mut OptStats) -> bool {
    // Dead blocks would be invisible to the renamer; drop them first.
    compact_blocks(f);

    let allocas = promotable_allocas(f);
    if allocas.is_empty() {
        return false;
    }

    let cfg = Cfg::compute(f);
    let dom = DomTree::compute(&cfg);
    let df = dom.dominance_frontiers(&cfg);

    // Where each alloca is stored.
    let mut def_blocks: Vec<HashSet<usize>> = vec![HashSet::new(); allocas.len()];
    let index_of: HashMap<ValueId, usize> = allocas
        .iter()
        .enumerate()
        .map(|(i, a)| (a.value, i))
        .collect();
    for b in f.block_ids() {
        for &id in &f.block(b).insts {
            if let InstKind::Store { addr, .. } = &f.inst(id).kind {
                if let Some(&i) = addr.as_value().and_then(|v| index_of.get(&v)) {
                    def_blocks[i].insert(b.index());
                }
            }
        }
    }

    // Phi placement at the iterated dominance frontier of the defs.
    // `phi_of[inst] = alloca index` identifies inserted phis during renaming.
    let mut phi_of: HashMap<InstId, usize> = HashMap::new();
    for (ai, a) in allocas.iter().enumerate() {
        // Deterministic worklist order (HashSet iteration is not).
        let mut work: Vec<usize> = def_blocks[ai].iter().copied().collect();
        work.sort_unstable();
        let mut placed: HashSet<usize> = HashSet::new();
        while let Some(b) = work.pop() {
            for &front in &df[b] {
                if placed.insert(front.index()) {
                    let (id, _) = f.create_inst(
                        InstKind::Phi {
                            ty: a.ty,
                            incomings: Vec::new(),
                        },
                        Some(a.ty),
                    );
                    f.blocks[front.index()].insts.insert(0, id);
                    phi_of.insert(id, ai);
                    if !def_blocks[ai].contains(&front.index()) {
                        work.push(front.index());
                    }
                }
            }
        }
    }

    // Renaming walk over the dominator tree.
    let n = f.blocks.len();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for b in f.block_ids() {
        if let Some(p) = dom.idom(b) {
            children[p.index()].push(b.index());
        }
    }

    let zero = |ty: Ty| Operand::Const(Const::zero(ty));
    let mut replacements: HashMap<ValueId, Operand> = HashMap::new();
    let mut dead: Vec<InstId> = Vec::new();
    let mut end_defs: Vec<Option<Vec<Operand>>> = vec![None; n];

    // Iterative DFS carrying the current definition per alloca.
    let init: Vec<Operand> = allocas.iter().map(|a| zero(a.ty)).collect();
    let mut stack: Vec<(usize, Vec<Operand>)> = vec![(0, init)];
    while let Some((b, mut defs)) = stack.pop() {
        let inst_ids: Vec<InstId> = f.blocks[b].insts.clone();
        for id in inst_ids {
            // Inserted phis start a new definition.
            if let Some(&ai) = phi_of.get(&id) {
                defs[ai] = Operand::Value(f.inst(id).result.unwrap());
                continue;
            }
            match &f.inst(id).kind {
                InstKind::Load { addr, .. } => {
                    if let Some(&ai) = addr.as_value().and_then(|v| index_of.get(&v)) {
                        let result = f.inst(id).result.unwrap();
                        replacements.insert(result, defs[ai]);
                        dead.push(id);
                    }
                }
                InstKind::Store { addr, value, .. } => {
                    if let Some(&ai) = addr.as_value().and_then(|v| index_of.get(&v)) {
                        defs[ai] = *value;
                        dead.push(id);
                    }
                }
                _ => {}
            }
        }
        end_defs[b] = Some(defs.clone());
        for &c in &children[b] {
            stack.push((c, defs.clone()));
        }
    }

    // Fill phi incomings from each predecessor's end-of-block definitions.
    for b in f.block_ids() {
        let succs = f.block(b).term.successors();
        let Some(defs) = end_defs[b.index()].clone() else {
            continue;
        };
        for s in succs {
            let inst_ids: Vec<InstId> = f.blocks[s.index()].insts.clone();
            for id in inst_ids {
                if let Some(&ai) = phi_of.get(&id) {
                    if let InstKind::Phi { incomings, .. } = &mut f.inst_mut(id).kind {
                        incomings.push((b, defs[ai]));
                    }
                }
            }
        }
    }

    // Drop the allocas and rewritten accesses.
    for a in &allocas {
        dead.push(a.inst);
    }
    for id in dead {
        f.kill_inst(id);
    }
    apply_replacements(f, &replacements);
    f.purge_nops();

    stats.allocas_promoted += allocas.len() as u64;
    true
}

struct PromotableAlloca {
    inst: InstId,
    value: ValueId,
    ty: Ty,
}

/// Finds allocas used only as the direct address of same-typed loads and
/// stores (no escapes, no mixed widths).
fn promotable_allocas(f: &Function) -> Vec<PromotableAlloca> {
    // alloca value -> (inst, consistent access type or conflict, escaped)
    let mut info: HashMap<ValueId, (InstId, Option<Ty>, bool)> = HashMap::new();
    for b in f.block_ids() {
        for &id in &f.block(b).insts {
            if let InstKind::Alloca { .. } = &f.inst(id).kind {
                if let Some(r) = f.inst(id).result {
                    info.insert(r, (id, None, false));
                }
            }
        }
    }
    if info.is_empty() {
        return Vec::new();
    }

    for b in f.block_ids() {
        for &id in &f.block(b).insts {
            let inst = f.inst(id);
            match &inst.kind {
                InstKind::Load { ty, addr } => {
                    if let Some(v) = addr.as_value() {
                        if let Some(e) = info.get_mut(&v) {
                            match e.1 {
                                None => e.1 = Some(*ty),
                                Some(t) if t == *ty => {}
                                _ => e.2 = true, // Mixed widths: give up.
                            }
                        }
                    }
                }
                InstKind::Store { ty, addr, value } => {
                    // The stored value escaping is what disqualifies.
                    if let Some(v) = value.as_value() {
                        if let Some(e) = info.get_mut(&v) {
                            e.2 = true;
                        }
                    }
                    if let Some(v) = addr.as_value() {
                        if let Some(e) = info.get_mut(&v) {
                            match e.1 {
                                None => e.1 = Some(*ty),
                                Some(t) if t == *ty => {}
                                _ => e.2 = true,
                            }
                        }
                    }
                }
                other => {
                    other.for_each_operand(|op| {
                        if let Some(v) = op.as_value() {
                            if let Some(e) = info.get_mut(&v) {
                                e.2 = true;
                            }
                        }
                    });
                }
            }
        }
        // Terminator uses escape too.
        let term_ops: Vec<Operand> = match &f.block(b).term {
            Terminator::CondBr { cond, .. } => vec![*cond],
            Terminator::Ret { value: Some(v) } => vec![*v],
            _ => vec![],
        };
        for op in term_ops {
            if let Some(v) = op.as_value() {
                if let Some(e) = info.get_mut(&v) {
                    e.2 = true;
                }
            }
        }
    }

    let mut out: Vec<PromotableAlloca> = info
        .into_iter()
        .filter_map(|(value, (inst, ty, escaped))| {
            let ty = ty?; // Never accessed: DCE's job, not ours.
                          // The access width must fit the allocation.
            let size = match &f.inst(inst).kind {
                InstKind::Alloca { size } => *size,
                _ => return None,
            };
            if escaped || ty.bytes() > size {
                return None;
            }
            Some(PromotableAlloca { inst, value, ty })
        })
        .collect();
    out.sort_by_key(|a| a.inst);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use overify_ir::Module;

    fn prep(src: &str) -> Module {
        overify_lang::compile(src).unwrap()
    }

    #[test]
    fn promotes_simple_locals() {
        let mut m = prep("int f(int a) { int x = a; x = x + 1; return x; }");
        let mut stats = OptStats::default();
        let f = m.functions.iter_mut().find(|f| f.name == "f").unwrap();
        assert!(run(f, &mut stats));
        assert!(stats.allocas_promoted >= 2); // a's spill and x
                                              // No loads or stores remain.
        let has_mem = f.insts.iter().any(|i| {
            matches!(
                i.kind,
                InstKind::Load { .. } | InstKind::Store { .. } | InstKind::Alloca { .. }
            )
        });
        assert!(!has_mem, "memory ops remain after mem2reg");
        overify_ir::verify_module(&m).unwrap();
    }

    #[test]
    fn inserts_phis_for_loops() {
        let mut m = prep(
            "int sum(int n) { int s = 0; int i = 0; while (i < n) { s += i; i += 1; } return s; }",
        );
        let mut stats = OptStats::default();
        let f = m.functions.iter_mut().find(|f| f.name == "sum").unwrap();
        assert!(run(f, &mut stats));
        let phis = f
            .insts
            .iter()
            .filter(|i| matches!(i.kind, InstKind::Phi { .. }))
            .count();
        assert!(phis >= 2, "expected phis for s and i, got {phis}");
        overify_ir::verify_module(&m).unwrap();
    }

    #[test]
    fn behaviour_preserved() {
        let src =
            "int f(int a, int b) { int m = a; if (b > a) m = b; int c = 0; while (m > 0) { c += m; m -= 3; } return c; }";
        let m0 = prep(src);
        let mut m1 = prep(src);
        let mut stats = OptStats::default();
        for f in &mut m1.functions {
            run(f, &mut stats);
        }
        overify_ir::verify_module(&m1).unwrap();
        for (a, b) in [(5u64, 9u64), (9, 5), (0, 0), (100, 1)] {
            let cfg = overify_interp::ExecConfig::default();
            let r0 = overify_interp::run_module(&m0, "f", &[a, b], &cfg);
            let r1 = overify_interp::run_module(&m1, "f", &[a, b], &cfg);
            assert_eq!(r0.ret, r1.ret, "mismatch for ({a},{b})");
        }
    }

    #[test]
    fn escaped_alloca_not_promoted() {
        let mut m = prep(
            "int g(int *p); int f() { int x = 3; return g(&x); } int g(int *p) { return *p; }",
        );
        let mut stats = OptStats::default();
        let f = m.functions.iter_mut().find(|f| f.name == "f").unwrap();
        run(f, &mut stats);
        // x escapes via &x so its alloca must survive.
        let allocas = f
            .insts
            .iter()
            .filter(|i| matches!(i.kind, InstKind::Alloca { .. }))
            .count();
        assert!(allocas >= 1);
        overify_ir::verify_module(&m).unwrap();
    }

    #[test]
    fn uninitialized_reads_become_zero() {
        let mut m = prep("int f() { int x; return x; }");
        let mut stats = OptStats::default();
        let f = m.functions.iter_mut().find(|f| f.name == "f").unwrap();
        run(f, &mut stats);
        match f.blocks[0].term {
            Terminator::Ret {
                value: Some(Operand::Const(c)),
            } => assert_eq!(c.bits, 0),
            ref t => panic!("expected ret 0, got {t:?}"),
        }
    }
}
