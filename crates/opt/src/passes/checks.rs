//! Runtime check insertion (paper §3, "Runtime checks").
//!
//! *"Recent versions of Clang and GCC can emit run-time checks for various
//! forms of illegal behavior, transforming these various failures into
//! run-time crashes. This makes verification simpler, as tools now only
//! need to check for one type of failure (i.e., crashes)."*
//!
//! Inserted checks:
//! * division / remainder by a non-constant divisor → divisor-is-zero trap,
//! * loads/stores at `alloca`/global + variable offset → bounds trap.
//!
//! Checks that the annotation pass already proves safe are *elided* — the
//! interplay measured by the annotations ablation.

use crate::passes::annotate::compute_ranges;
use crate::stats::OptStats;
use crate::util::split_block;
use overify_ir::{
    AbortKind, BlockId, CmpPred, Const, Function, InstId, InstKind, Module, Operand, Terminator,
    Ty, ValueDef, ValueRange,
};
use std::collections::HashSet;

/// Options for the check inserter.
#[derive(Clone, Copy, Debug)]
pub struct CheckOptions {
    /// Insert divisor-is-zero checks.
    pub div: bool,
    /// Insert bounds checks for statically-known base objects.
    pub bounds: bool,
    /// Consult value-range annotations to elide provably safe checks.
    pub use_annotations: bool,
}

impl Default for CheckOptions {
    fn default() -> CheckOptions {
        CheckOptions {
            div: true,
            bounds: true,
            use_annotations: true,
        }
    }
}

/// Inserts runtime checks into one function.
pub fn run(m: &Module, f: &mut Function, opts: &CheckOptions, stats: &mut OptStats) -> bool {
    let mut processed: HashSet<InstId> = HashSet::new();
    let mut changed = false;

    loop {
        let ranges = if opts.use_annotations {
            Some(compute_ranges(f))
        } else {
            None
        };
        let mut site = None;
        'scan: for b in f.block_ids() {
            for (pos, &id) in f.block(b).insts.iter().enumerate() {
                if processed.contains(&id) {
                    continue;
                }
                let inst = f.inst(id);
                match &inst.kind {
                    InstKind::Bin { op, ty, rhs, .. } if opts.div && op.can_trap() => {
                        processed.insert(id);
                        if matches!(rhs, Operand::Const(_)) {
                            continue; // Constant divisor: nothing to check.
                        }
                        // Elide when the range proves the divisor non-zero.
                        if let (Some(r), Operand::Value(v)) = (&ranges, rhs) {
                            if let Some(vr) = r.get(v) {
                                if vr.umin > 0 {
                                    stats.checks_elided += 1;
                                    continue;
                                }
                            }
                        }
                        site = Some(Site::Div {
                            block: b,
                            pos,
                            divisor: *rhs,
                            ty: *ty,
                        });
                        break 'scan;
                    }
                    InstKind::Load { ty, addr } | InstKind::Store { ty, addr, .. }
                        if opts.bounds =>
                    {
                        processed.insert(id);
                        let width = ty.bytes();
                        let Some((size, base_off, var_off)) = traced_access(f, m, *addr) else {
                            continue; // Unknown base: the engine still checks.
                        };
                        match var_off {
                            None => {
                                // Fully constant: either provably fine or
                                // provably broken; either way no dynamic
                                // check is needed (constant folding of the
                                // comparison would decide it).
                                if base_off + width <= size {
                                    stats.checks_elided += 1;
                                    continue;
                                }
                                site = Some(Site::ConstOob { block: b, pos });
                                break 'scan;
                            }
                            Some(off_v) => {
                                let limit = size.saturating_sub(width).saturating_sub(base_off);
                                // Elide when the annotated range is safe.
                                if let Some(r) = &ranges {
                                    if let Some(vr) = r.get(&off_v) {
                                        let need = ValueRange {
                                            umin: 0,
                                            umax: limit,
                                        };
                                        if vr.umax <= need.umax {
                                            stats.checks_elided += 1;
                                            continue;
                                        }
                                    }
                                }
                                site = Some(Site::Bounds {
                                    block: b,
                                    pos,
                                    off: off_v,
                                    limit,
                                });
                                break 'scan;
                            }
                        }
                    }
                    _ => {}
                }
            }
        }

        let Some(site) = site else { break };
        insert_check(f, site);
        stats.checks_inserted += 1;
        changed = true;
    }
    changed
}

enum Site {
    Div {
        block: BlockId,
        pos: usize,
        divisor: Operand,
        ty: Ty,
    },
    Bounds {
        block: BlockId,
        pos: usize,
        off: overify_ir::ValueId,
        limit: u64,
    },
    ConstOob {
        block: BlockId,
        pos: usize,
    },
}

/// Traces `addr` to a known base object: returns (object size, constant
/// offset, optional single variable offset value).
fn traced_access(
    f: &Function,
    m: &Module,
    addr: Operand,
) -> Option<(u64, u64, Option<overify_ir::ValueId>)> {
    let mut cur = addr;
    let mut const_off = 0u64;
    let mut var: Option<overify_ir::ValueId> = None;
    for _ in 0..16 {
        let v = cur.as_value()?;
        let inst = match f.values[v.index()].def {
            ValueDef::Inst(i) => f.inst(i),
            ValueDef::Param(_) => return None,
        };
        match &inst.kind {
            InstKind::Alloca { size } => return Some((*size, const_off, var)),
            InstKind::GlobalAddr { global } => {
                return Some((m.globals.get(global.index())?.size, const_off, var))
            }
            InstKind::PtrAdd { base, offset } => {
                match offset {
                    Operand::Const(c) => const_off = const_off.wrapping_add(c.bits),
                    Operand::Value(ov) => {
                        if var.is_some() {
                            return None; // Two variable components.
                        }
                        var = Some(*ov);
                    }
                }
                cur = *base;
            }
            _ => return None,
        }
    }
    None
}

fn insert_check(f: &mut Function, site: Site) {
    match site {
        Site::Div {
            block,
            pos,
            divisor,
            ty,
        } => {
            let cont = split_block(f, block, pos, "div.ok");
            let trap = f.add_block("div.trap");
            f.set_term(
                trap,
                Terminator::Abort {
                    kind: AbortKind::DivByZero,
                },
            );
            let ok = f
                .append_inst(
                    block,
                    InstKind::Cmp {
                        pred: CmpPred::Ne,
                        ty,
                        lhs: divisor,
                        rhs: Operand::Const(Const::zero(ty)),
                    },
                    Some(Ty::I1),
                )
                .unwrap();
            f.set_term(
                block,
                Terminator::CondBr {
                    cond: Operand::Value(ok),
                    on_true: cont,
                    on_false: trap,
                },
            );
        }
        Site::Bounds {
            block,
            pos,
            off,
            limit,
        } => {
            let cont = split_block(f, block, pos, "bounds.ok");
            let trap = f.add_block("bounds.trap");
            f.set_term(
                trap,
                Terminator::Abort {
                    kind: AbortKind::OutOfBounds,
                },
            );
            let ty = f.value_ty(off);
            let ok = f
                .append_inst(
                    block,
                    InstKind::Cmp {
                        pred: CmpPred::Ule,
                        ty,
                        lhs: Operand::Value(off),
                        rhs: Operand::Const(Const::new(ty, limit)),
                    },
                    Some(Ty::I1),
                )
                .unwrap();
            f.set_term(
                block,
                Terminator::CondBr {
                    cond: Operand::Value(ok),
                    on_true: cont,
                    on_false: trap,
                },
            );
        }
        Site::ConstOob { block, pos } => {
            // The access is statically out of bounds: trap unconditionally
            // at this point.
            let _rest = split_block(f, block, pos, "oob.dead");
            f.set_term(
                block,
                Terminator::Abort {
                    kind: AbortKind::OutOfBounds,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overify_interp::{run_module, ExecConfig, Outcome};

    fn prep(src: &str) -> Module {
        let mut m = overify_lang::compile(src).unwrap();
        let mut stats = OptStats::default();
        for f in &mut m.functions {
            super::super::mem2reg::run(f, &mut stats);
            super::super::instsimplify::run(f, &mut stats);
            super::super::simplifycfg::run(f, &mut stats);
        }
        m
    }

    #[test]
    fn inserts_div_check() {
        let mut m = prep("int f(int a, int b) { return a / b; }");
        let mut stats = OptStats::default();
        let mut f = std::mem::take(&mut m.functions[0]);
        assert!(run(&m, &mut f, &CheckOptions::default(), &mut stats));
        m.functions[0] = f;
        assert_eq!(stats.checks_inserted, 1);
        overify_ir::verify_module(&m).unwrap();
        let cfg = ExecConfig::default();
        assert_eq!(run_module(&m, "f", &[6, 2], &cfg).ret, Some(3));
        assert_eq!(
            run_module(&m, "f", &[6, 0], &cfg).outcome,
            Outcome::Abort(AbortKind::DivByZero)
        );
    }

    #[test]
    fn bounds_check_traps_bad_index() {
        let mut m = prep("int f(int i) { char buf[8]; buf[0] = 1; buf[7] = 2; return buf[i]; }");
        let mut stats = OptStats::default();
        let mut f = std::mem::take(&mut m.functions[0]);
        run(&m, &mut f, &CheckOptions::default(), &mut stats);
        m.functions[0] = f;
        assert!(stats.checks_inserted >= 1);
        // The two constant accesses are elided.
        assert!(stats.checks_elided >= 2);
        overify_ir::verify_module(&m).unwrap();
        let cfg = ExecConfig::default();
        assert_eq!(run_module(&m, "f", &[7], &cfg).outcome, Outcome::Ok);
        assert_eq!(
            run_module(&m, "f", &[8], &cfg).outcome,
            Outcome::Abort(AbortKind::OutOfBounds)
        );
    }

    #[test]
    fn annotations_elide_safe_checks() {
        // i & 7 is always within an 8-byte buffer.
        let src = "int f(int i) { char buf[8]; buf[i & 7] = 1; return 0; }";
        let mut m = prep(src);
        let mut stats = OptStats::default();
        let mut f = std::mem::take(&mut m.functions[0]);
        run(&m, &mut f, &CheckOptions::default(), &mut stats);
        m.functions[0] = f;
        assert_eq!(stats.checks_inserted, 0, "masked index is provably safe");
        assert!(stats.checks_elided >= 1);

        // Without annotations the same site costs a check.
        let mut m2 = prep(src);
        let mut stats2 = OptStats::default();
        let mut f2 = std::mem::take(&mut m2.functions[0]);
        let opts = CheckOptions {
            use_annotations: false,
            ..Default::default()
        };
        run(&m2, &mut f2, &opts, &mut stats2);
        m2.functions[0] = f2;
        assert!(stats2.checks_inserted >= 1);
        overify_ir::verify_module(&m2).unwrap();
    }

    #[test]
    fn elides_provably_nonzero_divisor() {
        let src = "int f(int a, int b) { return a / ((b & 7) + 1); }";
        let mut m = prep(src);
        let mut stats = OptStats::default();
        let mut f = std::mem::take(&mut m.functions[0]);
        run(&m, &mut f, &CheckOptions::default(), &mut stats);
        m.functions[0] = f;
        assert_eq!(stats.checks_inserted, 0);
        assert!(stats.checks_elided >= 1);
    }
}
