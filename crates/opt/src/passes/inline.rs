//! Function inlining.
//!
//! Under the verification cost model the threshold is enormous (paper §4:
//! `-OSYMBEX` "aggressively inlines functions in order to benefit from
//! simplifications due to function specialization") — inlining a libc
//! predicate like `isspace` into its caller is what lets constant folding
//! and if-conversion dissolve it.

use crate::cost::CostModel;
use crate::stats::OptStats;
use crate::util::{apply_replacements, split_block};
use overify_ir::{
    Callee, Function, Inst, InstId, InstKind, Module, Operand, Terminator, ValueDef, ValueId,
};
use std::collections::HashMap;

/// Inlines eligible call sites across the module. Returns true if anything
/// changed.
pub fn run(m: &mut Module, cost: &CostModel, stats: &mut OptStats) -> bool {
    // How often each function is called, to drive "single call site"
    // heuristics.
    let mut call_counts: HashMap<String, usize> = HashMap::new();
    for f in &m.functions {
        for b in f.block_ids() {
            for &id in &f.block(b).insts {
                if let InstKind::Call {
                    callee: Callee::Func(name),
                    ..
                } = &f.inst(id).kind
                {
                    *call_counts.entry(name.clone()).or_insert(0) += 1;
                }
            }
        }
    }

    // Callees that call themselves are never inlined.
    let mut self_recursive: Vec<String> = Vec::new();
    for f in &m.functions {
        for inst in &f.insts {
            if let InstKind::Call {
                callee: Callee::Func(name),
                ..
            } = &inst.kind
            {
                if *name == f.name {
                    self_recursive.push(f.name.clone());
                    break;
                }
            }
        }
    }

    let mut changed = false;
    let count = m.functions.len();
    for fi in 0..count {
        // Repeatedly look for an inlinable call in this caller; each inline
        // invalidates block structure, so rescan.
        loop {
            if m.functions[fi].is_declaration {
                break;
            }
            if m.functions[fi].live_inst_count() > cost.caller_size_limit {
                break;
            }
            let Some((block, pos, callee_idx)) =
                find_candidate(m, fi, cost, &call_counts, &self_recursive)
            else {
                break;
            };
            let callee = m.functions[callee_idx].clone();
            inline_site(&mut m.functions[fi], block, pos, &callee);
            stats.functions_inlined += 1;
            changed = true;
        }
    }
    changed
}

/// Finds one call site in `m.functions[fi]` worth inlining.
fn find_candidate(
    m: &Module,
    fi: usize,
    cost: &CostModel,
    call_counts: &HashMap<String, usize>,
    self_recursive: &[String],
) -> Option<(overify_ir::BlockId, usize, usize)> {
    let f = &m.functions[fi];
    for b in f.block_ids() {
        for (pos, &id) in f.block(b).insts.iter().enumerate() {
            let InstKind::Call {
                callee: Callee::Func(name),
                ..
            } = &f.inst(id).kind
            else {
                continue;
            };
            if *name == f.name || self_recursive.contains(name) {
                continue;
            }
            let Some(ci) = m.function_index(name) else {
                continue;
            };
            let callee = &m.functions[ci];
            if callee.is_declaration {
                continue;
            }
            let size = callee.live_inst_count();
            let single_caller = call_counts.get(name).copied().unwrap_or(0) == 1;
            let threshold = if single_caller {
                // A unique call site cannot blow up code size overall.
                cost.inline_threshold * 2
            } else {
                cost.inline_threshold
            };
            if size <= cost.always_inline_threshold || size <= threshold {
                return Some((b, pos, ci));
            }
        }
    }
    None
}

/// Splices `callee`'s body in place of the call at `caller[block].insts[pos]`.
fn inline_site(caller: &mut Function, block: overify_ir::BlockId, pos: usize, callee: &Function) {
    // 1. Split off the continuation.
    let cont = split_block(caller, block, pos + 1, &format!("{}.cont", callee.name));
    // The call is now the last instruction of `block`.
    let call_id = *caller.block(block).insts.last().unwrap();
    let (args, call_result) = match &caller.inst(call_id).kind {
        InstKind::Call { args, .. } => (args.clone(), caller.inst(call_id).result),
        _ => unreachable!("split must leave the call last"),
    };

    // 2. Create caller values for every callee value.
    let mut vmap: Vec<Operand> = Vec::with_capacity(callee.values.len());
    for (i, vd) in callee.values.iter().enumerate() {
        match vd.def {
            ValueDef::Param(p) => vmap.push(args[p as usize]),
            ValueDef::Inst(_) => {
                let nv = caller.make_value(vd.ty, ValueDef::Param(u32::MAX), vd.name.clone());
                let _ = i;
                vmap.push(Operand::Value(nv));
            }
        }
    }

    // 3. Create the cloned blocks.
    let mut bmap: Vec<overify_ir::BlockId> = Vec::with_capacity(callee.blocks.len());
    for cb in &callee.blocks {
        let nb = caller.add_block(&format!("{}.{}", callee.name, cb.name));
        bmap.push(nb);
    }

    // 4. Clone instructions and terminators; collect return edges.
    let mut returns: Vec<(overify_ir::BlockId, Option<Operand>)> = Vec::new();
    for (ci, cb) in callee.blocks.iter().enumerate() {
        let nb = bmap[ci];
        for &cid in &cb.insts {
            let src = callee.inst(cid);
            if matches!(src.kind, InstKind::Nop) {
                continue;
            }
            let mut kind = src.kind.clone();
            kind.for_each_operand_mut(|op| {
                if let Operand::Value(v) = op {
                    *op = vmap[v.index()];
                }
            });
            if let InstKind::Phi { incomings, .. } = &mut kind {
                for (p, _) in incomings.iter_mut() {
                    *p = bmap[p.index()];
                }
            }
            let result = src.result.map(|r| match vmap[r.index()] {
                Operand::Value(nv) => nv,
                _ => unreachable!("instruction results map to fresh values"),
            });
            let nid = InstId(caller.insts.len() as u32);
            caller.insts.push(Inst { kind, result });
            if let Some(r) = result {
                caller.values[r.index()].def = ValueDef::Inst(nid);
            }
            caller.blocks[nb.index()].insts.push(nid);
        }
        let term = match &cb.term {
            Terminator::Br { target } => Terminator::Br {
                target: bmap[target.index()],
            },
            Terminator::CondBr {
                cond,
                on_true,
                on_false,
            } => {
                let cond = match cond {
                    Operand::Value(v) => vmap[v.index()],
                    c => *c,
                };
                Terminator::CondBr {
                    cond,
                    on_true: bmap[on_true.index()],
                    on_false: bmap[on_false.index()],
                }
            }
            Terminator::Ret { value } => {
                let value = value.map(|op| match op {
                    Operand::Value(v) => vmap[v.index()],
                    c => c,
                });
                returns.push((nb, value));
                Terminator::Br { target: cont }
            }
            Terminator::Abort { kind } => Terminator::Abort { kind: *kind },
            Terminator::Unreachable => Terminator::Unreachable,
        };
        caller.set_term(nb, term);
    }

    // 5. Route the entry and drop the call.
    caller.kill_inst(call_id);
    caller.set_term(block, Terminator::Br { target: bmap[0] });
    caller.purge_nops();

    // 6. Wire the return value into the continuation.
    if let Some(res) = call_result {
        let ty = caller.value_ty(res);
        let mut repl: HashMap<ValueId, Operand> = HashMap::new();
        match returns.len() {
            0 => {
                // The callee never returns; `cont` is unreachable, but uses
                // of the result must stay well-typed.
                repl.insert(res, Operand::Const(overify_ir::Const::zero(ty)));
            }
            1 => {
                repl.insert(res, returns[0].1.expect("non-void return"));
            }
            _ => {
                let incomings: Vec<_> = returns
                    .iter()
                    .map(|(b, v)| (*b, v.expect("non-void return")))
                    .collect();
                let (pid, pv) = caller.create_inst(InstKind::Phi { ty, incomings }, Some(ty));
                caller.blocks[cont.index()].insts.insert(0, pid);
                repl.insert(res, Operand::Value(pv.unwrap()));
            }
        }
        apply_replacements(caller, &repl);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overify_interp::{run_module, ExecConfig};

    fn compile(src: &str) -> Module {
        overify_lang::compile(src).unwrap()
    }

    #[test]
    fn inlines_small_callee() {
        let src = r#"
            int sq(int x) { return x * x; }
            int f(int a) { return sq(a) + sq(a + 1); }
        "#;
        let mut m = compile(src);
        let mut stats = OptStats::default();
        assert!(run(&mut m, &CostModel::verification(), &mut stats));
        assert_eq!(stats.functions_inlined, 2);
        overify_ir::verify_module(&m).unwrap();
        // No calls remain in f.
        let f = m.function("f").unwrap();
        assert!(!f
            .insts
            .iter()
            .any(|i| matches!(i.kind, InstKind::Call { .. })));
        let r = run_module(&m, "f", &[3], &ExecConfig::default());
        assert_eq!(r.ret, Some(25));
    }

    #[test]
    fn preserves_behaviour_with_branches_in_callee() {
        let src = r#"
            int absv(int x) { if (x < 0) return -x; return x; }
            int f(int a, int b) { return absv(a - b) + absv(b - a); }
        "#;
        let m0 = compile(src);
        let mut m1 = compile(src);
        let mut stats = OptStats::default();
        run(&mut m1, &CostModel::verification(), &mut stats);
        overify_ir::verify_module(&m1).unwrap();
        let cfg = ExecConfig::default();
        for (a, b) in [(3u64, 10u64), (10, 3), (0, 0)] {
            let r0 = run_module(&m0, "f", &[a, b], &cfg);
            let r1 = run_module(&m1, "f", &[a, b], &cfg);
            assert_eq!(r0.ret, r1.ret);
        }
    }

    #[test]
    fn respects_cpu_threshold() {
        // A biggish callee under the CPU model stays a call.
        let body: String = (0..40).map(|i| format!("x = x * 3 + {i}; ")).collect();
        let src =
            format!("int big(int x) {{ {body} return x; }} int f(int a) {{ return big(a); }}");
        let mut m = compile(&src);
        // Promote so live_inst_count reflects real work.
        let mut stats = OptStats::default();
        for f in &mut m.functions {
            super::super::mem2reg::run(f, &mut stats);
        }
        let mut cpu = CostModel::cpu();
        cpu.inline_threshold = 20;
        cpu.always_inline_threshold = 5;
        let mut stats = OptStats::default();
        // `big` has a single call site, so threshold*2 = 40 < ~80 insts.
        run(&mut m, &cpu, &mut stats);
        assert_eq!(stats.functions_inlined, 0);
        // The verification model takes it.
        let mut stats = OptStats::default();
        assert!(run(&mut m, &CostModel::verification(), &mut stats));
    }

    #[test]
    fn skips_recursive_functions() {
        let src = r#"
            int fact(int n) { if (n < 2) return 1; return n * fact(n - 1); }
            int f(int a) { return fact(a); }
        "#;
        let mut m = compile(src);
        let mut stats = OptStats::default();
        run(&mut m, &CostModel::verification(), &mut stats);
        overify_ir::verify_module(&m).unwrap();
        // fact is self-recursive: calls to it are never inlined.
        assert_eq!(stats.functions_inlined, 0);
        let r = run_module(&m, "f", &[5], &ExecConfig::default());
        assert_eq!(r.ret, Some(120));
    }

    #[test]
    fn void_and_multi_return_callees() {
        let src = r#"
            int pick(int x) { if (x > 10) return 1; if (x > 5) return 2; return 3; }
            int f(int a) { return pick(a) * 10; }
        "#;
        let m0 = compile(src);
        let mut m1 = compile(src);
        let mut stats = OptStats::default();
        run(&mut m1, &CostModel::verification(), &mut stats);
        overify_ir::verify_module(&m1).unwrap();
        let cfg = ExecConfig::default();
        for a in [0u64, 6, 11] {
            assert_eq!(
                run_module(&m0, "f", &[a], &cfg).ret,
                run_module(&m1, "f", &[a], &cfg).ret
            );
        }
    }
}
