//! Loop-invariant code motion.

use crate::stats::OptStats;
use overify_ir::loops::ensure_preheader;
use overify_ir::{Cfg, DomTree, Function, InstId, LoopForest, Operand, ValueDef};
use std::collections::HashSet;

/// Hoists speculatable loop-invariant instructions into loop preheaders.
pub fn run(f: &mut Function, stats: &mut OptStats) -> bool {
    let mut changed = false;
    // Loop structure changes when preheaders are created; iterate afresh a
    // few times.
    for _ in 0..4 {
        let cfg = Cfg::compute(f);
        let dom = DomTree::compute(&cfg);
        let forest = LoopForest::compute(&cfg, &dom);
        if forest.loops.is_empty() {
            return changed;
        }
        let mut local = false;
        // Innermost first so values bubble outward across iterations.
        let mut loops = forest.loops.clone();
        loops.sort_by_key(|l| std::cmp::Reverse(l.depth));
        for lp in &loops {
            // Only loops with a single outside predecessor are eligible for
            // our preheader helper.
            let outside: Vec<_> = cfg
                .preds(lp.header)
                .iter()
                .filter(|p| !lp.contains(**p))
                .collect();
            if outside.len() != 1 {
                continue;
            }
            let pre = ensure_preheader(f, lp);

            // Iterate to a fixpoint so chains of invariants hoist together.
            let mut hoisted: HashSet<u32> = HashSet::new();
            loop {
                let mut moved: Vec<(overify_ir::BlockId, InstId)> = Vec::new();
                for &b in &lp.blocks {
                    for &id in &f.block(b).insts {
                        let inst = f.inst(id);
                        if !inst.kind.is_speculatable() {
                            continue;
                        }
                        let mut invariant = true;
                        inst.kind.for_each_operand(|op| {
                            if let Operand::Value(v) = op {
                                if hoisted.contains(&v.0) {
                                    return;
                                }
                                match f.values[v.index()].def {
                                    ValueDef::Param(_) => {}
                                    ValueDef::Inst(di) => {
                                        // Defined inside the loop?
                                        let def_block = lp
                                            .blocks
                                            .iter()
                                            .any(|&lb| f.block(lb).insts.contains(&di));
                                        if def_block {
                                            invariant = false;
                                        }
                                    }
                                }
                            }
                        });
                        if invariant {
                            moved.push((b, id));
                        }
                    }
                }
                if moved.is_empty() {
                    break;
                }
                for (b, id) in moved {
                    let posn = f.blocks[b.index()]
                        .insts
                        .iter()
                        .position(|&x| x == id)
                        .unwrap();
                    f.blocks[b.index()].insts.remove(posn);
                    f.blocks[pre.index()].insts.push(id);
                    if let Some(r) = f.inst(id).result {
                        hoisted.insert(r.0);
                    }
                    stats.insts_hoisted += 1;
                    local = true;
                }
            }
        }
        if !local {
            break;
        }
        changed = true;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use overify_interp::{run_module, ExecConfig};

    #[test]
    fn hoists_invariant_multiply() {
        let src = r#"
            int f(int n, int a, int b) {
                int s = 0;
                for (int i = 0; i < n; i++) {
                    s += a * b + 7;
                }
                return s;
            }
        "#;
        let mut m = overify_lang::compile(src).unwrap();
        let mut stats = OptStats::default();
        let fi = m.function_index("f").unwrap();
        super::super::mem2reg::run(&mut m.functions[fi], &mut stats);
        super::super::instsimplify::run(&mut m.functions[fi], &mut stats);
        let before = stats.insts_hoisted;
        assert!(run(&mut m.functions[fi], &mut stats));
        assert!(stats.insts_hoisted > before);
        overify_ir::verify_module(&m).unwrap();
        let r = run_module(&m, "f", &[10, 3, 4], &ExecConfig::default());
        assert_eq!(r.ret, Some(190));
    }

    #[test]
    fn does_not_hoist_variant_values() {
        let src = r#"
            int f(int n) {
                int s = 0;
                for (int i = 0; i < n; i++) { s += i * i; }
                return s;
            }
        "#;
        let mut m = overify_lang::compile(src).unwrap();
        let mut stats = OptStats::default();
        let fi = m.function_index("f").unwrap();
        super::super::mem2reg::run(&mut m.functions[fi], &mut stats);
        run(&mut m.functions[fi], &mut stats);
        overify_ir::verify_module(&m).unwrap();
        let r = run_module(&m, "f", &[5], &ExecConfig::default());
        assert_eq!(r.ret, Some(30)); // 0+1+4+9+16
    }
}
