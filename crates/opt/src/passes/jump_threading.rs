//! Jump threading.
//!
//! Paper §3: *"jump threading checks whether a conditional branch jumps to a
//! location where another condition is subsumed by the first one; if yes,
//! the first branch is redirected correspondingly, turning two jumps into
//! one."* Two forms are implemented:
//!
//! 1. **Subsumed condition**: a successor rechecking the same `i1` value is
//!    folded to the known side.
//! 2. **Phi-of-constants**: predecessors feeding a constant into a branch
//!    condition phi jump straight to their decided target.

use crate::stats::OptStats;
use overify_ir::{Cfg, DomTree, Function, InstKind, Operand, Terminator, ValueDef, ValueId};
use std::collections::HashMap;

/// Runs jump threading to a fixpoint.
pub fn run(f: &mut Function, stats: &mut OptStats) -> bool {
    let mut changed = false;
    for _ in 0..20 {
        let mut local = false;
        local |= thread_subsumed(f, stats);
        local |= thread_phi_consts(f, stats);
        if !local {
            break;
        }
        changed = true;
    }
    changed
}

/// Form 1: `B: condbr %c, T, F` where `T` (resp. `F`) is exclusively
/// reached from this edge and re-tests `%c`.
fn thread_subsumed(f: &mut Function, stats: &mut OptStats) -> bool {
    let mut changed = false;
    let cfg = Cfg::compute(f);
    for b in f.block_ids().collect::<Vec<_>>() {
        let Terminator::CondBr {
            cond: cond @ Operand::Value(_),
            on_true,
            on_false,
        } = f.block(b).term
        else {
            continue;
        };
        for (succ, known) in [(on_true, true), (on_false, false)] {
            if succ == b || cfg.preds(succ) != [b] {
                continue;
            }
            let Terminator::CondBr {
                cond: c2,
                on_true: t2,
                on_false: f2,
            } = f.block(succ).term
            else {
                continue;
            };
            if c2 != cond {
                continue;
            }
            let (taken, dead) = if known { (t2, f2) } else { (f2, t2) };
            f.set_term(succ, Terminator::Br { target: taken });
            if dead != taken {
                f.remove_phi_edge(dead, succ);
            }
            stats.jumps_threaded += 1;
            changed = true;
        }
    }
    changed
}

/// Form 2: a block whose branch condition is decided, for some
/// predecessors, purely by the constants those predecessors feed into the
/// block's phis. The block may contain pure computations after the phis
/// (e.g. a loop header's `phi; icmp; condbr`); they are evaluated
/// per-predecessor. This is also what removes the residual loop left by
/// full unrolling: the final peeled latch feeds a constant induction value,
/// the exit test evaluates false, and the edge threads straight to the exit.
fn thread_phi_consts(f: &mut Function, stats: &mut OptStats) -> bool {
    let cfg = Cfg::compute(f);
    let dom = DomTree::compute(&cfg);

    // Find a candidate block.
    for b in f.block_ids().collect::<Vec<_>>() {
        if b == f.entry() || !dom.is_reachable(b) {
            continue;
        }
        // Split the block into leading phis and a pure tail.
        let mut phis: Vec<overify_ir::InstId> = Vec::new();
        let mut tail: Vec<overify_ir::InstId> = Vec::new();
        let mut pure = true;
        for &i in &f.block(b).insts {
            match &f.inst(i).kind {
                InstKind::Phi { .. } => phis.push(i),
                InstKind::Nop => {}
                k if k.is_speculatable() => tail.push(i),
                _ => {
                    pure = false;
                    break;
                }
            }
        }
        if !pure {
            continue;
        }
        // Tail results must not be used outside this block's terminator and
        // tail (otherwise threading would lose their definitions).
        if !tail.is_empty() && tail_escapes(f, b, &tail) {
            continue;
        }
        let Terminator::CondBr {
            cond: Operand::Value(cv),
            on_true,
            on_false,
        } = f.block(b).term
        else {
            continue;
        };
        if on_true == b || on_false == b {
            continue;
        }
        // The condition must be computed inside this block.
        let cond_inst = match f.values[cv.index()].def {
            ValueDef::Inst(i) => i,
            _ => continue,
        };
        if !phis.contains(&cond_inst) && !tail.contains(&cond_inst) {
            continue;
        }
        // Which predecessors decide the condition constantly?
        let mut incomings: Vec<(overify_ir::BlockId, Operand)> = Vec::new();
        for &p in cfg.preds(b) {
            if let Some(c) = eval_for_pred(f, b, &phis, &tail, cv, p) {
                incomings.push((p, Operand::Const(overify_ir::Const::bool(c))));
            }
        }
        if incomings.is_empty() {
            continue;
        }

        // Classify the phis of `b` for operand rewriting.
        let b_phis: Vec<overify_ir::InstId> = f
            .block(b)
            .insts
            .iter()
            .copied()
            .filter(|&i| matches!(f.inst(i).kind, InstKind::Phi { .. }))
            .collect();
        let phi_results: HashMap<ValueId, overify_ir::InstId> = b_phis
            .iter()
            .map(|&i| (f.inst(i).result.unwrap(), i))
            .collect();

        let mut threaded_any = false;
        for (pred, op) in incomings {
            let Operand::Const(c) = op else { continue };
            if pred == b {
                continue;
            }
            let target = if c.bits != 0 { on_true } else { on_false };
            if target == b {
                continue;
            }
            // Skip if the predecessor already reaches the target directly
            // (avoiding duplicate phi incomings there).
            if f.block(pred).term.successors().contains(&target) {
                continue;
            }
            // Soundness: threading adds the edge `pred -> target`, which can
            // strip `b`'s domination from blocks reachable out of `target`.
            // Any use of a `b`-defined value in that region would dangle.
            if b_values_used_beyond(f, b, target) {
                continue;
            }
            // Every phi of `target` fed from `b` must have a value we can
            // re-route from `pred`.
            let mut reroutes: Vec<(overify_ir::InstId, Operand)> = Vec::new();
            let mut ok = true;
            for &tid in &f.block(target).insts {
                let InstKind::Phi {
                    incomings: tinc, ..
                } = &f.inst(tid).kind
                else {
                    continue;
                };
                let Some((_, tval)) = tinc.iter().find(|(p, _)| *p == b) else {
                    ok = false;
                    break;
                };
                let routed = match tval {
                    Operand::Const(_) => *tval,
                    Operand::Value(v) => {
                        if let Some(&src_phi) = phi_results.get(v) {
                            // Use the phi's own value on the pred edge.
                            let InstKind::Phi { incomings: pin, .. } = &f.inst(src_phi).kind else {
                                unreachable!()
                            };
                            match pin.iter().find(|(p, _)| *p == pred) {
                                Some((_, pv)) => *pv,
                                None => {
                                    ok = false;
                                    break;
                                }
                            }
                        } else {
                            // The value must be available at the end of the
                            // predecessor being rerouted: its definition
                            // must dominate `pred`.
                            let vb = match f.values[v.index()].def {
                                ValueDef::Param(_) => None, // Params dominate all.
                                ValueDef::Inst(di) => {
                                    // Locate the defining block.
                                    f.block_ids().find(|&bb| f.block(bb).insts.contains(&di))
                                }
                            };
                            match vb {
                                None => *tval, // Parameter.
                                Some(db) => {
                                    if dom.dominates(db, pred) {
                                        *tval
                                    } else {
                                        ok = false;
                                        break;
                                    }
                                }
                            }
                        }
                    }
                };
                reroutes.push((tid, routed));
            }
            if !ok {
                continue;
            }

            // Commit: redirect pred, extend target phis, trim b's phis.
            f.block_mut(pred).term.retarget(b, target);
            for (tid, val) in reroutes {
                if let InstKind::Phi { incomings, .. } = &mut f.inst_mut(tid).kind {
                    incomings.push((pred, val));
                }
            }
            for &pid in &b_phis {
                if let InstKind::Phi { incomings, .. } = &mut f.inst_mut(pid).kind {
                    incomings.retain(|(p, _)| *p != pred);
                }
            }
            stats.jumps_threaded += 1;
            threaded_any = true;
        }
        if threaded_any {
            return true; // CFG changed; caller reiterates.
        }
    }
    false
}

/// True if a value defined in `b` is used in the region reachable from
/// `target` without passing through `b` (in a way that the per-target phi
/// rerouting does not already repair). Threading an edge to `target` would
/// break dominance for such uses.
fn b_values_used_beyond(f: &Function, b: overify_ir::BlockId, target: overify_ir::BlockId) -> bool {
    use std::collections::HashSet;
    let defined: HashSet<ValueId> = f
        .block(b)
        .insts
        .iter()
        .filter_map(|&i| f.inst(i).result)
        .collect();
    if defined.is_empty() {
        return false;
    }
    // Region reachable from `target` avoiding `b`.
    let mut reach: HashSet<overify_ir::BlockId> = HashSet::new();
    let mut stack = vec![target];
    while let Some(x) = stack.pop() {
        if x == b || !reach.insert(x) {
            continue;
        }
        for s in f.block(x).term.successors() {
            stack.push(s);
        }
    }
    for &ub in &reach {
        for &id in &f.block(ub).insts {
            match &f.inst(id).kind {
                InstKind::Phi { incomings, .. } => {
                    for (p, v) in incomings {
                        if let Operand::Value(v) = v {
                            if defined.contains(v) {
                                // An incoming from `b` itself survives (the
                                // residual `b` keeps its defs); an incoming
                                // from inside the region is at risk.
                                if *p != b && reach.contains(p) {
                                    return true;
                                }
                            }
                        }
                    }
                }
                other => {
                    let mut used = false;
                    other.for_each_operand(|op| {
                        if let Operand::Value(v) = op {
                            used |= defined.contains(v);
                        }
                    });
                    if used {
                        return true;
                    }
                }
            }
        }
        match &f.block(ub).term {
            Terminator::CondBr {
                cond: Operand::Value(v),
                ..
            }
            | Terminator::Ret {
                value: Some(Operand::Value(v)),
            } if defined.contains(v) => return true,
            _ => {}
        }
    }
    false
}

/// True if any result of `tail` is used outside of block `b`'s own tail
/// instructions and terminator.
fn tail_escapes(f: &Function, b: overify_ir::BlockId, tail: &[overify_ir::InstId]) -> bool {
    let results: Vec<ValueId> = tail.iter().filter_map(|&i| f.inst(i).result).collect();
    let uses_one =
        |op: &Operand| -> bool { matches!(op, Operand::Value(v) if results.contains(v)) };
    for bb in f.block_ids() {
        for &id in &f.block(bb).insts {
            if bb == b && tail.contains(&id) {
                continue;
            }
            let mut used = false;
            f.inst(id).kind.for_each_operand(|op| used |= uses_one(op));
            if used {
                return true;
            }
        }
        if bb == b {
            continue; // b's own terminator may use the tail.
        }
        match &f.block(bb).term {
            Terminator::CondBr { cond, .. } if uses_one(cond) => return true,
            Terminator::Ret { value: Some(v) } if uses_one(v) => return true,
            _ => {}
        }
    }
    false
}

/// Evaluates the branch condition `cv` of block `b` for control arriving
/// from predecessor `p`, when every needed phi incoming is a constant and
/// the tail is evaluable. Returns the decided truth value.
fn eval_for_pred(
    f: &Function,
    _b: overify_ir::BlockId,
    phis: &[overify_ir::InstId],
    tail: &[overify_ir::InstId],
    cv: ValueId,
    p: overify_ir::BlockId,
) -> Option<bool> {
    use overify_ir::fold;
    let mut env: HashMap<ValueId, u64> = HashMap::new();
    for &pid in phis {
        if let InstKind::Phi { incomings, .. } = &f.inst(pid).kind {
            if let Some((_, Operand::Const(c))) = incomings.iter().find(|(pp, _)| *pp == p) {
                env.insert(f.inst(pid).result.unwrap(), c.bits);
            }
        }
    }
    fn get(env: &HashMap<ValueId, u64>, op: Operand) -> Option<u64> {
        match op {
            Operand::Const(c) => Some(c.bits),
            Operand::Value(v) => env.get(&v).copied(),
        }
    }
    for &tid in tail {
        let inst = f.inst(tid);
        let Some(r) = inst.result else { continue };
        let val = match &inst.kind {
            InstKind::Bin { op, ty, lhs, rhs } => {
                fold::eval_bin(*op, *ty, get(&env, *lhs)?, get(&env, *rhs)?)?
            }
            InstKind::Cmp { pred, ty, lhs, rhs } => {
                fold::eval_cmp(*pred, *ty, get(&env, *lhs)?, get(&env, *rhs)?) as u64
            }
            InstKind::Cast { op, to, value } => {
                let from = f.operand_ty(*value);
                fold::eval_cast(*op, from, *to, get(&env, *value)?)
            }
            InstKind::Select {
                cond,
                on_true,
                on_false,
                ..
            } => {
                if get(&env, *cond)? != 0 {
                    get(&env, *on_true)?
                } else {
                    get(&env, *on_false)?
                }
            }
            _ => return None, // Pointers and the like: not evaluable.
        };
        env.insert(r, val);
    }
    Some(get(&env, Operand::Value(cv))? != 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use overify_interp::{run_module, ExecConfig};

    #[test]
    fn folds_retested_condition() {
        // if (c) { if (c) A else B }: inner test threads away.
        let src = r#"
            int f(int c) {
                int r = 0;
                if (c > 5) {
                    if (c > 5) { r = 1; } else { r = 2; }
                }
                return r;
            }
        "#;
        let mut m = overify_lang::compile(src).unwrap();
        let mut stats = OptStats::default();
        let fi = m.function_index("f").unwrap();
        super::super::mem2reg::run(&mut m.functions[fi], &mut stats);
        super::super::gvn::run(&mut m.functions[fi], &mut stats);
        assert!(run(&mut m.functions[fi], &mut stats));
        assert!(stats.jumps_threaded >= 1);
        overify_ir::verify_module(&m).unwrap();
        for c in [0u64, 6, 10] {
            let r = run_module(&m, "f", &[c], &ExecConfig::default());
            assert_eq!(r.ret, Some(if c > 5 { 1 } else { 0 }));
        }
    }

    #[test]
    fn threads_phi_of_constants() {
        // The short-circuit || lowering produces exactly the
        // phi-of-constants shape after mem2reg.
        let src = r#"
            int f(int a, int b) {
                if (a == 1 || b == 2) { return 10; }
                return 20;
            }
        "#;
        let mut m = overify_lang::compile(src).unwrap();
        let mut stats = OptStats::default();
        let fi = m.function_index("f").unwrap();
        super::super::mem2reg::run(&mut m.functions[fi], &mut stats);
        super::super::instsimplify::run(&mut m.functions[fi], &mut stats);
        super::super::simplifycfg::run(&mut m.functions[fi], &mut stats);
        run(&mut m.functions[fi], &mut stats);
        super::super::simplifycfg::run(&mut m.functions[fi], &mut stats);
        overify_ir::verify_module(&m).unwrap();
        let cfg = ExecConfig::default();
        for (a, b) in [(1u64, 0u64), (0, 2), (0, 0), (1, 2)] {
            let r = run_module(&m, "f", &[a, b], &cfg);
            let expect = if a == 1 || b == 2 { 10 } else { 20 };
            assert_eq!(r.ret, Some(expect), "a={a} b={b}");
        }
    }

    #[test]
    fn behaviour_preserved_on_nested_logic() {
        let src = r#"
            int f(int a, int b, int c) {
                int r = 0;
                if ((a > 0 && b > 0) || c == 7) r += 1;
                if (a > 0 || (b > 0 && c != 7)) r += 2;
                return r;
            }
        "#;
        let m0 = overify_lang::compile(src).unwrap();
        let mut m1 = m0.clone();
        let mut stats = OptStats::default();
        let fi = m1.function_index("f").unwrap();
        super::super::mem2reg::run(&mut m1.functions[fi], &mut stats);
        super::super::instsimplify::run(&mut m1.functions[fi], &mut stats);
        super::super::simplifycfg::run(&mut m1.functions[fi], &mut stats);
        run(&mut m1.functions[fi], &mut stats);
        super::super::simplifycfg::run(&mut m1.functions[fi], &mut stats);
        overify_ir::verify_module(&m1).unwrap();
        let cfg = ExecConfig::default();
        for a in [0u64, 1] {
            for b in [0u64, 1] {
                for c in [0u64, 7] {
                    let r0 = run_module(&m0, "f", &[a, b, c], &cfg);
                    let r1 = run_module(&m1, "f", &[a, b, c], &cfg);
                    assert_eq!(r0.ret, r1.ret, "a={a} b={b} c={c}");
                }
            }
        }
    }
}
