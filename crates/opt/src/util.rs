//! Shared pass machinery: batch value replacement, block compaction, region
//! cloning and block splitting.

use overify_ir::{BlockId, InstId};
use overify_ir::{Cfg, Function, InstKind, Module, Operand, Terminator, Ty, ValueDef, ValueId};
use std::collections::HashMap;

/// Applies a set of value replacements in one pass over the function,
/// resolving chains (`a -> b -> c`) transitively.
///
/// Replacement maps are how passes communicate "this value is now that
/// operand" without quadratic rewriting.
pub fn apply_replacements(f: &mut Function, map: &HashMap<ValueId, Operand>) {
    if map.is_empty() {
        return;
    }
    let resolve = |mut op: Operand| -> Operand {
        // Bounded chase to defend against accidental cycles.
        for _ in 0..64 {
            match op {
                Operand::Value(v) => match map.get(&v) {
                    Some(&next) => op = next,
                    None => return op,
                },
                c => return c,
            }
        }
        op
    };
    for inst in &mut f.insts {
        inst.kind.for_each_operand_mut(|op| *op = resolve(*op));
    }
    for b in &mut f.blocks {
        match &mut b.term {
            Terminator::CondBr { cond, .. } => *cond = resolve(*cond),
            Terminator::Ret { value: Some(v) } => *v = resolve(*v),
            _ => {}
        }
    }
}

/// Removes unreachable blocks and renumbers the remainder, rewriting all
/// block references (terminators and phi incomings). Returns true if
/// anything was removed.
pub fn compact_blocks(f: &mut Function) -> bool {
    let cfg = Cfg::compute(f);
    let reachable = cfg.reachable();
    if reachable.iter().all(|&r| r) {
        return false;
    }
    // Tombstone instructions of dead blocks.
    for (i, b) in f.blocks.iter().enumerate() {
        if !reachable[i] {
            for &id in &b.insts {
                // Will be cleared below; mark dead for use counting.
                let _ = id;
            }
        }
    }
    let mut remap: Vec<Option<BlockId>> = vec![None; f.blocks.len()];
    let mut kept = Vec::new();
    for (i, b) in std::mem::take(&mut f.blocks).into_iter().enumerate() {
        if reachable[i] {
            remap[i] = Some(BlockId(kept.len() as u32));
            kept.push(b);
        } else {
            for id in b.insts {
                f.insts[id.index()].kind = InstKind::Nop;
                f.insts[id.index()].result = None;
            }
        }
    }
    f.blocks = kept;
    for b in &mut f.blocks {
        match &mut b.term {
            Terminator::Br { target } => *target = remap[target.index()].unwrap(),
            Terminator::CondBr {
                on_true, on_false, ..
            } => {
                *on_true = remap[on_true.index()].unwrap();
                *on_false = remap[on_false.index()].unwrap();
            }
            _ => {}
        }
    }
    for inst in &mut f.insts {
        if let InstKind::Phi { incomings, .. } = &mut inst.kind {
            incomings.retain(|(p, _)| remap[p.index()].is_some());
            for (p, _) in incomings.iter_mut() {
                *p = remap[p.index()].unwrap();
            }
        }
    }
    true
}

/// Result of [`clone_region`].
pub struct CloneMap {
    /// Old region block -> its clone.
    pub blocks: HashMap<BlockId, BlockId>,
    /// Old value -> replacement operand, for values defined inside the
    /// region. Values defined outside map to themselves.
    pub values: HashMap<ValueId, Operand>,
}

impl CloneMap {
    /// Looks up the clone of an operand.
    pub fn operand(&self, op: Operand) -> Operand {
        match op {
            Operand::Value(v) => self.values.get(&v).copied().unwrap_or(op),
            c => c,
        }
    }

    /// Looks up the clone of a block (identity for blocks outside the
    /// region).
    pub fn block(&self, b: BlockId) -> BlockId {
        self.blocks.get(&b).copied().unwrap_or(b)
    }
}

/// Clones a set of blocks *within* one function, remapping all internal
/// references (used by loop unswitching and unrolling/peeling).
///
/// Edges leaving the region keep their original targets; phi incomings from
/// blocks outside the region are preserved as-is.
pub fn clone_region(f: &mut Function, region: &[BlockId], suffix: &str) -> CloneMap {
    let mut map = CloneMap {
        blocks: HashMap::new(),
        values: HashMap::new(),
    };
    // Create the clone blocks.
    for &b in region {
        let name = format!("{}.{}", f.block(b).name, suffix);
        let nb = f.add_block(&name);
        map.blocks.insert(b, nb);
    }
    // Create fresh values for every instruction result in the region.
    for &b in region {
        for &id in &f.blocks[b.index()].insts.clone() {
            if let Some(r) = f.inst(id).result {
                let ty = f.value_ty(r);
                let name = f.values[r.index()].name.clone();
                // Def is fixed when the cloned instruction is materialized.
                let nv = f.make_value(ty, ValueDef::Param(u32::MAX), name);
                map.values.insert(r, Operand::Value(nv));
            }
        }
    }
    // Clone the instructions and terminators.
    for &b in region {
        let nb = map.blocks[&b];
        let inst_ids: Vec<InstId> = f.blocks[b.index()].insts.clone();
        for id in inst_ids {
            let mut kind = f.inst(id).kind.clone();
            kind.for_each_operand_mut(|op| *op = map.operand(*op));
            if let InstKind::Phi { incomings, .. } = &mut kind {
                for (p, _) in incomings.iter_mut() {
                    *p = map.block(*p);
                }
            }
            let result = f.inst(id).result.map(|r| match map.values[&r] {
                Operand::Value(nv) => nv,
                _ => unreachable!(),
            });
            let nid = InstId(f.insts.len() as u32);
            f.insts.push(overify_ir::Inst { kind, result });
            if let Some(r) = result {
                f.values[r.index()].def = ValueDef::Inst(nid);
            }
            f.blocks[nb.index()].insts.push(nid);
        }
        let mut term = f.block(b).term.clone();
        match &mut term {
            Terminator::Br { target } => *target = map.block(*target),
            Terminator::CondBr {
                cond,
                on_true,
                on_false,
            } => {
                *cond = map.operand(*cond);
                *on_true = map.block(*on_true);
                *on_false = map.block(*on_false);
            }
            Terminator::Ret { value: Some(v) } => *v = map.operand(*v),
            _ => {}
        }
        f.set_term(nb, term);
    }
    map
}

/// Splits `block` before instruction index `at`: instructions `at..` move to
/// a new block which inherits the old terminator; `block` branches to it.
/// Phis in old successors are retargeted. Returns the new block.
pub fn split_block(f: &mut Function, block: BlockId, at: usize, name: &str) -> BlockId {
    let nb = f.add_block(name);
    let tail: Vec<InstId> = f.blocks[block.index()].insts.split_off(at);
    f.blocks[nb.index()].insts = tail;
    let term = std::mem::replace(
        &mut f.blocks[block.index()].term,
        Terminator::Br { target: nb },
    );
    // Successor phis must now name the new block as their predecessor.
    for succ in term.successors() {
        f.retarget_phis(succ, block, nb);
    }
    f.set_term(nb, term);
    nb
}

/// Attempts to prove that `addr` points at least `width` bytes inside a
/// live allocation (an alloca or a global), for speculation and check
/// elision. Conservative: returns false when unsure.
pub fn provably_dereferenceable(m: &Module, f: &Function, addr: Operand, width: u64) -> bool {
    provably_dereferenceable_with(m, f, addr, width, None)
}

/// Like [`provably_dereferenceable`], additionally accepting value-range
/// facts so *variable* offsets with proven bounds qualify — this is what
/// lets `-OVERIFY` speculate `table[c & 255]`-style lookups.
pub fn provably_dereferenceable_with(
    m: &Module,
    f: &Function,
    addr: Operand,
    width: u64,
    ranges: Option<&HashMap<ValueId, overify_ir::ValueRange>>,
) -> bool {
    // Walks the ptradd chain accumulating a constant offset plus the maximum
    // of any bounded variable offsets. Returns (object size, worst offset).
    fn trace(
        m: &Module,
        f: &Function,
        op: Operand,
        depth: u32,
        ranges: Option<&HashMap<ValueId, overify_ir::ValueRange>>,
    ) -> Option<(u64, u64)> {
        if depth > 16 {
            return None;
        }
        let v = op.as_value()?;
        let inst = match f.values[v.index()].def {
            ValueDef::Inst(i) => f.inst(i),
            ValueDef::Param(_) => return None,
        };
        match &inst.kind {
            InstKind::Alloca { size } => Some((*size, 0)),
            InstKind::GlobalAddr { global } => Some((m.globals.get(global.index())?.size, 0)),
            InstKind::PtrAdd { base, offset } => {
                let worst = match offset {
                    Operand::Const(c) => {
                        // Negative offsets wrap to huge values and fail the
                        // final bound check, as they should.
                        c.bits
                    }
                    Operand::Value(ov) => {
                        let r = ranges?.get(ov)?;
                        r.umax
                    }
                };
                let (size, off) = trace(m, f, *base, depth + 1, ranges)?;
                Some((size, off.checked_add(worst)?))
            }
            _ => None,
        }
    }
    match trace(m, f, addr, 0, ranges) {
        Some((size, off)) => off.checked_add(width).is_some_and(|end| end <= size),
        None => false,
    }
}

/// True if `ty`-typed `op` equals the constant `bits`.
pub fn is_const(op: Operand, bits: u64, ty: Ty) -> bool {
    matches!(op, Operand::Const(c) if c.ty == ty && c.bits == bits)
}

/// Block of each instruction, or `None` for dangling ids.
pub fn inst_blocks(f: &Function) -> Vec<Option<BlockId>> {
    let mut out = vec![None; f.insts.len()];
    for b in f.block_ids() {
        for &id in &f.block(b).insts {
            out[id.index()] = Some(b);
        }
    }
    out
}

/// Gives the loop dedicated exit blocks (LLVM's LoopSimplify invariant):
/// every exit block whose predecessors are not all inside the loop gets a
/// fresh landing block between the loop and the old exit, with phis split
/// accordingly. Returns true if the CFG changed.
pub fn ensure_dedicated_exits(f: &mut Function, lp: &overify_ir::Loop) -> bool {
    let mut changed = false;
    for &e in &lp.exits {
        let cfg = Cfg::compute(f);
        let preds: Vec<BlockId> = cfg.preds(e).to_vec();
        let loop_preds: Vec<BlockId> = preds.iter().copied().filter(|p| lp.contains(*p)).collect();
        let has_outside = preds.iter().any(|p| !lp.contains(*p));
        if !has_outside || loop_preds.is_empty() {
            continue;
        }
        let landing = f.add_block("loopexit");
        f.set_term(landing, Terminator::Br { target: e });
        // Split each phi: the loop-side incomings move to a new phi in the
        // landing block.
        let ids: Vec<InstId> = f.block(e).insts.clone();
        for id in ids {
            let InstKind::Phi { ty, incomings } = f.inst(id).kind.clone() else {
                continue;
            };
            let (from_loop, from_outside): (Vec<_>, Vec<_>) = incomings
                .into_iter()
                .partition(|(p, _)| loop_preds.contains(p));
            if from_loop.is_empty() {
                continue;
            }
            let (lid, lval) = f.create_inst(
                InstKind::Phi {
                    ty,
                    incomings: from_loop,
                },
                Some(ty),
            );
            f.blocks[landing.index()].insts.insert(0, lid);
            let mut new_incomings = from_outside;
            new_incomings.push((landing, Operand::Value(lval.unwrap())));
            if let InstKind::Phi { incomings, .. } = &mut f.inst_mut(id).kind {
                *incomings = new_incomings;
            }
        }
        for p in loop_preds {
            f.block_mut(p).term.retarget(e, landing);
        }
        changed = true;
    }
    changed
}

/// Puts a loop into a closed form: every value defined inside the loop that
/// is used outside gets a phi in the (unique) exit block, and outside uses
/// are rewritten to the phi. Required before the loop body can be duplicated
/// (unswitching, peeling).
///
/// Returns `false` — leaving the function untouched — when the loop's shape
/// is unsupported: multiple exit blocks, an exit with predecessors outside
/// the loop, or a loop-defined value whose definition does not dominate
/// every exiting edge.
pub fn make_loop_closed(f: &mut Function, lp: &overify_ir::Loop) -> bool {
    if lp.exits.len() > 1 {
        return false;
    }
    let cfg = Cfg::compute(f);
    let dom = overify_ir::DomTree::compute(&cfg);
    let Some(&exit) = lp.exits.first() else {
        return true; // No exit edges (loop leaves only via ret/abort).
    };
    let exit_preds: Vec<BlockId> = cfg.preds(exit).to_vec();
    if exit_preds.iter().any(|p| !lp.contains(*p)) {
        return false;
    }

    let _blocks_of = inst_blocks(f);
    // Values defined inside the loop.
    let mut inside: HashMap<ValueId, BlockId> = HashMap::new();
    for &b in &lp.blocks {
        for &id in &f.block(b).insts {
            if let Some(r) = f.inst(id).result {
                inside.insert(r, b);
            }
        }
    }

    // Find outside uses.
    let mut used_outside: Vec<(ValueId, BlockId)> = Vec::new();
    for b in f.block_ids() {
        if lp.contains(b) {
            continue;
        }
        let mut note = |op: &Operand| {
            if let Operand::Value(v) = op {
                if let Some(&db) = inside.get(v) {
                    if !used_outside.iter().any(|(u, _)| u == v) {
                        used_outside.push((*v, db));
                    }
                }
            }
        };
        for &id in &f.block(b).insts {
            // Phi uses in the exit block that we are about to create would
            // be fine, but none exist yet; all current uses count.
            f.inst(id).kind.for_each_operand(&mut note);
        }
        match &f.block(b).term {
            Terminator::CondBr { cond, .. } => note(cond),
            Terminator::Ret { value: Some(v) } => note(v),
            _ => {}
        }
    }
    if used_outside.is_empty() {
        return true;
    }

    // Each such value must dominate every exiting edge.
    for (v, db) in &used_outside {
        let _ = v;
        for p in &exit_preds {
            if !dom.dominates(*db, *p) {
                return false;
            }
        }
    }

    // Insert the exit phis and rewrite outside uses.
    let mut repl: HashMap<ValueId, Operand> = HashMap::new();
    let mut new_phis: Vec<InstId> = Vec::new();
    for (v, _) in used_outside {
        let ty = f.value_ty(v);
        let incomings: Vec<(BlockId, Operand)> =
            exit_preds.iter().map(|&p| (p, Operand::Value(v))).collect();
        let (pid, pv) = f.create_inst(InstKind::Phi { ty, incomings }, Some(ty));
        f.blocks[exit.index()].insts.insert(0, pid);
        new_phis.push(pid);
        repl.insert(v, Operand::Value(pv.unwrap()));
    }
    // Rewrite uses outside the loop, except inside the new phis themselves.
    let resolve = |op: Operand| -> Operand {
        match op {
            Operand::Value(v) => repl.get(&v).copied().unwrap_or(op),
            c => c,
        }
    };
    for b in f.block_ids().collect::<Vec<_>>() {
        if lp.contains(b) {
            continue;
        }
        let ids: Vec<InstId> = f.block(b).insts.clone();
        for id in ids {
            if new_phis.contains(&id) {
                continue;
            }
            f.inst_mut(id)
                .kind
                .for_each_operand_mut(|op| *op = resolve(*op));
        }
        match &mut f.blocks[b.index()].term {
            Terminator::CondBr { cond, .. } => *cond = resolve(*cond),
            Terminator::Ret { value: Some(v) } => *v = resolve(*v),
            _ => {}
        }
    }
    true
}

/// A recognized counted loop: `i` starts at a constant, steps by a constant,
/// and the header exits on a comparison against a constant.
pub struct CountedLoop {
    /// Number of times the loop body executes.
    pub trip_count: u64,
}

/// Tries to prove a constant trip count by locating the canonical induction
/// pattern and simulating it. `cap` bounds the simulation.
pub fn trip_count(f: &Function, lp: &overify_ir::Loop, cap: u64) -> Option<CountedLoop> {
    use overify_ir::fold;

    let header = lp.header;
    let Terminator::CondBr {
        cond: Operand::Value(cv),
        on_true,
        on_false,
    } = f.block(header).term
    else {
        return None;
    };
    let body_on_true = lp.contains(on_true);
    if body_on_true == lp.contains(on_false) {
        return None; // Both or neither inside: not a rotated-exit loop.
    }
    let cond_def = match f.values[cv.index()].def {
        ValueDef::Inst(i) => i,
        _ => return None,
    };
    if !f.block(header).insts.contains(&cond_def) {
        return None;
    }
    let InstKind::Cmp { pred, ty, lhs, rhs } = f.inst(cond_def).kind else {
        return None;
    };

    // One side is the induction phi, the other a constant.
    let (iv, bound, iv_on_lhs) = match (lhs, rhs) {
        (Operand::Value(v), Operand::Const(c)) => (v, c, true),
        (Operand::Const(c), Operand::Value(v)) => (v, c, false),
        _ => return None,
    };
    let iv_def = match f.values[iv.index()].def {
        ValueDef::Inst(i) => i,
        _ => return None,
    };
    if !f.block(header).insts.contains(&iv_def) {
        return None;
    }
    let InstKind::Phi { incomings, .. } = &f.inst(iv_def).kind else {
        return None;
    };
    if incomings.len() != 2 {
        return None;
    }
    let (mut init, mut step_op) = (None, None);
    for (p, op) in incomings {
        if lp.contains(*p) {
            step_op = Some(*op);
        } else if let Operand::Const(c) = op {
            init = Some(*c);
        }
    }
    let (init, step_op) = (init?, step_op?);
    let step_v = step_op.as_value()?;
    let step_def = match f.values[step_v.index()].def {
        ValueDef::Inst(i) => i,
        _ => return None,
    };
    let InstKind::Bin {
        op: overify_ir::BinOp::Add,
        lhs: sl,
        rhs: Operand::Const(step),
        ..
    } = f.inst(step_def).kind
    else {
        return None;
    };
    if sl != Operand::Value(iv) || step.bits == 0 {
        return None;
    }

    // Simulate the exit test.
    let mut x = init.bits;
    let mut trips = 0u64;
    loop {
        let (a, b) = if iv_on_lhs {
            (x, bound.bits)
        } else {
            (bound.bits, x)
        };
        let taken = fold::eval_cmp(pred, ty, a, b);
        let enters_body = taken == body_on_true;
        if !enters_body {
            return Some(CountedLoop { trip_count: trips });
        }
        trips += 1;
        if trips > cap {
            return None;
        }
        x = fold::eval_bin(overify_ir::BinOp::Add, ty, x, step.bits)?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overify_ir::{BinOp, Const, Cursor, Ty};

    #[test]
    fn replacements_resolve_chains() {
        let mut f = Function::new("t", &[Ty::I32], Ty::I32);
        let p = Operand::Value(f.params[0]);
        let mut c = Cursor::new(&mut f);
        let a = c.bin(BinOp::Add, Ty::I32, p, c.imm(Ty::I32, 0));
        let b = c.bin(BinOp::Add, Ty::I32, a, c.imm(Ty::I32, 0));
        c.ret(Some(b));
        let mut map = HashMap::new();
        map.insert(b.as_value().unwrap(), a);
        map.insert(a.as_value().unwrap(), p);
        apply_replacements(&mut f, &map);
        match f.blocks[0].term {
            Terminator::Ret { value: Some(v) } => assert_eq!(v, p),
            _ => panic!(),
        }
    }

    #[test]
    fn split_block_moves_tail() {
        let mut f = Function::new("t", &[Ty::I32], Ty::I32);
        let p = Operand::Value(f.params[0]);
        let mut c = Cursor::new(&mut f);
        let a = c.bin(BinOp::Add, Ty::I32, p, c.imm(Ty::I32, 1));
        let b = c.bin(BinOp::Add, Ty::I32, a, c.imm(Ty::I32, 2));
        c.ret(Some(b));
        let entry = f.entry();
        let nb = split_block(&mut f, entry, 1, "tail");
        assert_eq!(f.blocks[entry.index()].insts.len(), 1);
        assert_eq!(f.blocks[nb.index()].insts.len(), 1);
        assert!(matches!(f.blocks[entry.index()].term, Terminator::Br { target } if target == nb));
        assert!(matches!(f.blocks[nb.index()].term, Terminator::Ret { .. }));
        let mut m = Module::new();
        m.functions.push(f);
        overify_ir::verify_module(&m).unwrap();
    }

    #[test]
    fn dereferenceability_proofs() {
        let mut m = Module::new();
        m.add_global(overify_ir::Global {
            name: "g".into(),
            size: 8,
            init: vec![],
            is_const: false,
        });
        let mut f = Function::new("t", &[Ty::Ptr], Ty::Void);
        let unknown = Operand::Value(f.params[0]);
        let mut c = Cursor::new(&mut f);
        let a = c.alloca(16);
        let in_bounds = c.ptradd(a, c.imm(Ty::I64, 12));
        let oob = c.ptradd(a, c.imm(Ty::I64, 13));
        let g = c.global_addr(overify_ir::GlobalId(0));
        let neg = c.ptradd(a, Operand::Const(Const::new(Ty::I64, (-1i64) as u64)));
        c.ret(None);
        assert!(provably_dereferenceable(&m, &f, a, 16));
        assert!(!provably_dereferenceable(&m, &f, a, 17));
        assert!(provably_dereferenceable(&m, &f, in_bounds, 4));
        assert!(!provably_dereferenceable(&m, &f, oob, 4));
        assert!(provably_dereferenceable(&m, &f, g, 8));
        assert!(!provably_dereferenceable(&m, &f, neg, 1));
        assert!(!provably_dereferenceable(&m, &f, unknown, 1));
    }

    #[test]
    fn compact_removes_unreachable() {
        let mut f = Function::new("t", &[], Ty::Void);
        let dead = f.add_block("dead");
        let live = f.add_block("live");
        f.set_term(f.entry(), Terminator::Br { target: live });
        f.set_term(dead, Terminator::Ret { value: None });
        f.set_term(live, Terminator::Ret { value: None });
        assert!(compact_blocks(&mut f));
        assert_eq!(f.blocks.len(), 2);
        // `live` got renumbered to 1 and entry still branches to it.
        assert!(matches!(f.blocks[0].term, Terminator::Br { target } if target == BlockId(1)));
    }
}
