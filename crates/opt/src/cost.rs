//! The two cost models (paper §3 and §4).
//!
//! `-OSYMBEX` differs from `-O3` in exactly three ways the paper lists:
//! (1) it considers the cost of a branch to be much higher than on a CPU,
//! (2) it removes loops whenever possible even if the program grows, and
//! (3) it inlines aggressively. All three are knobs here.

/// Tunable cost parameters consulted by the passes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// How many simple instructions one conditional branch is worth. The
    /// if-conversion pass speculates a branch away when the hoisted
    /// instructions cost no more than this.
    pub branch_cost: u64,
    /// Maximum callee size (live instructions) for inlining.
    pub inline_threshold: usize,
    /// Callees at or below this size are always inlined.
    pub always_inline_threshold: usize,
    /// Stop growing a caller beyond this many instructions.
    pub caller_size_limit: usize,
    /// Full unrolling budget: `trip_count * body_size` must not exceed this.
    pub unroll_total_budget: usize,
    /// Never unroll more than this many iterations.
    pub unroll_max_trips: u64,
    /// Maximum loop size (instructions) eligible for unswitching.
    pub unswitch_size_limit: usize,
    /// Maximum number of unswitches per function (each one can double the
    /// loop nest).
    pub unswitch_per_function: usize,
    /// Whether if-conversion may speculate provably in-bounds loads.
    pub speculate_loads: bool,
}

impl CostModel {
    /// The classic `-O2`/`-O3` regime: optimize for a pipelined CPU with
    /// instruction caches and a branch predictor.
    ///
    /// A branch is worth a handful of instructions (a mispredict), which —
    /// like LLVM's SimplifyCFG — permits speculating a provably safe load
    /// plus a compare, but nothing expensive.
    pub fn cpu() -> CostModel {
        CostModel {
            branch_cost: 6,
            inline_threshold: 60,
            always_inline_threshold: 12,
            caller_size_limit: 6_000,
            unroll_total_budget: 128,
            unroll_max_trips: 16,
            unswitch_size_limit: 48,
            unswitch_per_function: 2,
            speculate_loads: true,
        }
    }

    /// The `-OVERIFY`/`-OSYMBEX` regime: optimize for a symbolic execution
    /// engine where a branch may double verification work and code size is
    /// nearly free.
    pub fn verification() -> CostModel {
        CostModel {
            branch_cost: 1_000,
            inline_threshold: 1_500,
            always_inline_threshold: 200,
            caller_size_limit: 60_000,
            unroll_total_budget: 16_384,
            unroll_max_trips: 256,
            unswitch_size_limit: 600,
            unswitch_per_function: 24,
            speculate_loads: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verification_values_every_knob_higher() {
        let cpu = CostModel::cpu();
        let verif = CostModel::verification();
        assert!(verif.branch_cost > cpu.branch_cost * 100);
        assert!(verif.inline_threshold > cpu.inline_threshold);
        assert!(verif.unroll_total_budget > cpu.unroll_total_budget);
        assert!(verif.unswitch_size_limit > cpu.unswitch_size_limit);
        assert!(verif.speculate_loads);
    }
}
