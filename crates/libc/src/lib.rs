//! `overify-libc`: the C standard library, twice.
//!
//! Paper §3, "Library-level changes": *"For programs that use the C/C++
//! standard library, the analysis effort depends significantly on the
//! complexity of library functions... As part of -OVERIFY, we are currently
//! developing a version of libC that is tailored to the needs of program
//! analysis."*
//!
//! Two MiniC implementations with identical observable behaviour:
//!
//! * [`LibcVariant::Native`] — glibc-style: character classification goes
//!   through a 256-entry flag table. A *symbolic* index into that table
//!   forces the verifier to model a symbolic memory read (an if-then-else
//!   chain over the table), which is exactly why real-libc code is slow to
//!   analyze.
//! * [`LibcVariant::Verify`] — the analysis-friendly library: branch-free
//!   comparison chains, no tables, and precondition checks (`__assert`)
//!   that turn latent pointer bugs into immediate, well-located crashes.
//!
//! Linked by the driver in `overify` (the core crate): `-O0..-O3` get the
//! native library, `-OVERIFY` gets the verification library.

use overify_ir::Module;
use overify_lang::CompileError;

pub mod source;

/// Which library implementation to link.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LibcVariant {
    /// Table-driven, CPU-tuned (models glibc/uClibc).
    Native,
    /// Branch-free, precondition-checked (the paper's -OVERIFY libc).
    Verify,
}

impl LibcVariant {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            LibcVariant::Native => "native",
            LibcVariant::Verify => "verify",
        }
    }
}

/// Prototypes for every libc function, for inclusion ahead of user code.
pub const DECLARATIONS: &str = r#"
int isspace(int c);
int isalpha(int c);
int isdigit(int c);
int isalnum(int c);
int isupper(int c);
int islower(int c);
int ispunct(int c);
int isprint(int c);
int isxdigit(int c);
int toupper(int c);
int tolower(int c);
long strlen(const char *s);
int strcmp(const char *a, const char *b);
int strncmp(const char *a, const char *b, long n);
char *strchr(const char *s, int c);
char *strcpy(char *dst, const char *src);
void *memcpy(char *dst, const char *src, long n);
void *memset(char *dst, int c, long n);
int memcmp(const char *a, const char *b, long n);
int atoi(const char *s);
int abs(int x);
"#;

/// Full MiniC source of the chosen variant.
pub fn libc_source(variant: LibcVariant) -> String {
    match variant {
        LibcVariant::Native => source::native_source(),
        LibcVariant::Verify => source::verify_source().to_string(),
    }
}

/// Compiles the chosen libc variant to an IR module.
pub fn compile_libc(variant: LibcVariant) -> Result<Module, CompileError> {
    overify_lang::compile(&libc_source(variant))
}

/// Compiles `user_src` (with the libc prototypes prepended) and links the
/// chosen libc variant into it.
pub fn compile_and_link(
    user_src: &str,
    variant: LibcVariant,
) -> Result<Module, Box<dyn std::error::Error>> {
    let combined = format!("{DECLARATIONS}\n{user_src}");
    let mut m = overify_lang::compile(&combined)?;
    let libc = compile_libc(variant)?;
    m.link(libc)?;
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use overify_interp::{run_module, run_with_buffer, ExecConfig, Outcome};

    #[test]
    fn both_variants_compile_and_link() {
        for v in [LibcVariant::Native, LibcVariant::Verify] {
            let m = compile_libc(v).unwrap_or_else(|e| panic!("{v:?}: {e}"));
            overify_ir::verify_module(&m).unwrap();
            assert!(m.function("isspace").is_some());
            assert!(m.function("strlen").is_some());
        }
    }

    #[test]
    fn ctype_agrees_with_rust_for_all_bytes() {
        // Both variants must agree with Rust's ASCII predicates on every
        // possible argument value 0..=255.
        for v in [LibcVariant::Native, LibcVariant::Verify] {
            let m = compile_libc(v).unwrap();
            let cfg = ExecConfig::default();
            for c in 0u64..=255 {
                let ch = c as u8;
                let cases: [(&str, bool); 9] = [
                    ("isspace", ch.is_ascii_whitespace() || ch == 0x0b),
                    ("isalpha", ch.is_ascii_alphabetic()),
                    ("isdigit", ch.is_ascii_digit()),
                    ("isalnum", ch.is_ascii_alphanumeric()),
                    ("isupper", ch.is_ascii_uppercase()),
                    ("islower", ch.is_ascii_lowercase()),
                    ("ispunct", ch.is_ascii_punctuation()),
                    ("isprint", (0x20..=0x7e).contains(&ch)),
                    ("isxdigit", ch.is_ascii_hexdigit()),
                ];
                for (f, expect) in cases {
                    let r = run_module(&m, f, &[c], &cfg);
                    assert_eq!(r.outcome, Outcome::Ok, "{v:?} {f}({c})");
                    let got = r.ret.unwrap() != 0;
                    assert_eq!(got, expect, "{v:?} {f}({c})");
                }
                // Case conversion.
                let up = run_module(&m, "toupper", &[c], &cfg).ret.unwrap() as u8;
                assert_eq!(up, ch.to_ascii_uppercase(), "{v:?} toupper({c})");
                let lo = run_module(&m, "tolower", &[c], &cfg).ret.unwrap() as u8;
                assert_eq!(lo, ch.to_ascii_lowercase(), "{v:?} tolower({c})");
            }
        }
    }

    #[test]
    fn string_functions_behave() {
        for v in [LibcVariant::Native, LibcVariant::Verify] {
            let src = r#"
                int check(unsigned char *in, int n) {
                    char buf[16];
                    long len = strlen((char*)in);
                    strcpy(buf, (char*)in);
                    int c1 = strcmp(buf, (char*)in);
                    memset(buf, 'x', 3);
                    int has = strchr((char*)in, 'b') != 0;
                    return (int)len * 100 + c1 * 10 + has;
                }
            "#;
            let m = compile_and_link(src, v).unwrap();
            overify_ir::verify_module(&m).unwrap();
            let r = run_with_buffer(&m, "check", b"ab\0", &[3], &ExecConfig::default());
            assert_eq!(r.outcome, Outcome::Ok, "{v:?}");
            // len 2, equal strings (0), contains 'b' (1).
            assert_eq!(r.ret, Some(201), "{v:?}");
        }
    }

    #[test]
    fn atoi_and_abs() {
        for v in [LibcVariant::Native, LibcVariant::Verify] {
            let src = r#"
                int go(unsigned char *in, int n) {
                    return atoi((char*)in) + abs(-5);
                }
            "#;
            let m = compile_and_link(src, v).unwrap();
            let r = run_with_buffer(&m, "go", b"-42\0", &[4], &ExecConfig::default());
            assert_eq!(r.ret.map(|v| v as i64 as i32), Some(-37), "{v:?}");
            let r2 = run_with_buffer(&m, "go", b"123\0", &[4], &ExecConfig::default());
            assert_eq!(r2.ret, Some(128), "{v:?}");
        }
    }

    #[test]
    fn verify_variant_asserts_null_preconditions() {
        let src = r#"
            int bad(unsigned char *in, int n) {
                char *p = 0;
                return (int)strlen(p);
            }
        "#;
        let m = compile_and_link(src, LibcVariant::Verify).unwrap();
        let r = run_with_buffer(&m, "bad", b"\0", &[0], &ExecConfig::default());
        // The precondition check fires as an assertion failure — a crash
        // near the root cause, not a wild pointer fault.
        assert_eq!(r.outcome, Outcome::Abort(overify_ir::AbortKind::AssertFail));
        // The native variant still crashes, but on the raw access.
        let m2 = compile_and_link(src, LibcVariant::Native).unwrap();
        let r2 = run_with_buffer(&m2, "bad", b"\0", &[0], &ExecConfig::default());
        assert_eq!(
            r2.outcome,
            Outcome::Abort(overify_ir::AbortKind::OutOfBounds)
        );
    }

    #[test]
    fn native_ctype_uses_table_verify_does_not() {
        let native = compile_libc(LibcVariant::Native).unwrap();
        let verify = compile_libc(LibcVariant::Verify).unwrap();
        assert!(
            native.global("__ctype_tab").is_some(),
            "native libc models the glibc classification table"
        );
        assert!(verify.global("__ctype_tab").is_none());
        // The verify isspace contains no loads at all.
        let f = verify.function("isspace").unwrap();
        let loads = f
            .insts
            .iter()
            .filter(|i| matches!(i.kind, overify_ir::InstKind::Load { .. }))
            .count();
        // (Parameter spills load from allocas; exclude by checking there is
        // no GlobalAddr instead.)
        let table_refs = f
            .insts
            .iter()
            .filter(|i| matches!(i.kind, overify_ir::InstKind::GlobalAddr { .. }))
            .count();
        assert_eq!(table_refs, 0);
        let _ = loads;
        let nf = native.function("isspace").unwrap();
        let native_table_refs = nf
            .insts
            .iter()
            .filter(|i| matches!(i.kind, overify_ir::InstKind::GlobalAddr { .. }))
            .count();
        assert!(native_table_refs >= 1);
    }
}
