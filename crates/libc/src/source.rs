//! The MiniC sources of both library variants.

/// Classification flag bits used by the native table (glibc-style).
const F_SPACE: u8 = 0x01;
const F_UPPER: u8 = 0x02;
const F_LOWER: u8 = 0x04;
const F_DIGIT: u8 = 0x08;
const F_PUNCT: u8 = 0x10;
const F_HEXLET: u8 = 0x20;
const F_PRINT: u8 = 0x40;

/// Computes the 256-entry classification table at build time.
fn ctype_flags(c: u8) -> u8 {
    let mut f = 0u8;
    if matches!(c, b' ' | b'\t' | b'\n' | 0x0b | 0x0c | b'\r') {
        f |= F_SPACE;
    }
    if c.is_ascii_uppercase() {
        f |= F_UPPER;
    }
    if c.is_ascii_lowercase() {
        f |= F_LOWER;
    }
    if c.is_ascii_digit() {
        f |= F_DIGIT;
    }
    if c.is_ascii_punctuation() {
        f |= F_PUNCT;
    }
    if matches!(c, b'a'..=b'f' | b'A'..=b'F') {
        f |= F_HEXLET;
    }
    if (0x20..=0x7e).contains(&c) {
        f |= F_PRINT;
    }
    f
}

/// The native (glibc-modelled) library: classification via a flag table.
///
/// A symbolic character indexed into `__ctype_tab` becomes a symbolic load,
/// which a symbolic executor must expand into a 256-way if-then-else — the
/// cost the -OVERIFY library avoids.
pub fn native_source() -> String {
    let table: Vec<String> = (0u16..=255)
        .map(|c| ctype_flags(c as u8).to_string())
        .collect();
    format!(
        r#"
const char __ctype_tab[256] = {{{table}}};

int isspace(int c) {{ return __ctype_tab[c & 255] & {sp}; }}
int isupper(int c) {{ return __ctype_tab[c & 255] & {up}; }}
int islower(int c) {{ return __ctype_tab[c & 255] & {lo}; }}
int isdigit(int c) {{ return __ctype_tab[c & 255] & {di}; }}
int isalpha(int c) {{ return __ctype_tab[c & 255] & {al}; }}
int isalnum(int c) {{ return __ctype_tab[c & 255] & {an}; }}
int ispunct(int c) {{ return __ctype_tab[c & 255] & {pu}; }}
int isprint(int c) {{ return __ctype_tab[c & 255] & {pr}; }}
int isxdigit(int c) {{ return __ctype_tab[c & 255] & {xd}; }}

int toupper(int c) {{
    if (islower(c)) return c - 32;
    return c;
}}

int tolower(int c) {{
    if (isupper(c)) return c + 32;
    return c;
}}

long strlen(const char *s) {{
    long n = 0;
    while (s[n]) n++;
    return n;
}}

int strcmp(const char *a, const char *b) {{
    long i = 0;
    while (a[i] && a[i] == b[i]) i++;
    if (a[i] < b[i]) return -1;
    if (a[i] > b[i]) return 1;
    return 0;
}}

int strncmp(const char *a, const char *b, long n) {{
    long i = 0;
    while (i < n) {{
        if (a[i] != b[i]) {{
            if (a[i] < b[i]) return -1;
            return 1;
        }}
        if (!a[i]) return 0;
        i++;
    }}
    return 0;
}}

char *strchr(const char *s, int c) {{
    long i = 0;
    while (s[i]) {{
        if (s[i] == (char)c) return (char*)s + i;
        i++;
    }}
    if ((char)c == 0) return (char*)s + i;
    return 0;
}}

char *strcpy(char *dst, const char *src) {{
    long i = 0;
    while (src[i]) {{
        dst[i] = src[i];
        i++;
    }}
    dst[i] = 0;
    return dst;
}}

void *memcpy(char *dst, const char *src, long n) {{
    for (long i = 0; i < n; i++) dst[i] = src[i];
    return dst;
}}

void *memset(char *dst, int c, long n) {{
    for (long i = 0; i < n; i++) dst[i] = (char)c;
    return dst;
}}

int memcmp(const char *a, const char *b, long n) {{
    for (long i = 0; i < n; i++) {{
        if (a[i] != b[i]) {{
            if (a[i] < b[i]) return -1;
            return 1;
        }}
    }}
    return 0;
}}

int atoi(const char *s) {{
    long i = 0;
    int sign = 1;
    int v = 0;
    while (isspace(s[i])) i++;
    if (s[i] == '-') {{ sign = -1; i++; }}
    else if (s[i] == '+') {{ i++; }}
    while (isdigit(s[i])) {{
        v = v * 10 + (s[i] - '0');
        i++;
    }}
    return sign * v;
}}

int abs(int x) {{
    if (x < 0) return -x;
    return x;
}}
"#,
        table = table.join(","),
        sp = F_SPACE,
        up = F_UPPER,
        lo = F_LOWER,
        di = F_DIGIT,
        al = F_UPPER | F_LOWER,
        an = F_UPPER | F_LOWER | F_DIGIT,
        pu = F_PUNCT,
        pr = F_PRINT,
        xd = F_DIGIT | F_HEXLET,
    )
}

/// The verification-optimized library (-OVERIFY's libc): branch-free
/// classification by comparison, no tables, and precondition assertions on
/// pointer arguments so bugs surface at the call site.
pub fn verify_source() -> &'static str {
    r#"
int isspace(int c) {
    return c == ' ' || c == '\t' || c == '\n' || c == 11 || c == 12 || c == '\r';
}
int isupper(int c) { return c >= 'A' && c <= 'Z'; }
int islower(int c) { return c >= 'a' && c <= 'z'; }
int isdigit(int c) { return c >= '0' && c <= '9'; }
int isalpha(int c) { return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z'); }
int isalnum(int c) {
    return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9');
}
int ispunct(int c) {
    return (c >= 33 && c <= 47) || (c >= 58 && c <= 64) || (c >= 91 && c <= 96)
        || (c >= 123 && c <= 126);
}
int isprint(int c) { return c >= 32 && c <= 126; }
int isxdigit(int c) {
    return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
}

int toupper(int c) {
    return c - ((c >= 'a' && c <= 'z') ? 32 : 0);
}

int tolower(int c) {
    return c + ((c >= 'A' && c <= 'Z') ? 32 : 0);
}

long strlen(const char *s) {
    __assert(s != 0);
    long n = 0;
    while (s[n]) n++;
    return n;
}

int strcmp(const char *a, const char *b) {
    __assert(a != 0);
    __assert(b != 0);
    long i = 0;
    while (a[i] && a[i] == b[i]) i++;
    if (a[i] < b[i]) return -1;
    if (a[i] > b[i]) return 1;
    return 0;
}

int strncmp(const char *a, const char *b, long n) {
    __assert(a != 0);
    __assert(b != 0);
    long i = 0;
    while (i < n) {
        if (a[i] != b[i]) {
            if (a[i] < b[i]) return -1;
            return 1;
        }
        if (!a[i]) return 0;
        i++;
    }
    return 0;
}

char *strchr(const char *s, int c) {
    __assert(s != 0);
    long i = 0;
    while (s[i]) {
        if (s[i] == (char)c) return (char*)s + i;
        i++;
    }
    if ((char)c == 0) return (char*)s + i;
    return 0;
}

char *strcpy(char *dst, const char *src) {
    __assert(dst != 0);
    __assert(src != 0);
    long i = 0;
    while (src[i]) {
        dst[i] = src[i];
        i++;
    }
    dst[i] = 0;
    return dst;
}

void *memcpy(char *dst, const char *src, long n) {
    __assert(dst != 0 || n == 0);
    __assert(src != 0 || n == 0);
    for (long i = 0; i < n; i++) dst[i] = src[i];
    return dst;
}

void *memset(char *dst, int c, long n) {
    __assert(dst != 0 || n == 0);
    for (long i = 0; i < n; i++) dst[i] = (char)c;
    return dst;
}

int memcmp(const char *a, const char *b, long n) {
    __assert(a != 0 || n == 0);
    __assert(b != 0 || n == 0);
    for (long i = 0; i < n; i++) {
        if (a[i] != b[i]) {
            if (a[i] < b[i]) return -1;
            return 1;
        }
    }
    return 0;
}

int atoi(const char *s) {
    __assert(s != 0);
    long i = 0;
    int sign = 1;
    int v = 0;
    while (s[i] == ' ' || s[i] == '\t' || s[i] == '\n') i++;
    if (s[i] == '-') { sign = -1; i++; }
    else if (s[i] == '+') { i++; }
    while (s[i] >= '0' && s[i] <= '9') {
        v = v * 10 + (s[i] - '0');
        i++;
    }
    return sign * v;
}

int abs(int x) {
    return x < 0 ? -x : x;
}
"#
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_flags_match_rust_predicates() {
        for c in 0u16..=255 {
            let c = c as u8;
            let f = ctype_flags(c);
            assert_eq!(f & F_UPPER != 0, c.is_ascii_uppercase(), "c={c}");
            assert_eq!(f & F_DIGIT != 0, c.is_ascii_digit(), "c={c}");
        }
    }

    #[test]
    fn sources_are_nonempty_and_table_sized() {
        let n = native_source();
        assert!(n.contains("__ctype_tab[256]"));
        assert!(n.matches(',').count() >= 255);
        assert!(verify_source().contains("__assert"));
    }
}
