//! Natural loop detection.
//!
//! Loops are discovered from back edges (`latch -> header` where the header
//! dominates the latch). The resulting [`LoopForest`] drives loop
//! unswitching, unrolling and LICM in `overify-opt`, and the trip-count
//! annotation pass.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::function::Function;
use crate::inst::Terminator;
use crate::value::BlockId;
use std::collections::BTreeSet;

/// One natural loop.
#[derive(Clone, Debug)]
pub struct Loop {
    /// The single entry block of the loop.
    pub header: BlockId,
    /// All blocks in the loop, including the header. An *ordered* set:
    /// every pass that walks a loop body (LICM hoisting, unswitch/unroll
    /// cloning) inherits a deterministic block order, which keeps compiled
    /// output byte-stable across runs — a requirement of the
    /// content-addressed verification store, which keys reports by printed
    /// IR.
    pub blocks: BTreeSet<BlockId>,
    /// Blocks with a back edge to the header.
    pub latches: Vec<BlockId>,
    /// Blocks *outside* the loop that are targets of an edge leaving it.
    pub exits: Vec<BlockId>,
    /// Nesting depth (1 = outermost).
    pub depth: u32,
}

impl Loop {
    /// True if `b` belongs to the loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }
}

/// All natural loops of a function, outermost first.
#[derive(Clone, Debug, Default)]
pub struct LoopForest {
    pub loops: Vec<Loop>,
}

impl LoopForest {
    /// Detects loops from the dominator tree. Loops sharing a header are
    /// merged (LLVM-style): one loop per header.
    pub fn compute(cfg: &Cfg, dom: &DomTree) -> LoopForest {
        let n = cfg.succs.len();
        // Gather back edges grouped by header.
        let mut by_header: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for b in (0..n as u32).map(BlockId) {
            if !dom.is_reachable(b) {
                continue;
            }
            for &s in cfg.succs(b) {
                if dom.dominates(s, b) {
                    by_header[s.index()].push(b);
                }
            }
        }

        let mut loops = Vec::new();
        for header in (0..n as u32).map(BlockId) {
            let latches = &by_header[header.index()];
            if latches.is_empty() {
                continue;
            }
            // Collect the loop body: blocks that can reach a latch without
            // going through the header.
            let mut blocks: BTreeSet<BlockId> = BTreeSet::new();
            blocks.insert(header);
            let mut stack: Vec<BlockId> = Vec::new();
            for &l in latches {
                if blocks.insert(l) {
                    stack.push(l);
                }
            }
            while let Some(b) = stack.pop() {
                for &p in cfg.preds(b) {
                    if dom.is_reachable(p) && blocks.insert(p) {
                        stack.push(p);
                    }
                }
            }
            // Exits: out-of-loop successors of in-loop blocks.
            let mut exits = Vec::new();
            for &b in &blocks {
                for &s in cfg.succs(b) {
                    if !blocks.contains(&s) && !exits.contains(&s) {
                        exits.push(s);
                    }
                }
            }
            exits.sort();
            loops.push(Loop {
                header,
                blocks,
                latches: latches.clone(),
                exits,
                depth: 0,
            });
        }

        // Compute nesting depth: loop A contains loop B if A's blocks are a
        // superset of B's and A != B.
        let snapshot: Vec<BTreeSet<BlockId>> = loops.iter().map(|l| l.blocks.clone()).collect();
        for (i, l) in loops.iter_mut().enumerate() {
            let mut depth = 1;
            for (j, other) in snapshot.iter().enumerate() {
                if i != j && other.len() > l.blocks.len() && l.blocks.is_subset(other) {
                    depth += 1;
                }
            }
            l.depth = depth;
        }
        // Outermost first (stable order for deterministic pass behaviour).
        loops.sort_by_key(|l| (l.depth, l.header));
        LoopForest { loops }
    }

    /// The innermost loop containing `b`, if any.
    pub fn innermost_containing(&self, b: BlockId) -> Option<&Loop> {
        self.loops
            .iter()
            .filter(|l| l.contains(b))
            .max_by_key(|l| l.depth)
    }

    /// The loop headed exactly at `header`, if any.
    pub fn loop_with_header(&self, header: BlockId) -> Option<&Loop> {
        self.loops.iter().find(|l| l.header == header)
    }
}

/// Ensures the loop has a dedicated preheader: a block that is the unique
/// out-of-loop predecessor of the header and branches only to it.
///
/// Returns the preheader block. Invalidates CFG/dominator snapshots.
pub fn ensure_preheader(f: &mut Function, lp: &Loop) -> BlockId {
    let cfg = Cfg::compute(f);
    let outside: Vec<BlockId> = cfg
        .preds(lp.header)
        .iter()
        .copied()
        .filter(|p| !lp.contains(*p))
        .collect();
    // A single outside predecessor whose only successor is the header
    // already is a preheader.
    if outside.len() == 1 {
        let p = outside[0];
        if cfg.succs(p).len() == 1 {
            return p;
        }
    }
    let pre = f.add_block("preheader");
    f.set_term(pre, Terminator::Br { target: lp.header });
    for p in &outside {
        f.block_mut(*p).term.retarget(lp.header, pre);
    }
    // Phi incomings from outside predecessors now flow through the
    // preheader. With multiple outside preds we would need new phis in the
    // preheader; the passes in this codebase only request preheaders for
    // loops with a single outside predecessor, so assert that invariant.
    assert!(
        outside.len() <= 1,
        "ensure_preheader with multiple outside predecessors requires phi splitting"
    );
    if let Some(&p) = outside.first() {
        f.retarget_phis(lp.header, p, pre);
    }
    pre
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Const, Ty};
    use crate::value::Operand;

    /// entry -> header; header -> {body, exit}; body -> header.
    fn simple_loop() -> Function {
        let mut f = Function::new("t", &[], Ty::Void);
        let e = f.entry();
        let h = f.add_block("header");
        let b = f.add_block("body");
        let x = f.add_block("exit");
        let t = Operand::Const(Const::bool(true));
        f.set_term(e, Terminator::Br { target: h });
        f.set_term(
            h,
            Terminator::CondBr {
                cond: t,
                on_true: b,
                on_false: x,
            },
        );
        f.set_term(b, Terminator::Br { target: h });
        f.set_term(x, Terminator::Ret { value: None });
        f
    }

    #[test]
    fn detects_simple_loop() {
        let f = simple_loop();
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&cfg);
        let forest = LoopForest::compute(&cfg, &dom);
        assert_eq!(forest.loops.len(), 1);
        let l = &forest.loops[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.latches, vec![BlockId(2)]);
        assert_eq!(l.exits, vec![BlockId(3)]);
        assert_eq!(l.blocks.len(), 2);
        assert_eq!(l.depth, 1);
    }

    #[test]
    fn nested_loops_have_increasing_depth() {
        // entry -> h1; h1 -> {h2, exit}; h2 -> {b2, h1latch}; b2 -> h2;
        // h1latch -> h1.
        let mut f = Function::new("t", &[], Ty::Void);
        let e = f.entry();
        let h1 = f.add_block("h1");
        let h2 = f.add_block("h2");
        let b2 = f.add_block("b2");
        let l1 = f.add_block("l1");
        let x = f.add_block("exit");
        let t = Operand::Const(Const::bool(true));
        f.set_term(e, Terminator::Br { target: h1 });
        f.set_term(
            h1,
            Terminator::CondBr {
                cond: t,
                on_true: h2,
                on_false: x,
            },
        );
        f.set_term(
            h2,
            Terminator::CondBr {
                cond: t,
                on_true: b2,
                on_false: l1,
            },
        );
        f.set_term(b2, Terminator::Br { target: h2 });
        f.set_term(l1, Terminator::Br { target: h1 });
        f.set_term(x, Terminator::Ret { value: None });

        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&cfg);
        let forest = LoopForest::compute(&cfg, &dom);
        assert_eq!(forest.loops.len(), 2);
        let outer = forest.loop_with_header(h1).unwrap();
        let inner = forest.loop_with_header(h2).unwrap();
        assert_eq!(outer.depth, 1);
        assert_eq!(inner.depth, 2);
        assert!(inner.blocks.is_subset(&outer.blocks));
        assert_eq!(forest.innermost_containing(b2).unwrap().header, h2);
    }

    #[test]
    fn preheader_insertion() {
        let mut f = simple_loop();
        // Entry branches straight to header and nothing else, so it already
        // acts as a preheader.
        let cfg = Cfg::compute(&f);
        let dom = DomTree::compute(&cfg);
        let forest = LoopForest::compute(&cfg, &dom);
        let lp = forest.loops[0].clone();
        let pre = ensure_preheader(&mut f, &lp);
        assert_eq!(pre, BlockId(0));

        // Make the entry conditional so a fresh preheader is required.
        let t = Operand::Const(Const::bool(true));
        f.set_term(
            BlockId(0),
            Terminator::CondBr {
                cond: t,
                on_true: lp.header,
                on_false: BlockId(3),
            },
        );
        let pre2 = ensure_preheader(&mut f, &lp);
        assert_ne!(pre2, BlockId(0));
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.preds(lp.header).len(), 2); // preheader + latch
        assert_eq!(cfg.succs(pre2), &[lp.header]);
    }
}
