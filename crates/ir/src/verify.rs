//! IR well-formedness verifier.
//!
//! Run after parsing, after lowering and (in debug builds and tests) after
//! every optimization pass. Catching a malformed module here is vastly
//! cheaper than chasing a miscompile through the symbolic executor.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::function::Function;
use crate::inst::{Callee, InstKind, Terminator};
use crate::module::Module;
use crate::parse::intrinsic_params;
use crate::types::Ty;
use crate::value::{BlockId, InstId, Operand, ValueDef, ValueId};

/// A verification failure: function name plus message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    pub function: String,
    pub msg: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "IR verification failed in @{}: {}",
            self.function, self.msg
        )
    }
}

impl std::error::Error for VerifyError {}

type Result<T> = std::result::Result<T, VerifyError>;

/// Verifies every function in the module.
pub fn verify_module(m: &Module) -> Result<()> {
    for f in &m.functions {
        if !f.is_declaration {
            verify_function(m, f)?;
        }
    }
    Ok(())
}

/// Verifies one function.
pub fn verify_function(m: &Module, f: &Function) -> Result<()> {
    let fail = |msg: String| VerifyError {
        function: f.name.clone(),
        msg,
    };

    if f.blocks.is_empty() {
        return Err(fail("defined function has no blocks".into()));
    }

    // Every branch target must exist before any CFG table is built —
    // `Cfg::compute` indexes its pred/succ vectors by target block.
    for b in f.block_ids() {
        for s in f.block(b).term.successors() {
            if s.index() >= f.blocks.len() {
                return Err(fail(format!(
                    "branch to invalid block in {}",
                    f.block(b).name
                )));
            }
        }
    }

    let cfg = Cfg::compute(f);
    let dom = DomTree::compute(&cfg);

    // Block-level checks.
    for b in f.block_ids() {
        let block = f.block(b);
        let mut seen_non_phi = false;
        for &i in &block.insts {
            let inst = f.inst(i);
            match &inst.kind {
                InstKind::Phi { .. } => {
                    if seen_non_phi {
                        return Err(fail(format!(
                            "phi after non-phi instruction in block {}",
                            block.name
                        )));
                    }
                }
                InstKind::Nop => {}
                _ => seen_non_phi = true,
            }
            check_inst(m, f, b, i)?;
        }
        // Terminator checks.
        match &block.term {
            Terminator::CondBr { cond, .. } if f.operand_ty(*cond) != Ty::I1 => {
                return Err(fail(format!("condbr condition not i1 in {}", block.name)));
            }
            Terminator::Ret { value } => match (value, f.ret_ty) {
                (None, Ty::Void) => {}
                (Some(v), ty) if ty != Ty::Void => {
                    if f.operand_ty(*v) != ty {
                        return Err(fail(format!(
                            "return type mismatch in {}: expected {}, got {}",
                            block.name,
                            ty,
                            f.operand_ty(*v)
                        )));
                    }
                }
                _ => {
                    return Err(fail(format!(
                        "return value presence mismatch in {}",
                        block.name
                    )))
                }
            },
            _ => {}
        }
    }

    // Phi incoming edges must match predecessors exactly (reachable blocks).
    for b in f.block_ids() {
        if !dom.is_reachable(b) {
            continue;
        }
        let mut preds: Vec<BlockId> = cfg.preds(b).to_vec();
        preds.sort();
        preds.dedup();
        for &i in &f.block(b).insts {
            if let InstKind::Phi { incomings, .. } = &f.inst(i).kind {
                let mut inc: Vec<BlockId> = incomings.iter().map(|(p, _)| *p).collect();
                inc.sort();
                let mut inc_dedup = inc.clone();
                inc_dedup.dedup();
                if inc_dedup.len() != inc.len() {
                    return Err(fail(format!(
                        "phi has duplicate incoming blocks in {}",
                        f.block(b).name
                    )));
                }
                // Every reachable pred must be covered; extra incomings from
                // unreachable blocks are tolerated (passes clean them lazily).
                for p in &preds {
                    if !inc.contains(p) {
                        return Err(fail(format!(
                            "phi in {} missing incoming for predecessor {}",
                            f.block(b).name,
                            f.block(*p).name
                        )));
                    }
                }
                for p in &inc {
                    if p.index() >= f.blocks.len() {
                        return Err(fail("phi incoming from invalid block".into()));
                    }
                }
            }
        }
    }

    // SSA dominance: each value use must be dominated by its definition.
    check_dominance(f, &cfg, &dom)?;

    Ok(())
}

/// Per-instruction type and operand checks.
fn check_inst(m: &Module, f: &Function, _b: BlockId, id: InstId) -> Result<()> {
    let fail = |msg: String| VerifyError {
        function: f.name.clone(),
        msg,
    };
    let inst = f.inst(id);
    let check_op = |op: &Operand, expect: Ty, what: &str| -> Result<()> {
        let ty = f.operand_ty(*op);
        if ty != expect {
            return Err(fail(format!(
                "{what} of {id:?} has type {ty}, expected {expect}"
            )));
        }
        Ok(())
    };

    // Operand value ids must be in range.
    let mut bad = None;
    inst.kind.for_each_operand(|op| {
        if let Operand::Value(v) = op {
            if v.index() >= f.values.len() {
                bad = Some(*v);
            }
        }
    });
    if let Some(v) = bad {
        return Err(fail(format!("operand {v} out of range in {id:?}")));
    }

    match &inst.kind {
        InstKind::Bin { ty, lhs, rhs, .. } => {
            if !ty.is_int() {
                return Err(fail(format!("binop on non-integer type {ty}")));
            }
            check_op(lhs, *ty, "lhs")?;
            check_op(rhs, *ty, "rhs")?;
            expect_result(f, inst, Some(*ty))?;
        }
        InstKind::Cmp { ty, lhs, rhs, .. } => {
            check_op(lhs, *ty, "lhs")?;
            check_op(rhs, *ty, "rhs")?;
            expect_result(f, inst, Some(Ty::I1))?;
        }
        InstKind::Select {
            ty,
            cond,
            on_true,
            on_false,
        } => {
            check_op(cond, Ty::I1, "cond")?;
            check_op(on_true, *ty, "true arm")?;
            check_op(on_false, *ty, "false arm")?;
            expect_result(f, inst, Some(*ty))?;
        }
        InstKind::Cast { op, to, value } => {
            let from = f.operand_ty(*value);
            let ok = match op {
                crate::inst::CastOp::Zext | crate::inst::CastOp::Sext => {
                    from.bits() < to.bits() && from.is_int() && to.is_int()
                }
                crate::inst::CastOp::Trunc => {
                    from.bits() > to.bits() && from.is_int() && to.is_int()
                }
            };
            if !ok {
                return Err(fail(format!("invalid cast {} {from} to {to}", op.name())));
            }
            expect_result(f, inst, Some(*to))?;
        }
        InstKind::Alloca { size } => {
            if *size == 0 {
                return Err(fail("alloca of zero bytes".into()));
            }
            expect_result(f, inst, Some(Ty::Ptr))?;
        }
        InstKind::Load { ty, addr } => {
            check_op(addr, Ty::Ptr, "address")?;
            if *ty == Ty::Void {
                return Err(fail("load of void".into()));
            }
            expect_result(f, inst, Some(*ty))?;
        }
        InstKind::Store { ty, value, addr } => {
            check_op(addr, Ty::Ptr, "address")?;
            check_op(value, *ty, "stored value")?;
            expect_result(f, inst, None)?;
        }
        InstKind::PtrAdd { base, offset } => {
            check_op(base, Ty::Ptr, "base")?;
            check_op(offset, Ty::I64, "offset")?;
            expect_result(f, inst, Some(Ty::Ptr))?;
        }
        InstKind::GlobalAddr { global } => {
            if global.index() >= m.globals.len() {
                return Err(fail(format!("globaladdr {} out of range", global.0)));
            }
            expect_result(f, inst, Some(Ty::Ptr))?;
        }
        InstKind::Call { callee, args } => {
            let (params, ret) = match callee {
                Callee::Intrinsic(i) => (intrinsic_params(*i), i.ret_ty()),
                Callee::Func(name) => match m.function(name) {
                    Some(g) => (g.param_tys(), g.ret_ty),
                    None => return Err(fail(format!("call to unknown function @{name}"))),
                },
            };
            if args.len() != params.len() {
                return Err(fail(format!(
                    "call to @{} has {} args, expected {}",
                    callee.name(),
                    args.len(),
                    params.len()
                )));
            }
            for (a, &ty) in args.iter().zip(&params) {
                check_op(a, ty, "argument")?;
            }
            let expected = if ret == Ty::Void { None } else { Some(ret) };
            // A discarded non-void result is allowed.
            if inst.result.is_some() {
                expect_result(f, inst, expected)?;
            }
        }
        InstKind::Phi { ty, incomings } => {
            for (_, op) in incomings {
                check_op(op, *ty, "phi incoming")?;
            }
            if incomings.is_empty() {
                return Err(fail("phi with no incomings".into()));
            }
            expect_result(f, inst, Some(*ty))?;
        }
        InstKind::Nop => {}
    }
    Ok(())
}

fn expect_result(f: &Function, inst: &crate::inst::Inst, ty: Option<Ty>) -> Result<()> {
    let fail = |msg: String| VerifyError {
        function: f.name.clone(),
        msg,
    };
    match (inst.result, ty) {
        (None, None) => Ok(()),
        (Some(r), Some(t)) => {
            if f.value_ty(r) != t {
                Err(fail(format!(
                    "result {r} has type {}, expected {t}",
                    f.value_ty(r)
                )))
            } else {
                Ok(())
            }
        }
        (Some(_), None) => Err(fail("instruction must not produce a result".into())),
        (None, Some(_)) => Ok(()), // Discarded result is fine.
    }
}

/// Checks the SSA dominance property for every use.
fn check_dominance(f: &Function, _cfg: &Cfg, dom: &DomTree) -> Result<()> {
    let fail = |msg: String| VerifyError {
        function: f.name.clone(),
        msg,
    };

    // Location of each instruction: (block, index within block).
    let mut inst_pos: Vec<Option<(BlockId, usize)>> = vec![None; f.insts.len()];
    for b in f.block_ids() {
        for (i, &id) in f.block(b).insts.iter().enumerate() {
            inst_pos[id.index()] = Some((b, i));
        }
    }

    let def_site = |v: ValueId| -> Option<(BlockId, usize)> {
        match f.values[v.index()].def {
            ValueDef::Param(u) if u != u32::MAX => Some((BlockId(0), 0)),
            ValueDef::Param(_) => None, // Unresolved pending marker.
            ValueDef::Inst(i) => inst_pos[i.index()],
        }
    };

    // `true` if a value defined at `def` is available at (block, idx).
    let available = |v: ValueId, use_block: BlockId, use_idx: usize| -> bool {
        match f.values[v.index()].def {
            ValueDef::Param(u) => u != u32::MAX,
            ValueDef::Inst(_) => match def_site(v) {
                None => false,
                Some((db, di)) => {
                    if db == use_block {
                        di < use_idx
                    } else {
                        dom.dominates(db, use_block)
                    }
                }
            },
        }
    };

    for b in f.block_ids() {
        if !dom.is_reachable(b) {
            continue;
        }
        let block = f.block(b);
        for (idx, &id) in block.insts.iter().enumerate() {
            let inst = f.inst(id);
            if let InstKind::Phi { incomings, .. } = &inst.kind {
                // Phi operands must be available at the end of their
                // incoming block.
                for (pred, op) in incomings {
                    if let Operand::Value(v) = op {
                        if !dom.is_reachable(*pred) {
                            continue;
                        }
                        if !available(*v, *pred, usize::MAX) {
                            return Err(fail(format!(
                                "phi operand {v} not available on edge {} -> {}",
                                f.block(*pred).name,
                                block.name
                            )));
                        }
                    }
                }
                continue;
            }
            let mut bad = None;
            inst.kind.for_each_operand(|op| {
                if let Operand::Value(v) = op {
                    if bad.is_none() && !available(*v, b, idx) {
                        bad = Some(*v);
                    }
                }
            });
            if let Some(v) = bad {
                return Err(fail(format!(
                    "use of {v} in {} is not dominated by its definition",
                    block.name
                )));
            }
        }
        // Terminator uses.
        let term_ops: Vec<Operand> = match &block.term {
            Terminator::CondBr { cond, .. } => vec![*cond],
            Terminator::Ret { value: Some(v) } => vec![*v],
            _ => vec![],
        };
        for op in term_ops {
            if let Operand::Value(v) = op {
                if !available(v, b, usize::MAX) {
                    return Err(fail(format!(
                        "terminator use of {v} in {} is not dominated by its definition",
                        block.name
                    )));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BinOp, CmpPred};
    use crate::types::Const;

    fn module_with(f: Function) -> Module {
        let mut m = Module::new();
        m.functions.push(f);
        m
    }

    #[test]
    fn accepts_valid_function() {
        let mut f = Function::new("ok", &[Ty::I32], Ty::I32);
        let p = Operand::Value(f.params[0]);
        let e = f.entry();
        let v = f
            .append_inst(
                e,
                InstKind::Bin {
                    op: BinOp::Add,
                    ty: Ty::I32,
                    lhs: p,
                    rhs: Operand::imm(Ty::I32, 1),
                },
                Some(Ty::I32),
            )
            .unwrap();
        f.set_term(
            e,
            Terminator::Ret {
                value: Some(Operand::Value(v)),
            },
        );
        verify_module(&module_with(f)).unwrap();
    }

    #[test]
    fn rejects_condbr_to_invalid_block() {
        // Regression: the verifier used to check only `on_true`, letting a
        // bad `on_false` through to panic later in `Cfg::compute`.
        for bad_false in [false, true] {
            let mut f = Function::new("bad", &[Ty::I1], Ty::Void);
            let cond = Operand::Value(f.params[0]);
            let e = f.entry();
            let out_of_range = BlockId(f.blocks.len() as u32);
            f.set_term(
                e,
                Terminator::CondBr {
                    cond,
                    on_true: if bad_false { e } else { out_of_range },
                    on_false: if bad_false { out_of_range } else { e },
                },
            );
            let err = verify_module(&module_with(f)).unwrap_err();
            assert!(
                err.msg.contains("branch to invalid block"),
                "unexpected error: {err:?}"
            );
        }
    }

    #[test]
    fn rejects_type_mismatch() {
        let mut f = Function::new("bad", &[Ty::I8], Ty::I32);
        let p = Operand::Value(f.params[0]);
        let e = f.entry();
        // add i32 with an i8 operand.
        let v = f
            .append_inst(
                e,
                InstKind::Bin {
                    op: BinOp::Add,
                    ty: Ty::I32,
                    lhs: p,
                    rhs: Operand::imm(Ty::I32, 1),
                },
                Some(Ty::I32),
            )
            .unwrap();
        f.set_term(
            e,
            Terminator::Ret {
                value: Some(Operand::Value(v)),
            },
        );
        assert!(verify_module(&module_with(f)).is_err());
    }

    #[test]
    fn rejects_use_before_def() {
        let mut f = Function::new("bad", &[], Ty::I32);
        let e = f.entry();
        let b2 = f.add_block("b2");
        // Define v in b2 but use it in entry's ret: not dominated.
        let v = f
            .append_inst(
                b2,
                InstKind::Bin {
                    op: BinOp::Add,
                    ty: Ty::I32,
                    lhs: Operand::imm(Ty::I32, 1),
                    rhs: Operand::imm(Ty::I32, 2),
                },
                Some(Ty::I32),
            )
            .unwrap();
        f.set_term(
            e,
            Terminator::Ret {
                value: Some(Operand::Value(v)),
            },
        );
        f.set_term(
            b2,
            Terminator::Ret {
                value: Some(Operand::imm(Ty::I32, 0)),
            },
        );
        assert!(verify_module(&module_with(f)).is_err());
    }

    #[test]
    fn rejects_phi_missing_pred() {
        let mut f = Function::new("bad", &[], Ty::I32);
        let e = f.entry();
        let merge = f.add_block("merge");
        let other = f.add_block("other");
        f.set_term(
            e,
            Terminator::CondBr {
                cond: Operand::Const(Const::bool(true)),
                on_true: merge,
                on_false: other,
            },
        );
        f.set_term(other, Terminator::Br { target: merge });
        // Phi only lists `entry`, missing `other`.
        let v = f
            .append_inst(
                merge,
                InstKind::Phi {
                    ty: Ty::I32,
                    incomings: vec![(e, Operand::imm(Ty::I32, 1))],
                },
                Some(Ty::I32),
            )
            .unwrap();
        f.set_term(
            merge,
            Terminator::Ret {
                value: Some(Operand::Value(v)),
            },
        );
        let e = verify_module(&module_with(f)).unwrap_err();
        assert!(e.msg.contains("missing incoming"), "{e}");
    }

    #[test]
    fn rejects_bad_condbr_type() {
        let mut f = Function::new("bad", &[], Ty::Void);
        let e = f.entry();
        let t = f.add_block("t");
        f.set_term(
            e,
            Terminator::CondBr {
                cond: Operand::imm(Ty::I32, 1),
                on_true: t,
                on_false: t,
            },
        );
        f.set_term(t, Terminator::Ret { value: None });
        assert!(verify_module(&module_with(f)).is_err());
    }

    #[test]
    fn rejects_invalid_cast() {
        let mut f = Function::new("bad", &[Ty::I32], Ty::I32);
        let p = Operand::Value(f.params[0]);
        let e = f.entry();
        // zext i32 -> i32 is invalid (must widen).
        let v = f
            .append_inst(
                e,
                InstKind::Cast {
                    op: crate::inst::CastOp::Zext,
                    to: Ty::I32,
                    value: p,
                },
                Some(Ty::I32),
            )
            .unwrap();
        f.set_term(
            e,
            Terminator::Ret {
                value: Some(Operand::Value(v)),
            },
        );
        assert!(verify_module(&module_with(f)).is_err());
    }

    #[test]
    fn accepts_loop_phi() {
        // A canonical counting loop exercises phi + dominance over a back edge.
        let mut f = Function::new("loop", &[Ty::I32], Ty::I32);
        let n = Operand::Value(f.params[0]);
        let e = f.entry();
        let h = f.add_block("h");
        let body = f.add_block("body");
        let done = f.add_block("done");
        f.set_term(e, Terminator::Br { target: h });
        let phi = f
            .append_inst(
                h,
                InstKind::Phi {
                    ty: Ty::I32,
                    incomings: vec![(e, Operand::imm(Ty::I32, 0))],
                },
                Some(Ty::I32),
            )
            .unwrap();
        let cond = f
            .append_inst(
                h,
                InstKind::Cmp {
                    pred: CmpPred::Slt,
                    ty: Ty::I32,
                    lhs: Operand::Value(phi),
                    rhs: n,
                },
                Some(Ty::I1),
            )
            .unwrap();
        f.set_term(
            h,
            Terminator::CondBr {
                cond: Operand::Value(cond),
                on_true: body,
                on_false: done,
            },
        );
        let next = f
            .append_inst(
                body,
                InstKind::Bin {
                    op: BinOp::Add,
                    ty: Ty::I32,
                    lhs: Operand::Value(phi),
                    rhs: Operand::imm(Ty::I32, 1),
                },
                Some(Ty::I32),
            )
            .unwrap();
        f.set_term(body, Terminator::Br { target: h });
        // Patch the phi to include the back edge.
        if let InstKind::Phi { incomings, .. } = &mut f.insts[0].kind {
            incomings.push((body, Operand::Value(next)));
        }
        f.set_term(
            done,
            Terminator::Ret {
                value: Some(Operand::Value(phi)),
            },
        );
        verify_module(&module_with(f)).unwrap();
    }
}
