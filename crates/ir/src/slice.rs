//! Function-grained dependency slices and slice fingerprints.
//!
//! The persistent verification store originally keyed artifacts by the
//! fingerprint of the *whole module* ([`crate::module_fingerprint`]):
//! touch one function and every entry point's verdict is invalidated,
//! so the dominant production workload — edit, compile, re-verify —
//! pays full price. This module refactors the content-addressing unit
//! down to the **function slice**: a function plus the transitive
//! closure of everything that can affect its verification —
//!
//! * the canonical printed IR of the function itself,
//! * every function reachable through direct calls (declarations and
//!   unresolved externals included),
//! * the contents of every global any function in the closure takes the
//!   address of, and
//! * the verification annotations (value ranges, trip counts) of every
//!   function in the closure.
//!
//! A function's [`slice_fingerprint`] therefore changes **iff** its
//! slice changes: editing a helper outside an entry point's call graph
//! leaves the entry's fingerprint bit-identical even though the module
//! fingerprint moved, which is exactly the invariant the store's splice
//! fast path keys on.
//!
//! Everything here is deterministic: the call graph iterates functions
//! in module order with callee sets deduplicated into sorted order, and
//! closures absorb members sorted by name, so fingerprints are stable
//! across recompiles and across processes (asserted by the
//! slice-stability fuzz in the integration suite).

use crate::function::Function;
use crate::inst::{Callee, InstKind};
use crate::module::Module;
use crate::print::print_function;
use std::collections::{BTreeMap, BTreeSet};

const PRIME: u128 = 0x0000000001000000000000000000013B;
const BASIS: u128 = 0x6c62272e07bb014262b821756295c58d;

/// The module's direct-call graph, keyed by function name.
///
/// Edges are the `Callee::Func` targets of live call instructions;
/// intrinsics are engine-internal and carry no IR of their own, so they
/// are folded into the caller's printed body rather than the graph.
/// Callees without a definition *or* declaration in the module still
/// appear as edge targets — an unresolved external is part of the
/// slice's identity.
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    edges: BTreeMap<String, BTreeSet<String>>,
}

impl CallGraph {
    /// Builds the call graph of `m` deterministically (module order,
    /// sorted callee sets).
    pub fn of(m: &Module) -> CallGraph {
        let mut edges = BTreeMap::new();
        for f in &m.functions {
            edges.insert(f.name.clone(), direct_callees(f));
        }
        CallGraph { edges }
    }

    /// The sorted direct callees of `name` (empty for unknown names and
    /// leaf functions).
    pub fn callees(&self, name: &str) -> impl Iterator<Item = &str> {
        self.edges
            .get(name)
            .into_iter()
            .flat_map(|s| s.iter().map(String::as_str))
    }

    /// The transitive call closure of `root` (including `root` itself),
    /// sorted by name. Names without a module entry — unresolved
    /// externals — are retained in the closure.
    pub fn closure(&self, root: &str) -> Vec<String> {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack = vec![root];
        while let Some(name) = stack.pop() {
            if !seen.insert(name) {
                continue;
            }
            if let Some(callees) = self.edges.get(name) {
                stack.extend(callees.iter().map(String::as_str));
            }
        }
        seen.into_iter().map(str::to_owned).collect()
    }
}

/// Sorted names of functions `f` calls directly (via live instructions).
fn direct_callees(f: &Function) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for b in &f.blocks {
        for &i in &b.insts {
            if let InstKind::Call {
                callee: Callee::Func(name),
                ..
            } = &f.inst(i).kind
            {
                out.insert(name.clone());
            }
        }
    }
    out
}

/// FNV-1a-128 digest of one function's *local* verification-relevant
/// content: its printed IR, its annotation tables (sorted, as in
/// [`crate::module_fingerprint`]), and the contents of every global it
/// takes the address of. Globals are absorbed by content — name, size,
/// constness, initializer — not by numeric id, so re-linking that shifts
/// ids without changing bytes cannot silently alias two slices.
fn local_digest(m: &Module, f: &Function) -> u128 {
    let mut h = BASIS;
    let mut absorb = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u128;
            h = h.wrapping_mul(PRIME);
        }
    };
    absorb(print_function(f).as_bytes());

    let mut ranges: Vec<(u32, u64, u64)> = f
        .annotations
        .value_ranges
        .iter()
        .map(|(v, r)| (v.0, r.umin, r.umax))
        .collect();
    ranges.sort_unstable();
    absorb(&(ranges.len() as u64).to_le_bytes());
    for (v, lo, hi) in ranges {
        absorb(&v.to_le_bytes());
        absorb(&lo.to_le_bytes());
        absorb(&hi.to_le_bytes());
    }
    let mut trips: Vec<(u32, u64)> = f
        .annotations
        .trip_counts
        .iter()
        .map(|(b, &n)| (b.0, n))
        .collect();
    trips.sort_unstable();
    absorb(&(trips.len() as u64).to_le_bytes());
    for (b, n) in trips {
        absorb(&b.to_le_bytes());
        absorb(&n.to_le_bytes());
    }

    let mut global_names: BTreeSet<&str> = BTreeSet::new();
    for b in &f.blocks {
        for &i in &b.insts {
            if let InstKind::GlobalAddr { global } = &f.inst(i).kind {
                if let Some(g) = m.globals.get(global.index()) {
                    global_names.insert(&g.name);
                }
            }
        }
    }
    absorb(&(global_names.len() as u64).to_le_bytes());
    for name in global_names {
        let (_, g) = m.global(name).expect("name collected from module");
        absorb(&(name.len() as u64).to_le_bytes());
        absorb(name.as_bytes());
        absorb(&g.size.to_le_bytes());
        absorb(&[g.is_const as u8]);
        absorb(&(g.init.len() as u64).to_le_bytes());
        absorb(&g.init);
    }
    h
}

/// Canonical 128-bit fingerprint of `entry`'s dependency slice, or
/// `None` when the module has no function of that name.
///
/// The fingerprint absorbs, for every closure member in sorted name
/// order, the member's name and its [`local_digest`]; unresolved
/// externals (called but absent from the module) are absorbed as a
/// name plus a marker byte. Two modules assign a function the same
/// slice fingerprint exactly when everything that can affect that
/// function's verification — its own body, its callees' bodies, the
/// globals and annotations any of them use — is identical.
pub fn slice_fingerprint(m: &Module, entry: &str) -> Option<u128> {
    m.function(entry)?;
    let graph = CallGraph::of(m);
    Some(closure_fingerprint(m, &graph, entry))
}

/// Slice fingerprints for every function in the module, in module
/// order. Shares one call graph and memoizes local digests, so a full
/// sweep costs one digest per function plus closure walks.
pub fn slice_fingerprints(m: &Module) -> Vec<(String, u128)> {
    let graph = CallGraph::of(m);
    let digests: BTreeMap<&str, u128> = m
        .functions
        .iter()
        .map(|f| (f.name.as_str(), local_digest(m, f)))
        .collect();
    m.functions
        .iter()
        .map(|f| {
            (
                f.name.clone(),
                closure_fingerprint_memo(&graph, f.name.as_str(), &digests),
            )
        })
        .collect()
}

fn closure_fingerprint(m: &Module, graph: &CallGraph, entry: &str) -> u128 {
    let digests: BTreeMap<&str, u128> = m
        .functions
        .iter()
        .map(|f| (f.name.as_str(), local_digest(m, f)))
        .collect();
    closure_fingerprint_memo(graph, entry, &digests)
}

fn closure_fingerprint_memo(
    graph: &CallGraph,
    entry: &str,
    digests: &BTreeMap<&str, u128>,
) -> u128 {
    let closure = graph.closure(entry);
    let mut h = BASIS;
    let mut absorb = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u128;
            h = h.wrapping_mul(PRIME);
        }
    };
    absorb(&(closure.len() as u64).to_le_bytes());
    for name in &closure {
        absorb(&(name.len() as u64).to_le_bytes());
        absorb(name.as_bytes());
        match digests.get(name.as_str()) {
            Some(d) => {
                absorb(&[1u8]);
                absorb(&d.to_le_bytes());
            }
            // Unresolved external: identity is the name alone.
            None => absorb(&[0u8]),
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_module;

    fn module(src: &str) -> Module {
        parse_module(src).unwrap()
    }

    const BASE: &str = r#"
        func @leaf(%a: i32) -> i32 {
        entry:
          %r = add i32 %a, 1
          ret i32 %r
        }

        func @mid(%a: i32) -> i32 {
        entry:
          %r = call @leaf(%a)
          ret i32 %r
        }

        func @main(%a: i32) -> i32 {
        entry:
          %r = call @mid(%a)
          ret i32 %r
        }

        func @other(%a: i32) -> i32 {
        entry:
          %r = mul i32 %a, 2
          ret i32 %r
        }
    "#;

    #[test]
    fn call_graph_is_deterministic_and_transitive() {
        let m = module(BASE);
        let g = CallGraph::of(&m);
        assert_eq!(g.callees("main").collect::<Vec<_>>(), ["mid"]);
        assert_eq!(g.closure("main"), ["leaf", "main", "mid"]);
        assert_eq!(g.closure("other"), ["other"]);
    }

    #[test]
    fn fingerprint_ignores_functions_outside_the_slice() {
        let m1 = module(BASE);
        let m2 = module(&BASE.replace("mul i32 %a, 2", "mul i32 %a, 3"));
        // @other changed, so the module fingerprints differ...
        assert_ne!(
            crate::print::module_fingerprint(&m1),
            crate::print::module_fingerprint(&m2)
        );
        // ...but @main's slice does not include @other.
        assert_eq!(
            slice_fingerprint(&m1, "main"),
            slice_fingerprint(&m2, "main")
        );
        assert_ne!(
            slice_fingerprint(&m1, "other"),
            slice_fingerprint(&m2, "other")
        );
    }

    #[test]
    fn fingerprint_tracks_transitive_callee_changes() {
        let m1 = module(BASE);
        let m2 = module(&BASE.replace("add i32 %a, 1", "add i32 %a, 7"));
        // @leaf changed: every function that can reach it re-fingerprints.
        for entry in ["leaf", "mid", "main"] {
            assert_ne!(
                slice_fingerprint(&m1, entry),
                slice_fingerprint(&m2, entry),
                "{entry}"
            );
        }
        assert_eq!(
            slice_fingerprint(&m1, "other"),
            slice_fingerprint(&m2, "other")
        );
    }

    #[test]
    fn fingerprint_tracks_global_content_and_annotations() {
        let with_global = r#"
            global @tab 4 const x"01020304"

            func @user(%a: i32) -> i32 {
            entry:
              %p = globaladdr 0
              %v = load i32, %p
              ret i32 %v
            }
        "#;
        let m1 = module(with_global);
        let m2 = module(&with_global.replace("01020304", "01020305"));
        assert_ne!(
            slice_fingerprint(&m1, "user"),
            slice_fingerprint(&m2, "user"),
            "global initializer is part of the slice"
        );

        // Annotations are invisible to the printer but steer the
        // verifier, so they are part of slice identity too.
        let mut m3 = module(BASE);
        m3.function_mut("leaf")
            .unwrap()
            .annotations
            .value_ranges
            .insert(crate::value::ValueId(0), crate::meta::ValueRange::point(3));
        let m1 = module(BASE);
        assert_ne!(
            slice_fingerprint(&m1, "main"),
            slice_fingerprint(&m3, "main"),
            "annotation on a transitive callee invalidates the slice"
        );
    }

    #[test]
    fn unresolved_externals_are_part_of_identity() {
        let a = module(
            r#"
            decl @ext(i32) -> i32
            func @f(%a: i32) -> i32 {
            entry:
              %r = call @ext(%a)
              ret i32 %r
            }
        "#,
        );
        let fp = slice_fingerprint(&a, "f").unwrap();
        // Recomputation is stable.
        assert_eq!(Some(fp), slice_fingerprint(&a, "f"));
        assert_eq!(slice_fingerprint(&a, "missing"), None);
    }

    #[test]
    fn bulk_fingerprints_match_singletons() {
        let m = module(BASE);
        for (name, fp) in slice_fingerprints(&m) {
            assert_eq!(Some(fp), slice_fingerprint(&m, &name), "{name}");
        }
    }
}
