//! Entity identifiers and operands.
//!
//! All IR entities are referenced through small typed indices into per-function
//! (or per-module) tables. This keeps the IR compact, cheap to clone (needed by
//! the inliner, unswitcher and unroller) and free of reference cycles.

use crate::types::{Const, Ty};
use std::fmt;

macro_rules! entity_id {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// Index into the owning table.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

entity_id!(
    /// Identifies an SSA value (function parameter or instruction result).
    ValueId,
    "%v"
);
entity_id!(
    /// Identifies an instruction within a function.
    InstId,
    "inst"
);
entity_id!(
    /// Identifies a basic block within a function.
    BlockId,
    "bb"
);
entity_id!(
    /// Identifies a function within a module.
    FuncId,
    "fn"
);
entity_id!(
    /// Identifies a global variable within a module.
    GlobalId,
    "g"
);

/// The entry block of every function.
pub const ENTRY_BLOCK: BlockId = BlockId(0);

/// What defines a value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ValueDef {
    /// The `n`-th function parameter.
    Param(u32),
    /// The result of an instruction.
    Inst(InstId),
}

/// Bookkeeping for one SSA value.
#[derive(Clone, Debug)]
pub struct ValueData {
    pub ty: Ty,
    pub def: ValueDef,
    /// Optional source-level name, kept for readable printing and debugging.
    pub name: Option<String>,
}

/// An instruction operand: either an immediate constant or an SSA value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Operand {
    Const(Const),
    Value(ValueId),
}

impl Operand {
    /// Shorthand for an integer-constant operand.
    pub fn imm(ty: Ty, bits: u64) -> Operand {
        Operand::Const(Const::new(ty, bits))
    }

    /// The constant, if this operand is one.
    pub fn as_const(self) -> Option<Const> {
        match self {
            Operand::Const(c) => Some(c),
            Operand::Value(_) => None,
        }
    }

    /// The value id, if this operand is an SSA value.
    pub fn as_value(self) -> Option<ValueId> {
        match self {
            Operand::Value(v) => Some(v),
            Operand::Const(_) => None,
        }
    }

    /// True if this operand is the given constant value.
    pub fn is_const_bits(self, bits: u64) -> bool {
        matches!(self, Operand::Const(c) if c.bits == bits)
    }
}

impl From<Const> for Operand {
    fn from(c: Const) -> Operand {
        Operand::Const(c)
    }
}

impl From<ValueId> for Operand {
    fn from(v: ValueId) -> Operand {
        Operand::Value(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_accessors() {
        let c = Operand::imm(Ty::I32, 7);
        assert_eq!(c.as_const().unwrap().bits, 7);
        assert!(c.as_value().is_none());
        assert!(c.is_const_bits(7));
        let v = Operand::Value(ValueId(3));
        assert_eq!(v.as_value(), Some(ValueId(3)));
        assert!(!v.is_const_bits(7));
    }

    #[test]
    fn id_display() {
        assert_eq!(ValueId(4).to_string(), "%v4");
        assert_eq!(BlockId(2).to_string(), "bb2");
    }
}
