//! `overify-ir`: the intermediate representation used by the -OVERIFY
//! compiler pipeline.
//!
//! The IR is an SSA-flavoured, byte-addressed representation closely modeled
//! on LLVM bitcode, which is what the -OVERIFY paper's prototype (`-OSYMBEX`)
//! consumes and produces. It supports:
//!
//! * integer types `i1`/`i8`/`i16`/`i32`/`i64` plus `ptr` and `void`,
//! * arithmetic, comparison, select, cast, memory and call instructions,
//! * explicit control flow (blocks terminated by `br`/`condbr`/`ret`/
//!   `abort`/`unreachable`),
//! * phi nodes for SSA form (programs start in non-SSA "alloca" form and are
//!   promoted by the `mem2reg` pass in `overify-opt`),
//! * program annotations (value ranges, loop trip counts) — the metadata
//!   channel the paper proposes compilers should preserve for verifiers,
//! * a human-readable textual format with a parser and printer, and
//! * CFG analyses: predecessors, reverse post-order, dominators, dominance
//!   frontiers and natural-loop detection.
//!
//! # Example
//!
//! ```
//! use overify_ir::{parse_module, Module};
//!
//! let m: Module = parse_module(
//!     r#"
//!     func @add1(%a: i32) -> i32 {
//!     entry:
//!       %r = add i32 %a, 1
//!       ret i32 %r
//!     }
//!     "#,
//! )
//! .unwrap();
//! assert_eq!(m.functions.len(), 1);
//! ```

pub mod builder;
pub mod cfg;
pub mod dom;
pub mod fold;
pub mod function;
pub mod inst;
pub mod loops;
pub mod meta;
pub mod module;
pub mod parse;
pub mod print;
pub mod slice;
pub mod types;
pub mod value;
pub mod verify;

pub use builder::Cursor;
pub use cfg::Cfg;
pub use dom::DomTree;
pub use function::{Block, Function};
pub use inst::{AbortKind, BinOp, Callee, CastOp, CmpPred, Inst, InstKind, Intrinsic, Terminator};
pub use loops::{Loop, LoopForest};
pub use meta::{Annotations, ValueRange};
pub use module::{Global, Module};
pub use parse::{parse_module, ParseError};
pub use print::{module_fingerprint, print_function, print_module};
pub use slice::{slice_fingerprint, slice_fingerprints, CallGraph};
pub use types::{Const, Ty};
pub use value::{BlockId, FuncId, GlobalId, InstId, Operand, ValueData, ValueDef, ValueId};
pub use verify::{verify_function, verify_module, VerifyError};
