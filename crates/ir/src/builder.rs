//! A convenience cursor for constructing IR, used heavily by the MiniC
//! front-end's lowering and by tests.

use crate::function::Function;
use crate::inst::{AbortKind, BinOp, Callee, CastOp, CmpPred, InstKind, Intrinsic, Terminator};
use crate::types::Ty;
use crate::value::{BlockId, GlobalId, Operand, ValueId};

/// A positioned builder: appends instructions to `block` of `func`.
///
/// The cursor performs no simplification; `-O0` output is exactly what the
/// front-end emits, which is what makes the O0/O3/OVERIFY comparison honest.
pub struct Cursor<'a> {
    pub func: &'a mut Function,
    pub block: BlockId,
}

impl<'a> Cursor<'a> {
    /// Creates a cursor at the entry block.
    pub fn new(func: &'a mut Function) -> Cursor<'a> {
        let block = func.entry();
        Cursor { func, block }
    }

    /// Moves the cursor to `block`.
    pub fn at(&mut self, block: BlockId) -> &mut Self {
        self.block = block;
        self
    }

    /// Adds a block (does not move the cursor).
    pub fn add_block(&mut self, name: &str) -> BlockId {
        self.func.add_block(name)
    }

    fn emit(&mut self, kind: InstKind, ty: Option<Ty>) -> Option<Operand> {
        self.func
            .append_inst(self.block, kind, ty)
            .map(Operand::Value)
    }

    /// `lhs op rhs`
    pub fn bin(&mut self, op: BinOp, ty: Ty, lhs: Operand, rhs: Operand) -> Operand {
        self.emit(InstKind::Bin { op, ty, lhs, rhs }, Some(ty))
            .unwrap()
    }

    /// `icmp pred lhs, rhs`
    pub fn cmp(&mut self, pred: CmpPred, ty: Ty, lhs: Operand, rhs: Operand) -> Operand {
        self.emit(InstKind::Cmp { pred, ty, lhs, rhs }, Some(Ty::I1))
            .unwrap()
    }

    /// `select cond, t, f`
    pub fn select(&mut self, ty: Ty, cond: Operand, t: Operand, f: Operand) -> Operand {
        self.emit(
            InstKind::Select {
                ty,
                cond,
                on_true: t,
                on_false: f,
            },
            Some(ty),
        )
        .unwrap()
    }

    /// Width cast.
    pub fn cast(&mut self, op: CastOp, to: Ty, value: Operand) -> Operand {
        self.emit(InstKind::Cast { op, to, value }, Some(to))
            .unwrap()
    }

    /// Stack allocation of `size` bytes.
    pub fn alloca(&mut self, size: u64) -> Operand {
        self.emit(InstKind::Alloca { size }, Some(Ty::Ptr)).unwrap()
    }

    /// Typed load.
    pub fn load(&mut self, ty: Ty, addr: Operand) -> Operand {
        self.emit(InstKind::Load { ty, addr }, Some(ty)).unwrap()
    }

    /// Typed store.
    pub fn store(&mut self, ty: Ty, value: Operand, addr: Operand) {
        self.emit(InstKind::Store { ty, value, addr }, None);
    }

    /// Byte-granular pointer arithmetic.
    pub fn ptradd(&mut self, base: Operand, offset: Operand) -> Operand {
        self.emit(InstKind::PtrAdd { base, offset }, Some(Ty::Ptr))
            .unwrap()
    }

    /// Address of a global.
    pub fn global_addr(&mut self, global: GlobalId) -> Operand {
        self.emit(InstKind::GlobalAddr { global }, Some(Ty::Ptr))
            .unwrap()
    }

    /// Direct call; `ret_ty` decides whether a result value is produced.
    pub fn call(&mut self, name: &str, args: Vec<Operand>, ret_ty: Ty) -> Option<Operand> {
        let kind = InstKind::Call {
            callee: Callee::Func(name.to_string()),
            args,
        };
        if ret_ty == Ty::Void {
            self.emit(kind, None)
        } else {
            self.emit(kind, Some(ret_ty))
        }
    }

    /// Intrinsic call.
    pub fn intrinsic(&mut self, i: Intrinsic, args: Vec<Operand>) -> Option<Operand> {
        let kind = InstKind::Call {
            callee: Callee::Intrinsic(i),
            args,
        };
        let ret = i.ret_ty();
        if ret == Ty::Void {
            self.emit(kind, None)
        } else {
            self.emit(kind, Some(ret))
        }
    }

    /// Phi node; callers must keep incomings consistent with predecessors.
    pub fn phi(&mut self, ty: Ty, incomings: Vec<(BlockId, Operand)>) -> ValueId {
        self.emit(InstKind::Phi { ty, incomings }, Some(ty))
            .unwrap()
            .as_value()
            .unwrap()
    }

    /// Unconditional branch terminator.
    pub fn br(&mut self, target: BlockId) {
        self.func.set_term(self.block, Terminator::Br { target });
    }

    /// Conditional branch terminator.
    pub fn condbr(&mut self, cond: Operand, on_true: BlockId, on_false: BlockId) {
        self.func.set_term(
            self.block,
            Terminator::CondBr {
                cond,
                on_true,
                on_false,
            },
        );
    }

    /// Return terminator.
    pub fn ret(&mut self, value: Option<Operand>) {
        self.func.set_term(self.block, Terminator::Ret { value });
    }

    /// Abort terminator.
    pub fn abort(&mut self, kind: AbortKind) {
        self.func.set_term(self.block, Terminator::Abort { kind });
    }

    /// Shorthand constant.
    pub fn imm(&self, ty: Ty, bits: u64) -> Operand {
        Operand::imm(ty, bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Module;
    use crate::verify::verify_module;

    #[test]
    fn build_min_function() {
        // min(a, b) via select.
        let mut f = Function::new("min", &[Ty::I32, Ty::I32], Ty::I32);
        let (a, b) = (Operand::Value(f.params[0]), Operand::Value(f.params[1]));
        let mut c = Cursor::new(&mut f);
        let lt = c.cmp(CmpPred::Slt, Ty::I32, a, b);
        let m = c.select(Ty::I32, lt, a, b);
        c.ret(Some(m));

        let mut module = Module::new();
        module.functions.push(f);
        verify_module(&module).unwrap();
    }

    #[test]
    fn build_branchy_abs() {
        let mut f = Function::new("abs", &[Ty::I32], Ty::I32);
        let a = Operand::Value(f.params[0]);
        let mut c = Cursor::new(&mut f);
        let neg = c.add_block("neg");
        let pos = c.add_block("pos");
        let lt = c.cmp(CmpPred::Slt, Ty::I32, a, c.imm(Ty::I32, 0));
        c.condbr(lt, neg, pos);
        c.at(neg);
        let n = c.bin(BinOp::Sub, Ty::I32, c.imm(Ty::I32, 0), a);
        c.ret(Some(n));
        c.at(pos);
        c.ret(Some(a));

        let mut module = Module::new();
        module.functions.push(f);
        verify_module(&module).unwrap();
    }
}
