//! Modules and globals, plus module linking.

use crate::function::Function;
use crate::value::GlobalId;
use std::collections::HashMap;

/// A global variable: a named, fixed-size byte region with an initializer.
#[derive(Clone, Debug)]
pub struct Global {
    pub name: String,
    /// Size in bytes.
    pub size: u64,
    /// Initial contents; shorter than `size` means zero-fill of the tail.
    pub init: Vec<u8>,
    /// Constant globals may be assumed immutable by optimizations and
    /// engines (writes to them are out-of-bounds bugs).
    pub is_const: bool,
}

/// A compilation unit: functions plus globals.
#[derive(Clone, Debug, Default)]
pub struct Module {
    pub functions: Vec<Function>,
    pub globals: Vec<Global>,
}

/// Errors produced by [`Module::link`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinkError {
    /// Two modules define a function body with the same name.
    DuplicateFunction(String),
    /// Two modules define a global with the same name.
    DuplicateGlobal(String),
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::DuplicateFunction(n) => write!(f, "duplicate function definition: @{n}"),
            LinkError::DuplicateGlobal(n) => write!(f, "duplicate global definition: @{n}"),
        }
    }
}

impl std::error::Error for LinkError {}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Module {
        Module::default()
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Looks up a function by name, mutably.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// Index of a function by name.
    pub fn function_index(&self, name: &str) -> Option<usize> {
        self.functions.iter().position(|f| f.name == name)
    }

    /// Looks up a global by name.
    pub fn global(&self, name: &str) -> Option<(GlobalId, &Global)> {
        self.globals
            .iter()
            .enumerate()
            .find(|(_, g)| g.name == name)
            .map(|(i, g)| (GlobalId(i as u32), g))
    }

    /// Adds a global, returning its id.
    pub fn add_global(&mut self, g: Global) -> GlobalId {
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(g);
        id
    }

    /// Total live instruction count across all defined functions — the
    /// "compiled program size" statistic reported in Table 1.
    pub fn live_inst_count(&self) -> usize {
        self.functions.iter().map(|f| f.live_inst_count()).sum()
    }

    /// Links `other` into `self`.
    ///
    /// Function *declarations* are resolved against definitions from either
    /// side; duplicate *definitions* are an error. Global ids inside
    /// `other`'s functions are remapped to the combined global table.
    pub fn link(&mut self, other: Module) -> Result<(), LinkError> {
        // Remap other's globals.
        let mut global_map: HashMap<u32, u32> = HashMap::new();
        for (i, g) in other.globals.into_iter().enumerate() {
            if let Some((existing, eg)) = self.global(&g.name) {
                // Two identically named globals are only tolerated when they
                // are bit-identical constants (e.g. shared tables).
                if eg.is_const && g.is_const && eg.size == g.size && eg.init == g.init {
                    global_map.insert(i as u32, existing.0);
                    continue;
                }
                return Err(LinkError::DuplicateGlobal(g.name));
            }
            let id = self.add_global(g);
            global_map.insert(i as u32, id.0);
        }

        for mut f in other.functions {
            // Remap global references in the incoming function.
            for inst in &mut f.insts {
                if let crate::inst::InstKind::GlobalAddr { global } = &mut inst.kind {
                    global.0 = *global_map
                        .get(&global.0)
                        .expect("global id out of range while linking");
                }
            }
            match self.function_index(&f.name) {
                Some(i) => {
                    let existing = &self.functions[i];
                    match (existing.is_declaration, f.is_declaration) {
                        (true, false) => self.functions[i] = f,
                        (_, true) => {} // Keep whichever is already there.
                        (false, false) => {
                            return Err(LinkError::DuplicateFunction(f.name));
                        }
                    }
                }
                None => self.functions.push(f),
            }
        }
        Ok(())
    }

    /// Returns the names of declared-but-undefined functions (unresolved
    /// externals after linking).
    pub fn unresolved(&self) -> Vec<&str> {
        self.functions
            .iter()
            .filter(|f| f.is_declaration)
            .map(|f| f.name.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Ty;

    fn def(name: &str) -> Function {
        Function::new(name, &[], Ty::Void)
    }

    #[test]
    fn link_resolves_declarations() {
        let mut a = Module::new();
        a.functions.push(Function::declare("f", &[], Ty::Void));
        a.functions.push(def("main"));
        let mut b = Module::new();
        b.functions.push(def("f"));
        a.link(b).unwrap();
        assert_eq!(a.functions.len(), 2);
        assert!(a.unresolved().is_empty());
        assert!(!a.function("f").unwrap().is_declaration);
    }

    #[test]
    fn link_rejects_duplicate_definitions() {
        let mut a = Module::new();
        a.functions.push(def("f"));
        let mut b = Module::new();
        b.functions.push(def("f"));
        assert_eq!(
            a.link(b),
            Err(LinkError::DuplicateFunction("f".to_string()))
        );
    }

    #[test]
    fn link_merges_identical_const_globals() {
        let mut a = Module::new();
        a.add_global(Global {
            name: "tab".into(),
            size: 4,
            init: vec![1, 2, 3, 4],
            is_const: true,
        });
        let mut b = Module::new();
        b.add_global(Global {
            name: "tab".into(),
            size: 4,
            init: vec![1, 2, 3, 4],
            is_const: true,
        });
        a.link(b).unwrap();
        assert_eq!(a.globals.len(), 1);
    }

    #[test]
    fn link_rejects_conflicting_globals() {
        let mut a = Module::new();
        a.add_global(Global {
            name: "g".into(),
            size: 4,
            init: vec![],
            is_const: false,
        });
        let mut b = Module::new();
        b.add_global(Global {
            name: "g".into(),
            size: 4,
            init: vec![],
            is_const: false,
        });
        assert!(a.link(b).is_err());
    }
}
