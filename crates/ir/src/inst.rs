//! Instructions, terminators and intrinsics.

use crate::types::Ty;
use crate::value::{BlockId, GlobalId, Operand, ValueId};
use std::fmt;

/// Binary integer operations. Division and remainder by zero are undefined
/// behaviour; the engines report them as bugs and the `runtime-checks` pass
/// turns them into explicit aborts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    UDiv,
    SDiv,
    URem,
    SRem,
    And,
    Or,
    Xor,
    Shl,
    LShr,
    AShr,
}

impl BinOp {
    /// Name as used by the textual format.
    pub fn name(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::UDiv => "udiv",
            BinOp::SDiv => "sdiv",
            BinOp::URem => "urem",
            BinOp::SRem => "srem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::LShr => "lshr",
            BinOp::AShr => "ashr",
        }
    }

    /// Parses an operation name.
    pub fn from_name(s: &str) -> Option<BinOp> {
        Some(match s {
            "add" => BinOp::Add,
            "sub" => BinOp::Sub,
            "mul" => BinOp::Mul,
            "udiv" => BinOp::UDiv,
            "sdiv" => BinOp::SDiv,
            "urem" => BinOp::URem,
            "srem" => BinOp::SRem,
            "and" => BinOp::And,
            "or" => BinOp::Or,
            "xor" => BinOp::Xor,
            "shl" => BinOp::Shl,
            "lshr" => BinOp::LShr,
            "ashr" => BinOp::AShr,
            _ => return None,
        })
    }

    /// True for commutative operations (used by value numbering to
    /// canonicalize operand order).
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor
        )
    }

    /// True if the operation can trap (divide / remainder by zero).
    pub fn can_trap(self) -> bool {
        matches!(self, BinOp::UDiv | BinOp::SDiv | BinOp::URem | BinOp::SRem)
    }
}

/// Integer comparison predicates (LLVM `icmp` flavours).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpPred {
    Eq,
    Ne,
    Ult,
    Ule,
    Ugt,
    Uge,
    Slt,
    Sle,
    Sgt,
    Sge,
}

impl CmpPred {
    /// Name as used by the textual format.
    pub fn name(self) -> &'static str {
        match self {
            CmpPred::Eq => "eq",
            CmpPred::Ne => "ne",
            CmpPred::Ult => "ult",
            CmpPred::Ule => "ule",
            CmpPred::Ugt => "ugt",
            CmpPred::Uge => "uge",
            CmpPred::Slt => "slt",
            CmpPred::Sle => "sle",
            CmpPred::Sgt => "sgt",
            CmpPred::Sge => "sge",
        }
    }

    /// Parses a predicate name.
    pub fn from_name(s: &str) -> Option<CmpPred> {
        Some(match s {
            "eq" => CmpPred::Eq,
            "ne" => CmpPred::Ne,
            "ult" => CmpPred::Ult,
            "ule" => CmpPred::Ule,
            "ugt" => CmpPred::Ugt,
            "uge" => CmpPred::Uge,
            "slt" => CmpPred::Slt,
            "sle" => CmpPred::Sle,
            "sgt" => CmpPred::Sgt,
            "sge" => CmpPred::Sge,
            _ => return None,
        })
    }

    /// The logically negated predicate (`eq` ↔ `ne`, `ult` ↔ `uge`, ...).
    pub fn negate(self) -> CmpPred {
        match self {
            CmpPred::Eq => CmpPred::Ne,
            CmpPred::Ne => CmpPred::Eq,
            CmpPred::Ult => CmpPred::Uge,
            CmpPred::Ule => CmpPred::Ugt,
            CmpPred::Ugt => CmpPred::Ule,
            CmpPred::Uge => CmpPred::Ult,
            CmpPred::Slt => CmpPred::Sge,
            CmpPred::Sle => CmpPred::Sgt,
            CmpPred::Sgt => CmpPred::Sle,
            CmpPred::Sge => CmpPred::Slt,
        }
    }

    /// The predicate with operands swapped (`ult` ↔ `ugt`, `eq` ↔ `eq`, ...).
    pub fn swap(self) -> CmpPred {
        match self {
            CmpPred::Eq => CmpPred::Eq,
            CmpPred::Ne => CmpPred::Ne,
            CmpPred::Ult => CmpPred::Ugt,
            CmpPred::Ule => CmpPred::Uge,
            CmpPred::Ugt => CmpPred::Ult,
            CmpPred::Uge => CmpPred::Ule,
            CmpPred::Slt => CmpPred::Sgt,
            CmpPred::Sle => CmpPred::Sge,
            CmpPred::Sgt => CmpPred::Slt,
            CmpPred::Sge => CmpPred::Sle,
        }
    }
}

/// Width-changing casts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CastOp {
    /// Zero-extend to a wider type.
    Zext,
    /// Sign-extend to a wider type.
    Sext,
    /// Truncate to a narrower type.
    Trunc,
}

impl CastOp {
    /// Name as used by the textual format.
    pub fn name(self) -> &'static str {
        match self {
            CastOp::Zext => "zext",
            CastOp::Sext => "sext",
            CastOp::Trunc => "trunc",
        }
    }

    /// Parses a cast name.
    pub fn from_name(s: &str) -> Option<CastOp> {
        Some(match s {
            "zext" => CastOp::Zext,
            "sext" => CastOp::Sext,
            "trunc" => CastOp::Trunc,
            _ => return None,
        })
    }
}

/// Built-in operations with runtime/engine support.
///
/// These model the verification environment: symbolic input introduction
/// (KLEE's `klee_make_symbolic`), assumptions and assertions, character I/O
/// and a bump allocator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// `sym_input(ptr, len)` — marks `len` bytes at `ptr` as symbolic input.
    SymInput,
    /// `assume(i1)` — constrains the current path; silently kills
    /// contradicting paths.
    Assume,
    /// `assert(i1)` — aborts (reports a bug) if the condition can be false.
    Assert,
    /// `putchar(i32) -> i32` — appends a byte to the program's output stream.
    PutChar,
    /// `malloc(i64) -> ptr` — bump allocation; never freed.
    Malloc,
    /// `abort()` — unconditional program abort (used by runtime checks).
    Abort,
}

impl Intrinsic {
    /// Name as used by the textual format and resolved by the front-end.
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::SymInput => "sym_input",
            Intrinsic::Assume => "assume",
            Intrinsic::Assert => "assert",
            Intrinsic::PutChar => "putchar",
            Intrinsic::Malloc => "malloc",
            Intrinsic::Abort => "abort",
        }
    }

    /// Parses an intrinsic name.
    pub fn from_name(s: &str) -> Option<Intrinsic> {
        Some(match s {
            "sym_input" => Intrinsic::SymInput,
            "assume" => Intrinsic::Assume,
            "assert" => Intrinsic::Assert,
            "putchar" => Intrinsic::PutChar,
            "malloc" => Intrinsic::Malloc,
            "abort" => Intrinsic::Abort,
            _ => return None,
        })
    }

    /// Return type of the intrinsic.
    pub fn ret_ty(self) -> Ty {
        match self {
            Intrinsic::SymInput | Intrinsic::Assume | Intrinsic::Assert | Intrinsic::Abort => {
                Ty::Void
            }
            Intrinsic::PutChar => Ty::I32,
            Intrinsic::Malloc => Ty::Ptr,
        }
    }

    /// True if the intrinsic has side effects visible to the environment and
    /// must not be removed or reordered.
    pub fn has_side_effects(self) -> bool {
        // `Assume`/`Assert` constrain paths, `SymInput` introduces symbols,
        // `PutChar` writes output, `Malloc` allocates, `Abort` terminates.
        true
    }
}

/// A call target: a named function in the module or an intrinsic.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Callee {
    /// Direct call, resolved by name at link/execution time.
    Func(String),
    /// Built-in operation.
    Intrinsic(Intrinsic),
}

impl Callee {
    /// Display name.
    pub fn name(&self) -> &str {
        match self {
            Callee::Func(n) => n,
            Callee::Intrinsic(i) => i.name(),
        }
    }
}

/// Why a program aborted. The `runtime-checks` pass and the engines both map
/// distinct failures onto this single "crash" channel — the paper's point
/// that runtime checks let verifiers look for one kind of failure only.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AbortKind {
    /// Out-of-bounds memory access.
    OutOfBounds,
    /// Division or remainder by zero.
    DivByZero,
    /// `assert` intrinsic failed.
    AssertFail,
    /// Explicit `abort()` call.
    Explicit,
    /// `unreachable` terminator was reached.
    UnreachableReached,
}

impl AbortKind {
    /// Name as used by the textual format.
    pub fn name(self) -> &'static str {
        match self {
            AbortKind::OutOfBounds => "oob",
            AbortKind::DivByZero => "divzero",
            AbortKind::AssertFail => "assertfail",
            AbortKind::Explicit => "explicit",
            AbortKind::UnreachableReached => "unreachable",
        }
    }

    /// Parses an abort-kind name.
    pub fn from_name(s: &str) -> Option<AbortKind> {
        Some(match s {
            "oob" => AbortKind::OutOfBounds,
            "divzero" => AbortKind::DivByZero,
            "assertfail" => AbortKind::AssertFail,
            "explicit" => AbortKind::Explicit,
            "unreachable" => AbortKind::UnreachableReached,
            _ => return None,
        })
    }
}

impl fmt::Display for AbortKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The operation an instruction performs.
#[derive(Clone, Debug, PartialEq)]
pub enum InstKind {
    /// `result = op ty lhs, rhs`
    Bin {
        op: BinOp,
        ty: Ty,
        lhs: Operand,
        rhs: Operand,
    },
    /// `result = icmp pred ty lhs, rhs` — result type is `i1`.
    Cmp {
        pred: CmpPred,
        ty: Ty,
        lhs: Operand,
        rhs: Operand,
    },
    /// `result = select i1 cond, on_true, on_false`
    Select {
        ty: Ty,
        cond: Operand,
        on_true: Operand,
        on_false: Operand,
    },
    /// `result = zext/sext/trunc value to ty`
    Cast { op: CastOp, to: Ty, value: Operand },
    /// `result = alloca size` — stack allocation of `size` bytes.
    Alloca { size: u64 },
    /// `result = load ty, addr`
    Load { ty: Ty, addr: Operand },
    /// `store ty value, addr` — no result.
    Store {
        ty: Ty,
        value: Operand,
        addr: Operand,
    },
    /// `result = ptradd base, offset` — byte-granular pointer arithmetic.
    PtrAdd { base: Operand, offset: Operand },
    /// `result = globaladdr @name` — address of a global.
    GlobalAddr { global: GlobalId },
    /// `result = call @callee(args...)` — `result` is absent for void callees.
    Call { callee: Callee, args: Vec<Operand> },
    /// SSA phi node: `result = phi ty [bb -> op, ...]`.
    Phi {
        ty: Ty,
        incomings: Vec<(BlockId, Operand)>,
    },
    /// Tombstone left behind by passes; skipped everywhere and removed by
    /// instruction compaction.
    Nop,
}

impl InstKind {
    /// The result type, or `None` for instructions that produce no value.
    pub fn result_ty(&self) -> Option<Ty> {
        match self {
            InstKind::Bin { ty, .. } => Some(*ty),
            InstKind::Cmp { .. } => Some(Ty::I1),
            InstKind::Select { ty, .. } => Some(*ty),
            InstKind::Cast { to, .. } => Some(*to),
            InstKind::Alloca { .. } | InstKind::PtrAdd { .. } | InstKind::GlobalAddr { .. } => {
                Some(Ty::Ptr)
            }
            InstKind::Load { ty, .. } => Some(*ty),
            InstKind::Store { .. } | InstKind::Nop => None,
            InstKind::Call { .. } => None, // Determined per-call from the callee.
            InstKind::Phi { ty, .. } => Some(*ty),
        }
    }

    /// True if the instruction writes memory, performs I/O or otherwise must
    /// not be removed when its result is unused.
    pub fn has_side_effects(&self) -> bool {
        match self {
            InstKind::Store { .. } | InstKind::Call { .. } => true,
            // Division can trap; treat as side-effecting for DCE purposes.
            InstKind::Bin { op, .. } => op.can_trap(),
            _ => false,
        }
    }

    /// True if the instruction may be speculatively hoisted past a branch
    /// (no side effects, cannot trap, does not read memory).
    ///
    /// Loads are excluded here; the if-conversion pass separately allows
    /// provably-dereferenceable loads under the verification cost model.
    pub fn is_speculatable(&self) -> bool {
        match self {
            InstKind::Bin { op, rhs, .. } => {
                // Division is speculatable only when the divisor is a
                // non-zero constant.
                if op.can_trap() {
                    matches!(rhs, Operand::Const(c) if !c.is_zero())
                } else {
                    true
                }
            }
            InstKind::Cmp { .. }
            | InstKind::Select { .. }
            | InstKind::Cast { .. }
            | InstKind::PtrAdd { .. }
            | InstKind::GlobalAddr { .. } => true,
            _ => false,
        }
    }

    /// Calls `f` on every operand.
    pub fn for_each_operand(&self, mut f: impl FnMut(&Operand)) {
        match self {
            InstKind::Bin { lhs, rhs, .. } | InstKind::Cmp { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            InstKind::Select {
                cond,
                on_true,
                on_false,
                ..
            } => {
                f(cond);
                f(on_true);
                f(on_false);
            }
            InstKind::Cast { value, .. } => f(value),
            InstKind::Load { addr, .. } => f(addr),
            InstKind::Store { value, addr, .. } => {
                f(value);
                f(addr);
            }
            InstKind::PtrAdd { base, offset } => {
                f(base);
                f(offset);
            }
            InstKind::Call { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            InstKind::Phi { incomings, .. } => {
                for (_, op) in incomings {
                    f(op);
                }
            }
            InstKind::Alloca { .. } | InstKind::GlobalAddr { .. } | InstKind::Nop => {}
        }
    }

    /// Calls `f` on every operand, allowing mutation (used by value remapping
    /// in the inliner and loop-cloning passes).
    pub fn for_each_operand_mut(&mut self, mut f: impl FnMut(&mut Operand)) {
        match self {
            InstKind::Bin { lhs, rhs, .. } | InstKind::Cmp { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            InstKind::Select {
                cond,
                on_true,
                on_false,
                ..
            } => {
                f(cond);
                f(on_true);
                f(on_false);
            }
            InstKind::Cast { value, .. } => f(value),
            InstKind::Load { addr, .. } => f(addr),
            InstKind::Store { value, addr, .. } => {
                f(value);
                f(addr);
            }
            InstKind::PtrAdd { base, offset } => {
                f(base);
                f(offset);
            }
            InstKind::Call { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            InstKind::Phi { incomings, .. } => {
                for (_, op) in incomings {
                    f(op);
                }
            }
            InstKind::Alloca { .. } | InstKind::GlobalAddr { .. } | InstKind::Nop => {}
        }
    }
}

/// One instruction: its operation plus the value it defines, if any.
#[derive(Clone, Debug, PartialEq)]
pub struct Inst {
    pub kind: InstKind,
    pub result: Option<ValueId>,
}

/// Block terminators. Every reachable block has exactly one.
#[derive(Clone, Debug, PartialEq)]
pub enum Terminator {
    /// Unconditional branch.
    Br { target: BlockId },
    /// Two-way conditional branch on an `i1` operand.
    CondBr {
        cond: Operand,
        on_true: BlockId,
        on_false: BlockId,
    },
    /// Function return; operand present iff the return type is non-void.
    Ret { value: Option<Operand> },
    /// Program abort: the single failure channel verifiers look for.
    Abort { kind: AbortKind },
    /// Statically unreachable; reaching it dynamically is a bug.
    Unreachable,
}

impl Terminator {
    /// Successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Br { target } => vec![*target],
            Terminator::CondBr {
                on_true, on_false, ..
            } => vec![*on_true, *on_false],
            _ => vec![],
        }
    }

    /// Replaces every successor equal to `from` with `to`.
    pub fn retarget(&mut self, from: BlockId, to: BlockId) {
        match self {
            Terminator::Br { target } if *target == from => {
                *target = to;
            }
            Terminator::CondBr {
                on_true, on_false, ..
            } => {
                if *on_true == from {
                    *on_true = to;
                }
                if *on_false == from {
                    *on_false = to;
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Const;

    #[test]
    fn predicate_negation_is_involutive() {
        for p in [
            CmpPred::Eq,
            CmpPred::Ne,
            CmpPred::Ult,
            CmpPred::Ule,
            CmpPred::Ugt,
            CmpPred::Uge,
            CmpPred::Slt,
            CmpPred::Sle,
            CmpPred::Sgt,
            CmpPred::Sge,
        ] {
            assert_eq!(p.negate().negate(), p);
            assert_eq!(p.swap().swap(), p);
            assert_eq!(CmpPred::from_name(p.name()), Some(p));
        }
    }

    #[test]
    fn binop_round_trip_and_traits() {
        for op in [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::UDiv,
            BinOp::SDiv,
            BinOp::URem,
            BinOp::SRem,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::LShr,
            BinOp::AShr,
        ] {
            assert_eq!(BinOp::from_name(op.name()), Some(op));
        }
        assert!(BinOp::Add.is_commutative());
        assert!(!BinOp::Sub.is_commutative());
        assert!(BinOp::UDiv.can_trap());
        assert!(!BinOp::Shl.can_trap());
    }

    #[test]
    fn speculation_rules() {
        let div_by_const = InstKind::Bin {
            op: BinOp::UDiv,
            ty: Ty::I32,
            lhs: Operand::Value(ValueId(0)),
            rhs: Operand::Const(Const::new(Ty::I32, 4)),
        };
        assert!(div_by_const.is_speculatable());
        let div_by_var = InstKind::Bin {
            op: BinOp::UDiv,
            ty: Ty::I32,
            lhs: Operand::Value(ValueId(0)),
            rhs: Operand::Value(ValueId(1)),
        };
        assert!(!div_by_var.is_speculatable());
        let load = InstKind::Load {
            ty: Ty::I8,
            addr: Operand::Value(ValueId(0)),
        };
        assert!(!load.is_speculatable());
    }

    #[test]
    fn terminator_retarget() {
        let mut t = Terminator::CondBr {
            cond: Operand::Const(Const::bool(true)),
            on_true: BlockId(1),
            on_false: BlockId(2),
        };
        t.retarget(BlockId(2), BlockId(3));
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(3)]);
    }
}
