//! Textual printer for modules and functions.
//!
//! The format is LLVM-flavoured and round-trips through [`crate::parse`]:
//!
//! ```text
//! global @tab 257 const x"000102"
//!
//! decl @ext(i32) -> i32
//!
//! func @wc(%p.v0: ptr, %any.v1: i32) -> i32 {
//! entry:
//!   %v2 = add i32 %any.v1, 1
//!   condbr %v3, then, done
//! ...
//! }
//! ```
//!
//! Values print as `%v<idx>`, or `%<name>.v<idx>` when a source-level name is
//! known; the parser strips the `.v<idx>` suffix, so names survive a
//! round-trip without growing.

use crate::function::Function;
use crate::inst::{Callee, InstKind, Terminator};
use crate::module::Module;
use crate::value::{BlockId, Operand, ValueId};
use std::fmt::Write;

/// Prints a whole module.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    for g in &m.globals {
        let _ = write!(out, "global @{} {}", g.name, g.size);
        if g.is_const {
            out.push_str(" const");
        }
        if !g.init.is_empty() {
            out.push_str(" x\"");
            for b in &g.init {
                let _ = write!(out, "{b:02x}");
            }
            out.push('"');
        }
        out.push('\n');
    }
    if !m.globals.is_empty() {
        out.push('\n');
    }
    for f in &m.functions {
        out.push_str(&print_function(f));
        out.push('\n');
    }
    out
}

/// Prints one function (or declaration).
pub fn print_function(f: &Function) -> String {
    let mut out = String::new();
    if f.is_declaration {
        let _ = write!(out, "decl @{}(", f.name);
        for (i, ty) in f.param_tys().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{ty}");
        }
        let _ = writeln!(out, ") -> {}", f.ret_ty);
        return out;
    }

    let _ = write!(out, "func @{}(", f.name);
    for (i, &p) in f.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}: {}", value_name(f, p), f.value_ty(p));
    }
    let _ = writeln!(out, ") -> {} {{", f.ret_ty);

    for b in f.block_ids() {
        let block = f.block(b);
        let _ = writeln!(out, "{}:", block.name);
        for &i in &block.insts {
            let inst = f.inst(i);
            if matches!(inst.kind, InstKind::Nop) {
                continue;
            }
            out.push_str("  ");
            print_inst(&mut out, f, inst.result, &inst.kind);
            out.push('\n');
        }
        out.push_str("  ");
        print_term(&mut out, f, &block.term);
        out.push('\n');
    }
    out.push_str("}\n");
    out
}

/// The printed spelling of a value reference.
fn value_name(f: &Function, v: ValueId) -> String {
    match &f.values[v.index()].name {
        Some(n) => format!("%{}.v{}", n, v.0),
        None => format!("%v{}", v.0),
    }
}

fn operand(f: &Function, op: &Operand) -> String {
    match op {
        Operand::Const(c) => format!("{}", c.bits),
        Operand::Value(v) => value_name(f, *v),
    }
}

fn block_name(f: &Function, b: BlockId) -> &str {
    &f.block(b).name
}

fn print_inst(out: &mut String, f: &Function, result: Option<ValueId>, kind: &InstKind) {
    if let Some(r) = result {
        let _ = write!(out, "{} = ", value_name(f, r));
    }
    match kind {
        InstKind::Bin { op, ty, lhs, rhs } => {
            let _ = write!(
                out,
                "{} {} {}, {}",
                op.name(),
                ty,
                operand(f, lhs),
                operand(f, rhs)
            );
        }
        InstKind::Cmp { pred, ty, lhs, rhs } => {
            let _ = write!(
                out,
                "icmp {} {} {}, {}",
                pred.name(),
                ty,
                operand(f, lhs),
                operand(f, rhs)
            );
        }
        InstKind::Select {
            ty,
            cond,
            on_true,
            on_false,
        } => {
            let _ = write!(
                out,
                "select {} {}, {}, {}",
                ty,
                operand(f, cond),
                operand(f, on_true),
                operand(f, on_false)
            );
        }
        InstKind::Cast { op, to, value } => {
            let from = f.operand_ty(*value);
            let _ = write!(
                out,
                "{} {} {} to {}",
                op.name(),
                from,
                operand(f, value),
                to
            );
        }
        InstKind::Alloca { size } => {
            let _ = write!(out, "alloca {size}");
        }
        InstKind::Load { ty, addr } => {
            let _ = write!(out, "load {}, {}", ty, operand(f, addr));
        }
        InstKind::Store { ty, value, addr } => {
            let _ = write!(
                out,
                "store {} {}, {}",
                ty,
                operand(f, value),
                operand(f, addr)
            );
        }
        InstKind::PtrAdd { base, offset } => {
            let _ = write!(out, "ptradd {}, {}", operand(f, base), operand(f, offset));
        }
        InstKind::GlobalAddr { global } => {
            let _ = write!(out, "globaladdr {}", global.0);
        }
        InstKind::Call { callee, args } => {
            let _ = write!(out, "call @{}(", callee_name(callee));
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&operand(f, a));
            }
            out.push(')');
        }
        InstKind::Phi { ty, incomings } => {
            let _ = write!(out, "phi {ty} ");
            for (i, (b, op)) in incomings.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{}: {}]", block_name(f, *b), operand(f, op));
            }
        }
        InstKind::Nop => {
            out.push_str("nop");
        }
    }
}

fn callee_name(c: &Callee) -> &str {
    c.name()
}

fn print_term(out: &mut String, f: &Function, t: &Terminator) {
    match t {
        Terminator::Br { target } => {
            let _ = write!(out, "br {}", block_name(f, *target));
        }
        Terminator::CondBr {
            cond,
            on_true,
            on_false,
        } => {
            let _ = write!(
                out,
                "condbr {}, {}, {}",
                operand(f, cond),
                block_name(f, *on_true),
                block_name(f, *on_false)
            );
        }
        Terminator::Ret { value } => match value {
            Some(v) => {
                let ty = f.operand_ty(*v);
                let _ = write!(out, "ret {} {}", ty, operand(f, v));
            }
            None => out.push_str("ret"),
        },
        Terminator::Abort { kind } => {
            let _ = write!(out, "abort {}", kind.name());
        }
        Terminator::Unreachable => out.push_str("unreachable"),
    }
}

/// Canonical 128-bit content fingerprint of a module: an FNV-1a hash over
/// the printed IR plus a sorted digest of every function's annotation
/// tables (annotations steer the symbolic engine but are not part of the
/// textual format, so they must be folded in separately — two modules
/// that verify differently must never share a fingerprint).
///
/// The printer is a pure function of module structure — names, block
/// order, instruction order — so equal fingerprints mean byte-identical
/// programs from the verifier's point of view. This is the content
/// address the persistent verification store (`overify_store`) keys
/// report artifacts by.
pub fn module_fingerprint(m: &Module) -> u128 {
    const PRIME: u128 = 0x0000000001000000000000000000013B;
    let mut h: u128 = 0x6c62272e07bb014262b821756295c58d;
    let mut absorb = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u128;
            h = h.wrapping_mul(PRIME);
        }
    };
    absorb(print_module(m).as_bytes());
    for f in &m.functions {
        absorb(f.name.as_bytes());
        let mut ranges: Vec<(u32, u64, u64)> = f
            .annotations
            .value_ranges
            .iter()
            .map(|(v, r)| (v.0, r.umin, r.umax))
            .collect();
        ranges.sort_unstable();
        absorb(&(ranges.len() as u64).to_le_bytes());
        for (v, lo, hi) in ranges {
            absorb(&v.to_le_bytes());
            absorb(&lo.to_le_bytes());
            absorb(&hi.to_le_bytes());
        }
        let mut trips: Vec<(u32, u64)> = f
            .annotations
            .trip_counts
            .iter()
            .map(|(b, &n)| (b.0, n))
            .collect();
        trips.sort_unstable();
        absorb(&(trips.len() as u64).to_le_bytes());
        for (b, n) in trips {
            absorb(&b.to_le_bytes());
            absorb(&n.to_le_bytes());
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::BinOp;
    use crate::types::Ty;

    #[test]
    fn prints_simple_function() {
        let mut f = Function::new("inc", &[Ty::I32], Ty::I32);
        f.values[0].name = Some("x".into());
        let e = f.entry();
        let p = f.params[0];
        let v = f
            .append_inst(
                e,
                InstKind::Bin {
                    op: BinOp::Add,
                    ty: Ty::I32,
                    lhs: Operand::Value(p),
                    rhs: Operand::imm(Ty::I32, 1),
                },
                Some(Ty::I32),
            )
            .unwrap();
        f.set_term(
            e,
            Terminator::Ret {
                value: Some(Operand::Value(v)),
            },
        );
        let s = print_function(&f);
        assert!(s.contains("func @inc(%x.v0: i32) -> i32 {"), "{s}");
        assert!(s.contains("%v1 = add i32 %x.v0, 1"), "{s}");
        assert!(s.contains("ret i32 %v1"), "{s}");
    }

    #[test]
    fn prints_declaration() {
        let f = Function::declare("puts", &[Ty::Ptr], Ty::I32);
        assert_eq!(print_function(&f), "decl @puts(ptr) -> i32\n");
    }

    #[test]
    fn module_fingerprint_tracks_content_and_annotations() {
        use crate::meta::ValueRange;
        use crate::value::ValueId;

        let build = || {
            let mut m = Module::new();
            m.functions
                .push(Function::declare("ext", &[Ty::I32], Ty::I32));
            m
        };
        let a = build();
        let b = build();
        assert_eq!(
            module_fingerprint(&a),
            module_fingerprint(&b),
            "equal modules share a fingerprint"
        );

        // Structural change: different name.
        let mut c = Module::new();
        c.functions
            .push(Function::declare("ext2", &[Ty::I32], Ty::I32));
        assert_ne!(module_fingerprint(&a), module_fingerprint(&c));

        // Annotations are invisible to the printer but must still change
        // the fingerprint (they steer the verifier).
        let mut d = build();
        d.functions[0]
            .annotations
            .value_ranges
            .insert(ValueId(0), ValueRange::point(3));
        assert_eq!(print_module(&a), print_module(&d), "printer blind to it");
        assert_ne!(module_fingerprint(&a), module_fingerprint(&d));
    }
}
