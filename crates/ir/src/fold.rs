//! Shared constant evaluation for binary operations, comparisons and casts.
//!
//! Every engine that gives meaning to IR instructions — the optimizer's
//! constant folder, the concrete interpreter and the symbolic expression
//! builder — routes scalar arithmetic through this module so that all three
//! agree bit-for-bit. Semantics follow LLVM with one deviation: shifts by an
//! amount `>= width` are defined (zero for `shl`/`lshr`, sign-fill for
//! `ashr`) rather than poison, so differential testing across engines is
//! deterministic.

use crate::inst::{BinOp, CastOp, CmpPred};
use crate::types::{sign_extend, Ty};

/// Evaluates `op` on `width(ty)`-bit values `a`, `b` (already truncated).
/// Returns `None` for division or remainder by zero.
pub fn eval_bin(op: BinOp, ty: Ty, a: u64, b: u64) -> Option<u64> {
    let mask = ty.mask();
    let width = ty.bits();
    let r = match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::UDiv => {
            if b == 0 {
                return None;
            }
            a / b
        }
        BinOp::URem => {
            if b == 0 {
                return None;
            }
            a % b
        }
        BinOp::SDiv => {
            if b == 0 {
                return None;
            }
            let sa = sign_extend(a, width);
            let sb = sign_extend(b, width);
            // Wrapping handles INT_MIN / -1 like LLVM's undefined case;
            // we define it as wrap-around for determinism.
            sa.wrapping_div(sb) as u64
        }
        BinOp::SRem => {
            if b == 0 {
                return None;
            }
            let sa = sign_extend(a, width);
            let sb = sign_extend(b, width);
            sa.wrapping_rem(sb) as u64
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => {
            if b >= width as u64 {
                0
            } else {
                a << b
            }
        }
        BinOp::LShr => {
            if b >= width as u64 {
                0
            } else {
                a >> b
            }
        }
        BinOp::AShr => {
            let sa = sign_extend(a, width);
            if b >= width as u64 {
                (sa >> 63) as u64
            } else {
                (sa >> b) as u64
            }
        }
    };
    Some(r & mask)
}

/// Evaluates comparison `pred` on `width(ty)`-bit values.
pub fn eval_cmp(pred: CmpPred, ty: Ty, a: u64, b: u64) -> bool {
    let width = ty.bits();
    let (sa, sb) = (sign_extend(a, width), sign_extend(b, width));
    match pred {
        CmpPred::Eq => a == b,
        CmpPred::Ne => a != b,
        CmpPred::Ult => a < b,
        CmpPred::Ule => a <= b,
        CmpPred::Ugt => a > b,
        CmpPred::Uge => a >= b,
        CmpPred::Slt => sa < sb,
        CmpPred::Sle => sa <= sb,
        CmpPred::Sgt => sa > sb,
        CmpPred::Sge => sa >= sb,
    }
}

/// Evaluates a cast of `val` (a `from`-typed bit pattern) to type `to`.
pub fn eval_cast(op: CastOp, from: Ty, to: Ty, val: u64) -> u64 {
    match op {
        CastOp::Zext => val & from.mask() & to.mask(),
        CastOp::Sext => (sign_extend(val, from.bits()) as u64) & to.mask(),
        CastOp::Trunc => val & to.mask(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arith_wraps() {
        assert_eq!(eval_bin(BinOp::Add, Ty::I8, 200, 100), Some(44));
        assert_eq!(eval_bin(BinOp::Sub, Ty::I8, 0, 1), Some(255));
        assert_eq!(eval_bin(BinOp::Mul, Ty::I8, 16, 16), Some(0));
    }

    #[test]
    fn division_semantics() {
        assert_eq!(eval_bin(BinOp::UDiv, Ty::I32, 7, 2), Some(3));
        assert_eq!(eval_bin(BinOp::UDiv, Ty::I32, 7, 0), None);
        // -7 / 2 == -3 (trunc toward zero).
        let a = (-7i64 as u64) & Ty::I32.mask();
        assert_eq!(
            eval_bin(BinOp::SDiv, Ty::I32, a, 2),
            Some((-3i64 as u64) & Ty::I32.mask())
        );
        assert_eq!(
            eval_bin(BinOp::SRem, Ty::I32, a, 2),
            Some((-1i64 as u64) & Ty::I32.mask())
        );
    }

    #[test]
    fn shift_out_of_range_is_defined() {
        assert_eq!(eval_bin(BinOp::Shl, Ty::I8, 1, 8), Some(0));
        assert_eq!(eval_bin(BinOp::LShr, Ty::I8, 0x80, 9), Some(0));
        assert_eq!(eval_bin(BinOp::AShr, Ty::I8, 0x80, 100), Some(0xff));
        assert_eq!(eval_bin(BinOp::AShr, Ty::I8, 0x40, 100), Some(0));
    }

    #[test]
    fn signed_comparisons() {
        let neg1 = 0xffu64;
        assert!(eval_cmp(CmpPred::Slt, Ty::I8, neg1, 0));
        assert!(!eval_cmp(CmpPred::Ult, Ty::I8, neg1, 0));
        assert!(eval_cmp(CmpPred::Sge, Ty::I8, 5, neg1));
    }

    #[test]
    fn casts() {
        assert_eq!(eval_cast(CastOp::Zext, Ty::I8, Ty::I32, 0xff), 0xff);
        assert_eq!(eval_cast(CastOp::Sext, Ty::I8, Ty::I32, 0xff), 0xffff_ffff);
        assert_eq!(eval_cast(CastOp::Trunc, Ty::I32, Ty::I8, 0x1234), 0x34);
        assert_eq!(eval_cast(CastOp::Sext, Ty::I1, Ty::I8, 1), 0xff);
    }
}
