//! Program annotations: the metadata channel the paper proposes compilers
//! should expose to verification tools.
//!
//! Today's compilers compute value ranges, loop trip counts and alias facts
//! during optimization and then throw them away. `-OVERIFY` keeps them: the
//! annotation pass in `overify-opt` fills in this structure and the symbolic
//! execution engine in `overify-symex` consults it to skip solver queries for
//! branches the compiler already proved one-sided.

use crate::value::{BlockId, ValueId};
use std::collections::HashMap;

/// An inclusive unsigned range `[umin, umax]` for a value's bit pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ValueRange {
    pub umin: u64,
    pub umax: u64,
}

impl ValueRange {
    /// The full range of a `width`-bit value.
    pub fn full(width: u32) -> ValueRange {
        let umax = if width >= 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        ValueRange { umin: 0, umax }
    }

    /// A single-point range.
    pub fn point(v: u64) -> ValueRange {
        ValueRange { umin: v, umax: v }
    }

    /// True if the range is a single value.
    pub fn is_point(&self) -> bool {
        self.umin == self.umax
    }

    /// True if `v` lies within the range.
    pub fn contains(&self, v: u64) -> bool {
        self.umin <= v && v <= self.umax
    }

    /// Intersection, or `None` when empty.
    pub fn intersect(&self, other: &ValueRange) -> Option<ValueRange> {
        let umin = self.umin.max(other.umin);
        let umax = self.umax.min(other.umax);
        if umin <= umax {
            Some(ValueRange { umin, umax })
        } else {
            None
        }
    }
}

/// Per-function annotation tables.
#[derive(Clone, Debug, Default)]
pub struct Annotations {
    /// Proven unsigned ranges for SSA values.
    pub value_ranges: HashMap<ValueId, ValueRange>,
    /// Upper bounds on loop trip counts, keyed by loop header block.
    pub trip_counts: HashMap<BlockId, u64>,
}

impl Annotations {
    /// True if no annotation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.value_ranges.is_empty() && self.trip_counts.is_empty()
    }

    /// Number of recorded facts (used in reports and the annotations
    /// ablation experiment).
    pub fn fact_count(&self) -> usize {
        self.value_ranges.len() + self.trip_counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_range_widths() {
        assert_eq!(ValueRange::full(1), ValueRange { umin: 0, umax: 1 });
        assert_eq!(ValueRange::full(8), ValueRange { umin: 0, umax: 255 });
        assert_eq!(ValueRange::full(64).umax, u64::MAX);
    }

    #[test]
    fn intersect_and_contains() {
        let a = ValueRange { umin: 3, umax: 10 };
        let b = ValueRange { umin: 8, umax: 20 };
        assert_eq!(a.intersect(&b), Some(ValueRange { umin: 8, umax: 10 }));
        let c = ValueRange { umin: 11, umax: 12 };
        assert_eq!(a.intersect(&c), None);
        assert!(a.contains(3));
        assert!(!a.contains(11));
        assert!(ValueRange::point(5).is_point());
    }

    #[test]
    fn fact_count() {
        let mut ann = Annotations::default();
        assert!(ann.is_empty());
        ann.value_ranges.insert(ValueId(0), ValueRange::point(1));
        ann.trip_counts.insert(BlockId(2), 10);
        assert_eq!(ann.fact_count(), 2);
    }
}
