//! Scalar types and constants.
//!
//! The IR is byte-addressed: aggregates (arrays, structs) exist only in the
//! front-end and are lowered to `alloca` + pointer arithmetic, mirroring how
//! verification tools such as KLEE model memory as flat byte arrays.

use std::fmt;

/// A first-class scalar type.
///
/// Pointers are opaque 64-bit values; the engines encode them as
/// `(object id << 32) | offset`, which keeps pointer arithmetic plain
/// bit-vector arithmetic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Ty {
    /// Single-bit boolean, the result type of comparisons.
    I1,
    /// 8-bit integer (C `char`).
    I8,
    /// 16-bit integer (C `short`).
    I16,
    /// 32-bit integer (C `int`).
    I32,
    /// 64-bit integer (C `long`).
    I64,
    /// Pointer (64-bit).
    Ptr,
    /// No value; only valid as a function return type.
    Void,
}

impl Ty {
    /// Width of the type in bits. `Void` has width 0.
    pub fn bits(self) -> u32 {
        match self {
            Ty::I1 => 1,
            Ty::I8 => 8,
            Ty::I16 => 16,
            Ty::I32 => 32,
            Ty::I64 | Ty::Ptr => 64,
            Ty::Void => 0,
        }
    }

    /// Width of the type in bytes when stored in memory (`i1` occupies one
    /// byte, like LLVM's memory representation of `i1`).
    pub fn bytes(self) -> u64 {
        match self {
            Ty::I1 | Ty::I8 => 1,
            Ty::I16 => 2,
            Ty::I32 => 4,
            Ty::I64 | Ty::Ptr => 8,
            Ty::Void => 0,
        }
    }

    /// Bit mask covering the type's width (`0xff` for `i8`, ...).
    pub fn mask(self) -> u64 {
        match self.bits() {
            0 => 0,
            64 => u64::MAX,
            b => (1u64 << b) - 1,
        }
    }

    /// Returns true for integer types (everything except `Ptr` and `Void`).
    pub fn is_int(self) -> bool {
        !matches!(self, Ty::Ptr | Ty::Void)
    }

    /// Parses a type name as used in the textual format.
    pub fn from_name(s: &str) -> Option<Ty> {
        Some(match s {
            "i1" => Ty::I1,
            "i8" => Ty::I8,
            "i16" => Ty::I16,
            "i32" => Ty::I32,
            "i64" => Ty::I64,
            "ptr" => Ty::Ptr,
            "void" => Ty::Void,
            _ => return None,
        })
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ty::I1 => "i1",
            Ty::I8 => "i8",
            Ty::I16 => "i16",
            Ty::I32 => "i32",
            Ty::I64 => "i64",
            Ty::Ptr => "ptr",
            Ty::Void => "void",
        };
        f.write_str(s)
    }
}

/// A typed integer constant. `bits` always holds the value truncated to the
/// type's width (so two equal constants compare equal structurally).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Const {
    pub ty: Ty,
    pub bits: u64,
}

impl Const {
    /// Creates a constant, truncating `bits` to the width of `ty`.
    pub fn new(ty: Ty, bits: u64) -> Const {
        Const {
            ty,
            bits: bits & ty.mask(),
        }
    }

    /// The boolean `true` constant.
    pub fn bool(b: bool) -> Const {
        Const::new(Ty::I1, b as u64)
    }

    /// Zero of the given type.
    pub fn zero(ty: Ty) -> Const {
        Const::new(ty, 0)
    }

    /// Interprets the constant as a signed integer (sign-extended to i64).
    pub fn as_signed(self) -> i64 {
        sign_extend(self.bits, self.ty.bits())
    }

    /// Returns true if the constant is zero.
    pub fn is_zero(self) -> bool {
        self.bits == 0
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.bits)
    }
}

/// Sign-extends `bits` from `width` bits to 64 bits and reinterprets as i64.
pub fn sign_extend(bits: u64, width: u32) -> i64 {
    if width == 0 {
        return 0;
    }
    if width >= 64 {
        return bits as i64;
    }
    let shift = 64 - width;
    ((bits << shift) as i64) >> shift
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_and_masks() {
        assert_eq!(Ty::I1.bits(), 1);
        assert_eq!(Ty::I8.mask(), 0xff);
        assert_eq!(Ty::I64.mask(), u64::MAX);
        assert_eq!(Ty::Ptr.bytes(), 8);
        assert_eq!(Ty::Void.bits(), 0);
    }

    #[test]
    fn const_truncates() {
        let c = Const::new(Ty::I8, 0x1ff);
        assert_eq!(c.bits, 0xff);
        assert_eq!(c.as_signed(), -1);
    }

    #[test]
    fn sign_extension() {
        assert_eq!(sign_extend(0x80, 8), -128);
        assert_eq!(sign_extend(0x7f, 8), 127);
        assert_eq!(sign_extend(1, 1), -1);
        assert_eq!(sign_extend(0xffff_ffff, 32), -1);
        assert_eq!(sign_extend(5, 64), 5);
    }

    #[test]
    fn type_names_round_trip() {
        for ty in [Ty::I1, Ty::I8, Ty::I16, Ty::I32, Ty::I64, Ty::Ptr, Ty::Void] {
            assert_eq!(Ty::from_name(&ty.to_string()), Some(ty));
        }
        assert_eq!(Ty::from_name("i128"), None);
    }
}
