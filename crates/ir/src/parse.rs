//! Parser for the textual IR format produced by [`crate::print`].

use crate::function::Function;
use crate::inst::{AbortKind, BinOp, Callee, CastOp, CmpPred, InstKind, Intrinsic, Terminator};
use crate::module::{Global, Module};
use crate::types::{Const, Ty};
use crate::value::{BlockId, GlobalId, Operand, ValueDef, ValueId};
use std::collections::HashMap;

/// A parse failure with a 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

type Result<T> = std::result::Result<T, ParseError>;

/// Sentinel for values referenced before their definition (phi back edges).
const PENDING_DEF: ValueDef = ValueDef::Param(u32::MAX);

/// Parses a whole module from its textual form.
pub fn parse_module(src: &str) -> Result<Module> {
    // Tokenize every line up front (comments start with ';').
    let lines: Vec<(usize, Vec<String>)> = src
        .lines()
        .enumerate()
        .map(|(i, l)| {
            let code = match l.find(';') {
                Some(p) => &l[..p],
                None => l,
            };
            (i + 1, tokenize(code))
        })
        .filter(|(_, toks)| !toks.is_empty())
        .collect();

    // Pass 1: function signatures and globals (so calls can be typed).
    let mut sigs: HashMap<String, (Vec<Ty>, Ty)> = HashMap::new();
    for (ln, toks) in &lines {
        match toks[0].as_str() {
            "func" | "decl" => {
                let (name, params, ret) = parse_signature(*ln, toks)?;
                let tys = params.iter().map(|(_, ty)| *ty).collect();
                sigs.insert(name, (tys, ret));
            }
            _ => {}
        }
    }

    let mut m = Module::new();
    let mut i = 0;
    while i < lines.len() {
        let (ln, toks) = &lines[i];
        match toks[0].as_str() {
            "global" => {
                m.globals.push(parse_global(*ln, toks)?);
                i += 1;
            }
            "decl" => {
                let (name, params, ret) = parse_signature(*ln, toks)?;
                let tys: Vec<Ty> = params.iter().map(|(_, t)| *t).collect();
                m.functions.push(Function::declare(name, &tys, ret));
                i += 1;
            }
            "func" => {
                let end = lines[i..]
                    .iter()
                    .position(|(_, t)| t.len() == 1 && t[0] == "}")
                    .map(|p| i + p)
                    .ok_or_else(|| err(*ln, "unterminated function body"))?;
                let f = parse_function(&lines[i..=end], &sigs, &m)?;
                m.functions.push(f);
                i = end + 1;
            }
            other => return Err(err(*ln, format!("unexpected token `{other}`"))),
        }
    }
    Ok(m)
}

fn err(line: usize, msg: impl Into<String>) -> ParseError {
    ParseError {
        line,
        msg: msg.into(),
    }
}

/// Splits a line into tokens, padding punctuation with spaces first.
fn tokenize(line: &str) -> Vec<String> {
    let mut padded = String::with_capacity(line.len() + 8);
    for c in line.chars() {
        match c {
            ',' | '(' | ')' | '[' | ']' | ':' | '{' | '}' => {
                padded.push(' ');
                padded.push(c);
                padded.push(' ');
            }
            _ => padded.push(c),
        }
    }
    padded.split_whitespace().map(|s| s.to_string()).collect()
}

/// A parsed `func`/`decl` header: name, `(param name, type)` pairs, return type.
type Signature = (String, Vec<(Option<String>, Ty)>, Ty);

/// Parses `func|decl @name ( %p : ty , ... ) -> ty [{]`.
fn parse_signature(ln: usize, toks: &[String]) -> Result<Signature> {
    let mut c = TokCursor::new(ln, toks);
    c.next()?; // func | decl
    let name = c.at_name()?;
    c.expect("(")?;
    let mut params = Vec::new();
    if c.peek() != Some(")") {
        loop {
            let tok = c.next()?.to_string();
            let (pname, ty) = if let Some(stripped) = tok.strip_prefix('%') {
                c.expect(":")?;
                let ty = c.ty()?;
                (Some(strip_index_suffix(stripped)), ty)
            } else {
                // A bare type (declarations).
                (
                    None,
                    Ty::from_name(&tok).ok_or_else(|| err(ln, format!("bad type `{tok}`")))?,
                )
            };
            params.push((pname, ty));
            if c.peek() == Some(",") {
                c.next()?;
            } else {
                break;
            }
        }
    }
    c.expect(")")?;
    c.expect("->")?;
    let ret = c.ty()?;
    Ok((name, params, ret))
}

/// Parses `global @name size [const] [x"hex"]`.
fn parse_global(ln: usize, toks: &[String]) -> Result<Global> {
    let mut c = TokCursor::new(ln, toks);
    c.expect("global")?;
    let name = c.at_name()?;
    let size = c
        .next()?
        .parse::<u64>()
        .map_err(|_| err(ln, "bad global size"))?;
    let mut is_const = false;
    let mut init = Vec::new();
    while let Some(t) = c.peek() {
        if t == "const" {
            is_const = true;
            c.next()?;
        } else if let Some(hex) = t.strip_prefix("x\"").and_then(|s| s.strip_suffix('"')) {
            let hex = hex.to_string();
            c.next()?;
            if hex.len() % 2 != 0 {
                return Err(err(ln, "odd hex initializer length"));
            }
            for i in (0..hex.len()).step_by(2) {
                let b = u8::from_str_radix(&hex[i..i + 2], 16)
                    .map_err(|_| err(ln, "bad hex digit in initializer"))?;
                init.push(b);
            }
        } else {
            return Err(err(ln, format!("unexpected token `{t}` in global")));
        }
    }
    if init.len() as u64 > size {
        return Err(err(ln, "initializer longer than global size"));
    }
    Ok(Global {
        name,
        size,
        init,
        is_const,
    })
}

/// Removes a trailing `.v<digits>` uniquifier from a printed value name.
fn strip_index_suffix(name: &str) -> String {
    if let Some(pos) = name.rfind(".v") {
        if name[pos + 2..].chars().all(|c| c.is_ascii_digit()) && pos + 2 < name.len() {
            return name[..pos].to_string();
        }
    }
    name.to_string()
}

struct FuncParser<'a> {
    f: Function,
    names: HashMap<String, ValueId>,
    pending: HashMap<String, usize>, // value name -> first line referencing it
    blocks: HashMap<String, BlockId>,
    sigs: &'a HashMap<String, (Vec<Ty>, Ty)>,
    module: &'a Module,
}

impl<'a> FuncParser<'a> {
    /// Looks up or creates (as pending) the value for token `tok` of type `ty`.
    fn value(&mut self, ln: usize, tok: &str, ty: Ty) -> Result<ValueId> {
        let key = tok.to_string();
        if let Some(&v) = self.names.get(&key) {
            return Ok(v);
        }
        // Forward reference: create a placeholder that the defining
        // instruction will claim.
        let base = strip_index_suffix(tok);
        let name = if base.starts_with('v') && base[1..].chars().all(|c| c.is_ascii_digit()) {
            None
        } else {
            Some(base)
        };
        let v = self.f.make_value(ty, PENDING_DEF, name);
        self.names.insert(key.clone(), v);
        self.pending.insert(key, ln);
        Ok(v)
    }

    /// Parses an operand with an expected type.
    fn operand(&mut self, ln: usize, tok: &str, ty: Ty) -> Result<Operand> {
        if let Some(v) = tok.strip_prefix('%') {
            let id = self.value(ln, v, ty)?;
            Ok(Operand::Value(id))
        } else {
            let bits = parse_int(ln, tok)?;
            Ok(Operand::Const(Const::new(ty, bits)))
        }
    }

    /// Binds the result name of an instruction being defined.
    fn bind_result(&mut self, ln: usize, tok: &str, ty: Ty) -> Result<ValueId> {
        let key = tok
            .strip_prefix('%')
            .ok_or_else(|| err(ln, "result must start with %"))?
            .to_string();
        if let Some(&v) = self.names.get(&key) {
            // Claiming a pending forward reference.
            if self.pending.remove(&key).is_none() {
                return Err(err(ln, format!("value %{key} defined twice")));
            }
            if self.f.value_ty(v) != ty {
                return Err(err(
                    ln,
                    format!(
                        "type mismatch for %{key}: forward use assumed {}, defined as {}",
                        self.f.value_ty(v),
                        ty
                    ),
                ));
            }
            Ok(v)
        } else {
            let base = strip_index_suffix(&key);
            let name = if base.starts_with('v') && base[1..].chars().all(|c| c.is_ascii_digit()) {
                None
            } else {
                Some(base)
            };
            let v = self.f.make_value(ty, PENDING_DEF, name);
            self.names.insert(key, v);
            Ok(v)
        }
    }

    fn block_id(&mut self, ln: usize, name: &str) -> Result<BlockId> {
        self.blocks
            .get(name)
            .copied()
            .ok_or_else(|| err(ln, format!("unknown block `{name}`")))
    }

    /// Resolves a call target's signature.
    fn callee_sig(&self, ln: usize, name: &str) -> Result<(Callee, Vec<Ty>, Ty)> {
        if let Some(i) = Intrinsic::from_name(name) {
            let params: Vec<Ty> = match i {
                Intrinsic::SymInput => vec![Ty::Ptr, Ty::I64],
                Intrinsic::Assume | Intrinsic::Assert => vec![Ty::I1],
                Intrinsic::PutChar => vec![Ty::I32],
                Intrinsic::Malloc => vec![Ty::I64],
                Intrinsic::Abort => vec![],
            };
            return Ok((Callee::Intrinsic(i), params, i.ret_ty()));
        }
        if let Some((tys, ret)) = self.sigs.get(name) {
            return Ok((Callee::Func(name.to_string()), tys.clone(), *ret));
        }
        // Calls may also target functions already linked into the module.
        if let Some(f) = self.module.function(name) {
            return Ok((Callee::Func(name.to_string()), f.param_tys(), f.ret_ty));
        }
        Err(err(ln, format!("unknown callee @{name}")))
    }
}

/// Intrinsic parameter signature used by the verifier as well.
pub(crate) fn intrinsic_params(i: Intrinsic) -> Vec<Ty> {
    match i {
        Intrinsic::SymInput => vec![Ty::Ptr, Ty::I64],
        Intrinsic::Assume | Intrinsic::Assert => vec![Ty::I1],
        Intrinsic::PutChar => vec![Ty::I32],
        Intrinsic::Malloc => vec![Ty::I64],
        Intrinsic::Abort => vec![],
    }
}

fn parse_int(ln: usize, tok: &str) -> Result<u64> {
    let (neg, body) = match tok.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, tok),
    };
    let v = if let Some(hex) = body.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        body.parse::<u64>()
    }
    .map_err(|_| err(ln, format!("bad integer `{tok}`")))?;
    Ok(if neg {
        (v as i64).wrapping_neg() as u64
    } else {
        v
    })
}

fn parse_function(
    lines: &[(usize, Vec<String>)],
    sigs: &HashMap<String, (Vec<Ty>, Ty)>,
    module: &Module,
) -> Result<Function> {
    let (hdr_ln, hdr) = &lines[0];
    let (name, params, ret) = parse_signature(*hdr_ln, hdr)?;
    let tys: Vec<Ty> = params.iter().map(|(_, t)| *t).collect();
    let mut f = Function::new(name, &tys, ret);
    f.blocks.clear();

    let mut p = FuncParser {
        f,
        names: HashMap::new(),
        pending: HashMap::new(),
        blocks: HashMap::new(),
        sigs,
        module,
    };
    // Register parameter names.
    for (i, (pname, _)) in params.iter().enumerate() {
        let v = p.f.params[i];
        if let Some(n) = pname {
            p.f.values[v.index()].name = Some(n.clone());
            p.names.insert(format!("{n}.v{}", v.0), v);
            p.names.insert(n.clone(), v);
        } else {
            p.names.insert(format!("v{}", v.0), v);
        }
    }

    let body = &lines[1..lines.len() - 1];
    // Collect block labels first so branches can resolve forward.
    for (ln, toks) in body {
        if toks.len() == 2 && toks[1] == ":" {
            let label = toks[0].clone();
            if p.blocks.contains_key(&label) {
                return Err(err(*ln, format!("duplicate block label `{label}`")));
            }
            let id = p.f.add_block(&label);
            p.blocks.insert(label, id);
        }
    }
    if p.f.blocks.is_empty() {
        return Err(err(*hdr_ln, "function has no blocks"));
    }

    let mut cur: Option<BlockId> = None;
    for (ln, toks) in body {
        if toks.len() == 2 && toks[1] == ":" {
            cur = Some(p.blocks[&toks[0]]);
            continue;
        }
        let b = cur.ok_or_else(|| err(*ln, "instruction before first block label"))?;
        parse_body_line(&mut p, *ln, b, toks)?;
    }

    if let Some((name, ln)) = p.pending.iter().next() {
        return Err(err(*ln, format!("use of undefined value %{name}")));
    }
    Ok(p.f)
}

/// Parses one instruction or terminator line into block `b`.
fn parse_body_line(p: &mut FuncParser, ln: usize, b: BlockId, toks: &[String]) -> Result<()> {
    // `%res = <op> ...` or `<op> ...`
    let (result_tok, rest) = if toks.len() >= 2 && toks[1] == "=" {
        (Some(toks[0].as_str()), &toks[2..])
    } else {
        (None, toks)
    };
    let mut c = TokCursor::new(ln, rest);
    let op = c.next()?.to_string();

    // Terminators first.
    match op.as_str() {
        "br" => {
            let t = c.next()?.to_string();
            let target = p.block_id(ln, &t)?;
            p.f.set_term(b, Terminator::Br { target });
            return Ok(());
        }
        "condbr" => {
            let cond_tok = c.next()?.to_string();
            let cond = p.operand(ln, &cond_tok, Ty::I1)?;
            c.expect(",")?;
            let t1 = c.next()?.to_string();
            c.expect(",")?;
            let t2 = c.next()?.to_string();
            let on_true = p.block_id(ln, &t1)?;
            let on_false = p.block_id(ln, &t2)?;
            p.f.set_term(
                b,
                Terminator::CondBr {
                    cond,
                    on_true,
                    on_false,
                },
            );
            return Ok(());
        }
        "ret" => {
            let value = if c.peek().is_some() {
                let ty = c.ty()?;
                let v = c.next()?.to_string();
                Some(p.operand(ln, &v, ty)?)
            } else {
                None
            };
            p.f.set_term(b, Terminator::Ret { value });
            return Ok(());
        }
        "abort" => {
            let k = c.next()?.to_string();
            let kind =
                AbortKind::from_name(&k).ok_or_else(|| err(ln, format!("bad abort kind `{k}`")))?;
            p.f.set_term(b, Terminator::Abort { kind });
            return Ok(());
        }
        "unreachable" => {
            p.f.set_term(b, Terminator::Unreachable);
            return Ok(());
        }
        _ => {}
    }

    // Instructions.
    let (kind, result_ty): (InstKind, Option<Ty>) = if let Some(binop) = BinOp::from_name(&op) {
        let ty = c.ty()?;
        let l = c.next()?.to_string();
        c.expect(",")?;
        let r = c.next()?.to_string();
        let lhs = p.operand(ln, &l, ty)?;
        let rhs = p.operand(ln, &r, ty)?;
        (
            InstKind::Bin {
                op: binop,
                ty,
                lhs,
                rhs,
            },
            Some(ty),
        )
    } else if op == "icmp" {
        let pred_tok = c.next()?.to_string();
        let pred = CmpPred::from_name(&pred_tok)
            .ok_or_else(|| err(ln, format!("bad predicate `{pred_tok}`")))?;
        let ty = c.ty()?;
        let l = c.next()?.to_string();
        c.expect(",")?;
        let r = c.next()?.to_string();
        let lhs = p.operand(ln, &l, ty)?;
        let rhs = p.operand(ln, &r, ty)?;
        (InstKind::Cmp { pred, ty, lhs, rhs }, Some(Ty::I1))
    } else if op == "select" {
        let ty = c.ty()?;
        let ct = c.next()?.to_string();
        c.expect(",")?;
        let at = c.next()?.to_string();
        c.expect(",")?;
        let bt = c.next()?.to_string();
        let cond = p.operand(ln, &ct, Ty::I1)?;
        let on_true = p.operand(ln, &at, ty)?;
        let on_false = p.operand(ln, &bt, ty)?;
        (
            InstKind::Select {
                ty,
                cond,
                on_true,
                on_false,
            },
            Some(ty),
        )
    } else if let Some(cast) = CastOp::from_name(&op) {
        let from = c.ty()?;
        let v = c.next()?.to_string();
        c.expect("to")?;
        let to = c.ty()?;
        let value = p.operand(ln, &v, from)?;
        (
            InstKind::Cast {
                op: cast,
                to,
                value,
            },
            Some(to),
        )
    } else if op == "alloca" {
        let size = c
            .next()?
            .parse::<u64>()
            .map_err(|_| err(ln, "bad alloca size"))?;
        (InstKind::Alloca { size }, Some(Ty::Ptr))
    } else if op == "load" {
        let ty = c.ty()?;
        c.expect(",")?;
        let a = c.next()?.to_string();
        let addr = p.operand(ln, &a, Ty::Ptr)?;
        (InstKind::Load { ty, addr }, Some(ty))
    } else if op == "store" {
        let ty = c.ty()?;
        let v = c.next()?.to_string();
        c.expect(",")?;
        let a = c.next()?.to_string();
        let value = p.operand(ln, &v, ty)?;
        let addr = p.operand(ln, &a, Ty::Ptr)?;
        (InstKind::Store { ty, value, addr }, None)
    } else if op == "ptradd" {
        let bt = c.next()?.to_string();
        c.expect(",")?;
        let ot = c.next()?.to_string();
        let base = p.operand(ln, &bt, Ty::Ptr)?;
        let offset = p.operand(ln, &ot, Ty::I64)?;
        (InstKind::PtrAdd { base, offset }, Some(Ty::Ptr))
    } else if op == "globaladdr" {
        let idx = c
            .next()?
            .parse::<u32>()
            .map_err(|_| err(ln, "bad global index"))?;
        (
            InstKind::GlobalAddr {
                global: GlobalId(idx),
            },
            Some(Ty::Ptr),
        )
    } else if op == "call" {
        let callee_tok = c.at_name()?;
        let (callee, param_tys, ret) = p.callee_sig(ln, &callee_tok)?;
        c.expect("(")?;
        let mut args = Vec::new();
        if c.peek() != Some(")") {
            loop {
                let at = c.next()?.to_string();
                let ty = *param_tys
                    .get(args.len())
                    .ok_or_else(|| err(ln, "too many call arguments"))?;
                args.push(p.operand(ln, &at, ty)?);
                if c.peek() == Some(",") {
                    c.next()?;
                } else {
                    break;
                }
            }
        }
        c.expect(")")?;
        if args.len() != param_tys.len() {
            return Err(err(ln, "wrong number of call arguments"));
        }
        let result_ty = if ret == Ty::Void { None } else { Some(ret) };
        (InstKind::Call { callee, args }, result_ty)
    } else if op == "phi" {
        let ty = c.ty()?;
        let mut incomings = Vec::new();
        loop {
            c.expect("[")?;
            let bt = c.next()?.to_string();
            c.expect(":")?;
            let vt = c.next()?.to_string();
            c.expect("]")?;
            let block = p.block_id(ln, &bt)?;
            let val = p.operand(ln, &vt, ty)?;
            incomings.push((block, val));
            if c.peek() == Some(",") {
                c.next()?;
            } else {
                break;
            }
        }
        (InstKind::Phi { ty, incomings }, Some(ty))
    } else if op == "nop" {
        (InstKind::Nop, None)
    } else {
        return Err(err(ln, format!("unknown instruction `{op}`")));
    };

    // Materialize the instruction, binding the declared result value.
    match (result_tok, result_ty) {
        (Some(rt), Some(ty)) => {
            let v = p.bind_result(ln, rt, ty)?;
            let id = crate::value::InstId(p.f.insts.len() as u32);
            p.f.values[v.index()].def = ValueDef::Inst(id);
            p.f.insts.push(crate::inst::Inst {
                kind,
                result: Some(v),
            });
            p.f.blocks[b.index()].insts.push(id);
        }
        (None, None) => {
            p.f.append_inst(b, kind, None);
        }
        (Some(_), None) => return Err(err(ln, "instruction produces no result")),
        (None, Some(_)) => {
            // A value-producing instruction whose result is discarded.
            p.f.append_inst(b, kind, None);
        }
    }
    Ok(())
}

/// Cursor over one line's tokens.
struct TokCursor<'a> {
    line: usize,
    toks: &'a [String],
    pos: usize,
}

impl<'a> TokCursor<'a> {
    fn new(line: usize, toks: &'a [String]) -> TokCursor<'a> {
        TokCursor { line, toks, pos: 0 }
    }

    fn next(&mut self) -> Result<&'a str> {
        let t = self
            .toks
            .get(self.pos)
            .ok_or_else(|| err(self.line, "unexpected end of line"))?;
        self.pos += 1;
        Ok(t)
    }

    fn peek(&self) -> Option<&str> {
        self.toks.get(self.pos).map(|s| s.as_str())
    }

    fn expect(&mut self, tok: &str) -> Result<()> {
        let t = self.next()?;
        if t == tok {
            Ok(())
        } else {
            Err(err(self.line, format!("expected `{tok}`, found `{t}`")))
        }
    }

    fn ty(&mut self) -> Result<Ty> {
        let t = self.next()?;
        Ty::from_name(t).ok_or_else(|| err(self.line, format!("bad type `{t}`")))
    }

    /// Parses `@name`, returning the bare name.
    fn at_name(&mut self) -> Result<String> {
        let t = self.next()?;
        t.strip_prefix('@')
            .map(|s| s.to_string())
            .ok_or_else(|| err(self.line, format!("expected @name, found `{t}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::print::print_module;

    const WC_LIKE: &str = r#"
    ; A loop with a phi and a forward reference.
    func @count(%s.v0: ptr, %n.v1: i32) -> i32 {
    entry:
      br header
    header:
      %i.v2 = phi i32 [entry: 0], [body: %inext.v4]
      %c.v3 = icmp slt i32 %i.v2, %n.v1
      condbr %c.v3, body, done
    body:
      %inext.v4 = add i32 %i.v2, 1
      br header
    done:
      ret i32 %i.v2
    }
    "#;

    #[test]
    fn parses_loop_with_forward_reference() {
        let m = parse_module(WC_LIKE).unwrap();
        let f = m.function("count").unwrap();
        assert_eq!(f.blocks.len(), 4);
        assert_eq!(f.params.len(), 2);
        crate::verify::verify_function(&m, f).unwrap();
    }

    #[test]
    fn print_parse_fixpoint() {
        let m1 = parse_module(WC_LIKE).unwrap();
        let p1 = print_module(&m1);
        let m2 = parse_module(&p1).unwrap();
        let p2 = print_module(&m2);
        let m3 = parse_module(&p2).unwrap();
        let p3 = print_module(&m3);
        assert_eq!(p2, p3);
    }

    #[test]
    fn parses_globals_and_calls() {
        let src = r#"
        global @tab 4 const x"01020304"
        func @f() -> i32 {
        entry:
          %p.v0 = globaladdr 0
          %v1 = load i8, %p.v0
          %v2 = zext i8 %v1 to i32
          %v3 = call @putchar(%v2)
          ret i32 %v3
        }
        "#;
        let m = parse_module(src).unwrap();
        assert_eq!(m.globals.len(), 1);
        assert_eq!(m.globals[0].init, vec![1, 2, 3, 4]);
        crate::verify::verify_module(&m).unwrap();
    }

    #[test]
    fn rejects_undefined_value() {
        let src = r#"
        func @f() -> i32 {
        entry:
          ret i32 %nope
        }
        "#;
        // A use in `ret` of a never-defined value must be rejected.
        let e = parse_module(src).unwrap_err();
        assert!(e.msg.contains("undefined"), "{e}");
    }

    #[test]
    fn rejects_unknown_callee() {
        let src = r#"
        func @f() -> i32 {
        entry:
          %v0 = call @missing()
          ret i32 %v0
        }
        "#;
        assert!(parse_module(src).is_err());
    }

    #[test]
    fn parses_negative_and_hex_constants() {
        let src = r#"
        func @f() -> i32 {
        entry:
          %a.v0 = add i32 -1, 0x10
          ret i32 %a.v0
        }
        "#;
        let m = parse_module(src).unwrap();
        let f = m.function("f").unwrap();
        let inst = &f.insts[0];
        match &inst.kind {
            InstKind::Bin { lhs, rhs, .. } => {
                assert_eq!(lhs.as_const().unwrap().bits, 0xffff_ffff);
                assert_eq!(rhs.as_const().unwrap().bits, 0x10);
            }
            _ => panic!(),
        }
    }
}
