//! Functions and basic blocks.

use crate::inst::{Inst, InstKind, Terminator};
use crate::meta::Annotations;
use crate::types::Ty;
use crate::value::{BlockId, InstId, Operand, ValueData, ValueDef, ValueId, ENTRY_BLOCK};
use std::collections::HashMap;

/// A basic block: a straight-line instruction sequence plus one terminator.
#[derive(Clone, Debug)]
pub struct Block {
    /// Unique (within the function) human-readable label.
    pub name: String,
    /// Instructions in execution order (indices into `Function::insts`).
    pub insts: Vec<InstId>,
    pub term: Terminator,
}

/// A function: parameters, return type and a CFG of basic blocks.
///
/// Instruction and value payloads live in function-level tables
/// (`insts`, `values`) referenced by the small typed ids from
/// [`crate::value`]; blocks store instruction ids in order. Deleting an
/// instruction tombstones it as [`InstKind::Nop`] and removes the id from its
/// block.
#[derive(Clone, Debug)]
pub struct Function {
    pub name: String,
    /// Parameter values, in declaration order.
    pub params: Vec<ValueId>,
    pub ret_ty: Ty,
    /// Blocks; `blocks[0]` is the entry block of a defined function.
    pub blocks: Vec<Block>,
    /// Instruction table (may contain `Nop` tombstones).
    pub insts: Vec<Inst>,
    /// Value table.
    pub values: Vec<ValueData>,
    /// Verification-oriented metadata (the paper's "program annotations").
    pub annotations: Annotations,
    /// True for external declarations without a body.
    pub is_declaration: bool,
}

impl Default for Function {
    /// An empty placeholder function (useful with `std::mem::take` when a
    /// pass needs to borrow a function and the module simultaneously).
    fn default() -> Function {
        Function::new("<default>", &[], Ty::Void)
    }
}

impl Function {
    /// Creates an empty function with the given signature and an entry block.
    pub fn new(name: impl Into<String>, param_tys: &[Ty], ret_ty: Ty) -> Function {
        let mut f = Function {
            name: name.into(),
            params: Vec::new(),
            ret_ty,
            blocks: Vec::new(),
            insts: Vec::new(),
            values: Vec::new(),
            annotations: Annotations::default(),
            is_declaration: false,
        };
        for (i, &ty) in param_tys.iter().enumerate() {
            let v = f.make_value(ty, ValueDef::Param(i as u32), None);
            f.params.push(v);
        }
        f.add_block("entry");
        f
    }

    /// Creates an external declaration (no body).
    pub fn declare(name: impl Into<String>, param_tys: &[Ty], ret_ty: Ty) -> Function {
        let mut f = Function::new(name, param_tys, ret_ty);
        f.blocks.clear();
        f.is_declaration = true;
        f
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        ENTRY_BLOCK
    }

    /// Parameter types, in order.
    pub fn param_tys(&self) -> Vec<Ty> {
        self.params.iter().map(|&v| self.value_ty(v)).collect()
    }

    /// Adds a new block with a unique label derived from `name` and an
    /// `unreachable` placeholder terminator.
    pub fn add_block(&mut self, name: &str) -> BlockId {
        let mut label = name.to_string();
        if self.blocks.iter().any(|b| b.name == label) {
            let mut n = 1usize;
            loop {
                label = format!("{name}.{n}");
                if !self.blocks.iter().any(|b| b.name == label) {
                    break;
                }
                n += 1;
            }
        }
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block {
            name: label,
            insts: Vec::new(),
            term: Terminator::Unreachable,
        });
        id
    }

    /// Registers a new value.
    pub fn make_value(&mut self, ty: Ty, def: ValueDef, name: Option<String>) -> ValueId {
        let id = ValueId(self.values.len() as u32);
        self.values.push(ValueData { ty, def, name });
        id
    }

    /// Appends an instruction to `block`. If `kind` produces a result for
    /// this call site (`result_ty` is `Some`), a fresh value is created and
    /// returned.
    pub fn append_inst(
        &mut self,
        block: BlockId,
        kind: InstKind,
        result_ty: Option<Ty>,
    ) -> Option<ValueId> {
        let (id, val) = self.create_inst(kind, result_ty);
        self.blocks[block.index()].insts.push(id);
        val
    }

    /// Inserts an instruction at position `pos` within `block`.
    pub fn insert_inst(
        &mut self,
        block: BlockId,
        pos: usize,
        kind: InstKind,
        result_ty: Option<Ty>,
    ) -> Option<ValueId> {
        let (id, val) = self.create_inst(kind, result_ty);
        self.blocks[block.index()].insts.insert(pos, id);
        val
    }

    /// Creates an instruction entry (not yet placed in any block).
    pub fn create_inst(
        &mut self,
        kind: InstKind,
        result_ty: Option<Ty>,
    ) -> (InstId, Option<ValueId>) {
        let id = InstId(self.insts.len() as u32);
        let result = result_ty.map(|ty| self.make_value(ty, ValueDef::Inst(id), None));
        self.insts.push(Inst { kind, result });
        (id, result)
    }

    /// Accessors.
    pub fn inst(&self, id: InstId) -> &Inst {
        &self.insts[id.index()]
    }

    pub fn inst_mut(&mut self, id: InstId) -> &mut Inst {
        &mut self.insts[id.index()]
    }

    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// All block ids, in index order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Type of a value.
    pub fn value_ty(&self, v: ValueId) -> Ty {
        self.values[v.index()].ty
    }

    /// Type of an operand.
    pub fn operand_ty(&self, op: Operand) -> Ty {
        match op {
            Operand::Const(c) => c.ty,
            Operand::Value(v) => self.value_ty(v),
        }
    }

    /// Sets the terminator of `block`.
    pub fn set_term(&mut self, block: BlockId, term: Terminator) {
        self.blocks[block.index()].term = term;
    }

    /// Marks an instruction dead; it remains in the table as a tombstone
    /// until [`Function::purge_nops`] removes it from block lists.
    pub fn kill_inst(&mut self, id: InstId) {
        self.insts[id.index()].kind = InstKind::Nop;
        self.insts[id.index()].result = None;
    }

    /// Removes `Nop` tombstones from all block instruction lists.
    pub fn purge_nops(&mut self) {
        let insts = &self.insts;
        for b in &mut self.blocks {
            b.insts
                .retain(|&id| !matches!(insts[id.index()].kind, InstKind::Nop));
        }
    }

    /// Replaces every use of value `from` (in instruction operands and
    /// terminators) with operand `to`.
    pub fn replace_all_uses(&mut self, from: ValueId, to: Operand) {
        for inst in &mut self.insts {
            inst.kind.for_each_operand_mut(|op| {
                if *op == Operand::Value(from) {
                    *op = to;
                }
            });
        }
        for b in &mut self.blocks {
            if let Terminator::CondBr { cond, .. } = &mut b.term {
                if *cond == Operand::Value(from) {
                    *cond = to;
                }
            }
            if let Terminator::Ret { value: Some(v) } = &mut b.term {
                if *v == Operand::Value(from) {
                    *v = to;
                }
            }
        }
    }

    /// Counts the uses of each value across all live instructions and
    /// terminators.
    pub fn use_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.values.len()];
        let mut bump = |op: &Operand| {
            if let Operand::Value(v) = op {
                counts[v.index()] += 1;
            }
        };
        for b in &self.blocks {
            for &i in &b.insts {
                self.insts[i.index()].kind.for_each_operand(&mut bump);
            }
            match &b.term {
                Terminator::CondBr { cond, .. } => bump(cond),
                Terminator::Ret { value: Some(v) } => bump(v),
                _ => {}
            }
        }
        counts
    }

    /// Number of live (non-Nop) instructions, a proxy for code size used by
    /// the inlining and unrolling cost models.
    pub fn live_inst_count(&self) -> usize {
        self.blocks
            .iter()
            .flat_map(|b| b.insts.iter())
            .filter(|&&i| !matches!(self.insts[i.index()].kind, InstKind::Nop))
            .count()
    }

    /// Rewrites phi nodes in `block`: every incoming edge from `old_pred`
    /// is changed to come from `new_pred`.
    pub fn retarget_phis(&mut self, block: BlockId, old_pred: BlockId, new_pred: BlockId) {
        let ids: Vec<InstId> = self.blocks[block.index()].insts.clone();
        for id in ids {
            if let InstKind::Phi { incomings, .. } = &mut self.insts[id.index()].kind {
                for (pred, _) in incomings.iter_mut() {
                    if *pred == old_pred {
                        *pred = new_pred;
                    }
                }
            }
        }
    }

    /// Removes phi incomings from `pred` in `block` (used when an edge is
    /// deleted).
    pub fn remove_phi_edge(&mut self, block: BlockId, pred: BlockId) {
        let ids: Vec<InstId> = self.blocks[block.index()].insts.clone();
        for id in ids {
            if let InstKind::Phi { incomings, .. } = &mut self.insts[id.index()].kind {
                incomings.retain(|(p, _)| *p != pred);
            }
        }
    }

    /// Maps each block name to its id.
    pub fn block_name_map(&self) -> HashMap<String, BlockId> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (b.name.clone(), BlockId(i as u32)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::BinOp;
    use crate::types::Const;

    fn sample() -> Function {
        let mut f = Function::new("f", &[Ty::I32], Ty::I32);
        let e = f.entry();
        let p = f.params[0];
        let v = f
            .append_inst(
                e,
                InstKind::Bin {
                    op: BinOp::Add,
                    ty: Ty::I32,
                    lhs: Operand::Value(p),
                    rhs: Operand::imm(Ty::I32, 1),
                },
                Some(Ty::I32),
            )
            .unwrap();
        f.set_term(
            e,
            Terminator::Ret {
                value: Some(Operand::Value(v)),
            },
        );
        f
    }

    #[test]
    fn build_and_query() {
        let f = sample();
        assert_eq!(f.params.len(), 1);
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.live_inst_count(), 1);
        assert_eq!(f.value_ty(f.params[0]), Ty::I32);
    }

    #[test]
    fn unique_block_names() {
        let mut f = Function::new("f", &[], Ty::Void);
        let b1 = f.add_block("loop");
        let b2 = f.add_block("loop");
        assert_ne!(f.block(b1).name, f.block(b2).name);
    }

    #[test]
    fn kill_and_purge() {
        let mut f = sample();
        let id = f.blocks[0].insts[0];
        f.kill_inst(id);
        assert_eq!(f.live_inst_count(), 0);
        f.purge_nops();
        assert!(f.blocks[0].insts.is_empty());
    }

    #[test]
    fn replace_uses_rewrites_ret() {
        let mut f = sample();
        let v = match f.blocks[0].term {
            Terminator::Ret {
                value: Some(Operand::Value(v)),
            } => v,
            _ => panic!(),
        };
        f.replace_all_uses(v, Operand::Const(Const::new(Ty::I32, 9)));
        match f.blocks[0].term {
            Terminator::Ret {
                value: Some(Operand::Const(c)),
            } => assert_eq!(c.bits, 9),
            _ => panic!("ret not rewritten"),
        }
    }

    #[test]
    fn use_counts_count_terminators() {
        let f = sample();
        let counts = f.use_counts();
        assert_eq!(counts[f.params[0].index()], 1);
        // The add result is used once, by the ret.
        let add_result = f.insts[0].result.unwrap();
        assert_eq!(counts[add_result.index()], 1);
    }
}
