//! Control-flow graph queries: successors, predecessors, reachability and
//! reverse post-order.

use crate::function::Function;
use crate::value::BlockId;

/// Predecessor/successor tables for a function, computed once and reused by
/// the analyses in [`crate::dom`] and [`crate::loops`].
///
/// The tables are a snapshot: passes that mutate control flow must recompute.
#[derive(Clone, Debug)]
pub struct Cfg {
    pub preds: Vec<Vec<BlockId>>,
    pub succs: Vec<Vec<BlockId>>,
}

impl Cfg {
    /// Builds the CFG tables for `f`.
    pub fn compute(f: &Function) -> Cfg {
        let n = f.blocks.len();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for b in f.block_ids() {
            for s in f.block(b).term.successors() {
                succs[b.index()].push(s);
                preds[s.index()].push(b);
            }
        }
        Cfg { preds, succs }
    }

    /// Predecessors of `b`.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Successors of `b`.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Blocks reachable from the entry, as a bitmap indexed by block.
    pub fn reachable(&self) -> Vec<bool> {
        let n = self.succs.len();
        let mut seen = vec![false; n];
        if n == 0 {
            return seen;
        }
        let mut stack = vec![BlockId(0)];
        seen[0] = true;
        while let Some(b) = stack.pop() {
            for &s in self.succs(b) {
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }

    /// Reverse post-order over reachable blocks, starting at the entry.
    ///
    /// This is the canonical iteration order for forward dataflow and the
    /// dominance computation.
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let n = self.succs.len();
        let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
        let mut postorder = Vec::with_capacity(n);
        if n == 0 {
            return postorder;
        }
        // Iterative DFS with an explicit (block, next-successor) stack so
        // deep CFGs (fully unrolled loops) cannot overflow the Rust stack.
        let mut stack: Vec<(BlockId, usize)> = vec![(BlockId(0), 0)];
        state[0] = 1;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let succs = self.succs(b);
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if state[s.index()] == 0 {
                    state[s.index()] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b.index()] = 2;
                postorder.push(b);
                stack.pop();
            }
        }
        postorder.reverse();
        postorder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Terminator;
    use crate::types::{Const, Ty};
    use crate::value::Operand;

    /// Builds the diamond CFG: entry -> {l, r} -> exit.
    fn diamond() -> Function {
        let mut f = Function::new("d", &[], Ty::Void);
        let e = f.entry();
        let l = f.add_block("l");
        let r = f.add_block("r");
        let x = f.add_block("exit");
        f.set_term(
            e,
            Terminator::CondBr {
                cond: Operand::Const(Const::bool(true)),
                on_true: l,
                on_false: r,
            },
        );
        f.set_term(l, Terminator::Br { target: x });
        f.set_term(r, Terminator::Br { target: x });
        f.set_term(x, Terminator::Ret { value: None });
        f
    }

    #[test]
    fn diamond_preds_succs() {
        let f = diamond();
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.succs(BlockId(0)), &[BlockId(1), BlockId(2)]);
        assert_eq!(cfg.preds(BlockId(3)), &[BlockId(1), BlockId(2)]);
        assert!(cfg.reachable().iter().all(|&r| r));
    }

    #[test]
    fn rpo_starts_at_entry_and_respects_order() {
        let f = diamond();
        let cfg = Cfg::compute(&f);
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo.len(), 4);
        // Exit must come after both branches.
        let pos = |b: BlockId| rpo.iter().position(|&x| x == b).unwrap();
        assert!(pos(BlockId(3)) > pos(BlockId(1)));
        assert!(pos(BlockId(3)) > pos(BlockId(2)));
    }

    #[test]
    fn unreachable_blocks_are_excluded_from_rpo() {
        let mut f = diamond();
        let dead = f.add_block("dead");
        f.set_term(dead, Terminator::Ret { value: None });
        let cfg = Cfg::compute(&f);
        assert!(!cfg.reachable()[dead.index()]);
        assert_eq!(cfg.reverse_postorder().len(), 4);
    }
}
