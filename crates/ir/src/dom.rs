//! Dominator tree and dominance frontiers.
//!
//! Uses the Cooper–Harvey–Kennedy iterative algorithm ("A Simple, Fast
//! Dominance Algorithm"), which is simple, robust, and fast enough for the
//! function sizes this compiler produces (even after aggressive full
//! unrolling).

use crate::cfg::Cfg;
use crate::value::BlockId;

/// The dominator tree of a function's CFG.
#[derive(Clone, Debug)]
pub struct DomTree {
    /// Immediate dominator per block; `idom[entry] == entry`; unreachable
    /// blocks have `None`.
    idom: Vec<Option<BlockId>>,
    /// Reverse post-order, kept for clients iterating in dominance-friendly
    /// order.
    rpo: Vec<BlockId>,
}

impl DomTree {
    /// Computes the dominator tree from a CFG snapshot.
    pub fn compute(cfg: &Cfg) -> DomTree {
        let n = cfg.succs.len();
        let rpo = cfg.reverse_postorder();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        if n == 0 {
            return DomTree { idom, rpo };
        }
        idom[0] = Some(BlockId(0));
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(b) {
                    if idom[p.index()].is_none() {
                        continue; // Skip unprocessed / unreachable preds.
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        DomTree { idom, rpo }
    }

    /// The immediate dominator of `b` (`None` for the entry and for
    /// unreachable blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        match self.idom[b.index()] {
            Some(d) if d != b || b != BlockId(0) => {
                if b == BlockId(0) {
                    None
                } else {
                    Some(d)
                }
            }
            _ => None,
        }
    }

    /// True if `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.idom[b.index()].is_some()
    }

    /// True if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if !self.is_reachable(a) || !self.is_reachable(b) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == BlockId(0) {
                return false;
            }
            cur = self.idom[cur.index()].unwrap();
        }
    }

    /// Reverse post-order of reachable blocks.
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Dominance frontier of every block: `DF(b)` is the set of blocks where
    /// `b`'s dominance stops — exactly where SSA construction places phis.
    pub fn dominance_frontiers(&self, cfg: &Cfg) -> Vec<Vec<BlockId>> {
        let n = cfg.succs.len();
        let mut df: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for b in (0..n as u32).map(BlockId) {
            if !self.is_reachable(b) {
                continue;
            }
            let preds = cfg.preds(b);
            if preds.len() < 2 {
                continue;
            }
            let idom_b = self.idom[b.index()].unwrap();
            for &p in preds {
                if !self.is_reachable(p) {
                    continue;
                }
                let mut runner = p;
                while runner != idom_b {
                    if !df[runner.index()].contains(&b) {
                        df[runner.index()].push(b);
                    }
                    match self.idom[runner.index()] {
                        Some(next) if next != runner => runner = next,
                        _ => break,
                    }
                }
            }
        }
        df
    }
}

/// Walks both candidate dominators up the tree until they meet.
fn intersect(
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[a.index()] > rpo_index[b.index()] {
            a = idom[a.index()].unwrap();
        }
        while rpo_index[b.index()] > rpo_index[a.index()] {
            b = idom[b.index()].unwrap();
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::Function;
    use crate::inst::Terminator;
    use crate::types::{Const, Ty};
    use crate::value::Operand;

    /// entry -> {l, r}; l -> exit; r -> exit; plus a loop r -> r2 -> r.
    fn build() -> (Function, Cfg) {
        let mut f = Function::new("t", &[], Ty::Void);
        let e = f.entry();
        let l = f.add_block("l");
        let r = f.add_block("r");
        let r2 = f.add_block("r2");
        let x = f.add_block("exit");
        let t = Operand::Const(Const::bool(true));
        f.set_term(
            e,
            Terminator::CondBr {
                cond: t,
                on_true: l,
                on_false: r,
            },
        );
        f.set_term(l, Terminator::Br { target: x });
        f.set_term(
            r,
            Terminator::CondBr {
                cond: t,
                on_true: r2,
                on_false: x,
            },
        );
        f.set_term(r2, Terminator::Br { target: r });
        f.set_term(x, Terminator::Ret { value: None });
        let cfg = Cfg::compute(&f);
        (f, cfg)
    }

    #[test]
    fn idoms() {
        let (_, cfg) = build();
        let dom = DomTree::compute(&cfg);
        assert_eq!(dom.idom(BlockId(0)), None);
        assert_eq!(dom.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(2)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(3)), Some(BlockId(2)));
        assert_eq!(dom.idom(BlockId(4)), Some(BlockId(0)));
    }

    #[test]
    fn dominates_is_reflexive_and_transitive() {
        let (_, cfg) = build();
        let dom = DomTree::compute(&cfg);
        assert!(dom.dominates(BlockId(0), BlockId(4)));
        assert!(dom.dominates(BlockId(2), BlockId(3)));
        assert!(dom.dominates(BlockId(2), BlockId(2)));
        assert!(!dom.dominates(BlockId(1), BlockId(4)));
        assert!(!dom.dominates(BlockId(3), BlockId(2)));
    }

    #[test]
    fn frontiers_mark_merge_points() {
        let (_, cfg) = build();
        let dom = DomTree::compute(&cfg);
        let df = dom.dominance_frontiers(&cfg);
        // l's dominance stops at exit.
        assert_eq!(df[1], vec![BlockId(4)]);
        // r2's frontier is the loop header r.
        assert_eq!(df[3], vec![BlockId(2)]);
        // r's frontier includes exit and itself (loop header).
        assert!(df[2].contains(&BlockId(4)));
        assert!(df[2].contains(&BlockId(2)));
    }
}
