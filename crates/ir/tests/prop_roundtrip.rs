//! Property tests: randomly generated well-formed functions survive a
//! print → parse → print round trip (fixpoint after one normalization), and
//! parsing never panics on printed output.

use overify_ir::{
    parse_module, print::print_module, verify_module, BinOp, CastOp, CmpPred, Const, Cursor,
    Function, Module, Operand, Ty,
};
use proptest::prelude::*;

/// Recipe for one instruction; operand indices select among available
/// values of the right type at build time.
#[derive(Clone, Debug)]
enum Step {
    Bin(BinOp, u8, u8),
    Cmp(CmpPred, u8, u8),
    SelectI32(u8, u8, u8),
    ZextTo64(u8),
    TruncTo8(u8),
    Const(u32),
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
        Just(BinOp::Shl),
        Just(BinOp::LShr),
    ]
}

fn arb_pred() -> impl Strategy<Value = CmpPred> {
    prop_oneof![
        Just(CmpPred::Eq),
        Just(CmpPred::Ne),
        Just(CmpPred::Ult),
        Just(CmpPred::Sge),
    ]
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (arb_binop(), any::<u8>(), any::<u8>()).prop_map(|(o, a, b)| Step::Bin(o, a, b)),
        (arb_pred(), any::<u8>(), any::<u8>()).prop_map(|(p, a, b)| Step::Cmp(p, a, b)),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(c, a, b)| Step::SelectI32(c, a, b)),
        any::<u8>().prop_map(Step::ZextTo64),
        any::<u8>().prop_map(Step::TruncTo8),
        any::<u32>().prop_map(Step::Const),
    ]
}

/// Builds a function from the recipe: two i32 params, a diamond in the
/// middle (so phis and multiple blocks are exercised), then a ret.
fn build(steps: &[Step]) -> Module {
    let mut f = Function::new("gen", &[Ty::I32, Ty::I32], Ty::I32);
    let mut i32s: Vec<Operand> = f.params.iter().map(|&p| Operand::Value(p)).collect();
    let mut i1s: Vec<Operand> = vec![Operand::Const(Const::bool(true))];
    let mut c = Cursor::new(&mut f);

    let pick = |v: &Vec<Operand>, i: u8| v[i as usize % v.len()];
    for s in steps {
        match s {
            Step::Bin(op, a, b) => {
                let r = c.bin(*op, Ty::I32, pick(&i32s, *a), pick(&i32s, *b));
                i32s.push(r);
            }
            Step::Cmp(p, a, b) => {
                let r = c.cmp(*p, Ty::I32, pick(&i32s, *a), pick(&i32s, *b));
                i1s.push(r);
            }
            Step::SelectI32(cc, a, b) => {
                let r = c.select(Ty::I32, pick(&i1s, *cc), pick(&i32s, *a), pick(&i32s, *b));
                i32s.push(r);
            }
            Step::ZextTo64(a) => {
                // Widen then narrow so the value stays in the i32 pool.
                let w = c.cast(CastOp::Zext, Ty::I64, pick(&i32s, *a));
                let n = c.cast(CastOp::Trunc, Ty::I32, w);
                i32s.push(n);
            }
            Step::TruncTo8(a) => {
                let n = c.cast(CastOp::Trunc, Ty::I8, pick(&i32s, *a));
                let w = c.cast(CastOp::Zext, Ty::I32, n);
                i32s.push(w);
            }
            Step::Const(k) => {
                i32s.push(Operand::imm(Ty::I32, *k as u64));
            }
        }
    }

    // Diamond with a phi to exercise block/phi printing.
    let t = c.add_block("left");
    let e = c.add_block("right");
    let m = c.add_block("merge");
    let cond = *i1s.last().unwrap();
    let (va, vb) = (i32s[0], *i32s.last().unwrap());
    c.condbr(cond, t, e);
    c.at(t);
    c.br(m);
    c.at(e);
    c.br(m);
    c.at(m);
    let phi = c.phi(Ty::I32, vec![(t, va), (e, vb)]);
    c.ret(Some(Operand::Value(phi)));

    let mut module = Module::new();
    module.functions.push(f);
    module
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn print_parse_reaches_fixpoint(steps in proptest::collection::vec(arb_step(), 1..24)) {
        let m = build(&steps);
        verify_module(&m).expect("generated module is well-formed");
        let p1 = print_module(&m);
        let m2 = parse_module(&p1).expect("printer output parses");
        verify_module(&m2).expect("parsed module is well-formed");
        let p2 = print_module(&m2);
        let m3 = parse_module(&p2).expect("normalized output parses");
        let p3 = print_module(&m3);
        prop_assert_eq!(p2, p3, "print/parse must reach a fixpoint");
    }

    #[test]
    fn parsed_module_is_semantically_identical(steps in proptest::collection::vec(arb_step(), 1..16)) {
        // Structural identity after one round trip: same block count, same
        // live instruction count, same signature.
        let m = build(&steps);
        let m2 = parse_module(&print_module(&m)).unwrap();
        let (f1, f2) = (&m.functions[0], &m2.functions[0]);
        prop_assert_eq!(f1.blocks.len(), f2.blocks.len());
        prop_assert_eq!(f1.live_inst_count(), f2.live_inst_count());
        prop_assert_eq!(f1.param_tys(), f2.param_tys());
        prop_assert_eq!(f1.ret_ty, f2.ret_ty);
    }
}
