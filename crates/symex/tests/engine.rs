//! Engine-level integration tests: path counts, bug finding, test-case
//! generation and cross-engine agreement on compiled MiniC programs.

use overify_symex::{verify, BugKind, SearchStrategy, SymConfig};

fn compile(src: &str) -> overify_ir::Module {
    overify_lang::compile(src).unwrap()
}

fn cfg(bytes: usize) -> SymConfig {
    SymConfig {
        input_bytes: bytes,
        pass_len_arg: true,
        ..Default::default()
    }
}

#[test]
fn straight_line_program_has_one_path() {
    let m = compile("int umain(unsigned char *in, int n) { return in[0] + in[1]; }");
    let r = verify(&m, "umain", &cfg(2));
    assert_eq!(r.paths_completed, 1);
    assert_eq!(r.forks, 0);
    assert!(r.exhausted);
}

#[test]
fn one_symbolic_branch_two_paths() {
    let m =
        compile("int umain(unsigned char *in, int n) { if (in[0] == 'x') return 1; return 0; }");
    let r = verify(&m, "umain", &cfg(1));
    assert_eq!(r.paths_completed, 2);
    assert_eq!(r.forks, 1);
}

#[test]
fn string_scan_paths_grow_linearly() {
    // A strlen-style loop explores exactly n+1 paths (terminate at byte 0,
    // 1, ..., n).
    let src = r#"
        int umain(unsigned char *in, int n) {
            int len = 0;
            while (in[len]) len++;
            return len;
        }
    "#;
    let m = compile(src);
    for n in 1..=5 {
        let r = verify(&m, "umain", &cfg(n));
        assert_eq!(
            r.paths_completed,
            (n + 1) as u64,
            "n={n}: expected linear paths"
        );
        assert!(r.exhausted);
    }
}

#[test]
fn branch_per_byte_paths_grow_exponentially() {
    // Two outcomes per byte -> 2^n paths plus early-exit paths.
    let src = r#"
        int umain(unsigned char *in, int n) {
            int acc = 0;
            for (int i = 0; i < n; i++) {
                if (in[i] > 128) acc++;
            }
            return acc;
        }
    "#;
    let m = compile(src);
    let p2 = verify(&m, "umain", &cfg(2)).paths_completed;
    let p4 = verify(&m, "umain", &cfg(4)).paths_completed;
    assert_eq!(p2, 4);
    assert_eq!(p4, 16);
}

#[test]
fn finds_out_of_bounds_with_witness() {
    let src = r#"
        int umain(unsigned char *in, int n) {
            char buf[4];
            buf[0] = 1; buf[1] = 2; buf[2] = 3; buf[3] = 4;
            return buf[in[0]];
        }
    "#;
    let m = compile(src);
    let r = verify(&m, "umain", &cfg(1));
    assert_eq!(r.bugs.len(), 1);
    let bug = &r.bugs[0];
    assert_eq!(bug.kind, BugKind::OutOfBounds);
    // The witness index must actually be out of bounds.
    assert!(bug.input[0] >= 4, "witness {:?}", bug.input);
    // In-bounds paths still complete.
    assert!(r.paths_completed >= 1);
}

#[test]
fn finds_division_by_zero_behind_guard() {
    let src = r#"
        int umain(unsigned char *in, int n) {
            int d = in[0] - 'a';
            return 100 / d;
        }
    "#;
    let m = compile(src);
    let r = verify(&m, "umain", &cfg(1));
    assert_eq!(r.bugs.len(), 1);
    assert_eq!(r.bugs[0].kind, BugKind::DivByZero);
    assert_eq!(r.bugs[0].input[0], b'a');
}

#[test]
fn assume_prunes_assert_checks() {
    let src = r#"
        int umain(unsigned char *in, int n) {
            __assume(in[0] >= 'a');
            __assume(in[0] <= 'z');
            __assert(in[0] != 'q');
            return in[0];
        }
    "#;
    let m = compile(src);
    let r = verify(&m, "umain", &cfg(1));
    assert_eq!(r.bugs.len(), 1);
    assert_eq!(r.bugs[0].kind, BugKind::AssertFail);
    assert_eq!(r.bugs[0].input[0], b'q');
}

#[test]
fn assume_false_kills_path_silently() {
    let src = r#"
        int umain(unsigned char *in, int n) {
            __assume(in[0] == 1);
            __assume(in[0] == 2);
            return 7;
        }
    "#;
    let m = compile(src);
    let r = verify(&m, "umain", &cfg(1));
    assert_eq!(r.paths_completed, 0);
    assert!(r.paths_killed >= 1);
    assert!(r.bugs.is_empty());
}

#[test]
fn generated_tests_replay_in_the_concrete_interpreter() {
    // Cross-engine agreement: every generated test case, replayed
    // concretely, must complete and follow a real path.
    let src = r#"
        int umain(unsigned char *in, int n) {
            int score = 0;
            if (in[0] == 'h') score += 1;
            if (in[1] > 'm') score += 2;
            if (in[0] + in[1] == 200) score += 4;
            putchar('0' + score);
            return score;
        }
    "#;
    let m = compile(src);
    let mut c = cfg(2);
    c.collect_tests = true;
    let r = verify(&m, "umain", &c);
    assert!(r.paths_completed >= 6, "paths: {}", r.paths_completed);
    assert_eq!(r.tests.len() as u64, r.paths_completed);
    let icfg = overify_interp::ExecConfig::default();
    let mut seen = std::collections::HashSet::new();
    for t in &r.tests {
        let mut buf = t.input.clone();
        buf.push(0);
        let res = overify_interp::run_with_buffer(&m, "umain", &buf, &[2], &icfg);
        assert_eq!(res.outcome, overify_interp::Outcome::Ok);
        // The symbolic output must match the concrete replay.
        let symbolic: Vec<u8> = t.output.iter().map(|b| b.unwrap()).collect();
        assert_eq!(res.output, symbolic, "input {:?}", t.input);
        seen.insert(res.ret);
    }
    // The tests cover multiple distinct behaviours.
    assert!(seen.len() >= 3);
}

#[test]
fn search_strategies_agree_on_totals() {
    let src = r#"
        int umain(unsigned char *in, int n) {
            int x = 0;
            if (in[0] > 100) x += 1;
            if (in[1] > 100) x += 2;
            if (in[0] == in[1]) x += 4;
            return x;
        }
    "#;
    let m = compile(src);
    let mut counts = Vec::new();
    for s in [
        SearchStrategy::Dfs,
        SearchStrategy::Bfs,
        SearchStrategy::RandomState(42),
    ] {
        let mut c = cfg(2);
        c.search = s;
        let r = verify(&m, "umain", &c);
        assert!(r.exhausted);
        counts.push(r.paths_completed);
    }
    assert_eq!(counts[0], counts[1]);
    assert_eq!(counts[0], counts[2]);
}

#[test]
fn instruction_budget_stops_exploration() {
    let src = r#"
        int umain(unsigned char *in, int n) {
            unsigned int i = 0;
            unsigned int s = 0;
            while (i < 100000) { s += i; i++; }
            return (int)s;
        }
    "#;
    let m = compile(src);
    let mut c = cfg(1);
    c.max_instructions = 5_000;
    let r = verify(&m, "umain", &c);
    assert!(r.timed_out);
    assert!(!r.exhausted);
}

#[test]
fn symbolic_write_then_read_roundtrips() {
    // A store at a symbolic offset followed by a read at the same offset
    // must see the stored value on every path.
    let src = r#"
        int umain(unsigned char *in, int n) {
            char buf[4];
            buf[0] = 0; buf[1] = 0; buf[2] = 0; buf[3] = 0;
            int i = in[0] & 3;
            buf[i] = 'Z';
            __assert(buf[i] == 'Z');
            return 0;
        }
    "#;
    let m = compile(src);
    let r = verify(&m, "umain", &cfg(1));
    assert!(r.bugs.is_empty(), "{:?}", r.bugs);
    assert!(r.exhausted);
}

#[test]
fn null_pointer_is_a_bug() {
    let src = r#"
        int umain(unsigned char *in, int n) {
            char *p = 0;
            if (in[0] == 'N') return *p;
            return 0;
        }
    "#;
    let m = compile(src);
    let r = verify(&m, "umain", &cfg(1));
    assert_eq!(r.bugs.len(), 1);
    assert_eq!(r.bugs[0].kind, BugKind::OutOfBounds);
    assert_eq!(r.bugs[0].input[0], b'N');
}

#[test]
fn optimization_preserves_path_behaviour_but_reduces_paths() {
    // The headline effect on a miniature wc: -OVERIFY explores fewer paths
    // than -O0 while finding the same (zero) bugs.
    let src = r#"
        int classify(int c) {
            if (c == ' ' || c == '\t') return 0;
            if (c >= 'a' && c <= 'z') return 1;
            return 2;
        }
        int umain(unsigned char *in, int n) {
            int counts = 0;
            for (int i = 0; in[i]; i++) {
                counts += classify(in[i]);
            }
            return counts;
        }
    "#;
    let m0 = compile(src);
    let mut mv = m0.clone();
    let mut pipe = overify_opt::PipelineOptions::level(overify_opt::OptLevel::Overify);
    pipe.verify_each_pass = false;
    overify_opt::optimize(&mut mv, &pipe);
    overify_ir::verify_module(&mv).unwrap();

    let c = cfg(3);
    let r0 = verify(&m0, "umain", &c);
    let rv = verify(&mv, "umain", &c);
    assert!(r0.exhausted && rv.exhausted);
    assert!(r0.bugs.is_empty() && rv.bugs.is_empty());
    assert!(
        rv.paths_completed < r0.paths_completed,
        "-OVERIFY {} paths vs -O0 {} paths",
        rv.paths_completed,
        r0.paths_completed
    );
    assert!(
        rv.instructions < r0.instructions,
        "-OVERIFY {} insts vs -O0 {}",
        rv.instructions,
        r0.instructions
    );
}
