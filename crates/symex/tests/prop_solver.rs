//! Property tests for the expression builder and the layered solver.
//!
//! The key invariants:
//!
//! 1. Builder simplifications preserve evaluation: the canonicalized
//!    expression evaluates to the same value as a reference evaluation of
//!    the unsimplified term, under every assignment.
//! 2. The solver is sound and complete on small domains: its SAT/UNSAT
//!    verdict agrees with brute force over all assignments of two 8-bit
//!    symbols, and returned models actually satisfy the query.
//! 3. Interval analysis is a sound over-approximation of evaluation.

use overify_ir::{BinOp, CmpPred};
use overify_symex::expr::{div_zero_default, width_ty};
use overify_symex::interval::IntervalCache;
use overify_symex::solver::SolverOptions;
use overify_symex::{ExprPool, ExprRef, SatResult, SharedQueryCache, Solver};
use proptest::prelude::*;
use std::sync::Arc;

/// A tiny expression AST we can evaluate independently of the pool.
#[derive(Clone, Debug)]
enum T {
    X,
    Y,
    K(u8),
    Bin(BinOp, Box<T>, Box<T>),
    Cmp(CmpPred, Box<T>, Box<T>),
    Ite(Box<T>, Box<T>, Box<T>),
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
        Just(BinOp::Shl),
        Just(BinOp::LShr),
        Just(BinOp::AShr),
        Just(BinOp::UDiv),
        Just(BinOp::URem),
        Just(BinOp::SDiv),
        Just(BinOp::SRem),
    ]
}

fn arb_pred() -> impl Strategy<Value = CmpPred> {
    prop_oneof![
        Just(CmpPred::Eq),
        Just(CmpPred::Ne),
        Just(CmpPred::Ult),
        Just(CmpPred::Ule),
        Just(CmpPred::Ugt),
        Just(CmpPred::Uge),
        Just(CmpPred::Slt),
        Just(CmpPred::Sle),
        Just(CmpPred::Sgt),
        Just(CmpPred::Sge),
    ]
}

fn arb_term() -> impl Strategy<Value = T> {
    let leaf = prop_oneof![Just(T::X), Just(T::Y), any::<u8>().prop_map(T::K)];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (arb_binop(), inner.clone(), inner.clone()).prop_map(|(op, a, b)| T::Bin(
                op,
                Box::new(a),
                Box::new(b)
            )),
            (arb_pred(), inner.clone(), inner.clone()).prop_map(|(p, a, b)| {
                // Comparisons produce 1-bit values; widen back to 8 via an
                // ITE so the tree stays uniformly 8-bit.
                T::Ite(
                    Box::new(T::Cmp(p, Box::new(a), Box::new(b))),
                    Box::new(T::K(1)),
                    Box::new(T::K(0)),
                )
            }),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, a, b)| T::Ite(
                Box::new(c),
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
}

/// Reference evaluation (8-bit domain, total division semantics).
fn eval_ref(t: &T, x: u8, y: u8) -> u8 {
    match t {
        T::X => x,
        T::Y => y,
        T::K(k) => *k,
        T::Bin(op, a, b) => {
            let (av, bv) = (eval_ref(a, x, y) as u64, eval_ref(b, x, y) as u64);
            let v = overify_ir::fold::eval_bin(*op, width_ty(8), av, bv)
                .unwrap_or_else(|| div_zero_default(*op, av));
            (v & 0xff) as u8
        }
        T::Cmp(p, a, b) => {
            let (av, bv) = (eval_ref(a, x, y) as u64, eval_ref(b, x, y) as u64);
            overify_ir::fold::eval_cmp(*p, width_ty(8), av, bv) as u8
        }
        T::Ite(c, a, b) => {
            if eval_ref(c, x, y) != 0 {
                eval_ref(a, x, y)
            } else {
                eval_ref(b, x, y)
            }
        }
    }
}

/// Builds the pool expression for a term (8-bit).
fn build(pool: &mut ExprPool, t: &T, x: ExprRef, y: ExprRef) -> ExprRef {
    match t {
        T::X => x,
        T::Y => y,
        T::K(k) => pool.constant(8, *k as u64),
        T::Bin(op, a, b) => {
            let av = build(pool, a, x, y);
            let bv = build(pool, b, x, y);
            pool.bin(*op, av, bv)
        }
        T::Cmp(p, a, b) => {
            let av = build(pool, a, x, y);
            let bv = build(pool, b, x, y);
            let c = pool.cmp(*p, av, bv);
            pool.zext(c, 8)
        }
        T::Ite(c, a, b) => {
            let cv = build(pool, c, x, y);
            let zero = pool.constant(8, 0);
            let cb = pool.cmp(CmpPred::Ne, cv, zero);
            let av = build(pool, a, x, y);
            let bv = build(pool, b, x, y);
            pool.ite(cb, av, bv)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariant 1: builder simplifications preserve semantics.
    #[test]
    fn builder_preserves_evaluation(t in arb_term(), samples in proptest::collection::vec((any::<u8>(), any::<u8>()), 8)) {
        let mut pool = ExprPool::new();
        let x = pool.fresh_sym(8);
        let y = pool.fresh_sym(8);
        let e = build(&mut pool, &t, x, y);
        for (xv, yv) in samples {
            let expect = eval_ref(&t, xv, yv) as u64;
            let got = pool.eval(e, &|id| if id == 0 { xv as u64 } else { yv as u64 });
            prop_assert_eq!(got, expect, "t={:?} x={} y={}", t, xv, yv);
        }
    }

    /// Invariant 3: intervals contain the value under every sampled
    /// assignment.
    #[test]
    fn intervals_are_sound(t in arb_term(), samples in proptest::collection::vec((any::<u8>(), any::<u8>()), 8)) {
        let mut pool = ExprPool::new();
        let x = pool.fresh_sym(8);
        let y = pool.fresh_sym(8);
        let e = build(&mut pool, &t, x, y);
        let mut cache = IntervalCache::new();
        let iv = cache.get(&pool, e);
        for (xv, yv) in samples {
            let v = pool.eval(e, &|id| if id == 0 { xv as u64 } else { yv as u64 });
            prop_assert!(iv.lo <= v && v <= iv.hi,
                "value {v} outside [{}, {}] for t={:?}", iv.lo, iv.hi, t);
        }
    }
}

proptest! {
    // SAT solving is costlier; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Invariant 2: solver verdicts agree with brute force over one
    /// symbolic byte (x); y is fixed concrete to keep brute force cheap.
    #[test]
    fn solver_agrees_with_brute_force(t in arb_term(), yv in any::<u8>(), target in any::<u8>()) {
        let mut pool = ExprPool::new();
        let x = pool.fresh_sym(8);
        let yc = pool.constant(8, yv as u64);
        // Build with y as a constant so only x is free.
        let e = build(&mut pool, &t, x, yc);
        let k = pool.constant(8, target as u64);
        let c = pool.cmp(CmpPred::Eq, e, k);

        let brute_sat = (0u16..=255).any(|xv| eval_ref(&t, xv as u8, yv) == target);

        let mut solver = Solver::default();
        match solver.check(&pool, &[c]) {
            SatResult::Sat(m) => {
                prop_assert!(brute_sat, "solver said SAT, brute force disagrees: t={:?}", t);
                // The model must be a real witness.
                let xv = m.get(0) as u8;
                prop_assert_eq!(eval_ref(&t, xv, yv), target, "bogus model x={}", xv);
            }
            SatResult::Unsat => {
                prop_assert!(!brute_sat, "solver said UNSAT but witness exists: t={:?}", t);
            }
        }
    }

    /// Shared-cache soundness: a sequence of random queries answered with
    /// every cache layer enabled — including a cross-worker shared cache,
    /// consulted twice per query so hits actually serve — must agree with
    /// a cache-free solver on every SAT/UNSAT verdict, and every model
    /// returned from a cache must satisfy its query.
    #[test]
    fn caches_and_shared_cache_preserve_verdicts(
        terms in proptest::collection::vec((arb_term(), any::<u8>(), any::<u8>()), 1..6)
    ) {
        let shared = Arc::new(SharedQueryCache::new());
        let mut pool = ExprPool::new();
        let x = pool.fresh_sym(8);
        let y = pool.fresh_sym(8);

        // `cached` has all layers; `cold` re-attaches the same shared map
        // (fresh local caches) so cross-solver hits are exercised; `plain`
        // has nothing.
        let mut cached = Solver::default();
        cached.attach_shared(shared.clone());
        let mut cold = Solver::default();
        cold.attach_shared(shared);
        let mut plain = Solver::new(SolverOptions {
            use_intervals: false,
            use_cex_cache: false,
            use_query_cache: false,
            use_shared_cache: false,
            use_enumeration: false,
        });

        // Accumulate constraints so later queries are multi-constraint and
        // multi-symbol (`y` stays symbolic, pinned by an extra equality,
        // so queries reach the SAT/shared layers instead of the
        // single-symbol enumeration fast path).
        let mut cs: Vec<ExprRef> = Vec::new();
        for (i, (t, yv, target)) in terms.into_iter().enumerate() {
            let e = build(&mut pool, &t, x, y);
            let k = pool.constant(8, target as u64);
            let c = pool.cmp(CmpPred::Eq, e, k);
            cs.push(c);
            if i == 0 {
                let yk = pool.constant(8, yv as u64);
                cs.push(pool.cmp(CmpPred::Eq, y, yk));
            }

            let reference = plain.check(&pool, &cs);
            for solver in [&mut cached, &mut cold] {
                match solver.check(&pool, &cs) {
                    SatResult::Sat(m) => {
                        prop_assert!(reference.is_sat(),
                            "cached solver said SAT, cache-free solver disagrees");
                        for &cc in &cs {
                            prop_assert_eq!(pool.eval(cc, &|id| m.get(id)), 1,
                                "cached model violates a constraint");
                        }
                    }
                    SatResult::Unsat => {
                        prop_assert!(!reference.is_sat(),
                            "cached solver said UNSAT, cache-free solver disagrees");
                    }
                }
            }
        }
    }
}
