//! Hash-consed symbolic bit-vector expressions with a canonicalizing
//! builder.
//!
//! Every node lives in an [`ExprPool`]; structurally identical expressions
//! share one [`ExprRef`]. The builder folds constants (using the *same*
//! scalar semantics as the optimizer and the concrete interpreter, via
//! `overify_ir::fold`) and applies the algebraic rewrites that keep solver
//! queries small — most importantly, distributing comparisons over
//! if-then-else chains with constant arms, which is what makes symbolic
//! table lookups (`isspace` via a 257-byte table) tractable.

use overify_ir::fold;
use overify_ir::{BinOp, CmpPred};
use std::collections::HashMap;

/// Index of an expression in its pool.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprRef(pub u32);

impl std::fmt::Debug for ExprRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// One expression node. Widths are in bits (1..=64).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Node {
    /// Constant with explicit width; bits always truncated to width.
    Const { width: u32, bits: u64 },
    /// Atomic symbolic variable (an input byte, or a symbolic argument).
    Sym { id: u32, width: u32 },
    /// Binary bit-vector operation; operands share `width`.
    Bin {
        op: BinOp,
        width: u32,
        a: ExprRef,
        b: ExprRef,
    },
    /// Comparison of two `width`-bit operands; result is 1 bit.
    Cmp {
        pred: CmpPred,
        width: u32,
        a: ExprRef,
        b: ExprRef,
    },
    /// If-then-else on a 1-bit condition; arms share the result width.
    Ite {
        width: u32,
        c: ExprRef,
        t: ExprRef,
        f: ExprRef,
    },
    /// Zero-extension to `width`.
    Zext { width: u32, a: ExprRef },
    /// Sign-extension to `width`.
    Sext { width: u32, a: ExprRef },
    /// Truncation to `width`.
    Trunc { width: u32, a: ExprRef },
}

impl Node {
    /// Operand references in evaluation order (empty for leaves). The one
    /// place that knows each variant's arity — every generic DAG walk
    /// (supports, fingerprints, batch evaluation) goes through it.
    /// Allocation-free: a fixed inline array truncated to the arity.
    pub fn children(&self) -> impl Iterator<Item = ExprRef> {
        let (arr, n): ([ExprRef; 3], usize) = match *self {
            Node::Const { .. } | Node::Sym { .. } => ([ExprRef(0); 3], 0),
            Node::Bin { a, b, .. } | Node::Cmp { a, b, .. } => ([a, b, b], 2),
            Node::Ite { c, t, f, .. } => ([c, t, f], 3),
            Node::Zext { a, .. } | Node::Sext { a, .. } | Node::Trunc { a, .. } => ([a, a, a], 1),
        };
        arr.into_iter().take(n)
    }
}

/// All-ones mask of a bit width (the value domain of a `width`-bit node).
pub fn width_mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

use width_mask as mask;

/// The expression arena. One pool lives for a whole verification session;
/// `ExprRef`s from the same pool are comparable and cacheable.
pub struct ExprPool {
    nodes: Vec<Node>,
    intern: HashMap<Node, ExprRef>,
    /// Total number of registered symbolic variables.
    syms: u32,
    /// `true` / `false` 1-bit constants, pre-interned.
    pub true_: ExprRef,
    pub false_: ExprRef,
}

impl Default for ExprPool {
    fn default() -> Self {
        Self::new()
    }
}

impl ExprPool {
    /// Creates an empty pool.
    pub fn new() -> ExprPool {
        let mut p = ExprPool {
            nodes: Vec::new(),
            intern: HashMap::new(),
            syms: 0,
            true_: ExprRef(0),
            false_: ExprRef(0),
        };
        p.true_ = p.constant(1, 1);
        p.false_ = p.constant(1, 0);
        p
    }

    /// Number of live nodes (for stats).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the pool holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node behind a reference.
    pub fn node(&self, e: ExprRef) -> &Node {
        &self.nodes[e.0 as usize]
    }

    /// Result width of an expression.
    pub fn width(&self, e: ExprRef) -> u32 {
        match self.node(e) {
            Node::Const { width, .. }
            | Node::Sym { width, .. }
            | Node::Bin { width, .. }
            | Node::Ite { width, .. }
            | Node::Zext { width, .. }
            | Node::Sext { width, .. }
            | Node::Trunc { width, .. } => *width,
            Node::Cmp { .. } => 1,
        }
    }

    /// The constant value, if the expression is a constant.
    pub fn as_const(&self, e: ExprRef) -> Option<u64> {
        match self.node(e) {
            Node::Const { bits, .. } => Some(*bits),
            _ => None,
        }
    }

    fn intern(&mut self, n: Node) -> ExprRef {
        if let Some(&r) = self.intern.get(&n) {
            return r;
        }
        let r = ExprRef(self.nodes.len() as u32);
        self.nodes.push(n.clone());
        self.intern.insert(n, r);
        r
    }

    /// Interns a constant.
    pub fn constant(&mut self, width: u32, bits: u64) -> ExprRef {
        self.intern(Node::Const {
            width,
            bits: bits & mask(width),
        })
    }

    /// Creates a fresh symbolic variable.
    pub fn fresh_sym(&mut self, width: u32) -> ExprRef {
        let id = self.syms;
        self.syms += 1;
        self.intern(Node::Sym { id, width })
    }

    /// Number of symbolic variables created so far.
    pub fn sym_count(&self) -> u32 {
        self.syms
    }

    /// Builds `op(a, b)` with folding and identities.
    pub fn bin(&mut self, op: BinOp, a: ExprRef, b: ExprRef) -> ExprRef {
        let width = self.width(a);
        debug_assert_eq!(width, self.width(b), "bin width mismatch");
        let ty = width_ty(width);

        // Constant folding (total semantics: division by zero yields 0 for
        // udiv/sdiv and the dividend for rem — matching `eval::eval_total`).
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            let v = fold::eval_bin(op, ty, x, y)
                .unwrap_or_else(|| div_zero_default(op, x) & mask(width));
            return self.constant(width, v);
        }

        // Canonicalize commutative constants to the right.
        let (a, b) = if op.is_commutative() && self.as_const(a).is_some() {
            (b, a)
        } else {
            (a, b)
        };
        let bc = self.as_const(b);

        match op {
            BinOp::Add | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::LShr | BinOp::AShr
                if bc == Some(0) =>
            {
                return a
            }
            BinOp::Sub if bc == Some(0) => return a,
            BinOp::Sub if a == b => return self.constant(width, 0),
            BinOp::Mul if bc == Some(1) => return a,
            BinOp::Mul if bc == Some(0) => return self.constant(width, 0),
            BinOp::UDiv if bc == Some(1) => return a,
            BinOp::And if bc == Some(0) => return self.constant(width, 0),
            BinOp::And if bc == Some(mask(width)) || a == b => return a,
            BinOp::Or if bc == Some(mask(width)) => return self.constant(width, mask(width)),
            BinOp::Or if a == b => return a,
            BinOp::Xor if a == b => return self.constant(width, 0),
            _ => {}
        }

        // add(add(x, C1), C2) -> add(x, C1+C2); same for xor.
        if let (
            Some(c2),
            Node::Bin {
                op: inner_op,
                a: x,
                b: inner_b,
                ..
            },
        ) = (bc, self.node(a).clone())
        {
            if inner_op == op && matches!(op, BinOp::Add | BinOp::Xor) {
                if let Some(c1) = self.as_const(inner_b) {
                    let c = fold::eval_bin(op, ty, c1, c2).unwrap();
                    let cc = self.constant(width, c);
                    if c == 0 {
                        return x;
                    }
                    return self.intern(Node::Bin {
                        op,
                        width,
                        a: x,
                        b: cc,
                    });
                }
            }
        }

        // Boolean-width and/or/xor over ITE with constant arms: fold into
        // the arms (keeps table-lookup chains shallow).
        self.intern(Node::Bin { op, width, a, b })
    }

    /// Builds `pred(a, b)` (1-bit result) with folding.
    pub fn cmp(&mut self, pred: CmpPred, a: ExprRef, b: ExprRef) -> ExprRef {
        let width = self.width(a);
        debug_assert_eq!(width, self.width(b), "cmp width mismatch");
        let ty = width_ty(width);

        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            return self.boolean(fold::eval_cmp(pred, ty, x, y));
        }
        if a == b {
            let v = matches!(
                pred,
                CmpPred::Eq | CmpPred::Ule | CmpPred::Uge | CmpPred::Sle | CmpPred::Sge
            );
            return self.boolean(v);
        }
        // Constants to the right.
        let (pred, a, b) = if self.as_const(a).is_some() {
            (pred.swap(), b, a)
        } else {
            (pred, a, b)
        };

        if let Some(c) = self.as_const(b) {
            // Distribute the comparison over an ITE whose arms include a
            // constant: `cmp(ite(c, t, f), K)` -> `ite(c, cmp(t,K), cmp(f,K))`.
            // With constant table entries this collapses to pure boolean
            // structure.
            if let Node::Ite { c: ic, t, f, .. } = *self.node(a) {
                if self.as_const(t).is_some() || self.as_const(f).is_some() {
                    let ct = self.cmp(pred, t, b);
                    let cf = self.cmp(pred, f, b);
                    return self.ite(ic, ct, cf);
                }
            }
            // Narrow `cmp(zext(x), K)` to the source width when K fits.
            if let Node::Zext { a: x, .. } = *self.node(a) {
                let sw = self.width(x);
                let fits = c <= mask(sw);
                match pred {
                    CmpPred::Eq | CmpPred::Ne => {
                        if fits {
                            let k = self.constant(sw, c);
                            return self.cmp(pred, x, k);
                        }
                        return self.boolean(pred == CmpPred::Ne);
                    }
                    CmpPred::Ult | CmpPred::Ule | CmpPred::Ugt | CmpPred::Uge => {
                        if fits {
                            let k = self.constant(sw, c);
                            return self.cmp(pred, x, k);
                        }
                    }
                    CmpPred::Slt | CmpPred::Sle | CmpPred::Sgt | CmpPred::Sge => {
                        let signed_c = overify_ir::types::sign_extend(c, width);
                        if signed_c >= 0 && (signed_c as u64) <= mask(sw) {
                            let upred = match pred {
                                CmpPred::Slt => CmpPred::Ult,
                                CmpPred::Sle => CmpPred::Ule,
                                CmpPred::Sgt => CmpPred::Ugt,
                                CmpPred::Sge => CmpPred::Uge,
                                _ => unreachable!(),
                            };
                            let k = self.constant(sw, signed_c as u64);
                            return self.cmp(upred, x, k);
                        }
                    }
                }
            }
            // 1-bit compares reduce to the bit or its negation.
            if width == 1 {
                match (pred, c) {
                    (CmpPred::Ne, 0) | (CmpPred::Eq, 1) => return a,
                    (CmpPred::Eq, 0) | (CmpPred::Ne, 1) => return self.not(a),
                    _ => {}
                }
            }
        }
        self.intern(Node::Cmp { pred, width, a, b })
    }

    /// Builds `ite(c, t, f)` with folding and boolean lowering.
    pub fn ite(&mut self, c: ExprRef, t: ExprRef, f: ExprRef) -> ExprRef {
        debug_assert_eq!(self.width(c), 1);
        let width = self.width(t);
        debug_assert_eq!(width, self.width(f), "ite arm width mismatch");
        if let Some(cc) = self.as_const(c) {
            return if cc != 0 { t } else { f };
        }
        if t == f {
            return t;
        }
        if width == 1 {
            // Lower boolean ITE to and/or structure the SAT solver likes.
            let (tc, fc) = (self.as_const(t), self.as_const(f));
            match (tc, fc) {
                (Some(1), Some(0)) => return c,
                (Some(0), Some(1)) => return self.not(c),
                (Some(1), None) => return self.bin(BinOp::Or, c, f),
                (Some(0), None) => {
                    let nc = self.not(c);
                    return self.bin(BinOp::And, nc, f);
                }
                (None, Some(0)) => return self.bin(BinOp::And, c, t),
                (None, Some(1)) => {
                    let nc = self.not(c);
                    return self.bin(BinOp::Or, nc, t);
                }
                _ => {}
            }
        }
        self.intern(Node::Ite { width, c, t, f })
    }

    /// Logical negation of a 1-bit expression.
    pub fn not(&mut self, e: ExprRef) -> ExprRef {
        debug_assert_eq!(self.width(e), 1);
        let one = self.constant(1, 1);
        self.bin(BinOp::Xor, e, one)
    }

    /// Conjunction of two 1-bit expressions.
    pub fn and(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.bin(BinOp::And, a, b)
    }

    /// Disjunction of two 1-bit expressions.
    pub fn or(&mut self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.bin(BinOp::Or, a, b)
    }

    /// 1-bit constant.
    pub fn boolean(&mut self, v: bool) -> ExprRef {
        if v {
            self.true_
        } else {
            self.false_
        }
    }

    /// Zero-extends to `width`.
    pub fn zext(&mut self, e: ExprRef, width: u32) -> ExprRef {
        let w = self.width(e);
        debug_assert!(width >= w);
        if width == w {
            return e;
        }
        if let Some(c) = self.as_const(e) {
            return self.constant(width, c);
        }
        // zext(zext(x)) -> zext(x)
        if let Node::Zext { a, .. } = *self.node(e) {
            return self.zext(a, width);
        }
        self.intern(Node::Zext { width, a: e })
    }

    /// Sign-extends to `width`.
    pub fn sext(&mut self, e: ExprRef, width: u32) -> ExprRef {
        let w = self.width(e);
        debug_assert!(width >= w);
        if width == w {
            return e;
        }
        if let Some(c) = self.as_const(e) {
            let v = overify_ir::types::sign_extend(c, w) as u64;
            return self.constant(width, v);
        }
        self.intern(Node::Sext { width, a: e })
    }

    /// Truncates to `width`.
    pub fn trunc(&mut self, e: ExprRef, width: u32) -> ExprRef {
        let w = self.width(e);
        debug_assert!(width <= w);
        if width == w {
            return e;
        }
        if let Some(c) = self.as_const(e) {
            return self.constant(width, c);
        }
        match *self.node(e) {
            // trunc(zext(x)) / trunc(sext(x)) to the original width -> x.
            Node::Zext { a, .. } | Node::Sext { a, .. } => {
                let sw = self.width(a);
                if sw == width {
                    return a;
                }
                if sw > width {
                    return self.trunc(a, width);
                }
            }
            // trunc(ite(c, t, f)) -> ite(c, trunc t, trunc f) when an arm is
            // constant (keeps byte extraction of table ITEs shallow).
            Node::Ite { c, t, f, .. }
                if (self.as_const(t).is_some() || self.as_const(f).is_some()) =>
            {
                let tt = self.trunc(t, width);
                let tf = self.trunc(f, width);
                return self.ite(c, tt, tf);
            }
            _ => {}
        }
        self.intern(Node::Trunc { width, a: e })
    }

    /// Evaluates an expression under a symbol assignment (used by the
    /// counterexample cache and the test-case replayer). Total semantics:
    /// division by zero yields the `div_zero_default`.
    pub fn eval(&self, e: ExprRef, sym: &dyn Fn(u32) -> u64) -> u64 {
        let mut memo: HashMap<ExprRef, u64> = HashMap::new();
        self.eval_memo(e, sym, &mut memo)
    }

    fn eval_memo(
        &self,
        e: ExprRef,
        sym: &dyn Fn(u32) -> u64,
        memo: &mut HashMap<ExprRef, u64>,
    ) -> u64 {
        if let Some(&v) = memo.get(&e) {
            return v;
        }
        let v = match *self.node(e) {
            Node::Const { bits, .. } => bits,
            Node::Sym { id, width } => sym(id) & mask(width),
            Node::Bin { op, width, a, b } => {
                let x = self.eval_memo(a, sym, memo);
                let y = self.eval_memo(b, sym, memo);
                fold::eval_bin(op, width_ty(width), x, y)
                    .unwrap_or_else(|| div_zero_default(op, x) & mask(width))
            }
            Node::Cmp { pred, width, a, b } => {
                let x = self.eval_memo(a, sym, memo);
                let y = self.eval_memo(b, sym, memo);
                fold::eval_cmp(pred, width_ty(width), x, y) as u64
            }
            Node::Ite { c, t, f, .. } => {
                if self.eval_memo(c, sym, memo) != 0 {
                    self.eval_memo(t, sym, memo)
                } else {
                    self.eval_memo(f, sym, memo)
                }
            }
            Node::Zext { width, a } => self.eval_memo(a, sym, memo) & mask(width),
            Node::Sext { width, a } => {
                let w = self.width(a);
                let v = self.eval_memo(a, sym, memo);
                (overify_ir::types::sign_extend(v, w) as u64) & mask(width)
            }
            Node::Trunc { width, a } => self.eval_memo(a, sym, memo) & mask(width),
        };
        memo.insert(e, v);
        v
    }
}

impl ExprPool {
    /// Evaluates `e` for every assignment `sym := v`, `v` in
    /// `0..2^domain_bits` (other symbols read 0), in a single bottom-up
    /// walk of the DAG. Semantically identical to calling [`Self::eval`]
    /// per value, but without per-value memo allocation — the workhorse of
    /// the solver's single-symbol enumeration layer.
    pub fn eval_all(&self, e: ExprRef, sym: u32, domain_bits: u32) -> Vec<u64> {
        let d = (width_mask(domain_bits) as usize) + 1;
        let mut memo: HashMap<ExprRef, Vec<u64>> = HashMap::new();
        let mut stack = vec![e];
        while let Some(&x) = stack.last() {
            if memo.contains_key(&x) {
                stack.pop();
                continue;
            }
            let missing: Vec<ExprRef> = self
                .node(x)
                .children()
                .filter(|c| !memo.contains_key(c))
                .collect();
            if !missing.is_empty() {
                stack.extend(missing);
                continue;
            }
            let vals: Vec<u64> = match *self.node(x) {
                Node::Const { bits, .. } => vec![bits; d],
                Node::Sym { id, width } => {
                    if id == sym {
                        (0..d).map(|v| v as u64 & width_mask(width)).collect()
                    } else {
                        vec![0; d]
                    }
                }
                Node::Bin { op, width, a, b } => {
                    let (av, bv) = (&memo[&a], &memo[&b]);
                    let ty = width_ty(width);
                    (0..d)
                        .map(|i| {
                            fold::eval_bin(op, ty, av[i], bv[i])
                                .unwrap_or_else(|| div_zero_default(op, av[i]) & width_mask(width))
                        })
                        .collect()
                }
                Node::Cmp { pred, width, a, b } => {
                    let (av, bv) = (&memo[&a], &memo[&b]);
                    let ty = width_ty(width);
                    (0..d)
                        .map(|i| fold::eval_cmp(pred, ty, av[i], bv[i]) as u64)
                        .collect()
                }
                Node::Ite { c, t, f, .. } => {
                    let (cv, tv, fv) = (&memo[&c], &memo[&t], &memo[&f]);
                    (0..d)
                        .map(|i| if cv[i] != 0 { tv[i] } else { fv[i] })
                        .collect()
                }
                Node::Zext { width, a } => {
                    memo[&a].iter().map(|&v| v & width_mask(width)).collect()
                }
                Node::Sext { width, a } => {
                    let w = self.width(a);
                    memo[&a]
                        .iter()
                        .map(|&v| (overify_ir::types::sign_extend(v, w) as u64) & width_mask(width))
                        .collect()
                }
                Node::Trunc { width, a } => {
                    memo[&a].iter().map(|&v| v & width_mask(width)).collect()
                }
            };
            memo.insert(x, vals);
            stack.pop();
        }
        memo.remove(&e).unwrap()
    }
}

/// The sorted set of symbol ids an expression mentions, memoized across
/// calls through `memo` (callers keep one memo per pool; the pool is
/// append-only so entries never go stale). Iterative: table-lookup ITE
/// chains nest hundreds of levels deep.
pub fn sym_support(
    pool: &ExprPool,
    root: ExprRef,
    memo: &mut HashMap<ExprRef, std::sync::Arc<Vec<u32>>>,
) -> std::sync::Arc<Vec<u32>> {
    let mut stack = vec![root];
    while let Some(&e) = stack.last() {
        if memo.contains_key(&e) {
            stack.pop();
            continue;
        }
        let missing: Vec<ExprRef> = pool
            .node(e)
            .children()
            .filter(|c| !memo.contains_key(c))
            .collect();
        if !missing.is_empty() {
            stack.extend(missing);
            continue;
        }
        let support = if let Node::Sym { id, .. } = *pool.node(e) {
            std::sync::Arc::new(vec![id])
        } else {
            let mut s: Vec<u32> = pool
                .node(e)
                .children()
                .flat_map(|c| memo[&c].iter().copied())
                .collect();
            s.sort_unstable();
            s.dedup();
            std::sync::Arc::new(s)
        };
        memo.insert(e, support);
        stack.pop();
    }
    memo[&root].clone()
}

/// The subset of `cs` transitively connected to the `seeds` symbols
/// through shared symbols — KLEE's independent-constraint slicing, shared
/// by the solver's feasibility fast path and the executor's canonical
/// minimizers. Since the rest of a *satisfiable* constraint set shares no
/// symbols with the slice, any query over the seeds has the same verdict
/// against the slice as against the full set, at a fraction of the
/// solving cost.
pub fn constraint_component(
    pool: &ExprPool,
    cs: &[ExprRef],
    seeds: &[u32],
    memo: &mut HashMap<ExprRef, std::sync::Arc<Vec<u32>>>,
) -> Vec<ExprRef> {
    let supports: Vec<std::sync::Arc<Vec<u32>>> =
        cs.iter().map(|&c| sym_support(pool, c, memo)).collect();
    let mut in_comp = vec![false; cs.len()];
    let mut syms: std::collections::HashSet<u32> = seeds.iter().copied().collect();
    loop {
        let mut changed = false;
        for (i, s) in supports.iter().enumerate() {
            if !in_comp[i] && s.iter().any(|x| syms.contains(x)) {
                in_comp[i] = true;
                syms.extend(s.iter().copied());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    cs.iter()
        .zip(in_comp)
        .filter_map(|(&c, inc)| inc.then_some(c))
        .collect()
}

/// Total-function default for division by zero, shared by the builder,
/// the evaluator and the bit-blaster: `udiv/sdiv x 0 = 0`,
/// `urem/srem x 0 = x`.
pub fn div_zero_default(op: BinOp, dividend: u64) -> u64 {
    match op {
        BinOp::UDiv | BinOp::SDiv => 0,
        BinOp::URem | BinOp::SRem => dividend,
        _ => unreachable!("div_zero_default on non-division"),
    }
}

/// Maps a bit width back to an IR type for the shared fold helpers.
pub fn width_ty(width: u32) -> overify_ir::Ty {
    match width {
        1 => overify_ir::Ty::I1,
        8 => overify_ir::Ty::I8,
        16 => overify_ir::Ty::I16,
        32 => overify_ir::Ty::I32,
        64 => overify_ir::Ty::I64,
        w => panic!("unsupported expression width {w}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_shares_nodes() {
        let mut p = ExprPool::new();
        let x = p.fresh_sym(8);
        let one = p.constant(8, 1);
        let a = p.bin(BinOp::Add, x, one);
        let b = p.bin(BinOp::Add, x, one);
        assert_eq!(a, b);
    }

    #[test]
    fn constant_folding() {
        let mut p = ExprPool::new();
        let a = p.constant(32, 20);
        let b = p.constant(32, 22);
        let s = p.bin(BinOp::Add, a, b);
        assert_eq!(p.as_const(s), Some(42));
        let c = p.cmp(CmpPred::Ult, a, b);
        assert_eq!(c, p.true_);
    }

    #[test]
    fn identities() {
        let mut p = ExprPool::new();
        let x = p.fresh_sym(32);
        let zero = p.constant(32, 0);
        assert_eq!(p.bin(BinOp::Add, x, zero), x);
        assert_eq!(p.bin(BinOp::Sub, x, x), zero);
        let m = p.constant(32, u32::MAX as u64);
        assert_eq!(p.bin(BinOp::And, x, m), x);
    }

    #[test]
    fn ite_collapses_under_comparison() {
        // cmp(ite(c, 7, 9), 7) -> c
        let mut p = ExprPool::new();
        let c = p.fresh_sym(1);
        let t = p.constant(8, 7);
        let f = p.constant(8, 9);
        let ite = p.ite(c, t, f);
        let k = p.constant(8, 7);
        let out = p.cmp(CmpPred::Eq, ite, k);
        assert_eq!(out, c);
        // cmp against a value in neither arm -> false.
        let k2 = p.constant(8, 1);
        let out2 = p.cmp(CmpPred::Eq, ite, k2);
        assert_eq!(out2, p.false_);
    }

    #[test]
    fn zext_narrowing() {
        let mut p = ExprPool::new();
        let x = p.fresh_sym(8);
        let z = p.zext(x, 32);
        let k = p.constant(32, 65);
        let c = p.cmp(CmpPred::Eq, z, k);
        match p.node(c) {
            Node::Cmp { width: 8, .. } => {}
            n => panic!("expected narrowed compare, got {n:?}"),
        }
        // Out-of-range equality is decided.
        let k2 = p.constant(32, 300);
        assert_eq!(p.cmp(CmpPred::Eq, z, k2), p.false_);
    }

    #[test]
    fn trunc_of_zext_returns_source() {
        let mut p = ExprPool::new();
        let x = p.fresh_sym(8);
        let z = p.zext(x, 32);
        assert_eq!(p.trunc(z, 8), x);
    }

    #[test]
    fn eval_matches_structure() {
        let mut p = ExprPool::new();
        let x = p.fresh_sym(8); // id 0
        let y = p.fresh_sym(8); // id 1
        let sum = p.bin(BinOp::Add, x, y);
        let z = p.zext(sum, 32);
        let k = p.constant(32, 300);
        let c = p.cmp(CmpPred::Ult, z, k);
        let v = p.eval(c, &|id| if id == 0 { 200 } else { 99 });
        // (200 + 99) wraps to 43 in 8 bits; 43 < 300.
        assert_eq!(v, 1);
        let s = p.eval(sum, &|id| if id == 0 { 200 } else { 99 });
        assert_eq!(s, 43);
    }

    #[test]
    fn boolean_ite_lowering() {
        let mut p = ExprPool::new();
        let c = p.fresh_sym(1);
        let x = p.fresh_sym(1);
        // ite(c, true, x) -> or(c, x)
        let t = p.true_;
        let e = p.ite(c, t, x);
        match p.node(e) {
            Node::Bin { op: BinOp::Or, .. } => {}
            n => panic!("{n:?}"),
        }
    }
}
