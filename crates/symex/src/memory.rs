//! Symbolic memory: per-object byte arrays of expressions.
//!
//! Pointers use the same `(object_id << 32) | offset` encoding as the
//! concrete interpreter, so pointer arithmetic stays ordinary bit-vector
//! arithmetic. Objects are shared copy-on-write between forked states.

use crate::expr::{ExprPool, ExprRef};
use overify_ir::Module;
use std::sync::Arc;

/// Number of low bits holding the intra-object offset.
pub const OFFSET_BITS: u32 = 32;

/// One allocation.
#[derive(Clone, Debug)]
pub struct SymObject {
    pub bytes: Vec<ExprRef>,
    pub writable: bool,
    pub alive: bool,
    pub name: String,
}

/// The object table of one path state. Cloning is cheap (`Arc` per object);
/// writes copy the touched object only.
#[derive(Clone, Debug)]
pub struct SymMemory {
    objects: Vec<Arc<SymObject>>,
}

impl SymMemory {
    /// Builds the initial memory with the module's globals as objects
    /// `1..=n` (object 0 is reserved so null never resolves).
    pub fn with_globals(pool: &mut ExprPool, m: &Module) -> SymMemory {
        let mut objects = vec![Arc::new(SymObject {
            bytes: Vec::new(),
            writable: false,
            alive: false,
            name: "<null>".into(),
        })];
        for g in &m.globals {
            let mut bytes = Vec::with_capacity(g.size as usize);
            for i in 0..g.size as usize {
                let v = g.init.get(i).copied().unwrap_or(0);
                bytes.push(pool.constant(8, v as u64));
            }
            objects.push(Arc::new(SymObject {
                bytes,
                writable: !g.is_const,
                alive: true,
                name: g.name.clone(),
            }));
        }
        SymMemory { objects }
    }

    /// Base pointer of global `index`.
    pub fn global_base(&self, index: u32) -> u64 {
        ((index as u64) + 1) << OFFSET_BITS
    }

    /// Allocates a zero-initialized object; returns its base pointer.
    pub fn allocate(&mut self, pool: &mut ExprPool, size: u64, name: &str) -> u64 {
        let id = self.objects.len() as u64;
        let zero = pool.constant(8, 0);
        self.objects.push(Arc::new(SymObject {
            bytes: vec![zero; size as usize],
            writable: true,
            alive: true,
            name: name.into(),
        }));
        id << OFFSET_BITS
    }

    /// Marks the object at `base` dead.
    pub fn kill(&mut self, base: u64) {
        let id = (base >> OFFSET_BITS) as usize;
        if let Some(o) = self.objects.get_mut(id) {
            Arc::make_mut(o).alive = false;
        }
    }

    /// The object with id `id`, if it exists and is alive.
    pub fn object(&self, id: u32) -> Option<&SymObject> {
        match self.objects.get(id as usize) {
            Some(o) if o.alive => Some(o),
            _ => None,
        }
    }

    /// Number of objects (for candidate enumeration).
    pub fn object_count(&self) -> u32 {
        self.objects.len() as u32
    }

    /// Overwrites one byte of object `id`.
    pub fn set_byte(&mut self, id: u32, offset: usize, value: ExprRef) {
        let o = Arc::make_mut(&mut self.objects[id as usize]);
        o.bytes[offset] = value;
    }

    /// Reads one byte of object `id`.
    pub fn byte(&self, id: u32, offset: usize) -> ExprRef {
        self.objects[id as usize].bytes[offset]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn globals_materialize_with_zero_fill() {
        let mut m = Module::new();
        m.add_global(overify_ir::Global {
            name: "t".into(),
            size: 4,
            init: vec![7],
            is_const: true,
        });
        let mut pool = ExprPool::new();
        let mem = SymMemory::with_globals(&mut pool, &m);
        let o = mem.object(1).unwrap();
        assert_eq!(pool.as_const(o.bytes[0]), Some(7));
        assert_eq!(pool.as_const(o.bytes[3]), Some(0));
        assert!(!o.writable);
        assert!(mem.object(0).is_none(), "null object must not resolve");
    }

    #[test]
    fn allocate_and_cow() {
        let m = Module::new();
        let mut pool = ExprPool::new();
        let mut mem = SymMemory::with_globals(&mut pool, &m);
        let base = mem.allocate(&mut pool, 2, "buf");
        let id = (base >> OFFSET_BITS) as u32;
        let fork = mem.clone();
        let one = pool.constant(8, 1);
        mem.set_byte(id, 0, one);
        // The fork still sees the original zero.
        assert_eq!(pool.as_const(fork.byte(id, 0)), Some(0));
        assert_eq!(pool.as_const(mem.byte(id, 0)), Some(1));
    }

    #[test]
    fn kill_hides_object() {
        let m = Module::new();
        let mut pool = ExprPool::new();
        let mut mem = SymMemory::with_globals(&mut pool, &m);
        let base = mem.allocate(&mut pool, 2, "buf");
        let id = (base >> OFFSET_BITS) as u32;
        assert!(mem.object(id).is_some());
        mem.kill(base);
        assert!(mem.object(id).is_none());
    }
}
