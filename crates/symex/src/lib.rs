//! `overify-symex`: a symbolic execution engine for overify IR.
//!
//! This is the reproduction's stand-in for KLEE (paper §4): it interprets a
//! module one path at a time, treats designated inputs as symbolic
//! bit-vectors, forks at every feasible conditional branch, and checks
//! memory safety, division safety and assertions along the way. Its cost
//! profile matches the real tool's:
//!
//! * every interpreted instruction costs time (`instructions` statistic),
//! * every symbolic branch costs up to two solver queries (`forks`),
//! * symbolic memory reads expand into if-then-else chains whose size the
//!   compiler's memory layout decides (why `-O0` table lookups hurt),
//! * solver time dominates and is mitigated by KLEE-style caches
//!   (counterexample cache, query cache) and an interval fast path.
//!
//! The constraint solver is built from scratch: canonicalizing expression
//! pool → unsigned-interval fast path → counterexample/query caches →
//! cross-worker shared cache → Tseitin bit-blasting → CDCL SAT.
//!
//! Multi-core verification lives in [`parallel`]: a work-stealing driver
//! whose workers exchange replayable branch-decision prefixes and share a
//! sharded solver cache, with a deterministic merged report. The exchange
//! itself is the first-class [`frontier::Frontier`] API: the in-process
//! deque is one implementation, and [`frontier::SharedFrontier`] lets a
//! dispatcher lease subtree jobs to remote worker processes over any
//! transport while preserving the bit-identical merge.

pub mod blast;
pub mod cache;
pub mod executor;
pub mod expr;
pub mod frontier;
pub mod interval;
pub mod memory;
pub mod parallel;
pub mod report;
pub mod sat;
pub mod solver;

pub use cache::{CacheStats, CachedVerdict, SharedQueryCache};
pub use executor::{verify, DonationPolicy, Executor, SearchStrategy, SymArg, SymConfig};
pub use expr::{ExprPool, ExprRef, Node};
pub use frontier::{
    estimated_subtree_forks, Frontier, FrontierProvider, FrontierSignal, FrontierStats,
    LocalFrontier, SharedFrontier,
};
pub use parallel::{
    default_threads, verify_parallel, verify_parallel_budgeted, verify_parallel_cached,
    verify_parallel_frontier, ExploreHooks, NoHooks, SharedBudget,
};
pub use report::{Bug, BugKind, SolverStats, TestCase, VerificationReport};
pub use solver::{Model, SatResult, Solver};
