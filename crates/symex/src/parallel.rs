//! Parallel path exploration (a nod to Cloud9, cited in the paper).
//!
//! Each worker runs an independent [`Executor`] over a *partition* of the
//! search space: worker `i` of `n` pins the first `log2(n)` symbolic branch
//! decisions to the bit pattern of `i` via assumptions on the first input
//! byte. This is deliberately simple — static input-space partitioning
//! rather than dynamic work stealing — but it parallelizes embarrassingly
//! and keeps every worker's solver caches private.

use crate::executor::{verify, SymConfig};
use crate::report::VerificationReport;
use overify_ir::Module;

/// Runs `workers` verifications over disjoint slices of the input space and
/// merges the reports.
///
/// Partitioning is by the first symbolic input byte (`byte0 % workers ==
/// worker_index`), expressed through the initial constraint set. With zero
/// input bytes the run degenerates to a single worker.
pub fn verify_parallel(
    m: &Module,
    entry: &str,
    cfg: &SymConfig,
    workers: usize,
) -> VerificationReport {
    let workers = workers.max(1);
    if workers == 1 || cfg.input_bytes == 0 {
        return verify(m, entry, cfg);
    }

    let reports: Vec<VerificationReport> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..workers {
            let cfg = cfg.clone();
            handles.push(scope.spawn(move || {
                let mut c = cfg;
                c.partition = Some((w as u64, workers as u64));
                verify(m, entry, &c)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    merge(reports)
}

fn merge(reports: Vec<VerificationReport>) -> VerificationReport {
    let mut out = VerificationReport::default();
    let mut max_time = std::time::Duration::ZERO;
    out.exhausted = true;
    for r in reports {
        out.paths_completed += r.paths_completed;
        out.paths_buggy += r.paths_buggy;
        out.paths_killed += r.paths_killed;
        out.forks += r.forks;
        out.instructions += r.instructions;
        out.solver.queries += r.solver.queries;
        out.solver.solved_const += r.solver.solved_const;
        out.solver.solved_interval += r.solver.solved_interval;
        out.solver.solved_cex_cache += r.solver.solved_cex_cache;
        out.solver.solved_query_cache += r.solver.solved_query_cache;
        out.solver.solved_annotation += r.solver.solved_annotation;
        out.solver.solved_sat += r.solver.solved_sat;
        out.solver.sat_decisions += r.solver.sat_decisions;
        out.solver.sat_conflicts += r.solver.sat_conflicts;
        out.solver.concretizations += r.solver.concretizations;
        out.exhausted &= r.exhausted;
        out.timed_out |= r.timed_out;
        max_time = max_time.max(r.time);
        for b in r.bugs {
            if !out
                .bugs
                .iter()
                .any(|x| x.kind == b.kind && x.location == b.location)
            {
                out.bugs.push(b);
            }
        }
        out.tests.extend(r.tests);
    }
    out.time = max_time;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::SymConfig;

    fn compile(src: &str) -> Module {
        overify_lang::compile(src).unwrap()
    }

    #[test]
    fn parallel_finds_same_bugs_as_serial() {
        let src = r#"
            int umain(unsigned char *in, int n) {
                if (in[0] == 'K' && in[1] == '!') {
                    int x = 0;
                    return 10 / x;
                }
                return 0;
            }
        "#;
        let m = compile(src);
        let cfg = SymConfig {
            input_bytes: 2,
            pass_len_arg: true,
            ..Default::default()
        };
        let serial = verify(&m, "umain", &cfg);
        let par = verify_parallel(&m, "umain", &cfg, 4);
        assert_eq!(serial.bug_signature(), par.bug_signature());
        assert!(!par.bugs.is_empty());
        // Partitioning covers the whole input space: at least as many path
        // completions as the serial run (a path whose prefix spans several
        // partitions is re-explored by each).
        assert!(par.total_paths() >= serial.total_paths());
        assert!(par.exhausted);
    }

    #[test]
    fn single_worker_is_plain_verify() {
        let m = compile("int umain(unsigned char *in, int n) { return 0; }");
        let cfg = SymConfig {
            input_bytes: 1,
            pass_len_arg: true,
            ..Default::default()
        };
        let r = verify_parallel(&m, "umain", &cfg, 1);
        assert_eq!(r.paths_completed, 1);
    }
}
