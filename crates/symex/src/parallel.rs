//! The work-stealing parallel verification driver.
//!
//! The paper's §4 outlook (echoing Cloud9) is to spend hardware on the
//! verifier. The first cut of this module statically partitioned the input
//! space on the first byte, which re-explored every shared path prefix in
//! all workers and kept solver caches private. This version is a real
//! parallel subsystem:
//!
//! * **Shared frontier, no duplicated paths.** Workers exchange *jobs*: a
//!   job is the branch-decision trace of an unexplored frontier state.
//!   The receiving worker replays the decisions against its own expression
//!   pool — zero solver queries, since the outcomes are recorded — and
//!   then explores the subtree normally. Each symbolic path therefore ends
//!   in exactly one worker (asserted via per-path fingerprints in the
//!   report).
//! * **Work stealing.** A worker that drains its local worklist blocks on
//!   the shared frontier; busy workers donate their oldest pending states
//!   (nearest the root, hence the biggest subtrees) whenever somebody is
//!   hungry.
//! * **Shared solver cache.** A sharded verdict map keyed by structural
//!   formula fingerprints (see [`crate::cache`]) lets one worker's UNSAT
//!   core or model serve the fleet.
//! * **Deterministic merge.** Bug signatures, canonical test-case sets and
//!   the explored path set are functions of the program alone — identical
//!   for every worker count and thread interleaving. (Aggregate counters
//!   such as instruction totals include replay overhead and may vary.)

use crate::cache::SharedQueryCache;
use crate::executor::{Executor, SymConfig};
use crate::frontier::{Frontier, LocalFrontier};
use crate::report::VerificationReport;
use overify_ir::Module;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Fleet-wide exploration budget: instruction ceiling and wall-clock
/// deadline shared by all workers of one `verify_parallel` call.
///
/// The budget doubles as the run's **live progress probe**: its counters
/// are updated by every worker as exploration proceeds, so an external
/// observer holding the same `Arc` (a service streaming progress events, a
/// TUI) can sample [`SharedBudget::paths`] / [`SharedBudget::bugs`] /
/// [`SharedBudget::instructions`] mid-flight without perturbing the run.
pub struct SharedBudget {
    max_instructions: u64,
    max_paths: u64,
    deadline: Instant,
    instructions: AtomicU64,
    paths: AtomicU64,
    bugs: AtomicU64,
    cancelled: AtomicBool,
}

impl SharedBudget {
    /// Builds the budget for one run of `cfg`.
    pub fn new(cfg: &SymConfig) -> SharedBudget {
        SharedBudget {
            max_instructions: cfg.max_instructions,
            max_paths: cfg.max_paths,
            deadline: Instant::now() + cfg.timeout,
            instructions: AtomicU64::new(0),
            paths: AtomicU64::new(0),
            bugs: AtomicU64::new(0),
            cancelled: AtomicBool::new(false),
        }
    }

    /// Records `delta` interpreted instructions and re-checks the
    /// instruction ceiling.
    pub fn charge(&self, delta: u64) {
        let total = self.instructions.fetch_add(delta, Ordering::Relaxed) + delta;
        if self.max_instructions > 0 && total >= self.max_instructions {
            self.cancelled.store(true, Ordering::Relaxed);
        }
    }

    /// Records one ended path and re-checks the fleet-wide path ceiling
    /// (`cfg.max_paths` caps the whole run, not each worker).
    pub fn note_path(&self) {
        let total = self.paths.fetch_add(1, Ordering::Relaxed) + 1;
        if self.max_paths > 0 && total >= self.max_paths {
            self.cancelled.store(true, Ordering::Relaxed);
        }
    }

    /// Records one path that ended in a bug (raw per-path count, before
    /// the merge deduplicates by location).
    pub fn note_bug(&self) {
        self.bugs.fetch_add(1, Ordering::Relaxed);
    }

    /// Paths ended so far (completed + buggy + killed), fleet-wide.
    pub fn paths(&self) -> u64 {
        self.paths.load(Ordering::Relaxed)
    }

    /// Buggy path ends so far, fleet-wide (pre-deduplication).
    pub fn bugs(&self) -> u64 {
        self.bugs.load(Ordering::Relaxed)
    }

    /// Instructions flushed to the budget so far. Workers flush in batches
    /// (plus a final flush at `finish`), so this trails the exact total by
    /// at most one flush interval per worker mid-run.
    pub fn instructions(&self) -> u64 {
        self.instructions.load(Ordering::Relaxed)
    }

    /// Wall-clock budget left before this run's deadline (zero once the
    /// deadline passed). A dispatcher leasing subtree jobs to other
    /// processes clamps each lease's timeout to this, so remote work
    /// cannot outlive the run it belongs to.
    pub fn remaining_time(&self) -> std::time::Duration {
        self.deadline.saturating_duration_since(Instant::now())
    }

    /// Folds a remote worker's partial-report counters into the fleet
    /// budget, so ceilings and streamed progress observe work done in
    /// other processes too.
    pub fn absorb_remote(&self, paths: u64, bugs: u64, instructions: u64) {
        if instructions > 0 {
            self.charge(instructions);
        }
        self.bugs.fetch_add(bugs, Ordering::Relaxed);
        let total = self.paths.fetch_add(paths, Ordering::Relaxed) + paths;
        if self.max_paths > 0 && total >= self.max_paths {
            self.cancelled.store(true, Ordering::Relaxed);
        }
    }

    /// True once any worker tripped a limit; everybody stops. Also trips
    /// the wall-clock deadline, so callers polling this enforce
    /// `cfg.timeout` exactly like the serial engine's per-step check.
    pub fn cancelled(&self) -> bool {
        if self.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        if Instant::now() >= self.deadline {
            self.cancelled.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }
}

/// Callbacks the executor uses to export work mid-run.
pub trait ExploreHooks {
    /// Is any peer starving? Cheap; polled between paths.
    fn hungry(&self) -> bool;
    /// Offers a frontier state (as its decision trace) to the fleet.
    /// Returns false if the offer was not accepted.
    fn donate(&self, prefix: Vec<bool>) -> bool;
}

/// The serial no-op hooks: never hungry, never accepts donations.
pub struct NoHooks;

impl ExploreHooks for NoHooks {
    fn hungry(&self) -> bool {
        false
    }
    fn donate(&self, _prefix: Vec<bool>) -> bool {
        false
    }
}

/// Adapts any [`Frontier`] into the executor's donation callbacks.
struct FrontierHooks<'a>(&'a dyn Frontier);

impl ExploreHooks for FrontierHooks<'_> {
    fn hungry(&self) -> bool {
        self.0.hungry()
    }

    fn donate(&self, prefix: Vec<bool>) -> bool {
        self.0.offer(prefix)
    }
}

/// The number of worker threads to use by default: `OVERIFY_THREADS` if
/// set and positive, otherwise the machine's available parallelism.
pub fn default_threads() -> usize {
    std::env::var("OVERIFY_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Verifies `entry` with `workers` work-stealing threads and merges the
/// per-worker reports deterministically.
///
/// Guarantees, independent of worker count and interleaving (given the
/// budgets are not hit): the bug signature, the exhaustion status, the
/// sorted canonical test-case set, and the explored path set — with every
/// path explored by exactly one worker
/// ([`VerificationReport::max_path_multiplicity`] is 1).
pub fn verify_parallel(
    m: &Module,
    entry: &str,
    cfg: &SymConfig,
    workers: usize,
) -> VerificationReport {
    verify_parallel_cached(m, entry, cfg, workers, &Arc::new(SharedQueryCache::new()))
}

/// [`verify_parallel`] against a caller-owned shared solver cache, so
/// repeated runs of the *same program* (regression loops, worker-count
/// sweeps, warm CI) reuse each other's verdicts. Sound because cache
/// entries are keyed by structural formula fingerprint and the verdict of
/// a formula does not depend on who asked; results remain bit-identical
/// to a cold run. Ignored when `cfg.solver.use_shared_cache` is off.
pub fn verify_parallel_cached(
    m: &Module,
    entry: &str,
    cfg: &SymConfig,
    workers: usize,
    cache: &Arc<SharedQueryCache>,
) -> VerificationReport {
    verify_parallel_budgeted(
        m,
        entry,
        cfg,
        workers,
        cache,
        &Arc::new(SharedBudget::new(cfg)),
    )
}

/// [`verify_parallel_cached`] against a caller-owned [`SharedBudget`].
///
/// The budget is both control and telemetry: the caller decides when the
/// fleet stops (it may share one budget across several runs, or cancel it
/// from outside), and can sample the budget's live counters concurrently
/// to stream progress — the verification service's mid-flight path/bug
/// counters come from exactly this. The budget must be fresh (or at least
/// not already cancelled) or the run reports `timed_out` immediately.
pub fn verify_parallel_budgeted(
    m: &Module,
    entry: &str,
    cfg: &SymConfig,
    workers: usize,
    cache: &Arc<SharedQueryCache>,
    budget: &Arc<SharedBudget>,
) -> VerificationReport {
    verify_parallel_frontier(m, entry, cfg, workers, cache, budget, &LocalFrontier::new())
}

/// [`verify_parallel_budgeted`] against a caller-owned [`Frontier`] — the
/// transport-agnostic face of the driver.
///
/// The in-process workers pop, explore and donate through `frontier`
/// exactly as they always have; a dispatcher substituting a
/// [`crate::frontier::SharedFrontier`] can additionally lease queued jobs
/// to remote worker processes, and their partial reports (drained via
/// [`Frontier::drain_remote_reports`] once the local workers terminate)
/// enter the same deterministic merge. The merged report's bugs,
/// canonical tests and path set are bit-identical regardless of how many
/// processes shared the frontier.
pub fn verify_parallel_frontier(
    m: &Module,
    entry: &str,
    cfg: &SymConfig,
    workers: usize,
    cache: &Arc<SharedQueryCache>,
    budget: &Arc<SharedBudget>,
    frontier: &dyn Frontier,
) -> VerificationReport {
    let workers = workers.max(1);
    let start = Instant::now();
    let budget = budget.clone();
    let shared_cache = cfg.solver.use_shared_cache.then(|| cache.clone());

    let mut reports: Vec<VerificationReport> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..workers {
            let cfg = cfg.clone();
            let budget = budget.clone();
            let shared_cache = shared_cache.clone();
            handles.push(
                scope.spawn(move || worker_loop(m, entry, cfg, frontier, budget, shared_cache)),
            );
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("verification worker panicked"))
            .collect()
    });
    // Local workers only terminate once every leased subtree completed,
    // so the remote partial reports are all in by now.
    reports.extend(frontier.drain_remote_reports());

    let mut out = merge(reports);
    out.time = start.elapsed();
    out
}

/// One worker: a long-lived executor processing frontier jobs until the
/// whole execution tree is explored.
fn worker_loop(
    m: &Module,
    entry: &str,
    cfg: SymConfig,
    frontier: &dyn Frontier,
    budget: Arc<SharedBudget>,
    shared_cache: Option<Arc<SharedQueryCache>>,
) -> VerificationReport {
    let mut ex = Executor::new(m, cfg);
    ex.attach_budget(budget.clone());
    if let Some(c) = shared_cache {
        ex.attach_shared_cache(c);
    }
    let Some(init) = ex.initial_state(entry) else {
        // Missing entry / signature mismatch: drain the frontier so peers
        // terminate, and report zero work like the serial engine does.
        while frontier.next().is_some() {
            frontier.finish();
        }
        let mut r = ex.finish();
        r.exhausted = false;
        r.timed_out = false;
        return r;
    };
    let hooks = FrontierHooks(frontier);
    while let Some(prefix) = frontier.next() {
        // Balance `live` even if the engine panics mid-job: without this,
        // a panicking worker would leave its peers blocked on the frontier
        // forever and the panic would never propagate out of the scope.
        let _guard = FinishJobGuard(frontier);
        if budget.cancelled() {
            ex.mark_incomplete();
        } else {
            ex.run_job(init.clone(), &prefix, &hooks);
        }
    }
    ex.finish()
}

struct FinishJobGuard<'a>(&'a dyn Frontier);

impl Drop for FinishJobGuard<'_> {
    fn drop(&mut self) {
        self.0.finish();
    }
}

/// Merges per-worker reports into one deterministic report: counters are
/// summed; bugs are deduplicated by (kind, location) keeping the smallest
/// witness and sorted; test cases are deduplicated by input bytes and
/// sorted; path fingerprints are concatenated and sorted so duplicated
/// exploration is detectable.
fn merge(reports: Vec<VerificationReport>) -> VerificationReport {
    let mut out = VerificationReport {
        exhausted: true,
        ..Default::default()
    };
    for r in reports {
        out.paths_completed += r.paths_completed;
        out.paths_buggy += r.paths_buggy;
        out.paths_killed += r.paths_killed;
        out.forks += r.forks;
        out.instructions += r.instructions;
        out.donations += r.donations;
        out.steals += r.steals;
        out.solver.absorb(&r.solver);
        out.exhausted &= r.exhausted;
        out.timed_out |= r.timed_out;
        out.bugs.extend(r.bugs);
        out.tests.extend(r.tests);
        out.path_ids.extend(r.path_ids);
    }
    // Canonical order, then dedup. Bugs: one entry per (kind, location),
    // keeping the lexicographically smallest witness input.
    out.bugs
        .sort_by(|a, b| (a.kind, &a.location, &a.input).cmp(&(b.kind, &b.location, &b.input)));
    out.bugs
        .dedup_by(|a, b| a.kind == b.kind && a.location == b.location);
    // Tests: canonicalization makes duplicated work produce *identical*
    // entries, so full-struct dedup removes exactly the duplicates.
    // (Keyed on input AND output: two paths split only by a symbolic
    // extra argument share canonical input bytes but differ in output.)
    out.tests
        .sort_by(|a, b| (&a.input, &a.output).cmp(&(&b.input, &b.output)));
    out.tests.dedup();
    out.path_ids.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{verify, SymConfig};
    use crate::report::{Bug, BugKind, TestCase};

    fn compile(src: &str) -> Module {
        overify_lang::compile(src).unwrap()
    }

    #[test]
    fn parallel_finds_same_bugs_as_serial() {
        let src = r#"
            int umain(unsigned char *in, int n) {
                if (in[0] == 'K' && in[1] == '!') {
                    int x = 0;
                    return 10 / x;
                }
                return 0;
            }
        "#;
        let m = compile(src);
        let cfg = SymConfig {
            input_bytes: 2,
            pass_len_arg: true,
            collect_tests: true,
            ..Default::default()
        };
        let serial = verify(&m, "umain", &cfg);
        let par = verify_parallel(&m, "umain", &cfg, 4);
        assert_eq!(serial.bug_signature(), par.bug_signature());
        assert!(!par.bugs.is_empty());
        // Work stealing explores every path exactly once — unlike the old
        // static partitioner, which re-explored shared prefixes.
        assert_eq!(par.total_paths(), serial.total_paths());
        assert_eq!(par.max_path_multiplicity(), 1);
        assert!(par.exhausted);
        // The canonical test sets agree (serial is unsorted/undeduped).
        let mut st = serial.tests.clone();
        st.sort_by(|a, b| (&a.input, &a.output).cmp(&(&b.input, &b.output)));
        st.dedup();
        assert_eq!(st, par.tests);
    }

    #[test]
    fn single_worker_is_plain_verify() {
        let m = compile("int umain(unsigned char *in, int n) { return 0; }");
        let cfg = SymConfig {
            input_bytes: 1,
            pass_len_arg: true,
            ..Default::default()
        };
        let r = verify_parallel(&m, "umain", &cfg, 1);
        assert_eq!(r.paths_completed, 1);
        assert_eq!(r.max_path_multiplicity(), 1);
    }

    #[test]
    fn missing_entry_terminates_cleanly() {
        let m = compile("int f(int x) { return x; }");
        let cfg = SymConfig::default();
        let r = verify_parallel(&m, "nope", &cfg, 4);
        assert_eq!(r.total_paths(), 0);
        assert!(!r.exhausted);
    }

    #[test]
    fn merge_dedupes_duplicated_test_cases() {
        // Regression test: merged reports used to `extend` test cases
        // without dedup, so paths completed by two workers (the old
        // partitioner's re-explored prefixes) duplicated entries. Tests
        // that differ only in output (paths split by a symbolic extra
        // argument) must both survive.
        let t = |input: &[u8], out: &[u8]| TestCase {
            input: input.to_vec(),
            output: out.iter().map(|&b| Some(b)).collect(),
        };
        let r1 = VerificationReport {
            exhausted: true,
            tests: vec![t(b"zz", b"1"), t(b"aa", b"0")],
            ..Default::default()
        };
        let r2 = VerificationReport {
            exhausted: true,
            tests: vec![t(b"aa", b"0"), t(b"mm", b"2"), t(b"aa", b"9")],
            ..Default::default()
        };
        let merged = merge(vec![r1, r2]);
        let inputs: Vec<&[u8]> = merged.tests.iter().map(|t| t.input.as_slice()).collect();
        assert_eq!(
            inputs,
            vec![&b"aa"[..], b"aa", b"mm", b"zz"],
            "sorted; exact duplicates removed, distinct outputs kept"
        );
    }

    #[test]
    fn merge_dedupes_bugs_and_keeps_smallest_witness() {
        let bug = |loc: &str, input: &[u8]| Bug {
            kind: BugKind::DivByZero,
            location: loc.into(),
            input: input.to_vec(),
        };
        let r1 = VerificationReport {
            exhausted: true,
            bugs: vec![bug("f/b1", b"zz")],
            ..Default::default()
        };
        let r2 = VerificationReport {
            exhausted: true,
            bugs: vec![bug("f/b1", b"aa"), bug("f/b0", b"qq")],
            ..Default::default()
        };
        let merged = merge(vec![r1, r2]);
        assert_eq!(merged.bugs.len(), 2);
        assert_eq!(merged.bugs[0].location, "f/b0");
        assert_eq!(merged.bugs[1].location, "f/b1");
        assert_eq!(merged.bugs[1].input, b"aa");
    }

    #[test]
    fn merge_exposes_duplicate_paths() {
        let r1 = VerificationReport {
            exhausted: true,
            path_ids: vec![7, 9],
            ..Default::default()
        };
        let r2 = VerificationReport {
            exhausted: true,
            path_ids: vec![9],
            ..Default::default()
        };
        let merged = merge(vec![r1, r2]);
        assert_eq!(merged.max_path_multiplicity(), 2);
    }

    #[test]
    fn sym_input_bytes_are_path_local_and_deterministic() {
        // `__sym_input` symbols belong to the path that created them: a
        // sibling path must not grow test bytes for them, and worker
        // counts must agree bit-for-bit.
        let src = r#"
            int umain(unsigned char *in, int n) {
                unsigned char b[2];
                if (in[0] > 'a') {
                    __sym_input(b, 2);
                    if (b[0] > 'x') return 2;
                    return 1;
                }
                return 0;
            }
        "#;
        let m = compile(src);
        let cfg = SymConfig {
            input_bytes: 2,
            pass_len_arg: true,
            collect_tests: true,
            ..Default::default()
        };
        let base = verify_parallel(&m, "umain", &cfg, 1);
        assert!(base.exhausted);
        // The no-intrinsic path has 2 input bytes; the others carry the 2
        // extra dynamic bytes.
        assert!(base.tests.iter().any(|t| t.input.len() == 2));
        assert!(base.tests.iter().any(|t| t.input.len() == 4));
        for w in [2, 4] {
            let r = verify_parallel(&m, "umain", &cfg, w);
            assert_eq!(r.tests, base.tests, "workers={w}");
            assert_eq!(r.bug_signature(), base.bug_signature(), "workers={w}");
            assert_eq!(r.path_ids, base.path_ids, "workers={w}");
        }
    }

    #[test]
    fn symbolic_extra_args_keep_tests_canonical() {
        // Residual (non-input) symbols are pinned to their minima too, so
        // outputs evaluated from them stay interleaving-independent.
        let src = r#"
            int umain(unsigned char *in, int flag) {
                if (flag > 3 && in[0] > 'm') {
                    putchar('0' + (flag & 7));
                    return 1;
                }
                return 0;
            }
        "#;
        let m = compile(src);
        let cfg = SymConfig {
            input_bytes: 2,
            pass_len_arg: false,
            extra_args: vec![crate::executor::SymArg::Symbolic],
            collect_tests: true,
            ..Default::default()
        };
        let base = verify_parallel(&m, "umain", &cfg, 1);
        assert!(base.exhausted);
        assert!(!base.tests.is_empty());
        for w in [2, 4] {
            let r = verify_parallel(&m, "umain", &cfg, w);
            assert_eq!(r.tests, base.tests, "workers={w}");
        }
    }

    #[test]
    fn max_paths_caps_the_fleet_not_each_worker() {
        let src = r#"
            int umain(unsigned char *in, int n) {
                int acc = 0;
                for (int i = 0; i < n; i++) {
                    if (in[i] > 'f') acc += 2;
                    else if (in[i] > 'c') acc += 1;
                }
                return acc;
            }
        "#;
        let m = compile(src);
        let workers = 4;
        let cfg = SymConfig {
            input_bytes: 4,
            pass_len_arg: true,
            max_paths: 5,
            ..Default::default()
        };
        let r = verify_parallel(&m, "umain", &cfg, workers);
        // The ceiling is shared: cancellation lands once the fleet total
        // reaches max_paths, give or take one in-flight path per worker —
        // never workers × max_paths.
        assert!(r.total_paths() >= 5, "stopped early: {}", r.total_paths());
        assert!(
            r.total_paths() <= 5 + workers as u64,
            "per-worker cap leak: {} paths",
            r.total_paths()
        );
        assert!(!r.exhausted);
        assert_eq!(r.max_path_multiplicity(), 1);
    }

    #[test]
    fn budget_counters_track_progress_live() {
        let src = r#"
            int umain(unsigned char *in, int n) {
                if (in[0] == 'K' && in[1] == '!') {
                    int x = 0;
                    return 10 / x;
                }
                return 0;
            }
        "#;
        let m = compile(src);
        let cfg = SymConfig {
            input_bytes: 2,
            pass_len_arg: true,
            ..Default::default()
        };
        let budget = Arc::new(SharedBudget::new(&cfg));
        let cache = Arc::new(SharedQueryCache::new());
        let r = verify_parallel_budgeted(&m, "umain", &cfg, 2, &cache, &budget);
        assert!(r.exhausted);
        assert_eq!(budget.paths(), r.total_paths(), "every path end counted");
        assert_eq!(budget.bugs(), r.paths_buggy, "buggy path ends counted");
        assert!(
            budget.instructions() >= r.instructions,
            "final flush covers the whole run (replay overhead included)"
        );
    }

    #[test]
    fn cancelled_budget_stops_a_fresh_run_immediately() {
        let m = compile("int umain(unsigned char *in, int n) { return in[0]; }");
        let cfg = SymConfig {
            input_bytes: 1,
            pass_len_arg: true,
            max_instructions: 1,
            ..Default::default()
        };
        let budget = Arc::new(SharedBudget::new(&cfg));
        budget.charge(5); // trips the ceiling before the run starts
        let cache = Arc::new(SharedQueryCache::new());
        let r = verify_parallel_budgeted(&m, "umain", &cfg, 2, &cache, &budget);
        assert!(r.timed_out);
        assert!(!r.exhausted);
    }

    #[test]
    fn steal_half_policy_agrees_with_oldest_state() {
        let src = r#"
            int umain(unsigned char *in, int n) {
                int acc = 0;
                for (int i = 0; i < n; i++) {
                    if (in[i] > 'f') acc += 2;
                    else if (in[i] > 'c') acc += 1;
                    if (in[i] == 'x') acc *= 3;
                }
                return acc;
            }
        "#;
        let m = compile(src);
        let mut cfg = SymConfig {
            input_bytes: 3,
            pass_len_arg: true,
            collect_tests: true,
            ..Default::default()
        };
        let base = verify_parallel(&m, "umain", &cfg, 1);
        assert!(base.exhausted);
        cfg.donation = crate::executor::DonationPolicy::StealHalf;
        for w in [1, 2, 4] {
            let r = verify_parallel(&m, "umain", &cfg, w);
            assert_eq!(r.bug_signature(), base.bug_signature(), "workers={w}");
            assert_eq!(r.tests, base.tests, "workers={w}");
            assert_eq!(r.path_ids, base.path_ids, "workers={w}");
            assert_eq!(r.max_path_multiplicity(), 1, "workers={w}");
        }
    }

    #[test]
    fn remote_lease_of_the_root_job_merges_bit_identically() {
        // Simulate a remote worker process deterministically: lease the
        // root job off a SharedFrontier before the local workers start,
        // explore it in a completely separate executor (its own pool, its
        // own caches — exactly what another process would have), and
        // complete the lease with the partial report. The merged report
        // must be bit-identical in its deterministic projection, and the
        // budget must have absorbed the remote counters.
        use crate::frontier::SharedFrontier;
        let src = r#"
            int umain(unsigned char *in, int n) {
                int acc = 0;
                for (int i = 0; i < n; i++) {
                    if (in[i] > 'f') acc += 2;
                    else if (in[i] > 'c') acc += 1;
                }
                if (in[0] == 'z') { int x = 0; return 10 / x; }
                return acc;
            }
        "#;
        let m = compile(src);
        let cfg = SymConfig {
            input_bytes: 2,
            pass_len_arg: true,
            collect_tests: true,
            ..Default::default()
        };
        let base = verify_parallel(&m, "umain", &cfg, 1);
        assert!(base.exhausted);

        let cache = Arc::new(SharedQueryCache::new());
        let budget = Arc::new(SharedBudget::new(&cfg));
        let frontier = SharedFrontier::for_run(
            Some(budget.clone()),
            Arc::new(std::sync::atomic::AtomicUsize::new(0)),
            None,
        );
        let root = frontier.try_steal().expect("root leased");
        let partial = {
            let mut ex = Executor::new(&m, cfg.clone());
            let init = ex.initial_state("umain").expect("entry exists");
            ex.run_job(init, &root, &NoHooks);
            ex.finish()
        };
        frontier.complete_remote(partial);
        let merged = verify_parallel_frontier(&m, "umain", &cfg, 2, &cache, &budget, &frontier);

        assert_eq!(merged.canonical_bytes(), base.canonical_bytes());
        assert_eq!(merged.bugs, base.bugs);
        assert_eq!(merged.tests, base.tests);
        assert_eq!(merged.path_ids, base.path_ids);
        assert_eq!(merged.max_path_multiplicity(), 1);
        assert!(merged.exhausted);
        assert_eq!(frontier.stats().remote_leases, 1);
        assert_eq!(
            budget.paths(),
            merged.total_paths(),
            "remote paths absorbed into the fleet budget"
        );
    }

    #[test]
    fn concurrent_remote_stealing_stays_deterministic() {
        // The opportunistic flavour: a thief thread races the local
        // workers, stealing and shedding states like a live remote worker
        // connection. However the race resolves, the merged report's
        // deterministic projection must match the serial run exactly.
        use crate::frontier::SharedFrontier;
        use std::sync::atomic::AtomicBool;
        let src = r#"
            int umain(unsigned char *in, int n) {
                int acc = 0;
                for (int i = 0; i < n; i++) {
                    if (in[i] > 'f') acc += 2;
                    else if (in[i] > 'c') acc += 1;
                    if (in[i] == 'x') acc *= 3;
                }
                return acc;
            }
        "#;
        let m = compile(src);
        let cfg = SymConfig {
            input_bytes: 3,
            pass_len_arg: true,
            collect_tests: true,
            ..Default::default()
        };
        let base = verify_parallel(&m, "umain", &cfg, 1);
        assert!(base.exhausted);

        let hunger = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let budget = Arc::new(SharedBudget::new(&cfg));
        let frontier = SharedFrontier::for_run(Some(budget.clone()), hunger.clone(), None);
        let done = AtomicBool::new(false);
        let merged = std::thread::scope(|scope| {
            let thief = scope.spawn(|| {
                // A steal request is permanently pending, like a worker
                // process long-polling the dispatcher.
                hunger.fetch_add(1, Ordering::Relaxed);
                while !done.load(Ordering::Relaxed) {
                    let Some(prefix) = frontier.try_steal() else {
                        std::thread::yield_now();
                        continue;
                    };
                    let mut ex = Executor::new(&m, cfg.clone());
                    let init = ex.initial_state("umain").expect("entry exists");
                    ex.run_job(init, &prefix, &NoHooks);
                    frontier.complete_remote(ex.finish());
                }
                hunger.fetch_sub(1, Ordering::Relaxed);
            });
            let cache = Arc::new(SharedQueryCache::new());
            let merged = verify_parallel_frontier(&m, "umain", &cfg, 2, &cache, &budget, &frontier);
            done.store(true, Ordering::Relaxed);
            thief.join().unwrap();
            merged
        });
        assert_eq!(merged.canonical_bytes(), base.canonical_bytes());
        assert_eq!(merged.max_path_multiplicity(), 1);
    }

    #[test]
    fn deep_program_donates_and_stays_deterministic() {
        // A branchy program with enough paths that donation actually
        // happens; every worker count must agree exactly.
        let src = r#"
            int umain(unsigned char *in, int n) {
                int acc = 0;
                for (int i = 0; i < n; i++) {
                    if (in[i] > 'f') acc += 2;
                    else if (in[i] > 'c') acc += 1;
                    if (in[i] == 'x') acc *= 3;
                }
                return acc;
            }
        "#;
        let m = compile(src);
        let cfg = SymConfig {
            input_bytes: 3,
            pass_len_arg: true,
            collect_tests: true,
            ..Default::default()
        };
        let base = verify_parallel(&m, "umain", &cfg, 1);
        assert!(base.exhausted);
        assert_eq!(base.max_path_multiplicity(), 1);
        for w in [2, 4] {
            let r = verify_parallel(&m, "umain", &cfg, w);
            assert_eq!(r.bug_signature(), base.bug_signature(), "workers={w}");
            assert_eq!(r.exhausted, base.exhausted, "workers={w}");
            assert_eq!(r.tests, base.tests, "workers={w}");
            assert_eq!(r.path_ids, base.path_ids, "workers={w}");
            assert_eq!(r.max_path_multiplicity(), 1, "workers={w}");
        }
    }
}
