//! The cross-worker shared solver cache.
//!
//! Workers of the parallel driver each own a private [`ExprPool`], so
//! `ExprRef`s are meaningless across threads. What *is* portable is the
//! structure of a formula: satisfiability depends only on the expression
//! tree over symbol ids, never on pool numbering. This module computes a
//! 128-bit structural fingerprint per constraint set and keeps a sharded
//! verdict map keyed by it, so one worker's UNSAT core (or model) serves
//! the whole fleet — the paper's §4 "spend hardware on the verifier"
//! direction, applied to the solver layer.
//!
//! Sharding keeps lock hold times tiny: a fingerprint picks its shard from
//! its high bits, and each shard is an independent `Mutex<HashMap>`.

use crate::expr::{ExprPool, ExprRef, Node};
use crate::solver::Model;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A cached verdict: `None` = UNSAT, `Some(model)` = SAT with a witness.
pub type CachedVerdict = Option<Model>;

/// Hit/miss counters of a [`SharedQueryCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a cached verdict.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const SHARDS: usize = 32;

/// Sharded, thread-safe map from constraint-set fingerprint to verdict.
pub struct SharedQueryCache {
    shards: Vec<Mutex<HashMap<u128, CachedVerdict>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for SharedQueryCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedQueryCache {
    /// Creates an empty cache with the default shard count.
    pub fn new() -> SharedQueryCache {
        SharedQueryCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, fp: u128) -> &Mutex<HashMap<u128, CachedVerdict>> {
        &self.shards[((fp >> 96) as usize) % self.shards.len()]
    }

    /// Looks up a fingerprint. Outer `None` means "never solved".
    pub fn lookup(&self, fp: u128) -> Option<CachedVerdict> {
        let hit = self.shard(fp).lock().unwrap().get(&fp).cloned();
        match hit {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Publishes a verdict for a fingerprint.
    pub fn publish(&self, fp: u128, verdict: CachedVerdict) {
        self.shard(fp).lock().unwrap().insert(fp, verdict);
    }

    /// Hit/miss counters so far, for reports.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Total number of cached verdicts.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// True if nothing has been published yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached verdict and resets the hit/miss counters.
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().unwrap().clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Every cached `(fingerprint, verdict)` pair, sorted by fingerprint —
    /// a deterministic snapshot, which is what the persistent store writes
    /// to disk (`overify_store`).
    pub fn snapshot(&self) -> Vec<(u128, CachedVerdict)> {
        self.snapshot_if(|_| true)
    }

    /// [`SharedQueryCache::snapshot`] restricted to fingerprints passing
    /// `keep` — the persistent store exports only the not-yet-persisted
    /// delta this way, without cloning every model first.
    pub fn snapshot_if(&self, keep: impl Fn(u128) -> bool) -> Vec<(u128, CachedVerdict)> {
        let mut all: Vec<(u128, CachedVerdict)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .unwrap()
                    .iter()
                    .filter(|(&fp, _)| keep(fp))
                    .map(|(&fp, v)| (fp, v.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_by_key(|&(fp, _)| fp);
        all
    }

    /// Merges externally-learned verdicts (a tailed log segment, a remote
    /// worker's `JobDone` delta) into the cache, returning how many were
    /// actually new. Existing entries win — a fingerprint already present
    /// was derived from the same formula, so overwriting could only churn
    /// model bytes, never change a verdict — and the hit/miss counters are
    /// untouched (absorption is replication, not solving).
    pub fn absorb(&self, entries: &[(u128, CachedVerdict)]) -> u64 {
        let mut added = 0;
        for (fp, verdict) in entries {
            let mut shard = self.shard(*fp).lock().unwrap();
            if let std::collections::hash_map::Entry::Vacant(e) = shard.entry(*fp) {
                e.insert(verdict.clone());
                added += 1;
            }
        }
        added
    }

    /// Every cached fingerprint, sorted — bookkeeping for persistence
    /// (which entries are already on disk) without cloning any model.
    pub fn fingerprints(&self) -> Vec<u128> {
        let mut all: Vec<u128> = self
            .shards
            .iter()
            .flat_map(|s| s.lock().unwrap().keys().copied().collect::<Vec<_>>())
            .collect();
        all.sort_unstable();
        all
    }
}

fn mix(h: u128, v: u64) -> u128 {
    // 128-bit FNV-1a-style absorb followed by a splitmix-like stir; cheap
    // and well-distributed enough for a cache key.
    let mut h = (h ^ v as u128).wrapping_mul(0x0000000001000000000000000000013B);
    h ^= h >> 67;
    h
}

/// Structural fingerprint of one expression, memoized per `ExprRef`.
///
/// Two expressions with equal fingerprints are (modulo 2^-128 collisions)
/// structurally identical trees over the same symbol ids — in particular
/// they are equisatisfiable, which is all the shared cache needs.
pub fn fingerprint(pool: &ExprPool, root: ExprRef, memo: &mut HashMap<ExprRef, u128>) -> u128 {
    // Explicit post-order stack: expression DAGs (table-lookup ITE chains)
    // can be thousands of nodes deep.
    let mut stack = vec![root];
    while let Some(&e) = stack.last() {
        if memo.contains_key(&e) {
            stack.pop();
            continue;
        }
        let missing: Vec<ExprRef> = pool
            .node(e)
            .children()
            .filter(|c| !memo.contains_key(c))
            .collect();
        if !missing.is_empty() {
            stack.extend(missing);
            continue;
        }
        let h = match *pool.node(e) {
            Node::Const { width, bits } => {
                let h = mix(1, width as u64);
                mix(h, bits)
            }
            Node::Sym { id, width } => {
                let h = mix(2, width as u64);
                mix(h, id as u64)
            }
            Node::Bin { op, width, a, b } => {
                let h = mix(3, op as u64);
                let h = mix(h, width as u64);
                let h = mix(h, memo[&a] as u64);
                let h = mix(h, (memo[&a] >> 64) as u64);
                let h = mix(h, memo[&b] as u64);
                mix(h, (memo[&b] >> 64) as u64)
            }
            Node::Cmp { pred, width, a, b } => {
                let h = mix(4, pred as u64);
                let h = mix(h, width as u64);
                let h = mix(h, memo[&a] as u64);
                let h = mix(h, (memo[&a] >> 64) as u64);
                let h = mix(h, memo[&b] as u64);
                mix(h, (memo[&b] >> 64) as u64)
            }
            Node::Ite { width, c, t, f } => {
                let h = mix(5, width as u64);
                let h = mix(h, memo[&c] as u64);
                let h = mix(h, (memo[&c] >> 64) as u64);
                let h = mix(h, memo[&t] as u64);
                let h = mix(h, (memo[&t] >> 64) as u64);
                let h = mix(h, memo[&f] as u64);
                mix(h, (memo[&f] >> 64) as u64)
            }
            Node::Zext { width, a } => {
                let h = mix(6, width as u64);
                let h = mix(h, memo[&a] as u64);
                mix(h, (memo[&a] >> 64) as u64)
            }
            Node::Sext { width, a } => {
                let h = mix(7, width as u64);
                let h = mix(h, memo[&a] as u64);
                mix(h, (memo[&a] >> 64) as u64)
            }
            Node::Trunc { width, a } => {
                let h = mix(8, width as u64);
                let h = mix(h, memo[&a] as u64);
                mix(h, (memo[&a] >> 64) as u64)
            }
        };
        memo.insert(e, h);
        stack.pop();
    }
    memo[&root]
}

/// Fingerprint of a whole (canonicalized) constraint set: per-constraint
/// fingerprints are sorted so the key is order-independent, then folded.
pub fn set_fingerprint(
    pool: &ExprPool,
    constraints: &[ExprRef],
    memo: &mut HashMap<ExprRef, u128>,
) -> u128 {
    let mut fps: Vec<u128> = constraints
        .iter()
        .map(|&c| fingerprint(pool, c, memo))
        .collect();
    fps.sort_unstable();
    fps.dedup();
    let mut h = mix(9, fps.len() as u64);
    for fp in fps {
        h = mix(h, fp as u64);
        h = mix(h, (fp >> 64) as u64);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use overify_ir::{BinOp, CmpPred};

    #[test]
    fn fingerprints_are_pool_independent() {
        // Build the same formula in two pools with different construction
        // histories; fingerprints must agree.
        let mut p1 = ExprPool::new();
        let x1 = p1.fresh_sym(8);
        let k1 = p1.constant(8, 7);
        let c1 = p1.cmp(CmpPred::Ult, x1, k1);

        let mut p2 = ExprPool::new();
        let x2 = p2.fresh_sym(8);
        // Extra garbage shifts ExprRef numbering in pool 2.
        let g = p2.constant(8, 99);
        let _ = p2.bin(BinOp::Add, x2, g);
        let k2 = p2.constant(8, 7);
        let c2 = p2.cmp(CmpPred::Ult, x2, k2);

        assert_ne!(c1, c2, "test should exercise differing ExprRefs");
        let mut m1 = HashMap::new();
        let mut m2 = HashMap::new();
        assert_eq!(fingerprint(&p1, c1, &mut m1), fingerprint(&p2, c2, &mut m2));
    }

    #[test]
    fn distinct_structures_distinct_fingerprints() {
        let mut p = ExprPool::new();
        let x = p.fresh_sym(8);
        let y = p.fresh_sym(8);
        let k = p.constant(8, 7);
        let a = p.cmp(CmpPred::Ult, x, k);
        let b = p.cmp(CmpPred::Ult, y, k);
        let c = p.cmp(CmpPred::Ule, x, k);
        let mut m = HashMap::new();
        let fa = fingerprint(&p, a, &mut m);
        let fb = fingerprint(&p, b, &mut m);
        let fc = fingerprint(&p, c, &mut m);
        assert_ne!(fa, fb);
        assert_ne!(fa, fc);
        assert_ne!(fb, fc);
    }

    #[test]
    fn set_fingerprint_is_order_independent() {
        let mut p = ExprPool::new();
        let x = p.fresh_sym(8);
        let k1 = p.constant(8, 7);
        let k2 = p.constant(8, 9);
        let a = p.cmp(CmpPred::Ult, x, k1);
        let b = p.cmp(CmpPred::Ugt, x, k2);
        let mut m = HashMap::new();
        assert_eq!(
            set_fingerprint(&p, &[a, b], &mut m),
            set_fingerprint(&p, &[b, a], &mut m)
        );
        assert_ne!(
            set_fingerprint(&p, &[a, b], &mut m),
            set_fingerprint(&p, &[a], &mut m)
        );
    }

    #[test]
    fn cache_roundtrip() {
        let cache = SharedQueryCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.lookup(42), None);
        cache.publish(42, None);
        assert_eq!(cache.lookup(42), Some(None));
        let mut model = Model::default();
        model.values.insert(0, 7);
        cache.publish(43, Some(model.clone()));
        assert_eq!(cache.lookup(43), Some(Some(model)));
        assert_eq!(cache.len(), 2);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn absorb_inserts_only_new_entries_and_skips_counters() {
        let cache = SharedQueryCache::new();
        let mut model = Model::default();
        model.values.insert(1, 4);
        cache.publish(10, Some(model.clone()));

        let mut other = Model::default();
        other.values.insert(1, 9);
        // 10 already present (existing verdict wins), 20/21 are new.
        let added = cache.absorb(&[(10, Some(other)), (20, None), (21, Some(model.clone()))]);
        assert_eq!(added, 2);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.lookup(10), Some(Some(model.clone())), "not clobbered");
        assert_eq!(cache.lookup(20), Some(None));
        assert_eq!(cache.lookup(21), Some(Some(model)));
        // Only the three lookups above touched the counters.
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (3, 0));
        // Absorbing the same delta again is a no-op.
        assert_eq!(cache.absorb(&[(20, None)]), 0);
    }

    #[test]
    fn snapshot_is_sorted_and_clear_resets() {
        let cache = SharedQueryCache::new();
        let mut model = Model::default();
        model.values.insert(3, 9);
        // Fingerprints spread across shards (high bits select the shard).
        for fp in [7u128, 5u128 << 96, 3u128 << 120, 11u128] {
            cache.publish(fp, if fp == 7 { Some(model.clone()) } else { None });
        }
        let snap = cache.snapshot();
        assert_eq!(snap.len(), 4);
        assert!(snap.windows(2).all(|w| w[0].0 < w[1].0), "sorted by fp");
        assert_eq!(snap[0], (7, Some(model)));
        assert_eq!(
            cache.fingerprints(),
            snap.iter().map(|&(fp, _)| fp).collect::<Vec<_>>()
        );
        let only_small = cache.snapshot_if(|fp| fp < 100);
        assert_eq!(only_small.len(), 2);
        assert!(only_small.iter().all(|&(fp, _)| fp == 7 || fp == 11));

        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
        assert_eq!(cache.lookup(7), None);
    }
}
