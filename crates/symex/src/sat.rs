//! A CDCL SAT solver.
//!
//! Conflict-driven clause learning with two-watched-literal propagation,
//! first-UIP learning, activity-based (VSIDS-style) decisions, phase saving
//! and geometric restarts. Small but real: the bit-blasted queries the
//! symbolic executor produces (table-lookup ITE chains, adder/comparator
//! networks) are well within its reach.

/// A boolean variable, indexed from 0.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Var(pub u32);

/// A literal: variable plus sign. Encoded as `2*var + (negated as usize)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Lit(pub u32);

impl Lit {
    /// Positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// Negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit((v.0 << 1) | 1)
    }

    /// Literal of `v` with the given sign (`true` = positive).
    pub fn new(v: Var, positive: bool) -> Lit {
        if positive {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// True if the literal is negated.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complementary literal.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Val {
    True,
    False,
    Undef,
}

/// Solver outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SatOutcome {
    Sat,
    Unsat,
}

/// The solver. Use one instance per query (cheap to construct).
pub struct Sat {
    clauses: Vec<Vec<Lit>>,
    /// `watches[lit] = clause indices watching lit`.
    watches: Vec<Vec<u32>>,
    assign: Vec<Val>,
    /// Saved phases for decision polarity.
    phase: Vec<bool>,
    level: Vec<u32>,
    /// Clause that implied the assignment (`u32::MAX` = decision).
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    act_inc: f64,
    /// Empty-clause flag (trivially unsat input).
    unsat: bool,
    /// Decisions made (stats).
    pub decisions: u64,
    /// Conflicts found (stats).
    pub conflicts: u64,
}

const REASON_DECISION: u32 = u32::MAX;

impl Default for Sat {
    fn default() -> Self {
        Self::new()
    }
}

impl Sat {
    /// Creates an empty solver.
    pub fn new() -> Sat {
        Sat {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            act_inc: 1.0,
            unsat: false,
            decisions: 0,
            conflicts: 0,
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(Val::Undef);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(REASON_DECISION);
        self.activity.push(0.0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    fn value(&self, l: Lit) -> Val {
        match self.assign[l.var().0 as usize] {
            Val::Undef => Val::Undef,
            Val::True => {
                if l.is_neg() {
                    Val::False
                } else {
                    Val::True
                }
            }
            Val::False => {
                if l.is_neg() {
                    Val::True
                } else {
                    Val::False
                }
            }
        }
    }

    /// Adds a clause. Duplicate literals are removed; tautologies are
    /// dropped. Must be called before `solve`.
    pub fn add_clause(&mut self, mut lits: Vec<Lit>) {
        lits.sort_by_key(|l| l.0);
        lits.dedup();
        // Tautology?
        for w in lits.windows(2) {
            if w[0].var() == w[1].var() {
                return;
            }
        }
        match lits.len() {
            0 => self.unsat = true,
            1 => {
                // Enqueue at level 0 (may conflict with prior units).
                match self.value(lits[0]) {
                    Val::False => self.unsat = true,
                    Val::True => {}
                    Val::Undef => self.enqueue(lits[0], REASON_DECISION),
                }
            }
            _ => {
                let idx = self.clauses.len() as u32;
                self.watches[lits[0].negate().0 as usize].push(idx);
                self.watches[lits[1].negate().0 as usize].push(idx);
                self.clauses.push(lits);
            }
        }
    }

    fn enqueue(&mut self, l: Lit, reason: u32) {
        let v = l.var().0 as usize;
        self.assign[v] = if l.is_neg() { Val::False } else { Val::True };
        self.phase[v] = !l.is_neg();
        self.level[v] = self.trail_lim.len() as u32;
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation; returns a conflicting clause index on conflict.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let l = self.trail[self.qhead];
            self.qhead += 1;
            // Clauses watching ¬l need a new watch or become unit/conflict.
            let mut ws = std::mem::take(&mut self.watches[l.0 as usize]);
            let mut i = 0;
            while i < ws.len() {
                let ci = ws[i];
                // Temporarily detach the clause to appease the borrow
                // checker; it is always reattached below.
                let mut clause = std::mem::take(&mut self.clauses[ci as usize]);
                // Normalize: watched literals are positions 0 and 1.
                let falsified = l.negate();
                if clause[0] == falsified {
                    clause.swap(0, 1);
                }
                debug_assert_eq!(clause[1], falsified);
                // Already satisfied?
                if self.value(clause[0]) == Val::True {
                    self.clauses[ci as usize] = clause;
                    i += 1;
                    continue;
                }
                // Find a replacement watch.
                let mut found = false;
                for k in 2..clause.len() {
                    if self.value(clause[k]) != Val::False {
                        clause.swap(1, k);
                        let new_watch = clause[1].negate();
                        self.watches[new_watch.0 as usize].push(ci);
                        ws.swap_remove(i);
                        found = true;
                        break;
                    }
                }
                if found {
                    self.clauses[ci as usize] = clause;
                    continue;
                }
                // Unit or conflict.
                let head = clause[0];
                self.clauses[ci as usize] = clause;
                match self.value(head) {
                    Val::Undef => {
                        self.enqueue(head, ci);
                        i += 1;
                    }
                    Val::False => {
                        // Conflict: restore the remaining watches.
                        self.watches[l.0 as usize] = ws;
                        return Some(ci);
                    }
                    Val::True => unreachable!(),
                }
            }
            self.watches[l.0 as usize] = ws;
        }
        None
    }

    fn bump(&mut self, v: Var) {
        self.activity[v.0 as usize] += self.act_inc;
        if self.activity[v.0 as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.act_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis. Returns (learned clause, backjump level).
    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, u32) {
        let mut learned: Vec<Lit> = vec![Lit(0)]; // Slot 0 = asserting literal.
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut clause_idx = confl;
        let mut trail_pos = self.trail.len();
        let cur_level = self.trail_lim.len() as u32;

        loop {
            let clause: Vec<Lit> = self.clauses[clause_idx as usize].clone();
            let start = if p.is_some() { 1 } else { 0 };
            for &q in &clause[start..] {
                let v = q.var();
                if !seen[v.0 as usize] && self.level[v.0 as usize] > 0 {
                    seen[v.0 as usize] = true;
                    self.bump(v);
                    if self.level[v.0 as usize] == cur_level {
                        counter += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            // Walk the trail backwards to the next marked literal.
            loop {
                trail_pos -= 1;
                let l = self.trail[trail_pos];
                if seen[l.var().0 as usize] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.unwrap().var();
            seen[pv.0 as usize] = false;
            counter -= 1;
            if counter == 0 {
                learned[0] = p.unwrap().negate();
                break;
            }
            clause_idx = self.reason[pv.0 as usize];
            debug_assert_ne!(clause_idx, REASON_DECISION);
            // Reuse the loop with p set: clause[0] is the implied literal.
            // Normalize so position 0 holds p's literal.
            let clause = &mut self.clauses[clause_idx as usize];
            if let Some(pos) = clause.iter().position(|&l| l.var() == pv) {
                clause.swap(0, pos);
            }
        }

        // Backjump level = max level among the other learned literals.
        let mut bt = 0;
        for &l in &learned[1..] {
            bt = bt.max(self.level[l.var().0 as usize]);
        }
        // Put a literal of the backjump level in watch position 1.
        if learned.len() > 1 {
            let mut max_i = 1;
            for i in 1..learned.len() {
                if self.level[learned[i].var().0 as usize]
                    > self.level[learned[max_i].var().0 as usize]
                {
                    max_i = i;
                }
            }
            learned.swap(1, max_i);
        }
        (learned, bt)
    }

    fn backtrack(&mut self, level: u32) {
        while self.trail_lim.len() as u32 > level {
            let lim = self.trail_lim.pop().unwrap();
            while self.trail.len() > lim {
                let l = self.trail.pop().unwrap();
                self.assign[l.var().0 as usize] = Val::Undef;
            }
        }
        self.qhead = self.trail.len().min(self.qhead);
        self.qhead = self.trail.len();
    }

    fn decide(&mut self) -> Option<Lit> {
        let mut best: Option<Var> = None;
        let mut best_act = -1.0;
        for v in 0..self.num_vars() {
            if self.assign[v] == Val::Undef && self.activity[v] > best_act {
                best = Some(Var(v as u32));
                best_act = self.activity[v];
            }
        }
        best.map(|v| Lit::new(v, self.phase[v.0 as usize]))
    }

    /// Solves the instance. Returns `Sat` (model readable via
    /// [`Sat::model_value`]) or `Unsat`.
    pub fn solve(&mut self) -> SatOutcome {
        if self.unsat {
            return SatOutcome::Unsat;
        }
        if self.propagate().is_some() {
            return SatOutcome::Unsat;
        }
        let mut conflicts_until_restart = 100u64;
        let mut since_restart = 0u64;
        loop {
            match self.propagate() {
                Some(confl) => {
                    self.conflicts += 1;
                    since_restart += 1;
                    if self.trail_lim.is_empty() {
                        return SatOutcome::Unsat;
                    }
                    let (learned, bt) = self.analyze(confl);
                    self.backtrack(bt);
                    self.act_inc *= 1.0 / 0.95;
                    if learned.len() == 1 {
                        self.enqueue(learned[0], REASON_DECISION);
                    } else {
                        let idx = self.clauses.len() as u32;
                        self.watches[learned[0].negate().0 as usize].push(idx);
                        self.watches[learned[1].negate().0 as usize].push(idx);
                        let unit = learned[0];
                        self.clauses.push(learned);
                        self.enqueue(unit, idx);
                    }
                }
                None => {
                    if since_restart >= conflicts_until_restart {
                        since_restart = 0;
                        conflicts_until_restart = (conflicts_until_restart * 3) / 2;
                        self.backtrack(0);
                        continue;
                    }
                    match self.decide() {
                        None => return SatOutcome::Sat,
                        Some(l) => {
                            self.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(l, REASON_DECISION);
                        }
                    }
                }
            }
        }
    }

    /// Model value of a variable after `Sat` (undefined vars read `false`).
    pub fn model_value(&self, v: Var) -> bool {
        matches!(self.assign[v.0 as usize], Val::True)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(i: i32) -> Lit {
        let v = Var(i.unsigned_abs() - 1);
        Lit::new(v, i > 0)
    }

    fn solver_with(nvars: usize, clauses: &[&[i32]]) -> Sat {
        let mut s = Sat::new();
        for _ in 0..nvars {
            s.new_var();
        }
        for c in clauses {
            s.add_clause(c.iter().map(|&i| lit(i)).collect());
        }
        s
    }

    #[test]
    fn trivial_sat_unsat() {
        let mut s = solver_with(1, &[&[1]]);
        assert_eq!(s.solve(), SatOutcome::Sat);
        assert!(s.model_value(Var(0)));

        let mut s = solver_with(1, &[&[1], &[-1]]);
        assert_eq!(s.solve(), SatOutcome::Unsat);
    }

    #[test]
    fn chain_implication() {
        // x1 & (x1->x2) & (x2->x3) & (x3 -> !x1) is unsat.
        let mut s = solver_with(3, &[&[1], &[-1, 2], &[-2, 3], &[-3, -1]]);
        assert_eq!(s.solve(), SatOutcome::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // p_ij: pigeon i in hole j (i in 0..3, j in 0..2). Var = i*2+j+1.
        let mut clauses: Vec<Vec<i32>> = Vec::new();
        for i in 0..3 {
            clauses.push(vec![i * 2 + 1, i * 2 + 2]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    clauses.push(vec![-(i1 * 2 + j + 1), -(i2 * 2 + j + 1)]);
                }
            }
        }
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        let mut s = solver_with(6, &refs);
        assert_eq!(s.solve(), SatOutcome::Unsat);
    }

    #[test]
    fn finds_model_of_random_3sat() {
        // A satisfiable planted instance.
        let mut s = solver_with(
            5,
            &[
                &[1, 2, 3],
                &[-1, -2, 4],
                &[2, -3, 5],
                &[-4, -5, 1],
                &[3, 4, -2],
                &[-1, 5, 2],
            ],
        );
        assert_eq!(s.solve(), SatOutcome::Sat);
        // Verify the model satisfies every clause.
        let model: Vec<bool> = (0..5).map(|v| s.model_value(Var(v))).collect();
        let check = |c: &[i32]| {
            c.iter().any(|&i| {
                let val = model[(i.unsigned_abs() - 1) as usize];
                if i > 0 {
                    val
                } else {
                    !val
                }
            })
        };
        for c in [
            vec![1, 2, 3],
            vec![-1, -2, 4],
            vec![2, -3, 5],
            vec![-4, -5, 1],
            vec![3, 4, -2],
            vec![-1, 5, 2],
        ] {
            assert!(check(&c), "clause {c:?} not satisfied");
        }
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = solver_with(1, &[&[]]);
        assert_eq!(s.solve(), SatOutcome::Unsat);
    }

    #[test]
    fn xor_chain() {
        // CNF of x1 xor x2 = 1, x2 xor x3 = 1, x1 xor x3 = 1 → unsat (parity).
        let mut s = solver_with(
            3,
            &[&[1, 2], &[-1, -2], &[2, 3], &[-2, -3], &[1, 3], &[-1, -3]],
        );
        assert_eq!(s.solve(), SatOutcome::Unsat);
    }
}
