//! Unsigned interval analysis over symbolic expressions.
//!
//! The solver's cheapest layer: per-node `[lo, hi]` bounds computed
//! bottom-up and memoized per pool node. Because nodes are hash-consed and
//! context-free, the cache never invalidates.

use crate::expr::{ExprPool, ExprRef, Node};
use overify_ir::BinOp;
use std::collections::HashMap;

/// An inclusive unsigned interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    pub lo: u64,
    pub hi: u64,
}

impl Interval {
    /// Full range of a width.
    pub fn full(width: u32) -> Interval {
        Interval {
            lo: 0,
            hi: if width >= 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            },
        }
    }

    /// Single value.
    pub fn point(v: u64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// True if this is exactly `{v}`.
    pub fn is(&self, v: u64) -> bool {
        self.lo == v && self.hi == v
    }
}

/// Memoizing interval evaluator.
#[derive(Default)]
pub struct IntervalCache {
    memo: HashMap<ExprRef, Interval>,
}

impl IntervalCache {
    /// Creates an empty cache.
    pub fn new() -> IntervalCache {
        IntervalCache::default()
    }

    /// The interval of `e`.
    pub fn get(&mut self, pool: &ExprPool, e: ExprRef) -> Interval {
        if let Some(&iv) = self.memo.get(&e) {
            return iv;
        }
        let width = pool.width(e);
        let full = Interval::full(width);
        let iv = match *pool.node(e) {
            Node::Const { bits, .. } => Interval::point(bits),
            Node::Sym { .. } => full,
            Node::Zext { a, .. } => self.get(pool, a),
            Node::Sext { a, .. } => {
                let wa = pool.width(a);
                let ia = self.get(pool, a);
                // Only tight when the source is provably non-negative.
                let smax = (1u64 << (wa - 1)) - 1;
                if ia.hi <= smax {
                    ia
                } else {
                    full
                }
            }
            Node::Trunc { width, a } => {
                let ia = self.get(pool, a);
                if ia.hi <= Interval::full(width).hi {
                    ia
                } else {
                    full
                }
            }
            Node::Cmp { .. } => Interval { lo: 0, hi: 1 },
            Node::Ite { t, f, .. } => {
                let it = self.get(pool, t);
                let iff = self.get(pool, f);
                Interval {
                    lo: it.lo.min(iff.lo),
                    hi: it.hi.max(iff.hi),
                }
            }
            Node::Bin { op, width, a, b } => {
                let ia = self.get(pool, a);
                let ib = self.get(pool, b);
                bin_interval(op, width, ia, ib).unwrap_or(full)
            }
        };
        self.memo.insert(e, iv);
        iv
    }

    /// Fast truth test: `Some(true/false)` when the 1-bit expression is
    /// decided by intervals alone.
    pub fn decide(&mut self, pool: &ExprPool, e: ExprRef) -> Option<bool> {
        // First the node's own interval.
        let iv = self.get(pool, e);
        if iv.is(0) {
            return Some(false);
        }
        if iv.is(1) {
            return Some(true);
        }
        // Comparisons can often be decided from their operands' intervals.
        if let Node::Cmp { pred, a, b, .. } = *pool.node(e) {
            let ia = self.get(pool, a);
            let ib = self.get(pool, b);
            use overify_ir::CmpPred::*;
            let decided = match pred {
                Ult => {
                    if ia.hi < ib.lo {
                        Some(true)
                    } else if ia.lo >= ib.hi.saturating_add(0) && ia.lo >= ib.hi {
                        // a.lo >= b.hi means a >= b always (since b <= b.hi).
                        Some(false)
                    } else {
                        None
                    }
                }
                Ule => {
                    if ia.hi <= ib.lo {
                        Some(true)
                    } else if ia.lo > ib.hi {
                        Some(false)
                    } else {
                        None
                    }
                }
                Ugt => {
                    if ia.lo > ib.hi {
                        Some(true)
                    } else if ia.hi <= ib.lo {
                        Some(false)
                    } else {
                        None
                    }
                }
                Uge => {
                    if ia.lo >= ib.hi {
                        Some(true)
                    } else if ia.hi < ib.lo {
                        Some(false)
                    } else {
                        None
                    }
                }
                Eq => {
                    if ia.lo == ia.hi && ib.lo == ib.hi {
                        Some(ia.lo == ib.lo)
                    } else if ia.hi < ib.lo || ib.hi < ia.lo {
                        Some(false)
                    } else {
                        None
                    }
                }
                Ne => {
                    if ia.lo == ia.hi && ib.lo == ib.hi {
                        Some(ia.lo != ib.lo)
                    } else if ia.hi < ib.lo || ib.hi < ia.lo {
                        Some(true)
                    } else {
                        None
                    }
                }
                // Signed comparisons: decided only when both sides stay in
                // the non-negative half, where signed and unsigned agree.
                Slt | Sle | Sgt | Sge => {
                    let w = pool.width(a);
                    let smax = if w >= 64 {
                        i64::MAX as u64
                    } else {
                        (1u64 << (w - 1)) - 1
                    };
                    if ia.hi <= smax && ib.hi <= smax {
                        let upred = match pred {
                            Slt => Ult,
                            Sle => Ule,
                            Sgt => Ugt,
                            Sge => Uge,
                            _ => unreachable!(),
                        };
                        // Recurse once through the unsigned logic.
                        return self.decide_cmp(upred, ia, ib);
                    }
                    None
                }
            };
            if decided.is_some() {
                return decided;
            }
        }
        None
    }

    fn decide_cmp(
        &mut self,
        pred: overify_ir::CmpPred,
        ia: Interval,
        ib: Interval,
    ) -> Option<bool> {
        use overify_ir::CmpPred::*;
        match pred {
            Ult => {
                if ia.hi < ib.lo {
                    Some(true)
                } else if ia.lo >= ib.hi {
                    Some(false)
                } else {
                    None
                }
            }
            Ule => {
                if ia.hi <= ib.lo {
                    Some(true)
                } else if ia.lo > ib.hi {
                    Some(false)
                } else {
                    None
                }
            }
            Ugt => {
                if ia.lo > ib.hi {
                    Some(true)
                } else if ia.hi <= ib.lo {
                    Some(false)
                } else {
                    None
                }
            }
            Uge => {
                if ia.lo >= ib.hi {
                    Some(true)
                } else if ia.hi < ib.lo {
                    Some(false)
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

/// Interval transfer for binary operations; `None` = unknown.
fn bin_interval(op: BinOp, width: u32, a: Interval, b: Interval) -> Option<Interval> {
    let m = Interval::full(width).hi;
    match op {
        BinOp::Add => {
            let lo = a.lo.checked_add(b.lo)?;
            let hi = a.hi.checked_add(b.hi)?;
            (hi <= m).then_some(Interval { lo, hi })
        }
        BinOp::Sub => {
            // Only tight when no borrow can occur.
            if a.lo >= b.hi {
                Some(Interval {
                    lo: a.lo - b.hi,
                    hi: a.hi - b.lo,
                })
            } else {
                None
            }
        }
        BinOp::Mul => {
            let lo = a.lo.checked_mul(b.lo)?;
            let hi = a.hi.checked_mul(b.hi)?;
            (hi <= m).then_some(Interval { lo, hi })
        }
        BinOp::UDiv => {
            // `b.lo > 0` implies `b.hi > 0`, so both divisions are safe.
            Some(Interval {
                lo: a.lo.checked_div(b.hi)?,
                hi: a.hi.checked_div(b.lo)?,
            })
        }
        BinOp::URem => {
            if b.lo == 0 {
                None
            } else {
                Some(Interval {
                    lo: 0,
                    hi: (b.hi - 1).min(a.hi),
                })
            }
        }
        BinOp::And => Some(Interval {
            lo: 0,
            hi: a.hi.min(b.hi),
        }),
        BinOp::Or | BinOp::Xor => {
            // The result fits in as many bits as the wider operand: bound
            // by the next power of two *above* the larger maximum.
            let hi = a.hi.max(b.hi);
            let bound = hi
                .checked_add(1)
                .and_then(u64::checked_next_power_of_two)
                .map_or(m, |p| (p - 1).min(m));
            Some(Interval { lo: 0, hi: bound })
        }
        BinOp::Shl => {
            if b.lo == b.hi && b.lo < width as u64 {
                let hi = a.hi.checked_shl(b.lo as u32)?;
                (hi <= m).then_some(Interval {
                    lo: a.lo << b.lo,
                    hi,
                })
            } else {
                None
            }
        }
        BinOp::LShr => {
            if b.lo == b.hi && b.lo < width as u64 {
                Some(Interval {
                    lo: a.lo >> b.lo,
                    hi: a.hi >> b.lo,
                })
            } else {
                Some(Interval { lo: 0, hi: a.hi })
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overify_ir::CmpPred;

    #[test]
    fn byte_plus_small_const_stays_bounded() {
        let mut p = ExprPool::new();
        let mut iv = IntervalCache::new();
        let x = p.fresh_sym(8);
        let z = p.zext(x, 32);
        let ten = p.constant(32, 10);
        let sum = p.bin(BinOp::Add, z, ten);
        assert_eq!(iv.get(&p, sum), Interval { lo: 10, hi: 265 });
    }

    #[test]
    fn decides_impossible_compare() {
        let mut p = ExprPool::new();
        let mut iv = IntervalCache::new();
        let x = p.fresh_sym(8);
        let z = p.zext(x, 32);
        let k = p.constant(32, 300);
        // x (0..255) can never be >= 300... but the builder already folds
        // narrowable compares; use a non-foldable arrangement: z + 1 >= 300.
        let one = p.constant(32, 1);
        let zp = p.bin(BinOp::Add, z, one);
        let c = p.cmp(CmpPred::Uge, zp, k);
        assert_eq!(iv.decide(&p, c), Some(false));
        // And one that's always true: z < 300.
        let c2 = p.cmp(CmpPred::Ult, zp, k);
        assert_eq!(iv.decide(&p, c2), Some(true));
    }

    #[test]
    fn masked_value_range() {
        let mut p = ExprPool::new();
        let mut iv = IntervalCache::new();
        let x = p.fresh_sym(32);
        let k = p.constant(32, 7);
        let a = p.bin(BinOp::And, x, k);
        assert_eq!(iv.get(&p, a), Interval { lo: 0, hi: 7 });
    }

    #[test]
    fn undecidable_returns_none() {
        let mut p = ExprPool::new();
        let mut iv = IntervalCache::new();
        let x = p.fresh_sym(8);
        let k = p.constant(8, 100);
        let c = p.cmp(CmpPred::Ult, x, k);
        assert_eq!(iv.decide(&p, c), None);
    }

    #[test]
    fn urem_bound() {
        let mut p = ExprPool::new();
        let mut iv = IntervalCache::new();
        let x = p.fresh_sym(32);
        let k = p.constant(32, 10);
        let r = p.bin(BinOp::URem, x, k);
        assert_eq!(iv.get(&p, r), Interval { lo: 0, hi: 9 });
    }
}
