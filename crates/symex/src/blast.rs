//! Bit-blasting: Tseitin translation of expressions to CNF.
//!
//! Each expression node becomes a vector of SAT literals (LSB first).
//! Encodings are the textbook circuits: ripple-carry adders, shift-add
//! multipliers, mux-based barrel shifters, MSB-first comparators. Division
//! is encoded by defining quotient/remainder variables constrained by
//! `q*b + r = a ∧ r < b` (with the shared division-by-zero defaults).

use crate::expr::{div_zero_default, ExprPool, ExprRef, Node};
use crate::sat::{Lit, Sat};
use overify_ir::{BinOp, CmpPred};
use std::collections::HashMap;

/// Translates expressions into a [`Sat`] instance.
pub struct Blaster<'p> {
    pool: &'p ExprPool,
    pub sat: Sat,
    bits: HashMap<ExprRef, Vec<Lit>>,
    /// Bit literals of each symbolic variable (for model extraction).
    sym_bits: HashMap<u32, Vec<Lit>>,
    tru: Lit,
}

impl<'p> Blaster<'p> {
    /// Creates a blaster over `pool`.
    pub fn new(pool: &'p ExprPool) -> Blaster<'p> {
        let mut sat = Sat::new();
        let t = sat.new_var();
        sat.add_clause(vec![Lit::pos(t)]);
        Blaster {
            pool,
            sat,
            bits: HashMap::new(),
            sym_bits: HashMap::new(),
            tru: Lit::pos(t),
        }
    }

    fn fals(&self) -> Lit {
        self.tru.negate()
    }

    fn const_lit(&self, b: bool) -> Lit {
        if b {
            self.tru
        } else {
            self.fals()
        }
    }

    fn fresh(&mut self) -> Lit {
        Lit::pos(self.sat.new_var())
    }

    /// Asserts a 1-bit expression true.
    pub fn assert_true(&mut self, e: ExprRef) {
        let b = self.bits_of(e);
        debug_assert_eq!(b.len(), 1);
        self.sat.add_clause(vec![b[0]]);
    }

    /// Reads a symbolic variable's value out of the model.
    pub fn model_sym(&self, id: u32) -> Option<u64> {
        let bits = self.sym_bits.get(&id)?;
        let mut v = 0u64;
        for (i, l) in bits.iter().enumerate() {
            let val = self.sat.model_value(l.var());
            let val = if l.is_neg() { !val } else { val };
            if val {
                v |= 1 << i;
            }
        }
        Some(v)
    }

    // ---- Gate primitives (Tseitin) ----

    fn gate_and(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.fals() || b == self.fals() {
            return self.fals();
        }
        if a == self.tru {
            return b;
        }
        if b == self.tru {
            return a;
        }
        if a == b {
            return a;
        }
        if a == b.negate() {
            return self.fals();
        }
        let o = self.fresh();
        self.sat.add_clause(vec![o.negate(), a]);
        self.sat.add_clause(vec![o.negate(), b]);
        self.sat.add_clause(vec![o, a.negate(), b.negate()]);
        o
    }

    fn gate_or(&mut self, a: Lit, b: Lit) -> Lit {
        self.gate_and(a.negate(), b.negate()).negate()
    }

    fn gate_xor(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.fals() {
            return b;
        }
        if b == self.fals() {
            return a;
        }
        if a == self.tru {
            return b.negate();
        }
        if b == self.tru {
            return a.negate();
        }
        if a == b {
            return self.fals();
        }
        if a == b.negate() {
            return self.tru;
        }
        let o = self.fresh();
        self.sat.add_clause(vec![o.negate(), a, b]);
        self.sat
            .add_clause(vec![o.negate(), a.negate(), b.negate()]);
        self.sat.add_clause(vec![o, a, b.negate()]);
        self.sat.add_clause(vec![o, a.negate(), b]);
        o
    }

    fn gate_mux(&mut self, c: Lit, t: Lit, f: Lit) -> Lit {
        if c == self.tru {
            return t;
        }
        if c == self.fals() {
            return f;
        }
        if t == f {
            return t;
        }
        let a = self.gate_and(c, t);
        let b = self.gate_and(c.negate(), f);
        self.gate_or(a, b)
    }

    /// Full adder; returns (sum, carry).
    fn full_adder(&mut self, a: Lit, b: Lit, cin: Lit) -> (Lit, Lit) {
        let axb = self.gate_xor(a, b);
        let sum = self.gate_xor(axb, cin);
        let c1 = self.gate_and(a, b);
        let c2 = self.gate_and(axb, cin);
        let carry = self.gate_or(c1, c2);
        (sum, carry)
    }

    fn add_vec(&mut self, a: &[Lit], b: &[Lit], mut carry: Lit) -> Vec<Lit> {
        let mut out = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            let (s, c) = self.full_adder(a[i], b[i], carry);
            out.push(s);
            carry = c;
        }
        out
    }

    fn neg_vec(&mut self, a: &[Lit]) -> Vec<Lit> {
        // Two's complement: ~a + 1.
        let inv: Vec<Lit> = a.iter().map(|l| l.negate()).collect();
        let zeros = vec![self.fals(); a.len()];
        self.add_vec(&inv, &zeros, self.tru)
    }

    /// `a < b` unsigned, MSB-first comparator.
    fn ult_vec(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let mut lt = self.fals();
        for i in 0..a.len() {
            // From LSB to MSB: lt = (¬a_i ∧ b_i) ∨ ((a_i ↔ b_i) ∧ lt).
            let nb = self.gate_and(a[i].negate(), b[i]);
            let eq = self.gate_xor(a[i], b[i]).negate();
            let keep = self.gate_and(eq, lt);
            lt = self.gate_or(nb, keep);
        }
        lt
    }

    fn eq_vec(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let mut eq = self.tru;
        for i in 0..a.len() {
            let bit_eq = self.gate_xor(a[i], b[i]).negate();
            eq = self.gate_and(eq, bit_eq);
        }
        eq
    }

    fn is_zero(&mut self, a: &[Lit]) -> Lit {
        let mut any = self.fals();
        for &l in a {
            any = self.gate_or(any, l);
        }
        any.negate()
    }

    fn mux_vec(&mut self, c: Lit, t: &[Lit], f: &[Lit]) -> Vec<Lit> {
        t.iter()
            .zip(f)
            .map(|(&ti, &fi)| self.gate_mux(c, ti, fi))
            .collect()
    }

    fn mul_vec(&mut self, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let w = a.len();
        let mut acc = vec![self.fals(); w];
        for i in 0..w {
            // acc += (a << i) & b[i]
            let mut partial = vec![self.fals(); w];
            for j in 0..(w - i) {
                partial[i + j] = self.gate_and(a[j], b[i]);
            }
            acc = self.add_vec(&acc, &partial, self.fals());
        }
        acc
    }

    /// Unsigned division: introduces fresh q, r with `a = q*b + r ∧ r < b`
    /// when `b != 0`, and the div-zero defaults otherwise.
    fn udivrem(&mut self, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Vec<Lit>) {
        let w = a.len();
        let q: Vec<Lit> = (0..w).map(|_| self.fresh()).collect();
        let r: Vec<Lit> = (0..w).map(|_| self.fresh()).collect();
        let bz = self.is_zero(b);
        // q*b computed in w bits; overflow must be forbidden for the
        // equation to hold in modular arithmetic. We force the product to
        // not wrap by requiring q*b (as computed) + r == a AND r < b; with
        // q fresh the solver picks the true quotient. For the wrapped
        // products a stronger check is needed: assert that the high part of
        // the multiplication is zero. We compute in 2w bits to be exact.
        let ww = 2 * w;
        let mut aa: Vec<Lit> = a.to_vec();
        aa.resize(ww, self.fals());
        let mut qq = q.clone();
        qq.resize(ww, self.fals());
        let mut bb: Vec<Lit> = b.to_vec();
        bb.resize(ww, self.fals());
        let mut rr = r.clone();
        rr.resize(ww, self.fals());
        let prod = self.mul_vec(&qq, &bb);
        let sum = self.add_vec(&prod, &rr, self.fals());
        let eq = self.eq_vec(&sum, &aa);
        let rltb = self.ult_vec(&r, b);
        let ok = self.gate_and(eq, rltb);
        // b != 0 -> ok
        self.sat.add_clause(vec![bz, ok]);
        // b == 0 -> q = default(0), r = a (defaults via mux on use).
        let zeros = vec![self.fals(); w];
        let q_out = self.mux_vec(bz, &zeros, &q);
        let r_out = self.mux_vec(bz, a, &r);
        (q_out, r_out)
    }

    fn shift_vec(&mut self, a: &[Lit], b: &[Lit], op: BinOp) -> Vec<Lit> {
        let w = a.len();
        let fill = match op {
            BinOp::AShr => a[w - 1],
            _ => self.fals(),
        };
        let mut cur: Vec<Lit> = a.to_vec();
        // Barrel shifter over the meaningful shift bits.
        let stages = 64 - (w as u64).leading_zeros(); // ceil(log2(w))+1-ish
        for s in 0..stages.max(1) {
            let amt = 1usize << s;
            let sel = b[s as usize];
            let mut shifted = vec![fill; w];
            for i in 0..w {
                match op {
                    BinOp::Shl => {
                        if i >= amt {
                            shifted[i] = cur[i - amt];
                        }
                    }
                    _ => {
                        if i + amt < w {
                            shifted[i] = cur[i + amt];
                        }
                    }
                }
            }
            cur = self.mux_vec(sel, &shifted, &cur);
        }
        // Any higher shift bit set -> result is all fill.
        let mut high = self.fals();
        for &bit in &b[stages as usize..] {
            high = self.gate_or(high, bit);
        }
        // Also shifts >= w within the staged range produce fill naturally
        // through the cascade (staged shifts cover up to 2^stages-1 >= w).
        let fills = vec![fill; w];
        self.mux_vec(high, &fills, &cur)
    }

    /// Bit vector of an expression (memoized).
    pub fn bits_of(&mut self, e: ExprRef) -> Vec<Lit> {
        if let Some(b) = self.bits.get(&e) {
            return b.clone();
        }
        let out = match *self.pool.node(e) {
            Node::Const { width, bits } => (0..width)
                .map(|i| self.const_lit((bits >> i) & 1 == 1))
                .collect(),
            Node::Sym { id, width } => {
                let bits: Vec<Lit> = (0..width).map(|_| self.fresh()).collect();
                self.sym_bits.insert(id, bits.clone());
                bits
            }
            Node::Zext { width, a } => {
                let mut v = self.bits_of(a);
                v.resize(width as usize, self.fals());
                v
            }
            Node::Sext { width, a } => {
                let mut v = self.bits_of(a);
                let msb = *v.last().unwrap();
                v.resize(width as usize, msb);
                v
            }
            Node::Trunc { width, a } => {
                let mut v = self.bits_of(a);
                v.truncate(width as usize);
                v
            }
            Node::Ite { c, t, f, .. } => {
                let cb = self.bits_of(c)[0];
                let tb = self.bits_of(t);
                let fb = self.bits_of(f);
                self.mux_vec(cb, &tb, &fb)
            }
            Node::Cmp { pred, a, b, .. } => {
                let av = self.bits_of(a);
                let bv = self.bits_of(b);
                vec![self.cmp_bit(pred, &av, &bv)]
            }
            Node::Bin { op, a, b, .. } => {
                let av = self.bits_of(a);
                let bv = self.bits_of(b);
                self.bin_bits(op, &av, &bv)
            }
        };
        self.bits.insert(e, out.clone());
        out
    }

    fn cmp_bit(&mut self, pred: CmpPred, a: &[Lit], b: &[Lit]) -> Lit {
        // Signed comparisons flip the sign bit to reuse the unsigned
        // comparator (biased representation).
        let flip = |this: &mut Self, v: &[Lit]| -> Vec<Lit> {
            let mut out = v.to_vec();
            let last = out.len() - 1;
            out[last] = out[last].negate();
            let _ = this;
            out
        };
        match pred {
            CmpPred::Eq => self.eq_vec(a, b),
            CmpPred::Ne => self.eq_vec(a, b).negate(),
            CmpPred::Ult => self.ult_vec(a, b),
            CmpPred::Ugt => self.ult_vec(b, a),
            CmpPred::Ule => self.ult_vec(b, a).negate(),
            CmpPred::Uge => self.ult_vec(a, b).negate(),
            CmpPred::Slt => {
                let (fa, fb) = (flip(self, a), flip(self, b));
                self.ult_vec(&fa, &fb)
            }
            CmpPred::Sgt => {
                let (fa, fb) = (flip(self, a), flip(self, b));
                self.ult_vec(&fb, &fa)
            }
            CmpPred::Sle => {
                let (fa, fb) = (flip(self, a), flip(self, b));
                self.ult_vec(&fb, &fa).negate()
            }
            CmpPred::Sge => {
                let (fa, fb) = (flip(self, a), flip(self, b));
                self.ult_vec(&fa, &fb).negate()
            }
        }
    }

    fn bin_bits(&mut self, op: BinOp, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        match op {
            BinOp::And => a
                .iter()
                .zip(b)
                .map(|(&x, &y)| self.gate_and(x, y))
                .collect(),
            BinOp::Or => a.iter().zip(b).map(|(&x, &y)| self.gate_or(x, y)).collect(),
            BinOp::Xor => a
                .iter()
                .zip(b)
                .map(|(&x, &y)| self.gate_xor(x, y))
                .collect(),
            BinOp::Add => self.add_vec(a, b, self.fals()),
            BinOp::Sub => {
                let nb = self.neg_vec(b);
                self.add_vec(a, &nb, self.fals())
            }
            BinOp::Mul => self.mul_vec(a, b),
            BinOp::UDiv => self.udivrem(a, b).0,
            BinOp::URem => self.udivrem(a, b).1,
            BinOp::SDiv | BinOp::SRem => {
                // |a| op |b| with sign fix-up; div_zero_default handled by
                // the unsigned core (b==0: q=0, r=|a| then sign fix gives a).
                let w = a.len();
                let sa = a[w - 1];
                let sb = b[w - 1];
                let na = self.neg_vec(a);
                let nb = self.neg_vec(b);
                let abs_a = self.mux_vec(sa, &na, a);
                let abs_b = self.mux_vec(sb, &nb, b);
                let (q, r) = self.udivrem(&abs_a, &abs_b);
                match op {
                    BinOp::SDiv => {
                        let qs = self.gate_xor(sa, sb);
                        let nq = self.neg_vec(&q);
                        self.mux_vec(qs, &nq, &q)
                    }
                    _ => {
                        // Remainder takes the dividend's sign.
                        let nr = self.neg_vec(&r);
                        self.mux_vec(sa, &nr, &r)
                    }
                }
            }
            BinOp::Shl | BinOp::LShr | BinOp::AShr => self.shift_vec(a, b, op),
        }
    }
}

/// Consistency note: [`div_zero_default`] documents the shared semantics;
/// referencing it here keeps the definition honest if encodings change.
const _: fn(BinOp, u64) -> u64 = div_zero_default;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::SatOutcome;

    /// Checks sat-equivalence of `expr == expected` for all 8-bit x values
    /// by querying each concrete case.
    fn assert_matches_eval(build: impl Fn(&mut ExprPool, ExprRef) -> ExprRef) {
        let mut pool = ExprPool::new();
        let x = pool.fresh_sym(8);
        let e = build(&mut pool, x);
        // Pick a handful of x values; constrain x == v and check e's value
        // via SAT against the evaluator.
        for v in [0u64, 1, 2, 7, 8, 127, 128, 200, 255] {
            let xe = pool.constant(8, v);
            let eq = pool.cmp(CmpPred::Eq, x, xe);
            let expect = pool.eval(e, &|_| v);
            let ke = pool.constant(pool.width(e).max(1), expect);
            let prop = pool.cmp(CmpPred::Eq, e, ke);
            let both = pool.and(eq, prop);
            let mut bl = Blaster::new(&pool);
            bl.assert_true(both);
            assert_eq!(bl.sat.solve(), SatOutcome::Sat, "v={v} expect={expect}");
            // And the negation must be unsat.
            let nprop = pool.not(prop);
            let bad = pool.and(eq, nprop);
            let mut bl2 = Blaster::new(&pool);
            bl2.assert_true(bad);
            assert_eq!(bl2.sat.solve(), SatOutcome::Unsat, "v={v}");
        }
    }

    #[test]
    fn add_mul_sub_match_eval() {
        assert_matches_eval(|p, x| {
            let c3 = p.constant(8, 3);
            let m = p.bin(BinOp::Mul, x, c3);
            let c7 = p.constant(8, 7);
            let s = p.bin(BinOp::Add, m, c7);
            let c1 = p.constant(8, 1);
            p.bin(BinOp::Sub, s, c1)
        });
    }

    #[test]
    fn division_matches_eval() {
        assert_matches_eval(|p, x| {
            let c3 = p.constant(8, 3);
            p.bin(BinOp::UDiv, x, c3)
        });
        assert_matches_eval(|p, x| {
            let c5 = p.constant(8, 5);
            p.bin(BinOp::URem, x, c5)
        });
    }

    #[test]
    fn signed_division_matches_eval() {
        assert_matches_eval(|p, x| {
            let c = p.constant(8, (-3i64) as u64);
            p.bin(BinOp::SDiv, x, c)
        });
        assert_matches_eval(|p, x| {
            let c = p.constant(8, 3);
            p.bin(BinOp::SRem, x, c)
        });
    }

    #[test]
    fn division_by_symbolic_matches_eval() {
        // x / (x & 3): exercises div-by-zero default when x & 3 == 0.
        assert_matches_eval(|p, x| {
            let c3 = p.constant(8, 3);
            let d = p.bin(BinOp::And, x, c3);
            p.bin(BinOp::UDiv, x, d)
        });
    }

    #[test]
    fn shifts_match_eval() {
        assert_matches_eval(|p, x| {
            let c = p.constant(8, 3);
            p.bin(BinOp::Shl, x, c)
        });
        // Variable shift: x >> (x & 7).
        assert_matches_eval(|p, x| {
            let c7 = p.constant(8, 7);
            let amt = p.bin(BinOp::And, x, c7);
            p.bin(BinOp::LShr, x, amt)
        });
        // Arithmetic shift with variable amount, including >= width cases.
        assert_matches_eval(|p, x| {
            let c9 = p.constant(8, 9);
            let amt = p.bin(BinOp::URem, x, c9);
            p.bin(BinOp::AShr, x, amt)
        });
    }

    #[test]
    fn comparisons_match_eval() {
        for pred in [
            CmpPred::Ult,
            CmpPred::Ule,
            CmpPred::Slt,
            CmpPred::Sge,
            CmpPred::Eq,
            CmpPred::Ne,
        ] {
            assert_matches_eval(move |p, x| {
                let k = p.constant(8, 130);
                let c = p.cmp(pred, x, k);
                p.zext(c, 8)
            });
        }
    }

    #[test]
    fn unsat_range_constraint() {
        // x < 10 && x > 20 is unsat.
        let mut pool = ExprPool::new();
        let x = pool.fresh_sym(8);
        let c10 = pool.constant(8, 10);
        let c20 = pool.constant(8, 20);
        let a = pool.cmp(CmpPred::Ult, x, c10);
        let b = pool.cmp(CmpPred::Ugt, x, c20);
        let both = pool.and(a, b);
        let mut bl = Blaster::new(&pool);
        bl.assert_true(both);
        assert_eq!(bl.sat.solve(), SatOutcome::Unsat);
    }

    #[test]
    fn model_extraction_recovers_value() {
        // x * 7 == 35 has the unique solution... in 8-bit modular space,
        // several; check the model actually satisfies it.
        let mut pool = ExprPool::new();
        let x = pool.fresh_sym(8);
        let c7 = pool.constant(8, 7);
        let m = pool.bin(BinOp::Mul, x, c7);
        let c35 = pool.constant(8, 35);
        let eq = pool.cmp(CmpPred::Eq, m, c35);
        let mut bl = Blaster::new(&pool);
        bl.assert_true(eq);
        assert_eq!(bl.sat.solve(), SatOutcome::Sat);
        let v = bl.model_sym(0).unwrap();
        assert_eq!(v.wrapping_mul(7) & 0xff, 35);
    }
}
