//! The symbolic execution engine.
//!
//! Interprets one module path-by-path, KLEE-style: inputs are symbolic
//! bytes, states fork at feasible branches, and memory/division/assertion
//! safety is checked with the layered [`Solver`]. See the crate docs for
//! the cost model this reproduces.

use crate::cache::SharedQueryCache;
use crate::expr::{ExprPool, ExprRef};
use crate::frontier::estimated_subtree_forks;
use crate::interval::IntervalCache;
use crate::memory::{SymMemory, OFFSET_BITS};
use crate::parallel::{ExploreHooks, NoHooks, SharedBudget};
use crate::report::{path_fingerprint, Bug, BugKind, TestCase, VerificationReport};
use crate::solver::{Model, SatResult, Solver, SolverOptions};
use overify_ir::{
    BlockId, Callee, CastOp, CmpPred, InstKind, Intrinsic, Module, Operand, Terminator, Ty, ValueId,
};
use overify_obs::metrics::LazyCounter;
use std::collections::{HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many locally-interpreted instructions accumulate before they are
/// flushed to a shared budget (amortizes the atomic traffic).
const BUDGET_FLUSH_INTERVAL: u64 = 4096;

/// How an extra entry argument is provided.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SymArg {
    /// A fixed concrete value.
    Concrete(u64),
    /// A fresh symbolic value of the parameter's width.
    Symbolic,
}

/// How a busy worker exports frontier states when a peer is starving.
///
/// Both policies pick *which* states to ship by estimated subtree fork
/// count ([`crate::frontier::estimated_subtree_forks`]): the biggest
/// pending subtree moves first, because it is the one that keeps a
/// starving peer busy longest per transfer. (Earlier revisions donated by
/// queue position — oldest first — which only approximates subtree size
/// under DFS and inverts it under other search strategies.)
///
/// Neither policy changes *what* is found — the merged report is
/// deterministic by construction — only how much state moves per steal,
/// hence replay overhead and load balance (measured by
/// `ablation_parallel`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DonationPolicy {
    /// Donate pending states one at a time, biggest estimated subtree
    /// first, while peers are hungry.
    #[default]
    OldestState,
    /// Donate the biggest-estimate *half* of the pending worklist in one
    /// burst when a peer is hungry (the classic steal-half policy: fewer,
    /// larger transfers).
    StealHalf,
}

/// Path exploration order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SearchStrategy {
    /// Depth-first (KLEE's default stack discipline; maximizes
    /// counterexample-cache hits).
    Dfs,
    /// Breadth-first.
    Bfs,
    /// Uniform random choice among pending states (deterministic seed).
    RandomState(u64),
}

/// Verification configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SymConfig {
    /// Symbolic input buffer length in bytes (a NUL byte is appended, so a
    /// C string of *up to* `input_bytes` characters is explored — the
    /// paper's "N bytes of symbolic input").
    pub input_bytes: usize,
    /// Extra arguments after `(buffer_ptr, buffer_len)`.
    pub extra_args: Vec<SymArg>,
    /// Pass the buffer length as the second argument (the
    /// `utility_main(char *in, int len)` convention).
    pub pass_len_arg: bool,
    /// Stop after this many completed paths (0 = unlimited).
    pub max_paths: u64,
    /// Stop after this many interpreted instructions (0 = unlimited).
    pub max_instructions: u64,
    /// Wall-clock budget.
    pub timeout: Duration,
    /// Generate a test case per completed path.
    pub collect_tests: bool,
    /// Consult compiler annotations (the `-OVERIFY` metadata channel).
    pub use_annotations: bool,
    /// Solver feature toggles.
    pub solver: SolverOptions,
    pub search: SearchStrategy,
    /// Work-stealing donation policy (parallel runs only).
    pub donation: DonationPolicy,
    /// Maximum if-then-else span for symbolic memory accesses before the
    /// engine concretizes the address.
    pub max_ite_span: u64,
}

impl Default for SymConfig {
    fn default() -> SymConfig {
        SymConfig {
            input_bytes: 4,
            extra_args: Vec::new(),
            pass_len_arg: false,
            max_paths: 0,
            max_instructions: 50_000_000,
            timeout: Duration::from_secs(3600),
            collect_tests: false,
            use_annotations: true,
            solver: SolverOptions::default(),
            search: SearchStrategy::Dfs,
            donation: DonationPolicy::default(),
            max_ite_span: 1024,
        }
    }
}

#[derive(Clone)]
struct Frame {
    func: usize,
    block: BlockId,
    idx: usize,
    regs: Vec<Option<ExprRef>>,
    allocas: Vec<u64>,
    ret_to: Option<ValueId>,
}

/// One pending symbolic state. `trace` records the decision taken at every
/// symbolic conditional branch since the entry point; it uniquely
/// identifies the state's position in the execution tree and doubles as a
/// portable, replayable job description for work stealing (Cloud9-style
/// job transfer: the receiving worker re-derives the state by replaying
/// the decisions, no solver queries needed).
#[derive(Clone)]
pub struct State {
    frames: Vec<Frame>,
    mem: SymMemory,
    constraints: Vec<ExprRef>,
    output: Vec<ExprRef>,
    trace: Vec<bool>,
    /// Input symbols introduced by `__sym_input` *on this path*, as
    /// (id, expr). Path-local: a sibling path that never executes the
    /// intrinsic must not see (or emit test bytes for) these.
    dyn_input: Vec<(u32, ExprRef)>,
}

/// Why a state stopped executing.
enum PathEnd {
    Completed,
    Bug,
    Killed,
}

/// Runs symbolic execution of `entry` over `m` and returns the report.
///
/// The entry function is called as `entry(buf_ptr [, buf_len] [, extras...])`
/// where `buf` is `input_bytes` fresh symbolic bytes followed by a
/// terminating NUL.
pub fn verify(m: &Module, entry: &str, cfg: &SymConfig) -> VerificationReport {
    Executor::new(m, cfg.clone()).run(entry)
}

/// The engine object. A parallel worker keeps one executor alive for its
/// whole lifetime and runs many jobs through it, so the expression pool
/// and every solver cache stay warm across stolen subtrees.
pub struct Executor<'m> {
    m: &'m Module,
    cfg: SymConfig,
    pool: ExprPool,
    solver: Solver,
    intervals: IntervalCache,
    report: VerificationReport,
    input_syms: Vec<u32>,
    input_sym_exprs: Vec<ExprRef>,
    /// Symbolic extra arguments (`SymArg::Symbolic`), as (id, expr).
    extra_sym_exprs: Vec<(u32, ExprRef)>,
    /// Memoized symbol support per expression (for constraint slicing).
    support_memo: std::collections::HashMap<ExprRef, Arc<Vec<u32>>>,
    bug_locs: HashSet<(BugKind, String)>,
    rng: u64,
    started: Instant,
    /// Decision prefix currently being replayed (a stolen job).
    forced: Vec<bool>,
    forced_idx: usize,
    /// Cross-worker budget; when absent the per-config limits apply.
    budget: Option<Arc<SharedBudget>>,
    flushed_instructions: u64,
    /// False once any budget stopped exploration short of exhaustion.
    complete: bool,
}

impl<'m> Executor<'m> {
    /// Creates an executor.
    pub fn new(m: &'m Module, cfg: SymConfig) -> Executor<'m> {
        let solver = Solver::new(cfg.solver);
        Executor {
            m,
            cfg,
            pool: ExprPool::new(),
            solver,
            intervals: IntervalCache::new(),
            report: VerificationReport::default(),
            input_syms: Vec::new(),
            input_sym_exprs: Vec::new(),
            extra_sym_exprs: Vec::new(),
            support_memo: std::collections::HashMap::new(),
            bug_locs: HashSet::new(),
            rng: 0x9E3779B97F4A7C15,
            started: Instant::now(),
            forced: Vec::new(),
            forced_idx: 0,
            budget: None,
            flushed_instructions: 0,
            complete: true,
        }
    }

    /// Attaches the cross-worker shared solver cache.
    pub fn attach_shared_cache(&mut self, cache: Arc<SharedQueryCache>) {
        self.solver.attach_shared(cache);
    }

    /// Attaches a cross-worker budget; per-config instruction/time limits
    /// then apply globally across the fleet instead of per worker.
    pub fn attach_budget(&mut self, budget: Arc<SharedBudget>) {
        self.budget = Some(budget);
    }

    /// Runs to completion or budget exhaustion.
    pub fn run(mut self, entry: &str) -> VerificationReport {
        let Some(init) = self.initial_state(entry) else {
            self.report.timed_out = false;
            return self.report;
        };
        self.run_job(init, &[], &NoHooks);
        self.finish()
    }

    /// Builds the initial symbolic state (buffer + arguments) for `entry`.
    /// Returns `None` when the entry is missing or the signature does not
    /// match the configuration. Deterministic: every worker numbers the
    /// input symbols identically, which is what makes structural
    /// fingerprints and decision traces portable across the fleet.
    pub fn initial_state(&mut self, entry: &str) -> Option<State> {
        let fidx = self.m.function_index(entry)?;

        // Set up the initial state: buffer + args.
        let mut mem = SymMemory::with_globals(&mut self.pool, self.m);
        let n = self.cfg.input_bytes;
        let base = mem.allocate(&mut self.pool, (n + 1) as u64, "input");
        let obj = (base >> OFFSET_BITS) as u32;
        for i in 0..n {
            let s = self.pool.fresh_sym(8);
            if let crate::expr::Node::Sym { id, .. } = *self.pool.node(s) {
                self.input_syms.push(id);
                self.input_sym_exprs.push(s);
            }
            mem.set_byte(obj, i, s);
        }
        // Terminating NUL keeps string scans bounded.
        let zero = self.pool.constant(8, 0);
        mem.set_byte(obj, n, zero);

        let f = &self.m.functions[fidx];
        let mut regs = vec![None; f.values.len()];
        let mut arg_vals: Vec<ExprRef> = Vec::new();
        arg_vals.push(self.pool.constant(64, base));
        if self.cfg.pass_len_arg {
            // Length parameter typed per the signature (usually i32).
            let ty = f.params.get(1).map(|&p| f.value_ty(p)).unwrap_or(Ty::I32);
            arg_vals.push(self.pool.constant(ty.bits(), n as u64));
        }
        for a in self.cfg.extra_args.clone() {
            // Each extra argument takes the next parameter's width.
            let ty = f
                .params
                .get(arg_vals.len())
                .map(|&p| f.value_ty(p))
                .unwrap_or(Ty::I32);
            let e = match a {
                SymArg::Concrete(v) => self.pool.constant(ty.bits(), v),
                SymArg::Symbolic => {
                    let s = self.pool.fresh_sym(ty.bits());
                    if let crate::expr::Node::Sym { id, .. } = *self.pool.node(s) {
                        // Tracked so emit_test can pin extra symbols too,
                        // keeping canonical test cases deterministic even
                        // with symbolic arguments.
                        self.extra_sym_exprs.push((id, s));
                    }
                    s
                }
            };
            arg_vals.push(e);
        }
        if arg_vals.len() != f.params.len() {
            // Signature mismatch is a harness bug; report as zero work.
            return None;
        }
        for (i, &p) in f.params.iter().enumerate() {
            regs[p.index()] = Some(arg_vals[i]);
        }

        Some(State {
            frames: vec![Frame {
                func: fidx,
                block: f.entry(),
                idx: 0,
                regs,
                allocas: vec![base],
                ret_to: None,
            }],
            mem,
            constraints: Vec::new(),
            output: Vec::new(),
            trace: Vec::new(),
            dyn_input: Vec::new(),
        })
    }

    /// Explores one job: the subtree rooted at `init` after replaying the
    /// branch-decision `prefix`. Between paths, pending frontier states are
    /// donated through `hooks` when other workers are hungry.
    pub fn run_job(&mut self, init: State, prefix: &[bool], hooks: &dyn ExploreHooks) {
        self.forced = prefix.to_vec();
        self.forced_idx = 0;
        self.report.steals += 1;
        let mut worklist: VecDeque<State> = VecDeque::from([init]);
        while let Some(mut st) = self.pick(&mut worklist) {
            if self.over_budget() {
                self.complete = false;
                return;
            }
            // Execute until the state ends or forks.
            loop {
                if self.over_budget() {
                    self.complete = false;
                    return;
                }
                match self.step(&mut st) {
                    Step::Continue => {}
                    Step::Fork(other) => {
                        static FORKS: LazyCounter =
                            LazyCounter::new("overify_executor_forks_total");
                        FORKS.inc();
                        self.report.forks += 1;
                        worklist.push_back(other);
                    }
                    Step::End(end) => {
                        static PATHS: LazyCounter =
                            LazyCounter::new("overify_executor_paths_total");
                        PATHS.inc();
                        self.report.path_ids.push(path_fingerprint(&st.trace));
                        match end {
                            PathEnd::Completed => {
                                self.report.paths_completed += 1;
                                if self.cfg.collect_tests {
                                    self.emit_test(&st);
                                }
                            }
                            PathEnd::Bug => {
                                self.report.paths_buggy += 1;
                                if let Some(b) = &self.budget {
                                    b.note_bug();
                                }
                            }
                            PathEnd::Killed => self.report.paths_killed += 1,
                        }
                        if let Some(b) = &self.budget {
                            // The fleet-wide path ceiling (per-worker
                            // counters would multiply cfg.max_paths by the
                            // worker count).
                            b.note_path();
                        }
                        break;
                    }
                }
            }
            if self.budget.is_none()
                && self.cfg.max_paths > 0
                && self.report.total_paths() >= self.cfg.max_paths
            {
                if !worklist.is_empty() {
                    self.complete = false;
                }
                return;
            }
            // Export frontier states while peers are starving, biggest
            // estimated subtree first — the state whose fork-count
            // estimate says it has the most unexplored work beneath it is
            // the one worth the transfer (ties go to the oldest state, so
            // the choice is deterministic for a given worklist).
            match self.cfg.donation {
                DonationPolicy::OldestState => {
                    while hooks.hungry() {
                        let Some(i) = best_donation(&worklist) else {
                            break;
                        };
                        let s = worklist.remove(i).expect("index from best_donation");
                        if hooks.donate(s.trace.clone()) {
                            self.report.donations += 1;
                        } else {
                            worklist.insert(i, s);
                            break;
                        }
                    }
                }
                DonationPolicy::StealHalf => {
                    if hooks.hungry() {
                        let half = worklist.len().div_ceil(2);
                        for _ in 0..half {
                            let Some(i) = best_donation(&worklist) else {
                                break;
                            };
                            let s = worklist.remove(i).expect("index from best_donation");
                            if hooks.donate(s.trace.clone()) {
                                self.report.donations += 1;
                            } else {
                                worklist.insert(i, s);
                                break;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Marks the accumulated report incomplete (a job was abandoned).
    pub fn mark_incomplete(&mut self) {
        self.complete = false;
    }

    /// Seals the accumulated report: statistics, exhaustion, wall time.
    pub fn finish(mut self) -> VerificationReport {
        if let Some(b) = &self.budget {
            b.charge(self.report.instructions - self.flushed_instructions);
        }
        self.report.exhausted = self.complete;
        self.report.timed_out = !self.complete;
        self.report.solver = self.solver.stats;
        self.report.time = self.started.elapsed();
        self.report
    }

    fn over_budget(&mut self) -> bool {
        if let Some(b) = &self.budget {
            // Shared budget: flush local progress in batches, then obey
            // the fleet-wide verdict.
            let delta = self.report.instructions - self.flushed_instructions;
            if delta >= BUDGET_FLUSH_INTERVAL {
                self.flushed_instructions = self.report.instructions;
                b.charge(delta);
            }
            return b.cancelled();
        }
        (self.cfg.max_instructions > 0 && self.report.instructions >= self.cfg.max_instructions)
            || self.started.elapsed() >= self.cfg.timeout
    }

    fn pick(&mut self, worklist: &mut VecDeque<State>) -> Option<State> {
        if worklist.is_empty() {
            return None;
        }
        match self.cfg.search {
            SearchStrategy::Dfs => worklist.pop_back(),
            SearchStrategy::Bfs => worklist.pop_front(),
            SearchStrategy::RandomState(seed) => {
                // xorshift* on the running state seeded by config.
                self.rng ^= seed | 1;
                self.rng ^= self.rng >> 12;
                self.rng ^= self.rng << 25;
                self.rng ^= self.rng >> 27;
                let i = (self.rng.wrapping_mul(0x2545F4914F6CDD1D) as usize) % worklist.len();
                worklist.swap_remove_back(i)
            }
        }
    }

    fn eval_op(&mut self, st: &State, op: Operand) -> ExprRef {
        match op {
            Operand::Const(c) => self.pool.constant(c.ty.bits(), c.bits),
            Operand::Value(v) => {
                st.frames.last().unwrap().regs[v.index()].expect("use of undefined register")
            }
        }
    }

    fn set_reg(&mut self, st: &mut State, v: Option<ValueId>, e: ExprRef) {
        if let Some(v) = v {
            st.frames.last_mut().unwrap().regs[v.index()] = Some(e);
        }
    }

    fn cur_loc(&self, st: &State) -> String {
        let fr = st.frames.last().unwrap();
        let f = &self.m.functions[fr.func];
        format!("{}/{}", f.name, f.block(fr.block).name)
    }

    fn record_bug(&mut self, st: &State, kind: BugKind, extra: Option<ExprRef>) {
        let loc = self.cur_loc(st);
        // Canonical witness: the lexicographically smallest input bytes
        // reaching the bug, computed with the same constraint-slicing
        // lexmin minimizer as test cases. A model straight from the solver
        // depends on cache history and thread interleaving; per-component
        // minima do not. The witness is computed on *every* buggy path,
        // keeping the per-location minimum: only the global minimum over
        // all buggy paths is independent of which executor (thread or
        // process) explored which path first, so bug witnesses stay
        // identical across worker counts, process counts, reruns and
        // store round-trips.
        let mut cs = st.constraints.clone();
        if let Some(e) = extra {
            cs.push(e);
        }
        let input = match self.lexmin_inputs(&mut cs, &st.dyn_input) {
            Some(m) => self.input_bytes_of(st, &m),
            None => Vec::new(),
        };
        if !self.bug_locs.insert((kind, loc.clone())) {
            if let Some(known) = self
                .report
                .bugs
                .iter_mut()
                .find(|b| b.kind == kind && b.location == loc)
            {
                if input < known.input {
                    known.input = input;
                }
            }
            return;
        }
        self.report.bugs.push(Bug {
            kind,
            location: loc,
            input,
        });
    }

    /// The test-input bytes of a path under a model: the initial buffer
    /// symbols followed by any `__sym_input` bytes this path introduced.
    fn input_bytes_of(&self, st: &State, m: &Model) -> Vec<u8> {
        self.input_syms
            .iter()
            .copied()
            .chain(st.dyn_input.iter().map(|&(id, _)| id))
            .map(|id| m.get(id) as u8)
            .collect()
    }

    /// The smallest value `e` can take under `constraints`.
    ///
    /// The search runs against the component of `constraints` connected to
    /// `e`'s symbols (the rest of a feasible path condition cannot bound
    /// it), and the minimum is found by binary search on solver *verdicts*
    /// (which are cache-independent) — so the result is a deterministic
    /// function of the constraint set, never of cache history or thread
    /// interleaving. A witness model only *bounds* the search from above,
    /// which keeps the common case (already-minimal value) query-free
    /// without affecting the result.
    fn min_feasible(&mut self, constraints: &[ExprRef], e: ExprRef) -> Option<u64> {
        let seeds = self.sym_support(e);
        let slice = self.component(constraints, &seeds);
        let model = match self.solver.check(&self.pool, &slice) {
            SatResult::Sat(m) => m,
            SatResult::Unsat => return None,
        };
        let witness = self.pool.eval(e, &|id| model.get(id));
        let iv = self.intervals.get(&self.pool, e);
        let w = self.pool.width(e);
        let (mut lo, mut hi) = (iv.lo, witness.min(iv.hi));
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let mc = self.pool.constant(w, mid);
            let le = self.pool.cmp(CmpPred::Ule, e, mc);
            if self.solver.may_be_true(&self.pool, &slice, le) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        Some(lo)
    }

    /// The sorted set of symbol ids an expression mentions, memoized.
    fn sym_support(&mut self, root: ExprRef) -> Arc<Vec<u32>> {
        crate::expr::sym_support(&self.pool, root, &mut self.support_memo)
    }

    /// The subset of `cs` transitively connected to the `seeds` symbols
    /// (KLEE's independent-constraint slicing, shared with the solver's
    /// feasibility fast path through [`crate::expr::constraint_component`]).
    fn component(&mut self, cs: &[ExprRef], seeds: &[u32]) -> Vec<ExprRef> {
        crate::expr::constraint_component(&self.pool, cs, seeds, &mut self.support_memo)
    }

    /// Pins every tracked input symbol — the initial buffer bytes, then
    /// the path's `__sym_input` bytes, then symbolic extra arguments — to
    /// the smallest value feasible under `cs`, appending the pin
    /// equalities to `cs`, and returns the pinned model: the
    /// lexicographically smallest input reaching this program point. Each
    /// symbol is minimized against its constraint component only, so the
    /// probe formulas stay small; the result is a deterministic function
    /// of the constraint set, never of cache history or interleaving.
    /// `None` when some component is unsatisfiable (then `cs` was).
    fn lexmin_inputs(
        &mut self,
        cs: &mut Vec<ExprRef>,
        dyn_input: &[(u32, ExprRef)],
    ) -> Option<Model> {
        let mut syms: Vec<(u32, ExprRef)> = self
            .input_syms
            .iter()
            .copied()
            .zip(self.input_sym_exprs.iter().copied())
            .collect();
        syms.extend_from_slice(dyn_input);
        syms.extend_from_slice(&self.extra_sym_exprs);
        let mut pinned = Model::default();
        for &(id, se) in &syms {
            let slice = self.component(cs, &[id]);
            let w = self.pool.width(se);
            let single_sym = slice
                .iter()
                .all(|&c| self.sym_support(c).as_slice() == [id]);
            let min = if slice.is_empty() {
                // Unconstrained byte: 0 is trivially minimal.
                Some(0)
            } else if single_sym && w <= 8 {
                // The component mentions only this symbol: intersect the
                // memoized satisfying-value bitsets — no solver at all.
                self.solver.enum_min(&self.pool, &slice, id, w)
            } else {
                // Multi-symbol component: witness-bounded binary search on
                // solver verdicts.
                self.min_feasible(&slice, se)
            };
            let min = min?;
            let vc = self.pool.constant(w, min);
            let eq = self.pool.cmp(CmpPred::Eq, se, vc);
            cs.push(eq);
            pinned.values.insert(id, min);
        }
        Some(pinned)
    }

    /// Emits the canonical test case for a completed path: the
    /// lexicographically smallest input bytes satisfying the path
    /// condition. Canonicalization makes merged test sets identical across
    /// runs and worker counts (models straight from the solver depend on
    /// cache history; per-byte minima do not). Each byte is minimized
    /// against its constraint component only, so the probe formulas stay
    /// small; one full-set solve at the end yields the output model.
    fn emit_test(&mut self, st: &State) {
        let mut cs = st.constraints.clone();
        // Pin input bytes first — initial buffer, then this path's
        // `__sym_input` bytes (their minima define the canonical test
        // input) — then symbolic extra arguments, so outputs depending on
        // any of them are evaluated under a fully deterministic model.
        let Some(pinned) = self.lexmin_inputs(&mut cs, &st.dyn_input) else {
            return;
        };
        // When every constraint and output depends only on pinned symbols
        // (input bytes and symbolic extra arguments), the pins *are* the
        // unique model of each constraint component and jointly satisfy
        // the whole set — no closing solver call is needed. Otherwise
        // solve once for the residual symbols.
        let pinned_set: HashSet<u32> = pinned.values.keys().copied().collect();
        let mut residual = st.output.clone();
        residual.extend_from_slice(&st.constraints);
        let pure = residual
            .into_iter()
            .all(|e| self.sym_support(e).iter().all(|s| pinned_set.contains(s)));
        let model = if pure {
            pinned
        } else {
            match self.solver.check(&self.pool, &cs) {
                SatResult::Sat(m) => m,
                SatResult::Unsat => return,
            }
        };
        let input = self.input_bytes_of(st, &model);
        let output = st
            .output
            .iter()
            .map(|&e| Some(self.pool.eval(e, &|id| model.get(id)) as u8))
            .collect();
        self.report.tests.push(TestCase { input, output });
    }

    /// Transfers control to `target`, evaluating phis in parallel.
    fn enter_block(&mut self, st: &mut State, target: BlockId) {
        let fr = st.frames.last().unwrap();
        let f = &self.m.functions[fr.func];
        let from = fr.block;
        let mut updates: Vec<(ValueId, ExprRef)> = Vec::new();
        let mut skip = 0;
        for &id in &f.block(target).insts {
            match &f.inst(id).kind {
                InstKind::Phi { incomings, .. } => {
                    skip += 1;
                    if let Some(r) = f.inst(id).result {
                        let op = incomings
                            .iter()
                            .find(|(p, _)| *p == from)
                            .map(|(_, o)| *o)
                            .unwrap_or(Operand::Const(overify_ir::Const::zero(f.value_ty(r))));
                        let e = self.eval_op(st, op);
                        updates.push((r, e));
                    }
                }
                InstKind::Nop => skip += 1,
                _ => break,
            }
        }
        let fr = st.frames.last_mut().unwrap();
        for (v, e) in updates {
            fr.regs[v.index()] = Some(e);
        }
        fr.block = target;
        fr.idx = skip;
    }

    /// One execution step.
    fn step(&mut self, st: &mut State) -> Step {
        let fr = st.frames.last().unwrap();
        let f = &self.m.functions[fr.func];
        let block = f.block(fr.block);
        self.report.instructions += 1;

        if fr.idx >= block.insts.len() {
            let term = block.term.clone();
            return self.exec_terminator(st, term);
        }
        let inst_id = block.insts[fr.idx];
        let inst = f.inst(inst_id).clone();
        st.frames.last_mut().unwrap().idx += 1;

        match inst.kind {
            InstKind::Nop => Step::Continue,
            InstKind::Bin { op, ty, lhs, rhs } => {
                let a = self.eval_op(st, lhs);
                let b = self.eval_op(st, rhs);
                if op.can_trap() {
                    if let Some(step) = self.guard_division(st, b, ty) {
                        return step;
                    }
                }
                let e = self.pool.bin(op, a, b);
                self.set_reg(st, inst.result, e);
                Step::Continue
            }
            InstKind::Cmp { pred, lhs, rhs, .. } => {
                // The -OVERIFY annotation fast path: ranges the compiler
                // proved let us decide the comparison without building
                // constraints.
                if self.cfg.use_annotations {
                    if let Some(v) = self.annotation_decide(st, pred, lhs, rhs) {
                        self.report.solver.solved_annotation += 1;
                        let e = self.pool.boolean(v);
                        self.set_reg(st, inst.result, e);
                        return Step::Continue;
                    }
                }
                let a = self.eval_op(st, lhs);
                let b = self.eval_op(st, rhs);
                let e = self.pool.cmp(pred, a, b);
                self.set_reg(st, inst.result, e);
                Step::Continue
            }
            InstKind::Select {
                cond,
                on_true,
                on_false,
                ..
            } => {
                let c = self.eval_op(st, cond);
                let t = self.eval_op(st, on_true);
                let fv = self.eval_op(st, on_false);
                let e = self.pool.ite(c, t, fv);
                self.set_reg(st, inst.result, e);
                Step::Continue
            }
            InstKind::Cast { op, to, value } => {
                let v = self.eval_op(st, value);
                let e = match op {
                    CastOp::Zext => self.pool.zext(v, to.bits()),
                    CastOp::Sext => self.pool.sext(v, to.bits()),
                    CastOp::Trunc => self.pool.trunc(v, to.bits()),
                };
                self.set_reg(st, inst.result, e);
                Step::Continue
            }
            InstKind::Alloca { size } => {
                let base = st.mem.allocate(&mut self.pool, size, "alloca");
                st.frames.last_mut().unwrap().allocas.push(base);
                let e = self.pool.constant(64, base);
                self.set_reg(st, inst.result, e);
                Step::Continue
            }
            InstKind::Load { ty, addr } => {
                let a = self.eval_op(st, addr);
                match self.access(st, a, ty.bytes(), AccessMode::Read) {
                    Access::Value(e) => {
                        let e = if ty == Ty::I1 {
                            self.pool.trunc(e, 1)
                        } else {
                            e
                        };
                        self.set_reg(st, inst.result, e);
                        Step::Continue
                    }
                    Access::End(end) => Step::End(end),
                }
            }
            InstKind::Store { ty, value, addr } => {
                let a = self.eval_op(st, addr);
                let v = self.eval_op(st, value);
                let v8 = if ty == Ty::I1 {
                    self.pool.zext(v, 8)
                } else {
                    v
                };
                match self.store_value(st, a, v8, ty.bytes()) {
                    None => Step::Continue,
                    Some(end) => Step::End(end),
                }
            }
            InstKind::PtrAdd { base, offset } => {
                let b = self.eval_op(st, base);
                let o = self.eval_op(st, offset);
                let e = self.pool.bin(overify_ir::BinOp::Add, b, o);
                self.set_reg(st, inst.result, e);
                Step::Continue
            }
            InstKind::GlobalAddr { global } => {
                let base = st.mem.global_base(global.0);
                let e = self.pool.constant(64, base);
                self.set_reg(st, inst.result, e);
                Step::Continue
            }
            InstKind::Call { callee, args } => {
                let vals: Vec<ExprRef> = args.iter().map(|&a| self.eval_op(st, a)).collect();
                match callee {
                    Callee::Intrinsic(i) => self.exec_intrinsic(st, i, &vals, inst.result),
                    Callee::Func(name) => {
                        let Some(ci) = self.m.function_index(&name) else {
                            return Step::End(PathEnd::Killed);
                        };
                        let callee_f = &self.m.functions[ci];
                        if callee_f.is_declaration {
                            return Step::End(PathEnd::Killed);
                        }
                        let mut regs = vec![None; callee_f.values.len()];
                        for (i, &p) in callee_f.params.iter().enumerate() {
                            regs[p.index()] = Some(vals[i]);
                        }
                        st.frames.push(Frame {
                            func: ci,
                            block: callee_f.entry(),
                            idx: 0,
                            regs,
                            allocas: Vec::new(),
                            ret_to: inst.result,
                        });
                        Step::Continue
                    }
                }
            }
            InstKind::Phi { .. } => {
                // Handled by enter_block; stray phi means fall-through.
                Step::End(PathEnd::Killed)
            }
        }
    }

    /// Decide `pred(lhs, rhs)` purely from compiler annotations.
    fn annotation_decide(
        &mut self,
        st: &State,
        pred: CmpPred,
        lhs: Operand,
        rhs: Operand,
    ) -> Option<bool> {
        let fr = st.frames.last().unwrap();
        let f = &self.m.functions[fr.func];
        if f.annotations.value_ranges.is_empty() {
            return None;
        }
        let range_of = |op: Operand| -> Option<overify_ir::ValueRange> {
            match op {
                Operand::Const(c) => Some(overify_ir::ValueRange::point(c.bits)),
                Operand::Value(v) => f.annotations.value_ranges.get(&v).copied(),
            }
        };
        let (ra, rb) = (range_of(lhs)?, range_of(rhs)?);
        // Unsigned reasoning only (the annotation pass emits unsigned
        // ranges).

        match pred {
            CmpPred::Ult => {
                if ra.umax < rb.umin {
                    Some(true)
                } else if ra.umin >= rb.umax {
                    Some(false)
                } else {
                    None
                }
            }
            CmpPred::Ule => {
                if ra.umax <= rb.umin {
                    Some(true)
                } else if ra.umin > rb.umax {
                    Some(false)
                } else {
                    None
                }
            }
            CmpPred::Ugt => {
                if ra.umin > rb.umax {
                    Some(true)
                } else if ra.umax <= rb.umin {
                    Some(false)
                } else {
                    None
                }
            }
            CmpPred::Uge => {
                if ra.umin >= rb.umax {
                    Some(true)
                } else if ra.umax < rb.umin {
                    Some(false)
                } else {
                    None
                }
            }
            CmpPred::Eq => {
                if ra.umax < rb.umin || rb.umax < ra.umin {
                    Some(false)
                } else {
                    None
                }
            }
            CmpPred::Ne => {
                if ra.umax < rb.umin || rb.umax < ra.umin {
                    Some(true)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Division guard: forks a div-by-zero bug path when feasible.
    fn guard_division(&mut self, st: &mut State, divisor: ExprRef, _ty: Ty) -> Option<Step> {
        if let Some(c) = self.pool.as_const(divisor) {
            if c == 0 {
                self.record_bug(st, BugKind::DivByZero, None);
                return Some(Step::End(PathEnd::Bug));
            }
            return None;
        }
        let w = self.pool.width(divisor);
        let zero = self.pool.constant(w, 0);
        let is_zero = self.pool.cmp(CmpPred::Eq, divisor, zero);
        // Interval fast path first.
        if self.intervals.decide(&self.pool, is_zero) == Some(false) {
            return None;
        }
        if self
            .solver
            .may_be_true(&self.pool, &st.constraints, is_zero)
        {
            self.record_bug(st, BugKind::DivByZero, Some(is_zero));
            let nz = self.pool.not(is_zero);
            if self.solver.may_be_true(&self.pool, &st.constraints, nz) {
                st.constraints.push(nz);
                return None;
            }
            return Some(Step::End(PathEnd::Bug));
        }
        None
    }

    fn exec_intrinsic(
        &mut self,
        st: &mut State,
        i: Intrinsic,
        args: &[ExprRef],
        result: Option<ValueId>,
    ) -> Step {
        match i {
            Intrinsic::SymInput => {
                // The harness preloads symbolic input; a program-level
                // sym_input introduces fresh bytes at a concrete location.
                let (Some(addr), Some(len)) =
                    (self.pool.as_const(args[0]), self.pool.as_const(args[1]))
                else {
                    return Step::End(PathEnd::Killed);
                };
                let obj = (addr >> OFFSET_BITS) as u32;
                let off = (addr & 0xffff_ffff) as usize;
                if st.mem.object(obj).is_none() {
                    self.record_bug(st, BugKind::OutOfBounds, None);
                    return Step::End(PathEnd::Bug);
                }
                for k in 0..len as usize {
                    if off + k >= st.mem.object(obj).unwrap().bytes.len() {
                        self.record_bug(st, BugKind::OutOfBounds, None);
                        return Step::End(PathEnd::Bug);
                    }
                    let s = self.pool.fresh_sym(8);
                    if let crate::expr::Node::Sym { id, .. } = *self.pool.node(s) {
                        // Path-local: only this state (and its forks) own
                        // the new input bytes.
                        st.dyn_input.push((id, s));
                    }
                    st.mem.set_byte(obj, off + k, s);
                }
                Step::Continue
            }
            Intrinsic::Assume => {
                let c = args[0];
                if self.pool.as_const(c) == Some(0) {
                    return Step::End(PathEnd::Killed);
                }
                if !self.solver.may_be_true(&self.pool, &st.constraints, c) {
                    return Step::End(PathEnd::Killed);
                }
                st.constraints.push(c);
                Step::Continue
            }
            Intrinsic::Assert => {
                let c = args[0];
                let nc = self.pool.not(c);
                if self.solver.may_be_true(&self.pool, &st.constraints, nc) {
                    self.record_bug(st, BugKind::AssertFail, Some(nc));
                    if self.solver.may_be_true(&self.pool, &st.constraints, c) {
                        st.constraints.push(c);
                        return Step::Continue;
                    }
                    return Step::End(PathEnd::Bug);
                }
                Step::Continue
            }
            Intrinsic::PutChar => {
                let byte = self.pool.trunc(args[0], 8);
                st.output.push(byte);
                let r = self.pool.zext(byte, 32);
                self.set_reg(st, result, r);
                Step::Continue
            }
            Intrinsic::Malloc => {
                let size = match self.pool.as_const(args[0]) {
                    Some(s) => s,
                    None => {
                        // Concretize to the smallest feasible size; the
                        // minimum is interleaving-independent, so replayed
                        // jobs allocate exactly what the donor would have.
                        self.report.solver.concretizations += 1;
                        match self.min_feasible(&st.constraints, args[0]) {
                            Some(v) => {
                                let w = self.pool.width(args[0]);
                                let vc = self.pool.constant(w, v);
                                let eq = self.pool.cmp(CmpPred::Eq, args[0], vc);
                                st.constraints.push(eq);
                                v
                            }
                            None => return Step::End(PathEnd::Killed),
                        }
                    }
                };
                let base = st
                    .mem
                    .allocate(&mut self.pool, size.clamp(1, 1 << 20), "malloc");
                let e = self.pool.constant(64, base);
                self.set_reg(st, result, e);
                Step::Continue
            }
            Intrinsic::Abort => {
                self.record_bug(st, BugKind::ExplicitAbort, None);
                Step::End(PathEnd::Bug)
            }
        }
    }

    fn exec_terminator(&mut self, st: &mut State, term: Terminator) -> Step {
        match term {
            Terminator::Br { target } => {
                self.enter_block(st, target);
                Step::Continue
            }
            Terminator::CondBr {
                cond,
                on_true,
                on_false,
            } => {
                let c = self.eval_op(st, cond);
                if let Some(v) = self.pool.as_const(c) {
                    self.enter_block(st, if v != 0 { on_true } else { on_false });
                    return Step::Continue;
                }
                // Replaying a stolen job: the branch outcome is recorded in
                // the prefix, so take it without solver work or forking.
                // (Only the job's root state can reach here while decisions
                // remain — replay never forks.)
                if self.forced_idx < self.forced.len() {
                    let d = self.forced[self.forced_idx];
                    self.forced_idx += 1;
                    st.trace.push(d);
                    if d {
                        st.constraints.push(c);
                        self.enter_block(st, on_true);
                    } else {
                        let nc = self.pool.not(c);
                        st.constraints.push(nc);
                        self.enter_block(st, on_false);
                    }
                    return Step::Continue;
                }
                // Feasibility: check true; if infeasible the false side is
                // implied (the constraint set itself is satisfiable).
                let may_true = self.solver.may_be_true(&self.pool, &st.constraints, c);
                overify_obs::log_trace!(
                    "symex",
                    "condbr at {}: cond={:?} may_true={may_true}",
                    self.cur_loc(st),
                    self.pool.node(c)
                );
                if !may_true {
                    let nc = self.pool.not(c);
                    st.trace.push(false);
                    st.constraints.push(nc);
                    self.enter_block(st, on_false);
                    return Step::Continue;
                }
                let nc = self.pool.not(c);
                let may_false = self.solver.may_be_true(&self.pool, &st.constraints, nc);
                if !may_false {
                    st.trace.push(true);
                    st.constraints.push(c);
                    self.enter_block(st, on_true);
                    return Step::Continue;
                }
                // Fork: this state takes the true side.
                let mut other = st.clone();
                other.trace.push(false);
                other.constraints.push(nc);
                self.enter_block(&mut other, on_false);
                st.trace.push(true);
                st.constraints.push(c);
                self.enter_block(st, on_true);
                Step::Fork(other)
            }
            Terminator::Ret { value } => {
                let v = value.map(|op| self.eval_op(st, op));
                let frame = st.frames.pop().unwrap();
                for a in frame.allocas {
                    st.mem.kill(a);
                }
                if st.frames.is_empty() {
                    return Step::End(PathEnd::Completed);
                }
                if let (Some(dest), Some(v)) = (frame.ret_to, v) {
                    self.set_reg(st, Some(dest), v);
                }
                Step::Continue
            }
            Terminator::Abort { kind } => {
                self.record_bug(st, BugKind::from_abort(kind), None);
                Step::End(PathEnd::Bug)
            }
            Terminator::Unreachable => {
                self.record_bug(st, BugKind::UnreachableReached, None);
                Step::End(PathEnd::Bug)
            }
        }
    }

    // ---- Memory access machinery ----

    /// Reads `width` bytes at symbolic address `addr`.
    fn access(&mut self, st: &mut State, addr: ExprRef, width: u64, _mode: AccessMode) -> Access {
        match self.resolve(st, addr, width) {
            Resolved::Ok { obj, offset } => {
                let value = self.read_object(st, obj, offset, width);
                Access::Value(value)
            }
            Resolved::End(e) => Access::End(e),
        }
    }

    fn store_value(
        &mut self,
        st: &mut State,
        addr: ExprRef,
        value: ExprRef,
        width: u64,
    ) -> Option<PathEnd> {
        match self.resolve(st, addr, width) {
            Resolved::Ok { obj, offset } => {
                if !st.mem.object(obj).map(|o| o.writable).unwrap_or(false) {
                    self.record_bug(st, BugKind::OutOfBounds, None);
                    return Some(PathEnd::Bug);
                }
                self.write_object(st, obj, offset, value, width);
                None
            }
            Resolved::End(e) => Some(e),
        }
    }

    /// Resolves an address to a single live object and in-bounds offset,
    /// forking bug paths for infeasible or out-of-bounds accesses.
    fn resolve(&mut self, st: &mut State, addr: ExprRef, width: u64) -> Resolved {
        let iv = self.intervals.get(&self.pool, addr);
        let (obj_lo, obj_hi) = ((iv.lo >> OFFSET_BITS) as u32, (iv.hi >> OFFSET_BITS) as u32);

        let obj = if obj_lo == obj_hi {
            obj_lo
        } else {
            // Decide which object this access can hit; null and dangling
            // candidates are bug paths. Try candidates from the interval
            // bounds.
            let mut chosen: Option<u32> = None;
            for cand in [obj_hi, obj_lo] {
                if cand == 0 || st.mem.object(cand).is_none() {
                    continue;
                }
                let lo = self.pool.constant(64, (cand as u64) << OFFSET_BITS);
                let hi = self.pool.constant(64, ((cand as u64) + 1) << OFFSET_BITS);
                let ge = self.pool.cmp(CmpPred::Uge, addr, lo);
                let lt = self.pool.cmp(CmpPred::Ult, addr, hi);
                let inside = self.pool.and(ge, lt);
                if self.solver.may_be_true(&self.pool, &st.constraints, inside) {
                    // Can the address be *outside* this object (e.g. null)?
                    let outside = self.pool.not(inside);
                    if self
                        .solver
                        .may_be_true(&self.pool, &st.constraints, outside)
                    {
                        self.record_bug(st, BugKind::OutOfBounds, Some(outside));
                    }
                    st.constraints.push(inside);
                    chosen = Some(cand);
                    break;
                }
            }
            match chosen {
                Some(c) => c,
                None => {
                    self.record_bug(st, BugKind::OutOfBounds, None);
                    return Resolved::End(PathEnd::Bug);
                }
            }
        };

        if obj == 0 || st.mem.object(obj).is_none() {
            self.record_bug(st, BugKind::OutOfBounds, None);
            return Resolved::End(PathEnd::Bug);
        }
        let size = st.mem.object(obj).unwrap().bytes.len() as u64;
        if size < width {
            self.record_bug(st, BugKind::OutOfBounds, None);
            return Resolved::End(PathEnd::Bug);
        }

        // Offset within the object.
        let base = self.pool.constant(64, (obj as u64) << OFFSET_BITS);
        let offset = self.pool.bin(overify_ir::BinOp::Sub, addr, base);
        let limit = self.pool.constant(64, size - width);
        let ok = self.pool.cmp(CmpPred::Ule, offset, limit);

        match self.intervals.decide(&self.pool, ok) {
            Some(true) => {}
            Some(false) => {
                self.record_bug(st, BugKind::OutOfBounds, None);
                return Resolved::End(PathEnd::Bug);
            }
            None => {
                let bad = self.pool.not(ok);
                if self.solver.may_be_true(&self.pool, &st.constraints, bad) {
                    self.record_bug(st, BugKind::OutOfBounds, Some(bad));
                    if self.solver.may_be_true(&self.pool, &st.constraints, ok) {
                        st.constraints.push(ok);
                    } else {
                        return Resolved::End(PathEnd::Bug);
                    }
                }
            }
        }
        Resolved::Ok { obj, offset }
    }

    /// Reads `width` bytes at `offset` (an in-bounds 64-bit expression)
    /// from `obj`, composing a little-endian value.
    fn read_object(&mut self, st: &mut State, obj: u32, offset: ExprRef, width: u64) -> ExprRef {
        let size = st.mem.object(obj).unwrap().bytes.len() as u64;
        let offset = self.concretize_if_wide(st, obj, offset, width, size);
        let out_w = (width * 8) as u32;
        let mut acc: Option<ExprRef> = None;
        for i in 0..width {
            let byte = self.read_byte(st, obj, offset, i, size, width);
            let wide = self.pool.zext(byte, out_w);
            let sh = self.pool.constant(out_w, i * 8);
            let shifted = self.pool.bin(overify_ir::BinOp::Shl, wide, sh);
            acc = Some(match acc {
                None => shifted,
                Some(a) => self.pool.bin(overify_ir::BinOp::Or, a, shifted),
            });
        }
        acc.unwrap()
    }

    fn read_byte(
        &mut self,
        st: &State,
        obj: u32,
        offset: ExprRef,
        delta: u64,
        size: u64,
        width: u64,
    ) -> ExprRef {
        if let Some(c) = self.pool.as_const(offset) {
            return st.mem.byte(obj, (c + delta) as usize);
        }
        // ITE chain over the feasible offset range.
        let iv = self.intervals.get(&self.pool, offset);
        let lo = iv.lo;
        let hi = iv.hi.min(size - width);
        let mut acc = self.pool.constant(8, 0);
        for k in (lo..=hi).rev() {
            let kc = self.pool.constant(64, k);
            let eq = self.pool.cmp(CmpPred::Eq, offset, kc);
            let byte = st.mem.byte(obj, (k + delta) as usize);
            acc = self.pool.ite(eq, byte, acc);
        }
        acc
    }

    fn write_object(
        &mut self,
        st: &mut State,
        obj: u32,
        offset: ExprRef,
        value: ExprRef,
        width: u64,
    ) {
        let size = st.mem.object(obj).unwrap().bytes.len() as u64;
        let offset = self.concretize_if_wide(st, obj, offset, width, size);
        let vw = self.pool.width(value);
        for i in 0..width {
            let sh = self.pool.constant(vw, i * 8);
            let shifted = self.pool.bin(overify_ir::BinOp::LShr, value, sh);
            let byte = self.pool.trunc(shifted, 8);
            if let Some(c) = self.pool.as_const(offset) {
                st.mem.set_byte(obj, (c + i) as usize, byte);
            } else {
                let iv = self.intervals.get(&self.pool, offset);
                let lo = iv.lo;
                let hi = iv.hi.min(size - width);
                for k in lo..=hi {
                    let kc = self.pool.constant(64, k);
                    let eq = self.pool.cmp(CmpPred::Eq, offset, kc);
                    let old = st.mem.byte(obj, (k + i) as usize);
                    let nv = self.pool.ite(eq, byte, old);
                    st.mem.set_byte(obj, (k + i) as usize, nv);
                }
            }
        }
    }

    /// Concretizes a symbolic offset whose ITE span would exceed the
    /// configured cap (KLEE-style address concretization).
    fn concretize_if_wide(
        &mut self,
        st: &mut State,
        _obj: u32,
        offset: ExprRef,
        width: u64,
        size: u64,
    ) -> ExprRef {
        if self.pool.as_const(offset).is_some() {
            return offset;
        }
        let iv = self.intervals.get(&self.pool, offset);
        let hi = iv.hi.min(size - width);
        let span = hi.saturating_sub(iv.lo) + 1;
        if span <= self.cfg.max_ite_span {
            return offset;
        }
        self.report.solver.concretizations += 1;
        // Pin to the smallest feasible offset: deterministic regardless of
        // cache history, so every worker concretizes identically.
        match self.min_feasible(&st.constraints, offset) {
            Some(v) => {
                let vc = self.pool.constant(64, v);
                let eq = self.pool.cmp(CmpPred::Eq, offset, vc);
                st.constraints.push(eq);
                vc
            }
            None => offset,
        }
    }
}

/// Index of the best pending state to donate: the one whose
/// [`estimated_subtree_forks`] estimate is largest, oldest first on ties
/// (strictly-greater comparison keeps the scan deterministic). `None` on
/// an empty worklist.
fn best_donation(worklist: &VecDeque<State>) -> Option<usize> {
    let mut best: Option<(u64, usize)> = None;
    for (i, s) in worklist.iter().enumerate() {
        let est = estimated_subtree_forks(&s.trace);
        if best.is_none_or(|(b, _)| est > b) {
            best = Some((est, i));
        }
    }
    best.map(|(_, i)| i)
}

enum Step {
    Continue,
    Fork(State),
    End(PathEnd),
}

enum Access {
    Value(ExprRef),
    End(PathEnd),
}

enum Resolved {
    Ok { obj: u32, offset: ExprRef },
    End(PathEnd),
}

#[derive(Clone, Copy)]
enum AccessMode {
    Read,
}
