//! The layered constraint solver.
//!
//! Queries go through progressively more expensive layers, mirroring KLEE's
//! solver chain:
//!
//! 1. **Constant structure** — the builder already folded it.
//! 2. **Intervals** — a per-constraint unsigned-range check.
//! 3. **Counterexample cache** — recently returned models are re-evaluated
//!    against the new query; on a DFS the parent path's model usually
//!    satisfies one child.
//! 4. **Query cache** — identical constraint sets answer instantly.
//! 5. **Single-symbol enumeration** — a query whose whole support is one
//!    narrow symbol is decided by intersecting per-constraint
//!    satisfying-value bitsets (cheap exactly where bit-blasting is at its
//!    worst, e.g. division chains).
//! 6. **Shared query cache** — a sharded, cross-worker map keyed by
//!    structural fingerprint, so parallel workers serve each other's
//!    verdicts (absent unless attached via [`Solver::attach_shared`]).
//! 7. **Bit-blasting + CDCL SAT** — the complete decision procedure.
//!
//! Every layer is sound *and* complete with respect to the final SAT
//! layer, so the SAT/UNSAT verdict of a query never depends on cache
//! state — only the returned model may. The parallel driver's determinism
//! guarantees rest on this invariant.

use crate::blast::Blaster;
use crate::cache::{set_fingerprint, SharedQueryCache};
use crate::expr::{ExprPool, ExprRef};
use crate::interval::IntervalCache;
use crate::report::SolverStats;
use crate::sat::SatOutcome;
use overify_obs::metrics::{LazyCounter, LazyHistogram};
use std::collections::HashMap;
use std::sync::Arc;

/// A satisfying assignment: symbolic variable id → value.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Model {
    pub values: HashMap<u32, u64>,
}

impl Model {
    /// Value of symbol `id` (unconstrained symbols read 0).
    pub fn get(&self, id: u32) -> u64 {
        self.values.get(&id).copied().unwrap_or(0)
    }
}

/// Query result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    Sat(Model),
    Unsat,
}

impl SatResult {
    /// True if satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

/// Feature toggles (for the solver-stack ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SolverOptions {
    pub use_intervals: bool,
    pub use_cex_cache: bool,
    pub use_query_cache: bool,
    /// Consult/publish the cross-worker shared cache when one is attached
    /// (no effect on a solver without one).
    pub use_shared_cache: bool,
    /// Decide single-narrow-symbol queries by exhaustive evaluation
    /// instead of bit-blasting.
    pub use_enumeration: bool,
}

impl Default for SolverOptions {
    fn default() -> SolverOptions {
        SolverOptions {
            use_intervals: true,
            use_cex_cache: true,
            use_query_cache: true,
            use_shared_cache: true,
            use_enumeration: true,
        }
    }
}

/// The solver with its caches and statistics.
pub struct Solver {
    pub opts: SolverOptions,
    pub stats: SolverStats,
    intervals: IntervalCache,
    /// Recent models, most recent last.
    cex_cache: Vec<Model>,
    /// Canonicalized constraint set → result (Unsat, or index hint).
    query_cache: HashMap<Vec<ExprRef>, Option<Model>>,
    /// Cross-worker verdict map, keyed by structural fingerprint.
    shared: Option<Arc<SharedQueryCache>>,
    /// Memoized per-expression structural fingerprints.
    fp_memo: HashMap<ExprRef, u128>,
    /// Memoized per-expression symbol supports (for the enumeration fast
    /// path).
    support_memo: HashMap<ExprRef, Arc<Vec<u32>>>,
    /// Memoized satisfying-value bitsets of single-symbol constraints.
    enum_memo: HashMap<ExprRef, [u64; 4]>,
}

const CEX_CACHE_CAP: usize = 64;

impl Default for Solver {
    fn default() -> Self {
        Self::new(SolverOptions::default())
    }
}

impl Solver {
    /// Creates a solver.
    pub fn new(opts: SolverOptions) -> Solver {
        Solver {
            opts,
            stats: SolverStats::default(),
            intervals: IntervalCache::new(),
            cex_cache: Vec::new(),
            query_cache: HashMap::new(),
            shared: None,
            fp_memo: HashMap::new(),
            support_memo: HashMap::new(),
            enum_memo: HashMap::new(),
        }
    }

    /// Attaches a cross-worker shared cache (layer 5).
    pub fn attach_shared(&mut self, cache: Arc<SharedQueryCache>) {
        self.shared = Some(cache);
    }

    /// Decides satisfiability of the conjunction of `constraints`.
    pub fn check(&mut self, pool: &ExprPool, constraints: &[ExprRef]) -> SatResult {
        static QUERIES: LazyCounter = LazyCounter::new("overify_solver_queries_total");
        static LATENCY: LazyHistogram = LazyHistogram::new("overify_solver_query_latency_ns");
        QUERIES.inc();
        let started = std::time::Instant::now();
        let result = self.check_layers(pool, constraints);
        let elapsed = started.elapsed();
        LATENCY.observe_ns(elapsed);
        self.stats.solver_ns += elapsed.as_nanos() as u64;
        result
    }

    fn check_layers(&mut self, pool: &ExprPool, constraints: &[ExprRef]) -> SatResult {
        self.stats.queries += 1;

        // Layer 1: constants.
        let mut live: Vec<ExprRef> = Vec::with_capacity(constraints.len());
        for &c in constraints {
            match pool.as_const(c) {
                Some(0) => {
                    self.stats.solved_const += 1;
                    return SatResult::Unsat;
                }
                Some(_) => {}
                None => live.push(c),
            }
        }
        if live.is_empty() {
            self.stats.solved_const += 1;
            return SatResult::Sat(Model::default());
        }

        // Layer 2: intervals (per-constraint refutation).
        if self.opts.use_intervals {
            for &c in &live {
                if self.intervals.decide(pool, c) == Some(false) {
                    self.stats.solved_interval += 1;
                    return SatResult::Unsat;
                }
            }
        }

        // Canonical key.
        let mut key = live.clone();
        key.sort();
        key.dedup();

        // Layer 3: counterexample cache.
        if self.opts.use_cex_cache {
            for m in self.cex_cache.iter().rev() {
                if key.iter().all(|&c| pool.eval(c, &|id| m.get(id)) != 0) {
                    self.stats.solved_cex_cache += 1;
                    return SatResult::Sat(m.clone());
                }
            }
        }

        // Layer 4: query cache.
        if self.opts.use_query_cache {
            if let Some(hit) = self.query_cache.get(&key) {
                static HITS: LazyCounter =
                    LazyCounter::new("overify_solver_query_cache_hits_total");
                HITS.inc();
                self.stats.solved_query_cache += 1;
                return match hit {
                    None => SatResult::Unsat,
                    Some(m) => SatResult::Sat(m.clone()),
                };
            }
        }

        // Layer 5: single-symbol enumeration. A query whose whole support
        // is one narrow symbol is decided by exhaustive evaluation —
        // orders of magnitude cheaper than bit-blasting (division and
        // multiplication chains especially), and the returned model is
        // canonical: the smallest satisfying value.
        if let Some((id, width)) = self
            .opts
            .use_enumeration
            .then(|| self.single_narrow_support(pool, &key))
            .flatten()
        {
            self.stats.solved_enum += 1;
            return match self.enum_min(pool, &key, id, width) {
                Some(v) => {
                    let mut model = Model::default();
                    model.values.insert(id, v);
                    if self.opts.use_cex_cache {
                        if self.cex_cache.len() >= CEX_CACHE_CAP {
                            self.cex_cache.remove(0);
                        }
                        self.cex_cache.push(model.clone());
                    }
                    if self.opts.use_query_cache {
                        self.query_cache.insert(key, Some(model.clone()));
                    }
                    SatResult::Sat(model)
                }
                None => {
                    if self.opts.use_query_cache {
                        self.query_cache.insert(key, None);
                    }
                    SatResult::Unsat
                }
            };
        }

        // Layer 6: cross-worker shared cache (structural fingerprints, so
        // workers with differently-numbered pools still match).
        let shared_fp = match (&self.shared, self.opts.use_shared_cache) {
            (Some(_), true) => Some(set_fingerprint(pool, &key, &mut self.fp_memo)),
            _ => None,
        };
        if let (Some(sc), Some(fp)) = (&self.shared, shared_fp) {
            if let Some(hit) = sc.lookup(fp) {
                static HITS: LazyCounter =
                    LazyCounter::new("overify_solver_shared_cache_hits_total");
                HITS.inc();
                self.stats.solved_shared += 1;
                // Feed the local caches exactly as a SAT resolution would
                // have: a warm run then replays a cold run's layer
                // decisions (models included), keeping reports
                // byte-identical while `solved_sat` drops to zero.
                if let Some(m) = &hit {
                    if self.opts.use_cex_cache {
                        if self.cex_cache.len() >= CEX_CACHE_CAP {
                            self.cex_cache.remove(0);
                        }
                        self.cex_cache.push(m.clone());
                    }
                }
                if self.opts.use_query_cache {
                    self.query_cache.insert(key, hit.clone());
                }
                return match hit {
                    None => SatResult::Unsat,
                    Some(m) => SatResult::Sat(m),
                };
            }
        }

        // Layer 7: SAT — every cache above missed.
        static SAT_SOLVES: LazyCounter = LazyCounter::new("overify_solver_sat_solves_total");
        SAT_SOLVES.inc();
        self.stats.solved_sat += 1;
        let sat_started = std::time::Instant::now();
        let mut blaster = Blaster::new(pool);
        for &c in &key {
            blaster.assert_true(c);
        }
        let outcome = blaster.sat.solve();
        self.stats.sat_decisions += blaster.sat.decisions;
        self.stats.sat_conflicts += blaster.sat.conflicts;
        // Feed the slow-query log; the fingerprint is only computed when
        // this solve would actually make the top-K (one relaxed load
        // otherwise), and is memoized with the shared-cache fingerprints.
        let sat_ns = sat_started.elapsed().as_nanos() as u64;
        let slow = overify_obs::slow::SlowLog::global();
        if slow.would_record(sat_ns) {
            let fp = shared_fp.unwrap_or_else(|| set_fingerprint(pool, &key, &mut self.fp_memo));
            slow.record(fp, sat_ns);
        }
        match outcome {
            SatOutcome::Unsat => {
                if self.opts.use_query_cache {
                    self.query_cache.insert(key, None);
                }
                if let (Some(sc), Some(fp)) = (&self.shared, shared_fp) {
                    sc.publish(fp, None);
                }
                SatResult::Unsat
            }
            SatOutcome::Sat => {
                let mut model = Model::default();
                for id in 0..pool.sym_count() {
                    if let Some(v) = blaster.model_sym(id) {
                        model.values.insert(id, v);
                    }
                }
                debug_assert!(
                    key.iter().all(|&c| pool.eval(c, &|id| model.get(id)) != 0),
                    "SAT model does not satisfy the query"
                );
                if self.opts.use_cex_cache {
                    if self.cex_cache.len() >= CEX_CACHE_CAP {
                        self.cex_cache.remove(0);
                    }
                    self.cex_cache.push(model.clone());
                }
                if self.opts.use_query_cache {
                    self.query_cache.insert(key, Some(model.clone()));
                }
                if let (Some(sc), Some(fp)) = (&self.shared, shared_fp) {
                    sc.publish(fp, Some(model.clone()));
                }
                SatResult::Sat(model)
            }
        }
    }

    /// The smallest value of single symbol `sym` (width ≤ 8) satisfying
    /// every constraint in `cs` (all single-symbol over `sym`), or `None`
    /// when unsatisfiable: intersect the per-constraint satisfying-value
    /// bitsets (each computed once per constraint, ever) and take the
    /// first surviving value. Shared by the enumeration solver layer and
    /// the canonical-test minimizer.
    pub(crate) fn enum_min(
        &mut self,
        pool: &ExprPool,
        cs: &[ExprRef],
        sym: u32,
        width: u32,
    ) -> Option<u64> {
        let domain = crate::expr::width_mask(width) as usize + 1;
        let mut acc = [u64::MAX; 4];
        for bit in domain..256 {
            acc[bit / 64] &= !(1u64 << (bit % 64));
        }
        for &c in cs {
            let bits = self.enum_bitset(pool, c, sym, width);
            for (a, b) in acc.iter_mut().zip(bits) {
                *a &= b;
            }
            if acc == [0; 4] {
                break;
            }
        }
        acc.iter()
            .enumerate()
            .find(|(_, &word)| word != 0)
            .map(|(i, word)| (i * 64 + word.trailing_zeros() as usize) as u64)
    }

    /// The 256-bit set of domain values satisfying single-symbol
    /// constraint `c`, computed once per constraint via a vectorized DAG
    /// walk and memoized for the solver's lifetime.
    fn enum_bitset(&mut self, pool: &ExprPool, c: ExprRef, sym: u32, width: u32) -> [u64; 4] {
        if let Some(b) = self.enum_memo.get(&c) {
            return *b;
        }
        let vals = pool.eval_all(c, sym, width);
        let mut bits = [0u64; 4];
        for (v, &x) in vals.iter().enumerate() {
            if x != 0 {
                bits[v / 64] |= 1 << (v % 64);
            }
        }
        self.enum_memo.insert(c, bits);
        bits
    }

    /// If every constraint in `key` mentions exactly one common symbol of
    /// width ≤ 8 bits, returns it (the enumeration fast-path guard).
    fn single_narrow_support(&mut self, pool: &ExprPool, key: &[ExprRef]) -> Option<(u32, u32)> {
        let mut the_sym: Option<u32> = None;
        for &c in key {
            let support = crate::expr::sym_support(pool, c, &mut self.support_memo);
            match (support.as_slice(), the_sym) {
                ([one], None) => the_sym = Some(*one),
                ([one], Some(s)) if *one == s => {}
                _ => return None,
            }
        }
        let id = the_sym?;
        // All constraints mention exactly this symbol; find its width.
        for &c in key {
            if let Some(w) = find_sym_width(pool, c, id) {
                return (w <= 8).then_some((id, w));
            }
        }
        None
    }

    /// Convenience: is `cond` possible under `constraints`?
    ///
    /// Before anything is solved, the constraint set is *sliced* to the
    /// independent component connected to `cond`'s symbols (KLEE's
    /// independent solver, lifted from the test-canonicalization path into
    /// every branch-feasibility query): constraints sharing no transitive
    /// symbol support with the query cannot change its verdict, so they
    /// are never bit-blasted, fingerprinted or cached.
    ///
    /// Soundness contract: `constraints` must be jointly satisfiable —
    /// which path conditions are by construction, since every conjunct is
    /// feasibility-checked before it is pushed. (Any subset of a
    /// satisfiable set is satisfiable, so the dropped remainder can never
    /// flip a SAT verdict.)
    pub fn may_be_true(&mut self, pool: &ExprPool, constraints: &[ExprRef], cond: ExprRef) -> bool {
        let seeds = crate::expr::sym_support(pool, cond, &mut self.support_memo);
        let mut cs = if seeds.is_empty() {
            // A constant condition: no symbols, nothing to slice against.
            constraints.to_vec()
        } else {
            let slice = crate::expr::constraint_component(
                pool,
                constraints,
                &seeds,
                &mut self.support_memo,
            );
            static SLICE_DROPPED: LazyCounter =
                LazyCounter::new("overify_solver_slice_dropped_total");
            SLICE_DROPPED
                .get()
                .add((constraints.len() - slice.len()) as u64);
            self.stats.slice_dropped += (constraints.len() - slice.len()) as u64;
            slice
        };
        cs.push(cond);
        self.check(pool, &cs).is_sat()
    }
}

/// The declared width of symbol `id` inside expression `e`, if present.
fn find_sym_width(pool: &ExprPool, e: ExprRef, id: u32) -> Option<u32> {
    use crate::expr::Node;
    let mut stack = vec![e];
    let mut seen = std::collections::HashSet::new();
    while let Some(x) = stack.pop() {
        if !seen.insert(x) {
            continue;
        }
        if let Node::Sym { id: sid, width } = *pool.node(x) {
            if sid == id {
                return Some(width);
            }
        }
        stack.extend(pool.node(x).children());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use overify_ir::{BinOp, CmpPred};

    #[test]
    fn layered_solving() {
        let mut pool = ExprPool::new();
        let mut s = Solver::default();
        let x = pool.fresh_sym(8);
        let k100 = pool.constant(8, 100);
        let k10 = pool.constant(8, 10);
        let lt10 = pool.cmp(CmpPred::Ult, x, k10);
        let gt100 = pool.cmp(CmpPred::Ugt, x, k100);

        // Satisfiable.
        let r = s.check(&pool, &[lt10]);
        let SatResult::Sat(m) = r else {
            panic!("expected sat")
        };
        assert!(m.get(0) < 10);

        // Contradiction requires SAT (or cache) to refute.
        assert_eq!(s.check(&pool, &[lt10, gt100]), SatResult::Unsat);

        // Same query again: query cache.
        let before = s.stats.solved_query_cache;
        assert_eq!(s.check(&pool, &[lt10, gt100]), SatResult::Unsat);
        assert_eq!(s.stats.solved_query_cache, before + 1);
    }

    #[test]
    fn interval_layer_short_circuits() {
        let mut pool = ExprPool::new();
        let mut s = Solver::default();
        let x = pool.fresh_sym(8);
        let z = pool.zext(x, 32);
        let one = pool.constant(32, 1);
        let zp = pool.bin(BinOp::Add, z, one);
        let k = pool.constant(32, 1000);
        // x+1 > 1000 is impossible for a byte: intervals refute it.
        let c = pool.cmp(CmpPred::Ugt, zp, k);
        assert_eq!(s.check(&pool, &[c]), SatResult::Unsat);
        assert_eq!(s.stats.solved_interval, 1);
        assert_eq!(s.stats.solved_sat, 0);
    }

    #[test]
    fn cex_cache_reuses_models() {
        let mut pool = ExprPool::new();
        let mut s = Solver::default();
        let x = pool.fresh_sym(8);
        let k5 = pool.constant(8, 5);
        let ge5 = pool.cmp(CmpPred::Uge, x, k5);
        let r = s.check(&pool, &[ge5]);
        assert!(r.is_sat());
        // A weaker query: the cached model satisfies it without SAT.
        let k3 = pool.constant(8, 3);
        let ge3 = pool.cmp(CmpPred::Uge, x, k3);
        let sat_before = s.stats.solved_sat;
        assert!(s.check(&pool, &[ge3]).is_sat());
        assert_eq!(s.stats.solved_sat, sat_before);
        assert!(s.stats.solved_cex_cache >= 1);
    }

    #[test]
    fn models_respect_all_constraints() {
        let mut pool = ExprPool::new();
        let mut s = Solver::default();
        let x = pool.fresh_sym(8);
        let y = pool.fresh_sym(8);
        let sum = pool.bin(BinOp::Add, x, y);
        let k = pool.constant(8, 100);
        let c1 = pool.cmp(CmpPred::Eq, sum, k);
        let k40 = pool.constant(8, 40);
        let c2 = pool.cmp(CmpPred::Ugt, x, k40);
        let SatResult::Sat(m) = s.check(&pool, &[c1, c2]) else {
            panic!("expected sat");
        };
        assert_eq!((m.get(0).wrapping_add(m.get(1))) & 0xff, 100);
        assert!(m.get(0) > 40);
    }

    #[test]
    fn disabled_caches_still_correct() {
        let mut pool = ExprPool::new();
        let mut s = Solver::new(SolverOptions {
            use_intervals: false,
            use_cex_cache: false,
            use_query_cache: false,
            use_shared_cache: false,
            use_enumeration: false,
        });
        let x = pool.fresh_sym(8);
        let k = pool.constant(8, 200);
        let c = pool.cmp(CmpPred::Ugt, x, k);
        assert!(s.check(&pool, &[c]).is_sat());
        let nc = pool.not(c);
        assert!(s.check(&pool, &[c, nc]) == SatResult::Unsat);
        assert!(s.stats.solved_sat >= 2);
    }

    #[test]
    fn may_be_true_slices_independent_constraints() {
        let mut pool = ExprPool::new();
        let mut s = Solver::default();
        let x = pool.fresh_sym(8);
        let y = pool.fresh_sym(8);
        let z = pool.fresh_sym(8);
        let k9 = pool.constant(8, 9);
        let k3 = pool.constant(8, 3);
        let k2 = pool.constant(8, 2);
        // Path condition: y < 9 (independent), y + z == 9 (independent),
        // x > 3 — jointly satisfiable, as path conditions always are.
        let sum = pool.bin(BinOp::Add, y, z);
        let cs = vec![
            pool.cmp(CmpPred::Ult, y, k9),
            pool.cmp(CmpPred::Eq, sum, k9),
            pool.cmp(CmpPred::Ugt, x, k3),
        ];
        // Query about x: the two y/z constraints are sliced away, so the
        // whole query is single-symbol and the enumeration layer decides
        // it — no SAT, no y/z reasoning.
        let lt2 = pool.cmp(CmpPred::Ult, x, k2);
        assert!(!s.may_be_true(&pool, &cs, lt2));
        assert_eq!(s.stats.slice_dropped, 2);
        assert_eq!(s.stats.solved_sat, 0);
        let gt3b = pool.cmp(CmpPred::Ugt, x, k9);
        assert!(s.may_be_true(&pool, &cs, gt3b));
        assert_eq!(s.stats.slice_dropped, 4);
        // A query over y drags in exactly the connected component (y and
        // y+z==9, transitively z) but still not x.
        let y0 = pool.cmp(CmpPred::Eq, y, k3);
        assert!(s.may_be_true(&pool, &cs, y0));
        assert_eq!(s.stats.slice_dropped, 5);
    }

    #[test]
    fn shared_cache_serves_a_second_solver() {
        use std::sync::Arc;
        let shared = Arc::new(crate::cache::SharedQueryCache::new());

        // Two symbols, so neither enumeration nor intervals decide it and
        // the query genuinely reaches the SAT / shared layers.
        // x < 10 && y < 10 && x + y > 50 is UNSAT without 8-bit wrap.
        let build = |pool: &mut ExprPool, pad: bool| -> Vec<ExprRef> {
            let x = pool.fresh_sym(8);
            if pad {
                // Shift ExprRef numbering so the pools genuinely differ.
                let k = pool.constant(8, 55);
                let _ = pool.bin(BinOp::Mul, x, k);
            }
            let y = pool.fresh_sym(8);
            let k10 = pool.constant(8, 10);
            let k50 = pool.constant(8, 50);
            let sum = pool.bin(BinOp::Add, x, y);
            vec![
                pool.cmp(CmpPred::Ult, x, k10),
                pool.cmp(CmpPred::Ult, y, k10),
                pool.cmp(CmpPred::Ugt, sum, k50),
            ]
        };

        // Solver A solves the query and publishes the verdict.
        let mut pool_a = ExprPool::new();
        let mut a = Solver::default();
        a.attach_shared(shared.clone());
        let cs_a = build(&mut pool_a, false);
        assert_eq!(a.check(&pool_a, &cs_a), SatResult::Unsat);
        assert!(a.stats.solved_sat > 0, "should have reached SAT");

        // Solver B, over a *different* pool with shifted numbering, asks
        // the structurally identical query: answered without SAT.
        let mut pool_b = ExprPool::new();
        let mut b = Solver::default();
        b.attach_shared(shared);
        let mut cs_b = build(&mut pool_b, true);
        cs_b.reverse(); // Order-independent key.
        assert_eq!(b.check(&pool_b, &cs_b), SatResult::Unsat);
        assert_eq!(b.stats.solved_shared, 1);
        assert_eq!(b.stats.solved_sat, 0);
    }
}
