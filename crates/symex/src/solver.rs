//! The layered constraint solver.
//!
//! Queries go through progressively more expensive layers, mirroring KLEE's
//! solver chain:
//!
//! 1. **Constant structure** — the builder already folded it.
//! 2. **Intervals** — a per-constraint unsigned-range check.
//! 3. **Counterexample cache** — recently returned models are re-evaluated
//!    against the new query; on a DFS the parent path's model usually
//!    satisfies one child.
//! 4. **Query cache** — identical constraint sets answer instantly.
//! 5. **Bit-blasting + CDCL SAT** — the complete decision procedure.

use crate::blast::Blaster;
use crate::expr::{ExprPool, ExprRef};
use crate::interval::IntervalCache;
use crate::report::SolverStats;
use crate::sat::SatOutcome;
use std::collections::HashMap;

/// A satisfying assignment: symbolic variable id → value.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Model {
    pub values: HashMap<u32, u64>,
}

impl Model {
    /// Value of symbol `id` (unconstrained symbols read 0).
    pub fn get(&self, id: u32) -> u64 {
        self.values.get(&id).copied().unwrap_or(0)
    }
}

/// Query result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    Sat(Model),
    Unsat,
}

impl SatResult {
    /// True if satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

/// Feature toggles (for the solver-stack ablation).
#[derive(Clone, Copy, Debug)]
pub struct SolverOptions {
    pub use_intervals: bool,
    pub use_cex_cache: bool,
    pub use_query_cache: bool,
}

impl Default for SolverOptions {
    fn default() -> SolverOptions {
        SolverOptions {
            use_intervals: true,
            use_cex_cache: true,
            use_query_cache: true,
        }
    }
}

/// The solver with its caches and statistics.
pub struct Solver {
    pub opts: SolverOptions,
    pub stats: SolverStats,
    intervals: IntervalCache,
    /// Recent models, most recent last.
    cex_cache: Vec<Model>,
    /// Canonicalized constraint set → result (Unsat, or index hint).
    query_cache: HashMap<Vec<ExprRef>, Option<Model>>,
}

const CEX_CACHE_CAP: usize = 64;

impl Default for Solver {
    fn default() -> Self {
        Self::new(SolverOptions::default())
    }
}

impl Solver {
    /// Creates a solver.
    pub fn new(opts: SolverOptions) -> Solver {
        Solver {
            opts,
            stats: SolverStats::default(),
            intervals: IntervalCache::new(),
            cex_cache: Vec::new(),
            query_cache: HashMap::new(),
        }
    }

    /// Decides satisfiability of the conjunction of `constraints`.
    pub fn check(&mut self, pool: &ExprPool, constraints: &[ExprRef]) -> SatResult {
        self.stats.queries += 1;

        // Layer 1: constants.
        let mut live: Vec<ExprRef> = Vec::with_capacity(constraints.len());
        for &c in constraints {
            match pool.as_const(c) {
                Some(0) => {
                    self.stats.solved_const += 1;
                    return SatResult::Unsat;
                }
                Some(_) => {}
                None => live.push(c),
            }
        }
        if live.is_empty() {
            self.stats.solved_const += 1;
            return SatResult::Sat(Model::default());
        }

        // Layer 2: intervals (per-constraint refutation).
        if self.opts.use_intervals {
            for &c in &live {
                if self.intervals.decide(pool, c) == Some(false) {
                    self.stats.solved_interval += 1;
                    return SatResult::Unsat;
                }
            }
        }

        // Canonical key.
        let mut key = live.clone();
        key.sort();
        key.dedup();

        // Layer 3: counterexample cache.
        if self.opts.use_cex_cache {
            for m in self.cex_cache.iter().rev() {
                if key.iter().all(|&c| pool.eval(c, &|id| m.get(id)) != 0) {
                    self.stats.solved_cex_cache += 1;
                    return SatResult::Sat(m.clone());
                }
            }
        }

        // Layer 4: query cache.
        if self.opts.use_query_cache {
            if let Some(hit) = self.query_cache.get(&key) {
                self.stats.solved_query_cache += 1;
                return match hit {
                    None => SatResult::Unsat,
                    Some(m) => SatResult::Sat(m.clone()),
                };
            }
        }

        // Layer 5: SAT.
        self.stats.solved_sat += 1;
        let mut blaster = Blaster::new(pool);
        for &c in &key {
            blaster.assert_true(c);
        }
        let outcome = blaster.sat.solve();
        self.stats.sat_decisions += blaster.sat.decisions;
        self.stats.sat_conflicts += blaster.sat.conflicts;
        match outcome {
            SatOutcome::Unsat => {
                if self.opts.use_query_cache {
                    self.query_cache.insert(key, None);
                }
                SatResult::Unsat
            }
            SatOutcome::Sat => {
                let mut model = Model::default();
                for id in 0..pool.sym_count() {
                    if let Some(v) = blaster.model_sym(id) {
                        model.values.insert(id, v);
                    }
                }
                debug_assert!(
                    key.iter().all(|&c| pool.eval(c, &|id| model.get(id)) != 0),
                    "SAT model does not satisfy the query"
                );
                if self.opts.use_cex_cache {
                    if self.cex_cache.len() >= CEX_CACHE_CAP {
                        self.cex_cache.remove(0);
                    }
                    self.cex_cache.push(model.clone());
                }
                if self.opts.use_query_cache {
                    self.query_cache.insert(key, Some(model.clone()));
                }
                SatResult::Sat(model)
            }
        }
    }

    /// Convenience: is `cond` possible under `constraints`?
    pub fn may_be_true(&mut self, pool: &ExprPool, constraints: &[ExprRef], cond: ExprRef) -> bool {
        let mut cs = constraints.to_vec();
        cs.push(cond);
        self.check(pool, &cs).is_sat()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overify_ir::{BinOp, CmpPred};

    #[test]
    fn layered_solving() {
        let mut pool = ExprPool::new();
        let mut s = Solver::default();
        let x = pool.fresh_sym(8);
        let k100 = pool.constant(8, 100);
        let k10 = pool.constant(8, 10);
        let lt10 = pool.cmp(CmpPred::Ult, x, k10);
        let gt100 = pool.cmp(CmpPred::Ugt, x, k100);

        // Satisfiable.
        let r = s.check(&pool, &[lt10]);
        let SatResult::Sat(m) = r else {
            panic!("expected sat")
        };
        assert!(m.get(0) < 10);

        // Contradiction requires SAT (or cache) to refute.
        assert_eq!(s.check(&pool, &[lt10, gt100]), SatResult::Unsat);

        // Same query again: query cache.
        let before = s.stats.solved_query_cache;
        assert_eq!(s.check(&pool, &[lt10, gt100]), SatResult::Unsat);
        assert_eq!(s.stats.solved_query_cache, before + 1);
    }

    #[test]
    fn interval_layer_short_circuits() {
        let mut pool = ExprPool::new();
        let mut s = Solver::default();
        let x = pool.fresh_sym(8);
        let z = pool.zext(x, 32);
        let one = pool.constant(32, 1);
        let zp = pool.bin(BinOp::Add, z, one);
        let k = pool.constant(32, 1000);
        // x+1 > 1000 is impossible for a byte: intervals refute it.
        let c = pool.cmp(CmpPred::Ugt, zp, k);
        assert_eq!(s.check(&pool, &[c]), SatResult::Unsat);
        assert_eq!(s.stats.solved_interval, 1);
        assert_eq!(s.stats.solved_sat, 0);
    }

    #[test]
    fn cex_cache_reuses_models() {
        let mut pool = ExprPool::new();
        let mut s = Solver::default();
        let x = pool.fresh_sym(8);
        let k5 = pool.constant(8, 5);
        let ge5 = pool.cmp(CmpPred::Uge, x, k5);
        let r = s.check(&pool, &[ge5]);
        assert!(r.is_sat());
        // A weaker query: the cached model satisfies it without SAT.
        let k3 = pool.constant(8, 3);
        let ge3 = pool.cmp(CmpPred::Uge, x, k3);
        let sat_before = s.stats.solved_sat;
        assert!(s.check(&pool, &[ge3]).is_sat());
        assert_eq!(s.stats.solved_sat, sat_before);
        assert!(s.stats.solved_cex_cache >= 1);
    }

    #[test]
    fn models_respect_all_constraints() {
        let mut pool = ExprPool::new();
        let mut s = Solver::default();
        let x = pool.fresh_sym(8);
        let y = pool.fresh_sym(8);
        let sum = pool.bin(BinOp::Add, x, y);
        let k = pool.constant(8, 100);
        let c1 = pool.cmp(CmpPred::Eq, sum, k);
        let k40 = pool.constant(8, 40);
        let c2 = pool.cmp(CmpPred::Ugt, x, k40);
        let SatResult::Sat(m) = s.check(&pool, &[c1, c2]) else {
            panic!("expected sat");
        };
        assert_eq!((m.get(0).wrapping_add(m.get(1))) & 0xff, 100);
        assert!(m.get(0) > 40);
    }

    #[test]
    fn disabled_caches_still_correct() {
        let mut pool = ExprPool::new();
        let mut s = Solver::new(SolverOptions {
            use_intervals: false,
            use_cex_cache: false,
            use_query_cache: false,
        });
        let x = pool.fresh_sym(8);
        let k = pool.constant(8, 200);
        let c = pool.cmp(CmpPred::Ugt, x, k);
        assert!(s.check(&pool, &[c]).is_sat());
        let nc = pool.not(c);
        assert!(s.check(&pool, &[c, nc]) == SatResult::Unsat);
        assert!(s.stats.solved_sat >= 2);
    }
}
