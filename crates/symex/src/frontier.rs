//! The path-level job frontier as a first-class, transport-agnostic API.
//!
//! PR 2 buried the work-stealing frontier inside `verify_parallel` as a
//! private `Mutex<VecDeque>`; that capped one verification run at a single
//! address space. This module promotes the frontier to a trait —
//! [`Frontier`] — with two implementations:
//!
//! * [`LocalFrontier`]: the in-process deque the work-stealing driver has
//!   always used, behaviourally unchanged.
//! * [`SharedFrontier`]: the same queue plus a *bridge* for jobs that
//!   leave the process. A dispatcher (the `overify_serve` daemon) leases
//!   queued jobs to remote worker processes over its wire protocol,
//!   accepts frontier states they shed back mid-subtree, restores the
//!   jobs of workers that vanish, and folds their partial reports into
//!   the same deterministic merge. A job is a branch-decision trace —
//!   already serializable by construction — so the transport needs
//!   nothing beyond a byte codec.
//!
//! Determinism is preserved by construction: a job explores the same
//! subtree no matter which process replays its decision prefix, and the
//! merge is order-insensitive (sorted + deduplicated), so the merged
//! report's bugs, canonical tests and path set are bit-identical at any
//! worker-process count (see [`crate::report::VerificationReport::canonical_bytes`]).

use crate::executor::SymConfig;
use crate::parallel::SharedBudget;
use crate::report::VerificationReport;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Estimated fork count of the subtree hanging beneath a frontier state,
/// from the only transport-agnostic evidence a branch-decision trace
/// carries: its length. Path counts grow geometrically in the decisions
/// still open, and every decision already taken roughly halves the
/// remaining space, so the estimate decays exponentially with trace depth
/// (saturating at 63 decisions — deeper states all price alike at the
/// bottom of the range).
///
/// Both sides of the work-stealing economy rank subtrees with this one
/// estimate: the executor donates its biggest-estimate pending state
/// (shipping the subtree that keeps a starving peer busy longest), and
/// the dispatcher's lease `shed` hint scales with the estimate of the
/// leased prefix so remote workers return the most states from the
/// biggest subtrees. Purely a scheduling signal: the merged report is
/// deterministic regardless (see the module docs).
pub fn estimated_subtree_forks(trace: &[bool]) -> u64 {
    u64::MAX >> trace.len().min(63)
}

/// Steal accounting of one frontier, sampled at any time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrontierStats {
    /// States offered into the frontier (donations; the root seed is not
    /// counted).
    pub offered: u64,
    /// Jobs handed to in-process workers.
    pub taken: u64,
    /// Jobs leased to remote workers.
    pub remote_leases: u64,
    /// States shed back by remote workers mid-subtree.
    pub remote_offers: u64,
    /// Partial reports merged back from remote workers.
    pub remote_reports: u64,
    /// Leased jobs restored to the queue after their worker vanished.
    pub recovered: u64,
}

/// The path-level job frontier: the exchange through which workers trade
/// unexplored subtrees, as replayable branch-decision prefixes.
///
/// The contract mirrors the in-process deque the work-stealing driver
/// always had, now transport-agnostic:
///
/// * a *job* is the decision trace of an unexplored frontier state; the
///   taker replays it (zero solver queries) and explores the subtree;
/// * every popped job must be balanced by exactly one [`Frontier::finish`]
///   once its subtree is explored or re-donated;
/// * the run is over when the live count (queued + popped-but-unfinished)
///   reaches zero — [`Frontier::next`] then returns `None` to everyone.
pub trait Frontier: Send + Sync {
    /// Blocks until a job is available (its decision prefix is returned)
    /// or the execution tree is fully explored / the frontier was sealed
    /// (`None`).
    fn next(&self) -> Option<Vec<bool>>;

    /// Marks one previously popped job fully explored (its subtree is done
    /// or was donated onward). Must be called exactly once per successful
    /// [`Frontier::next`].
    fn finish(&self);

    /// Offers a frontier state to the fleet. `false` means the offer was
    /// not accepted and the state stays with the offering worker.
    fn offer(&self, prefix: Vec<bool>) -> bool;

    /// Is anyone starving? Cheap; polled by busy workers between paths to
    /// decide whether to donate.
    fn hungry(&self) -> bool;

    /// Permanently closes the frontier: [`Frontier::next`] returns `None`
    /// and [`Frontier::offer`] rejects from now on. Used by a dispatcher
    /// tearing a run down.
    fn seal(&self);

    /// Steal accounting so far.
    fn stats(&self) -> FrontierStats;

    /// Partial reports contributed by workers outside this process,
    /// drained once after the run. The in-process frontier has none.
    fn drain_remote_reports(&self) -> Vec<VerificationReport> {
        Vec::new()
    }
}

/// Hands a driver the frontier to run each swept verification on — the
/// hook through which a dispatcher (the serve daemon) substitutes a
/// [`SharedFrontier`] it can bridge to remote worker processes.
pub trait FrontierProvider: Sync {
    /// Called at the start of one verification run (`cfg.input_bytes` is
    /// already set for the run); returns the frontier to drive it with.
    /// The budget is the run's live fleet budget, so remote work can be
    /// folded into ceilings and progress counters.
    fn begin_run(&self, cfg: &SymConfig, budget: &Arc<SharedBudget>) -> Arc<dyn Frontier>;

    /// Called once the run's merged report exists; the dispatcher
    /// unpublishes the frontier.
    fn end_run(&self, frontier: Arc<dyn Frontier>);

    /// The names of remote workers that have contributed completed leases
    /// to this provider's runs so far — per-run resource-ledger
    /// attribution. The in-process default has no remote contributors.
    fn contributors(&self) -> Vec<String> {
        Vec::new()
    }
}

/// A wakeup channel a dispatcher shares with its frontiers: everything
/// that makes new work stealable (a donation, a restored lease, a freshly
/// published run) bumps the epoch and wakes waiters, so a long-polling
/// steal request blocks on a condvar instead of spinning.
pub struct FrontierSignal {
    epoch: Mutex<u64>,
    cv: Condvar,
}

impl FrontierSignal {
    pub fn new() -> FrontierSignal {
        FrontierSignal {
            epoch: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    /// The current epoch; capture it *before* scanning for work so a bump
    /// racing the scan is never missed.
    pub fn epoch(&self) -> u64 {
        *self.epoch.lock().unwrap()
    }

    /// Signals that new work may be stealable; wakes every waiter.
    pub fn bump(&self) {
        let mut e = self.epoch.lock().unwrap();
        *e += 1;
        self.cv.notify_all();
    }

    /// Blocks until the epoch moves past `seen` or `timeout` elapses.
    pub fn wait_past(&self, seen: u64, timeout: std::time::Duration) {
        let deadline = std::time::Instant::now() + timeout;
        let mut e = self.epoch.lock().unwrap();
        while *e <= seen {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return;
            }
            let (guard, _) = self.cv.wait_timeout(e, left).unwrap();
            e = guard;
        }
    }
}

impl Default for FrontierSignal {
    fn default() -> FrontierSignal {
        FrontierSignal::new()
    }
}

struct Counters {
    offered: AtomicU64,
    taken: AtomicU64,
    remote_leases: AtomicU64,
    remote_offers: AtomicU64,
    remote_reports: AtomicU64,
    recovered: AtomicU64,
}

impl Counters {
    fn new() -> Counters {
        Counters {
            offered: AtomicU64::new(0),
            taken: AtomicU64::new(0),
            remote_leases: AtomicU64::new(0),
            remote_offers: AtomicU64::new(0),
            remote_reports: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
        }
    }

    fn snapshot(&self) -> FrontierStats {
        FrontierStats {
            offered: self.offered.load(Ordering::Relaxed),
            taken: self.taken.load(Ordering::Relaxed),
            remote_leases: self.remote_leases.load(Ordering::Relaxed),
            remote_offers: self.remote_offers.load(Ordering::Relaxed),
            remote_reports: self.remote_reports.load(Ordering::Relaxed),
            recovered: self.recovered.load(Ordering::Relaxed),
        }
    }
}

struct LocalQueue {
    jobs: VecDeque<Vec<bool>>,
    /// Jobs outstanding: queued plus currently being explored. The run is
    /// over when this reaches zero.
    live: usize,
    sealed: bool,
}

/// The in-process frontier: a deque of replayable decision prefixes plus
/// the bookkeeping for steal/termination coordination. One verification
/// run seeds it with the root job (the empty prefix).
pub struct LocalFrontier {
    queue: Mutex<LocalQueue>,
    cv: Condvar,
    /// Workers currently blocked waiting for a job.
    idle: AtomicUsize,
    /// Jobs currently queued (mirror of `queue.jobs.len()` for lock-free
    /// hunger checks).
    queued: AtomicUsize,
    stats: Counters,
}

impl LocalFrontier {
    /// A frontier seeded with the root job.
    pub fn new() -> LocalFrontier {
        let mut jobs = VecDeque::new();
        jobs.push_back(Vec::new()); // The root job: empty prefix.
        LocalFrontier {
            queue: Mutex::new(LocalQueue {
                jobs,
                live: 1,
                sealed: false,
            }),
            cv: Condvar::new(),
            idle: AtomicUsize::new(0),
            queued: AtomicUsize::new(1),
            stats: Counters::new(),
        }
    }
}

impl Default for LocalFrontier {
    fn default() -> LocalFrontier {
        LocalFrontier::new()
    }
}

impl Frontier for LocalFrontier {
    fn next(&self) -> Option<Vec<bool>> {
        let mut q = self.queue.lock().unwrap();
        loop {
            if q.sealed {
                return None;
            }
            if let Some(job) = q.jobs.pop_front() {
                self.queued.fetch_sub(1, Ordering::Relaxed);
                self.stats.taken.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
            if q.live == 0 {
                return None;
            }
            self.idle.fetch_add(1, Ordering::Relaxed);
            q = self.cv.wait(q).unwrap();
            self.idle.fetch_sub(1, Ordering::Relaxed);
        }
    }

    fn finish(&self) {
        let mut q = self.queue.lock().unwrap();
        q.live = q.live.saturating_sub(1);
        if q.live == 0 {
            self.cv.notify_all();
        }
    }

    fn offer(&self, prefix: Vec<bool>) -> bool {
        let mut q = self.queue.lock().unwrap();
        if q.sealed {
            return false;
        }
        q.jobs.push_back(prefix);
        q.live += 1;
        self.queued.fetch_add(1, Ordering::Relaxed);
        self.stats.offered.fetch_add(1, Ordering::Relaxed);
        self.cv.notify_one();
        true
    }

    fn hungry(&self) -> bool {
        // Donate only while starving workers outnumber queued jobs; keeps
        // steal traffic (and replay overhead) proportional to imbalance.
        self.idle.load(Ordering::Relaxed) > self.queued.load(Ordering::Relaxed)
    }

    fn seal(&self) {
        let mut q = self.queue.lock().unwrap();
        q.sealed = true;
        self.cv.notify_all();
    }

    fn stats(&self) -> FrontierStats {
        self.stats.snapshot()
    }
}

struct SharedQueue {
    jobs: VecDeque<Vec<bool>>,
    live: usize,
    sealed: bool,
    remote_reports: Vec<VerificationReport>,
}

/// A frontier a dispatcher can bridge over a wire protocol: in-process
/// workers use it exactly like [`LocalFrontier`], and the dispatcher
/// additionally *leases* queued jobs to remote worker processes:
///
/// * [`SharedFrontier::try_steal`] pops a job without finishing it — the
///   subtree stays live until the lease completes;
/// * [`SharedFrontier::offer_remote`] accepts frontier states a remote
///   worker sheds back mid-subtree (new live jobs);
/// * [`SharedFrontier::complete_remote`] merges the lease's partial report
///   and retires the live count;
/// * [`SharedFrontier::restore`] puts a leased job back on the queue when
///   its worker vanished — the subtree is re-explored by whoever pops it
///   next, so a worker crash costs duplicate-free re-exploration of at
///   most its in-flight subtrees, never correctness.
pub struct SharedFrontier {
    queue: Mutex<SharedQueue>,
    cv: Condvar,
    idle: AtomicUsize,
    queued: AtomicUsize,
    /// Remote steal requests currently waiting anywhere on the dispatcher;
    /// shared so local workers donate for remote hunger too.
    remote_hunger: Arc<AtomicUsize>,
    /// The run's fleet budget; remote partial reports are folded into it
    /// so ceilings and progress counters observe remote work.
    budget: Option<Arc<SharedBudget>>,
    /// Bumped whenever new work becomes stealable, so a dispatcher's
    /// long-polling stealers block on a condvar instead of spinning.
    signal: Option<Arc<FrontierSignal>>,
    stats: Counters,
}

impl SharedFrontier {
    /// A standalone shared frontier (its own hunger gauge, no budget, no
    /// steal signal).
    pub fn new() -> SharedFrontier {
        SharedFrontier::for_run(None, Arc::new(AtomicUsize::new(0)), None)
    }

    /// A frontier for one dispatched run: remote hunger is read from the
    /// dispatcher-wide gauge, completed leases are folded into `budget`,
    /// and newly stealable work bumps `signal`.
    pub fn for_run(
        budget: Option<Arc<SharedBudget>>,
        remote_hunger: Arc<AtomicUsize>,
        signal: Option<Arc<FrontierSignal>>,
    ) -> SharedFrontier {
        let mut jobs = VecDeque::new();
        jobs.push_back(Vec::new());
        SharedFrontier {
            queue: Mutex::new(SharedQueue {
                jobs,
                live: 1,
                sealed: false,
                remote_reports: Vec::new(),
            }),
            cv: Condvar::new(),
            idle: AtomicUsize::new(0),
            queued: AtomicUsize::new(1),
            remote_hunger,
            budget,
            signal,
            stats: Counters::new(),
        }
    }

    fn signal_stealers(&self) {
        if let Some(s) = &self.signal {
            s.bump();
        }
    }

    /// Leases one queued job to a remote worker: the job leaves the queue
    /// but stays live until [`SharedFrontier::complete_remote`] (or
    /// [`SharedFrontier::restore`]) balances it. `None` when nothing is
    /// queued or the frontier is sealed.
    pub fn try_steal(&self) -> Option<Vec<bool>> {
        let mut q = self.queue.lock().unwrap();
        if q.sealed {
            return None;
        }
        let job = q.jobs.pop_front()?;
        self.queued.fetch_sub(1, Ordering::Relaxed);
        self.stats.remote_leases.fetch_add(1, Ordering::Relaxed);
        Some(job)
    }

    /// Accepts frontier states a remote worker shed back from a leased
    /// subtree; each is a fresh live job. Returns how many were accepted
    /// (0 when sealed).
    pub fn offer_remote(&self, prefixes: Vec<Vec<bool>>) -> usize {
        let mut q = self.queue.lock().unwrap();
        if q.sealed {
            return 0;
        }
        let n = prefixes.len();
        for p in prefixes {
            q.jobs.push_back(p);
            q.live += 1;
        }
        self.queued.fetch_add(n, Ordering::Relaxed);
        self.stats
            .remote_offers
            .fetch_add(n as u64, Ordering::Relaxed);
        self.cv.notify_all();
        drop(q);
        self.signal_stealers();
        n
    }

    /// Completes a lease: the partial report is queued for the merge and
    /// the leased job's live count retired. Also folds the report's
    /// counters into the run budget, so fleet ceilings and streamed
    /// progress include remote work.
    pub fn complete_remote(&self, report: VerificationReport) {
        if let Some(b) = &self.budget {
            b.absorb_remote(
                report.total_paths(),
                report.paths_buggy,
                report.instructions,
            );
        }
        let mut q = self.queue.lock().unwrap();
        q.remote_reports.push(report);
        q.live = q.live.saturating_sub(1);
        self.stats.remote_reports.fetch_add(1, Ordering::Relaxed);
        if q.live == 0 {
            self.cv.notify_all();
        }
    }

    /// Restores a leased job whose worker vanished: the prefix goes back
    /// on the queue (still live) and will be explored by whoever pops it
    /// next.
    pub fn restore(&self, prefix: Vec<bool>) {
        let mut q = self.queue.lock().unwrap();
        q.jobs.push_back(prefix);
        self.queued.fetch_add(1, Ordering::Relaxed);
        self.stats.recovered.fetch_add(1, Ordering::Relaxed);
        self.cv.notify_all();
        drop(q);
        self.signal_stealers();
    }
}

impl Default for SharedFrontier {
    fn default() -> SharedFrontier {
        SharedFrontier::new()
    }
}

impl Frontier for SharedFrontier {
    fn next(&self) -> Option<Vec<bool>> {
        let mut q = self.queue.lock().unwrap();
        loop {
            if q.sealed {
                return None;
            }
            if let Some(job) = q.jobs.pop_front() {
                self.queued.fetch_sub(1, Ordering::Relaxed);
                self.stats.taken.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
            if q.live == 0 {
                return None;
            }
            self.idle.fetch_add(1, Ordering::Relaxed);
            q = self.cv.wait(q).unwrap();
            self.idle.fetch_sub(1, Ordering::Relaxed);
        }
    }

    fn finish(&self) {
        let mut q = self.queue.lock().unwrap();
        q.live = q.live.saturating_sub(1);
        if q.live == 0 {
            self.cv.notify_all();
        }
    }

    fn offer(&self, prefix: Vec<bool>) -> bool {
        let mut q = self.queue.lock().unwrap();
        if q.sealed {
            return false;
        }
        q.jobs.push_back(prefix);
        q.live += 1;
        self.queued.fetch_add(1, Ordering::Relaxed);
        self.stats.offered.fetch_add(1, Ordering::Relaxed);
        self.cv.notify_one();
        drop(q);
        self.signal_stealers();
        true
    }

    fn hungry(&self) -> bool {
        // Local idle workers plus remote steal requests pending on the
        // dispatcher: both are mouths to feed.
        self.idle.load(Ordering::Relaxed) + self.remote_hunger.load(Ordering::Relaxed)
            > self.queued.load(Ordering::Relaxed)
    }

    fn seal(&self) {
        let mut q = self.queue.lock().unwrap();
        q.sealed = true;
        self.cv.notify_all();
    }

    fn stats(&self) -> FrontierStats {
        self.stats.snapshot()
    }

    fn drain_remote_reports(&self) -> Vec<VerificationReport> {
        std::mem::take(&mut self.queue.lock().unwrap().remote_reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_frontier_balances_live_and_terminates() {
        let f = LocalFrontier::new();
        let root = f.next().expect("root job");
        assert!(root.is_empty());
        assert!(f.offer(vec![true]));
        assert!(f.offer(vec![false, true]));
        f.finish(); // root done
        assert_eq!(f.next().unwrap(), vec![true]);
        f.finish();
        assert_eq!(f.next().unwrap(), vec![false, true]);
        f.finish();
        assert_eq!(f.next(), None, "live hit zero");
        let s = f.stats();
        assert_eq!(s.taken, 3);
        assert_eq!(s.offered, 2);
    }

    #[test]
    fn sealed_frontier_rejects_offers_and_unblocks() {
        let f = LocalFrontier::new();
        f.seal();
        assert_eq!(f.next(), None);
        assert!(!f.offer(vec![true]));
    }

    #[test]
    fn shared_frontier_leases_keep_the_run_live() {
        let f = SharedFrontier::new();
        let leased = f.try_steal().expect("root leased");
        assert!(leased.is_empty());
        // The queue is empty but the lease is live: a local worker must
        // block, not terminate. Complete the lease from another thread.
        let f = Arc::new(f);
        let f2 = f.clone();
        let t = std::thread::spawn(move || f2.next());
        std::thread::sleep(std::time::Duration::from_millis(20));
        f.complete_remote(VerificationReport {
            exhausted: true,
            ..Default::default()
        });
        assert_eq!(t.join().unwrap(), None, "lease completion ended the run");
        assert_eq!(f.drain_remote_reports().len(), 1);
        let s = f.stats();
        assert_eq!(s.remote_leases, 1);
        assert_eq!(s.remote_reports, 1);
    }

    #[test]
    fn restored_lease_is_re_explorable() {
        let f = SharedFrontier::new();
        let leased = f.try_steal().expect("root leased");
        f.restore(leased.clone());
        assert_eq!(f.next().unwrap(), leased, "job back on the queue");
        f.finish();
        assert_eq!(f.next(), None);
        assert_eq!(f.stats().recovered, 1);
    }

    #[test]
    fn remote_offers_are_new_live_jobs() {
        let f = SharedFrontier::new();
        let _root = f.try_steal().unwrap();
        assert_eq!(f.offer_remote(vec![vec![true], vec![false]]), 2);
        assert_eq!(f.next().unwrap(), vec![true]);
        f.finish();
        assert_eq!(f.next().unwrap(), vec![false]);
        f.finish();
        f.complete_remote(VerificationReport::default());
        assert_eq!(f.next(), None);
        assert_eq!(f.stats().remote_offers, 2);
    }

    #[test]
    fn remote_hunger_makes_the_frontier_hungry() {
        let hunger = Arc::new(AtomicUsize::new(0));
        let f = SharedFrontier::for_run(None, hunger.clone(), None);
        let _root = f.try_steal().unwrap();
        assert!(!f.hungry(), "nobody waiting");
        hunger.fetch_add(1, Ordering::Relaxed);
        assert!(f.hungry(), "a remote steal request is pending");
    }
}
