//! Verification results: bugs, test cases, statistics.

use std::time::Duration;

/// Category of a discovered bug. Mirrors [`overify_ir::AbortKind`] — the
/// paper's point that runtime checks funnel all misbehaviour into one
/// "crash" channel a verifier can look for uniformly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BugKind {
    OutOfBounds,
    DivByZero,
    AssertFail,
    ExplicitAbort,
    UnreachableReached,
}

impl BugKind {
    /// Converts from the IR abort kind.
    pub fn from_abort(k: overify_ir::AbortKind) -> BugKind {
        match k {
            overify_ir::AbortKind::OutOfBounds => BugKind::OutOfBounds,
            overify_ir::AbortKind::DivByZero => BugKind::DivByZero,
            overify_ir::AbortKind::AssertFail => BugKind::AssertFail,
            overify_ir::AbortKind::Explicit => BugKind::ExplicitAbort,
            overify_ir::AbortKind::UnreachableReached => BugKind::UnreachableReached,
        }
    }
}

impl std::fmt::Display for BugKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BugKind::OutOfBounds => "out-of-bounds access",
            BugKind::DivByZero => "division by zero",
            BugKind::AssertFail => "assertion failure",
            BugKind::ExplicitAbort => "explicit abort",
            BugKind::UnreachableReached => "unreachable executed",
        };
        f.write_str(s)
    }
}

/// One deduplicated bug report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bug {
    pub kind: BugKind,
    /// `function/block` where the failure triggers.
    pub location: String,
    /// A concrete input reproducing the bug (the symbolic input bytes).
    pub input: Vec<u8>,
}

/// A concrete input that drives one complete path (KLEE's `.ktest`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TestCase {
    pub input: Vec<u8>,
    /// Program output bytes along the path, where concrete.
    pub output: Vec<Option<u8>>,
}

/// Constraint-solver statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Total satisfiability queries issued by the executor.
    pub queries: u64,
    /// Decided by constant structure alone.
    pub solved_const: u64,
    /// Decided by the interval fast path.
    pub solved_interval: u64,
    /// Answered by the counterexample cache (a cached model satisfied the
    /// query).
    pub solved_cex_cache: u64,
    /// Answered by the query cache (identical constraint set seen before).
    pub solved_query_cache: u64,
    /// Decided by compiler-provided annotations (`-OVERIFY` metadata)
    /// without touching the solver.
    pub solved_annotation: u64,
    /// Fell through to bit-blasting + SAT.
    pub solved_sat: u64,
    /// Symbolic pointers/sizes concretized to a model value because the
    /// ITE expansion would have exceeded the configured span.
    pub concretizations: u64,
    /// SAT decisions and conflicts, summed.
    pub sat_decisions: u64,
    pub sat_conflicts: u64,
}

/// The overall result of a verification run.
#[derive(Clone, Debug, Default)]
pub struct VerificationReport {
    /// Paths explored to normal completion.
    pub paths_completed: u64,
    /// Paths ending in a bug.
    pub paths_buggy: u64,
    /// Paths killed as infeasible (e.g. violated assumptions).
    pub paths_killed: u64,
    /// State forks performed.
    pub forks: u64,
    /// Instructions interpreted across all paths (Table 1's
    /// "# instructions").
    pub instructions: u64,
    /// Deduplicated bugs.
    pub bugs: Vec<Bug>,
    /// Generated test cases (one per completed path when enabled).
    pub tests: Vec<TestCase>,
    pub solver: SolverStats,
    /// Wall-clock time of the run.
    pub time: Duration,
    /// True if the whole path space was explored within budget.
    pub exhausted: bool,
    /// True if a budget (time / paths / instructions) stopped the run.
    pub timed_out: bool,
}

impl VerificationReport {
    /// Total paths observed (completed + buggy + killed).
    pub fn total_paths(&self) -> u64 {
        self.paths_completed + self.paths_buggy + self.paths_killed
    }

    /// Sorted bug kinds, for cross-level comparisons ("all bugs found at
    /// -O0 are also found at -OSYMBEX").
    pub fn bug_signature(&self) -> Vec<(BugKind, String)> {
        let mut sig: Vec<(BugKind, String)> = self
            .bugs
            .iter()
            .map(|b| (b.kind, b.location.clone()))
            .collect();
        sig.sort();
        sig.dedup();
        sig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bug_signature_dedups_and_sorts() {
        let mut r = VerificationReport::default();
        r.bugs.push(Bug {
            kind: BugKind::DivByZero,
            location: "f/b2".into(),
            input: vec![1],
        });
        r.bugs.push(Bug {
            kind: BugKind::OutOfBounds,
            location: "f/b1".into(),
            input: vec![2],
        });
        r.bugs.push(Bug {
            kind: BugKind::DivByZero,
            location: "f/b2".into(),
            input: vec![3],
        });
        let sig = r.bug_signature();
        assert_eq!(sig.len(), 2);
        assert!(sig[0].0 <= sig[1].0);
    }

    #[test]
    fn kind_mapping_is_total() {
        use overify_ir::AbortKind::*;
        for k in [
            OutOfBounds,
            DivByZero,
            AssertFail,
            Explicit,
            UnreachableReached,
        ] {
            let _ = BugKind::from_abort(k);
        }
    }
}
