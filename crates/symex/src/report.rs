//! Verification results: bugs, test cases, statistics.

use std::time::Duration;

/// Category of a discovered bug. Mirrors [`overify_ir::AbortKind`] — the
/// paper's point that runtime checks funnel all misbehaviour into one
/// "crash" channel a verifier can look for uniformly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BugKind {
    OutOfBounds,
    DivByZero,
    AssertFail,
    ExplicitAbort,
    UnreachableReached,
}

impl BugKind {
    /// Converts from the IR abort kind.
    pub fn from_abort(k: overify_ir::AbortKind) -> BugKind {
        match k {
            overify_ir::AbortKind::OutOfBounds => BugKind::OutOfBounds,
            overify_ir::AbortKind::DivByZero => BugKind::DivByZero,
            overify_ir::AbortKind::AssertFail => BugKind::AssertFail,
            overify_ir::AbortKind::Explicit => BugKind::ExplicitAbort,
            overify_ir::AbortKind::UnreachableReached => BugKind::UnreachableReached,
        }
    }
}

impl std::fmt::Display for BugKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BugKind::OutOfBounds => "out-of-bounds access",
            BugKind::DivByZero => "division by zero",
            BugKind::AssertFail => "assertion failure",
            BugKind::ExplicitAbort => "explicit abort",
            BugKind::UnreachableReached => "unreachable executed",
        };
        f.write_str(s)
    }
}

/// One deduplicated bug report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bug {
    pub kind: BugKind,
    /// `function/block` where the failure triggers.
    pub location: String,
    /// A concrete input reproducing the bug (the symbolic input bytes).
    pub input: Vec<u8>,
}

/// A concrete input that drives one complete path (KLEE's `.ktest`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TestCase {
    pub input: Vec<u8>,
    /// Program output bytes along the path, where concrete.
    pub output: Vec<Option<u8>>,
}

/// Constraint-solver statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Total satisfiability queries issued by the executor.
    pub queries: u64,
    /// Decided by constant structure alone.
    pub solved_const: u64,
    /// Decided by the interval fast path.
    pub solved_interval: u64,
    /// Answered by the counterexample cache (a cached model satisfied the
    /// query).
    pub solved_cex_cache: u64,
    /// Answered by the query cache (identical constraint set seen before).
    pub solved_query_cache: u64,
    /// Decided by compiler-provided annotations (`-OVERIFY` metadata)
    /// without touching the solver.
    pub solved_annotation: u64,
    /// Fell through to bit-blasting + SAT.
    pub solved_sat: u64,
    /// Answered by the cross-worker shared query cache (another worker
    /// already solved a structurally identical constraint set).
    pub solved_shared: u64,
    /// Decided by exhaustive evaluation of a single narrow symbol (the
    /// enumeration fast path — cheap where bit-blasting is at its worst,
    /// e.g. division chains).
    pub solved_enum: u64,
    /// Constraints dropped from feasibility queries by independent-
    /// component slicing (KLEE's independent solver, lifted into
    /// `Solver::may_be_true`): only the constraints sharing transitive
    /// symbol support with the query are sent downstream.
    pub slice_dropped: u64,
    /// Symbolic pointers/sizes concretized to a model value because the
    /// ITE expansion would have exceeded the configured span.
    pub concretizations: u64,
    /// SAT decisions and conflicts, summed.
    pub sat_decisions: u64,
    pub sat_conflicts: u64,
    /// Wall-clock nanoseconds spent inside [`crate::Solver::check`]
    /// across the run — the per-run solver-time ledger. Excluded from
    /// [`VerificationReport::canonical_bytes`] like every other
    /// interleaving-dependent aggregate.
    pub solver_ns: u64,
}

impl SolverStats {
    /// Adds another stats block (used by the parallel merge).
    pub fn absorb(&mut self, other: &SolverStats) {
        self.queries += other.queries;
        self.solved_const += other.solved_const;
        self.solved_interval += other.solved_interval;
        self.solved_cex_cache += other.solved_cex_cache;
        self.solved_query_cache += other.solved_query_cache;
        self.solved_annotation += other.solved_annotation;
        self.solved_shared += other.solved_shared;
        self.solved_enum += other.solved_enum;
        self.slice_dropped += other.slice_dropped;
        self.solved_sat += other.solved_sat;
        self.concretizations += other.concretizations;
        self.sat_decisions += other.sat_decisions;
        self.sat_conflicts += other.sat_conflicts;
        self.solver_ns += other.solver_ns;
    }
}

/// The overall result of a verification run.
///
/// `PartialEq` compares every field — the persistent report store
/// (`overify_store`) uses it to assert that a persisted, reloaded report
/// is byte-identical to the one the verifier produced.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VerificationReport {
    /// Paths explored to normal completion.
    pub paths_completed: u64,
    /// Paths ending in a bug.
    pub paths_buggy: u64,
    /// Paths killed as infeasible (e.g. violated assumptions).
    pub paths_killed: u64,
    /// State forks performed.
    pub forks: u64,
    /// Instructions interpreted across all paths (Table 1's
    /// "# instructions").
    pub instructions: u64,
    /// Deduplicated bugs.
    pub bugs: Vec<Bug>,
    /// Generated test cases (one per completed path when enabled). Inputs
    /// are canonical: the lexicographically smallest bytes satisfying the
    /// path condition, so test sets are reproducible across runs and
    /// worker counts.
    pub tests: Vec<TestCase>,
    /// Fingerprint of every path explored to an end (the branch-decision
    /// trace, hashed). Distinct paths have distinct traces, so duplicate
    /// entries mean a path was explored more than once — the merged report
    /// of the work-stealing driver asserts this never happens (see
    /// [`VerificationReport::max_path_multiplicity`]).
    pub path_ids: Vec<u64>,
    /// Frontier states this run exported to other workers (as replayable
    /// branch-decision prefixes).
    pub donations: u64,
    /// Jobs this run imported from the shared frontier (the initial root
    /// job counts as one).
    pub steals: u64,
    pub solver: SolverStats,
    /// Wall-clock time of the run.
    pub time: Duration,
    /// True if the whole path space was explored within budget.
    pub exhausted: bool,
    /// True if a budget (time / paths / instructions) stopped the run.
    pub timed_out: bool,
}

impl VerificationReport {
    /// Total paths observed (completed + buggy + killed).
    pub fn total_paths(&self) -> u64 {
        self.paths_completed + self.paths_buggy + self.paths_killed
    }

    /// Sorted bug kinds, for cross-level comparisons ("all bugs found at
    /// -O0 are also found at -OSYMBEX").
    pub fn bug_signature(&self) -> Vec<(BugKind, String)> {
        let mut sig: Vec<(BugKind, String)> = self
            .bugs
            .iter()
            .map(|b| (b.kind, b.location.clone()))
            .collect();
        sig.sort();
        sig.dedup();
        sig
    }

    /// Encodes the report's *deterministic projection*: exhaustion plus
    /// the bugs, canonical test cases and path fingerprints, in their
    /// merged canonical order. Two runs of the same program and
    /// configuration must produce identical bytes at any worker-thread or
    /// worker-process count — that is the distribution invariant the
    /// cross-process tests assert. Aggregate counters (instructions,
    /// steal traffic, solver statistics, wall time) legitimately vary
    /// with interleaving and are excluded.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let u32_of = |out: &mut Vec<u8>, v: usize| out.extend_from_slice(&(v as u32).to_le_bytes());
        out.push(self.exhausted as u8);
        u32_of(&mut out, self.bugs.len());
        for b in &self.bugs {
            out.push(b.kind as u8);
            u32_of(&mut out, b.location.len());
            out.extend_from_slice(b.location.as_bytes());
            u32_of(&mut out, b.input.len());
            out.extend_from_slice(&b.input);
        }
        u32_of(&mut out, self.tests.len());
        for t in &self.tests {
            u32_of(&mut out, t.input.len());
            out.extend_from_slice(&t.input);
            u32_of(&mut out, t.output.len());
            for o in &t.output {
                match o {
                    None => out.push(0),
                    Some(v) => {
                        out.push(1);
                        out.push(*v);
                    }
                }
            }
        }
        u32_of(&mut out, self.path_ids.len());
        for &id in &self.path_ids {
            out.extend_from_slice(&id.to_le_bytes());
        }
        out
    }

    /// How often the most-explored path was explored. 1 on any correct
    /// run; >1 would mean workers duplicated path work (the failure mode
    /// of the old static input-space partitioner).
    pub fn max_path_multiplicity(&self) -> u64 {
        let mut ids = self.path_ids.clone();
        ids.sort_unstable();
        let mut max = 0u64;
        let mut run = 0u64;
        let mut prev = None;
        for id in ids {
            if Some(id) == prev {
                run += 1;
            } else {
                run = 1;
                prev = Some(id);
            }
            max = max.max(run);
        }
        max
    }
}

/// Hashes a branch-decision trace into a compact path identifier (FNV-1a
/// over the decision bits plus the trace length).
pub fn path_fingerprint(trace: &[bool]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |byte: u64| {
        h ^= byte;
        h = h.wrapping_mul(0x100000001b3);
    };
    mix(trace.len() as u64);
    // Pack decisions eight per byte so long traces stay cheap to hash.
    for chunk in trace.chunks(8) {
        let mut b = 0u64;
        for (i, &d) in chunk.iter().enumerate() {
            b |= (d as u64) << i;
        }
        mix(b);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bug_signature_dedups_and_sorts() {
        let mut r = VerificationReport::default();
        r.bugs.push(Bug {
            kind: BugKind::DivByZero,
            location: "f/b2".into(),
            input: vec![1],
        });
        r.bugs.push(Bug {
            kind: BugKind::OutOfBounds,
            location: "f/b1".into(),
            input: vec![2],
        });
        r.bugs.push(Bug {
            kind: BugKind::DivByZero,
            location: "f/b2".into(),
            input: vec![3],
        });
        let sig = r.bug_signature();
        assert_eq!(sig.len(), 2);
        assert!(sig[0].0 <= sig[1].0);
    }

    #[test]
    fn kind_mapping_is_total() {
        use overify_ir::AbortKind::*;
        for k in [
            OutOfBounds,
            DivByZero,
            AssertFail,
            Explicit,
            UnreachableReached,
        ] {
            let _ = BugKind::from_abort(k);
        }
    }
}
