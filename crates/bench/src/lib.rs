//! Shared harness code for the reproduction benches.
//!
//! Every `cargo bench` target in this crate regenerates one table or figure
//! of the paper (or an ablation of a design choice), printing the same rows
//! or series the paper reports. Budgets are deterministic (instruction
//! counts) plus a wall-clock cap, so the Figure 4 "timeout" phenomenon is
//! reproducible.
//!
//! Environment knobs (all optional):
//!
//! | variable | default | meaning |
//! |---|---|---|
//! | `OVERIFY_SYM_BYTES` | per-bench | symbolic input bytes |
//! | `OVERIFY_BUDGET` | `10_000_000` | interpreted-instruction budget per run |
//! | `OVERIFY_TIMEOUT_SECS` | `30` | wall-clock cap per run |
//! | `OVERIFY_UTILITIES` | all | comma-separated subset of the suite |
//! | `OVERIFY_THREADS` | all cores | batch-driver threads (`figure4`, `ablation_parallel`) |

use overify::{BuildOptions, CompiledProgram, OptLevel, SymConfig, VerificationReport};
use overify_coreutils::Utility;
use std::time::Duration;

/// Reads an env var with a default.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads a comma-separated usize list.
pub fn env_list(name: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(name)
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .unwrap_or_else(|| default.to_vec())
}

/// Compiles a suite utility at a level with that level's default libc.
pub fn build_utility(u: &Utility, level: OptLevel) -> CompiledProgram {
    let opts = BuildOptions::level(level);
    let start = std::time::Instant::now();
    let mut module =
        overify_coreutils::compile_utility(u, opts.resolved_libc()).expect("utility compiles");
    let stats = overify::build::compile_module(&mut module, &opts);
    CompiledProgram {
        module,
        stats,
        level,
        libc: Some(opts.resolved_libc()),
        compile_time: start.elapsed(),
    }
}

/// The default verification configuration for suite runs.
pub fn suite_config(input_bytes: usize) -> SymConfig {
    SymConfig {
        input_bytes,
        pass_len_arg: true,
        max_instructions: env_u64("OVERIFY_BUDGET", 10_000_000),
        timeout: Duration::from_secs(env_u64("OVERIFY_TIMEOUT_SECS", 30)),
        ..Default::default()
    }
}

/// Verifies a compiled utility with the suite configuration.
pub fn verify_utility(prog: &CompiledProgram, input_bytes: usize) -> VerificationReport {
    overify::verify_program(prog, "umain", &suite_config(input_bytes))
}

/// The subset of utilities selected by `OVERIFY_UTILITIES`.
pub fn selected_utilities() -> Vec<&'static Utility> {
    let filter = std::env::var("OVERIFY_UTILITIES").ok();
    overify_coreutils::suite()
        .iter()
        .filter(|u| match &filter {
            None => true,
            Some(f) => f.split(',').any(|name| name.trim() == u.name),
        })
        .collect()
}

/// Milliseconds with two decimals, for table cells.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Listing 1, the paper's motivating example.
pub const WC_SOURCE: &str = r#"
int wc(unsigned char *str, int any) {
    int res = 0;
    int new_word = 1;
    for (unsigned char *p = str; *p; ++p) {
        if (isspace(*p) || (any && !isalpha(*p))) {
            new_word = 1;
        } else {
            if (new_word) {
                ++res;
                new_word = 0;
            }
        }
    }
    return res;
}
"#;

/// A long concrete text for `t_run` measurements.
pub fn wc_text(len: usize) -> Vec<u8> {
    let mut text: Vec<u8> = b"lorem ipsum,dolor sit 42 amet! "
        .iter()
        .copied()
        .cycle()
        .take(len)
        .collect();
    text.push(0);
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parsing() {
        assert_eq!(env_u64("OVERIFY_TEST_UNSET_VAR", 7), 7);
        assert_eq!(env_list("OVERIFY_TEST_UNSET_VAR", &[2, 3]), vec![2, 3]);
    }

    #[test]
    fn harness_builds_and_verifies_one_utility() {
        let u = overify_coreutils::utility("echo").unwrap();
        let prog = build_utility(u, OptLevel::Overify);
        let r = verify_utility(&prog, 2);
        assert!(r.exhausted);
        assert!(r.bugs.is_empty());
    }
}
