//! **Figure 4 reproduction** — per-program compile+analysis time over the
//! utility suite with 2–10 bytes of symbolic input at `-O0`, `-O3` and
//! `-OSYMBEX`, under a per-run budget (the paper's 1-hour timeout analog).
//!
//! The paper's figure shows, per program (sorted), the time of the faster
//! of {-O3, -OSYMBEX} (yellow), the time gained by -OSYMBEX over -O3
//! (blue, right side) and the time -O3 wins back (red, left side). We print
//! the same series as an ASCII bar chart plus the headline numbers:
//! average total-time reduction vs -O3 and vs -O0, maximum speedup factor,
//! and the programs that only finish under -OSYMBEX.
//!
//! The whole workload matrix runs through the batch suite driver
//! (`overify::verify_suite`), fanning utility × level jobs across
//! `OVERIFY_THREADS` workers (default: all cores). Per-job numbers are
//! measured inside each job, so the table is thread-count-independent;
//! only the wall clock shrinks.
//!
//! Knobs: `OVERIFY_SYM_BYTES_LIST` (default `2,3,4`; the paper uses 2..10),
//! `OVERIFY_BUDGET`, `OVERIFY_TIMEOUT_SECS`, `OVERIFY_UTILITIES`,
//! `OVERIFY_THREADS`.

use overify::{default_threads, verify_suite, OptLevel, SuiteJob};
use overify_bench::{env_list, selected_utilities, suite_config};
use std::time::Duration;

struct Outcome {
    name: &'static str,
    /// Total compile+analysis time per level, and whether every sweep run
    /// finished within budget.
    t: [Duration; 3],
    finished: [bool; 3],
    bugs: [usize; 3],
}

fn main() {
    let bytes = env_list("OVERIFY_SYM_BYTES_LIST", &[2, 3, 4]);
    let utilities = selected_utilities();
    let levels = [OptLevel::O0, OptLevel::O3, OptLevel::Overify];
    let threads = default_threads();

    println!(
        "# Figure 4: {} utilities x {{-O0,-O3,-OSYMBEX}} x {:?} symbolic bytes, {} thread(s)",
        utilities.len(),
        bytes,
        threads
    );
    println!("# per-run budget: see OVERIFY_BUDGET / OVERIFY_TIMEOUT_SECS\n");

    let cfg = suite_config(bytes[0]);
    let jobs: Vec<SuiteJob> = utilities
        .iter()
        .flat_map(|u| levels.map(|l| SuiteJob::utility(u, l, &bytes, &cfg)))
        .collect();
    let report = verify_suite(jobs, threads);

    let mut outcomes = Vec::new();
    for u in &utilities {
        let mut t = [Duration::ZERO; 3];
        let mut finished = [true; 3];
        let mut bugs = [0usize; 3];
        for (li, level) in levels.into_iter().enumerate() {
            let job = report.job(u.name, level).expect("job ran");
            t[li] = job.total_time();
            finished[li] = job.exhausted();
            bugs[li] = job.bug_signature().len();
            // The work-stealing acceptance invariant: no symbolic path is
            // explored by more than one worker.
            assert!(
                job.max_path_multiplicity() <= 1,
                "{}@{level}: a path was explored twice",
                u.name
            );
        }
        println!(
            "{:<14} O0 {:>9.2?}{} O3 {:>9.2?}{} OSYMBEX {:>9.2?}{}",
            u.name,
            t[0],
            if finished[0] { " " } else { "*" },
            t[1],
            if finished[1] { " " } else { "*" },
            t[2],
            if finished[2] { " " } else { "*" },
        );
        outcomes.push(Outcome {
            name: u.name,
            t,
            finished,
            bugs,
        });
    }

    // The figure's series: per program, min(t3, tv), and the gain of one
    // over the other; sorted so OSYMBEX wins grow to the right.
    let mut series: Vec<(&str, f64, f64)> = outcomes
        .iter()
        .map(|o| {
            let t3 = o.t[1].as_secs_f64();
            let tv = o.t[2].as_secs_f64();
            (o.name, t3.min(tv), t3 - tv) // Positive = OSYMBEX gain.
        })
        .collect();
    series.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap());

    println!(
        "\n# series (sorted by OSYMBEX gain; log scale: '#' faster-of-two, \
         '+' OSYMBEX gain, '-' O3 gain)"
    );
    // Log-scale widths so milliseconds and seconds are both visible.
    let log_w = |secs: f64| -> usize {
        if secs <= 0.0 {
            return 0;
        }
        // 1 ms -> 1 char, each 10x -> +8 chars.
        ((secs.log10() + 3.0) * 8.0).max(0.0).round() as usize
    };
    for (name, base, gain) in &series {
        let total_w = log_w(base + gain.abs());
        let base_w = log_w(*base).min(total_w);
        let gain_w = total_w - base_w;
        let bar = if *gain >= 0.0 {
            format!("{}{}", "#".repeat(base_w), "+".repeat(gain_w))
        } else {
            format!("{}{}", "#".repeat(base_w), "-".repeat(gain_w))
        };
        println!("{name:<14} {bar}");
    }

    // Headline numbers.
    let total = |i: usize| -> f64 { outcomes.iter().map(|o| o.t[i].as_secs_f64()).sum() };
    let (t0, t3, tv) = (total(0), total(1), total(2));
    let max_speedup = outcomes
        .iter()
        .map(|o| o.t[1].as_secs_f64() / o.t[2].as_secs_f64().max(1e-9))
        .fold(0.0f64, f64::max);
    let only_osymbex = outcomes
        .iter()
        .filter(|o| o.finished[2] && (!o.finished[0] || !o.finished[1]))
        .count();
    println!("\n# summary");
    println!("total time      -O0 {t0:.2}s   -O3 {t3:.2}s   -OSYMBEX {tv:.2}s");
    println!(
        "avg reduction   {:.0}% vs -O3, {:.0}% vs -O0 (paper: 58% / 63%)",
        (1.0 - tv / t3) * 100.0,
        (1.0 - tv / t0) * 100.0
    );
    println!("max speedup     {max_speedup:.1}x vs -O3 (paper: up to 95x overall)");
    println!(
        "budget-limited runs completing only under -OSYMBEX: {only_osymbex} \
         (paper: 6 vs -O3, 11 vs -O0)"
    );
    println!(
        "batch wall      {:.2}s for {:.2}s of per-job work on {} thread(s)",
        report.wall.as_secs_f64(),
        report.total_time().as_secs_f64(),
        threads
    );

    // Bug preservation (paper: all bugs found at -O0/-O3 also found at
    // -OSYMBEX).
    for o in &outcomes {
        assert!(
            o.bugs[2] >= o.bugs[0].max(o.bugs[1]),
            "{}: -OSYMBEX missed bugs ({:?})",
            o.name,
            o.bugs
        );
    }
    println!("bug preservation: -OSYMBEX found every bug the baselines found");
}
