//! **Ablation A — the branch-cost knob.**
//!
//! `-OVERIFY` is `-O3` with (mainly) a different answer to "what does a
//! branch cost?". Sweeping that single parameter from CPU-like (2) to
//! verification-like (1000+) should move wc smoothly from the -O3 outcome
//! to the -OVERIFY outcome — demonstrating the paper's §3 claim that the
//! same pass pipeline serves both masters.

use overify::{compile, BuildOptions, CostModel, ExecConfig, OptLevel, SymArg, SymConfig};
use overify_bench::{env_u64, wc_text, WC_SOURCE};

fn main() {
    let n = env_u64("OVERIFY_SYM_BYTES", 5) as usize;
    let text = wc_text(4096);
    println!("# Ablation: branch-cost sweep on wc ({n} symbolic bytes)\n");
    println!(
        "{:<12} {:>8} {:>12} {:>12} {:>12} {:>10}",
        "branch_cost", "paths", "tverify[ms]", "converted", "trun[cyc]", "size"
    );

    let mut prev_paths = u64::MAX;
    let mut first_paths = 0;
    let mut last = None;
    for cost in [1u64, 2, 10, 100, 1000, 10000] {
        let mut model = CostModel::verification();
        model.branch_cost = cost;
        let mut opts = BuildOptions::level(OptLevel::Overify);
        opts.cost = Some(model);
        let prog = compile(WC_SOURCE, &opts).expect("compiles");
        let report = overify::verify_program(
            &prog,
            "wc",
            &SymConfig {
                input_bytes: n,
                pass_len_arg: false,
                extra_args: vec![SymArg::Symbolic],
                ..Default::default()
            },
        );
        assert!(report.exhausted);
        let run = overify::run_program(&prog, "wc", &text, &[1], &ExecConfig::default());
        println!(
            "{:<12} {:>8} {:>12.1} {:>12} {:>12} {:>10}",
            cost,
            report.total_paths(),
            report.time.as_secs_f64() * 1e3,
            prog.stats.branches_converted,
            run.cycles,
            prog.size()
        );
        if first_paths == 0 {
            first_paths = report.total_paths();
        }
        assert!(
            report.total_paths() <= prev_paths,
            "paths must fall (or hold) as branches get more expensive"
        );
        prev_paths = report.total_paths();
        last = Some((report.total_paths(), run.cycles));
    }
    let (final_paths, _final_cycles) = last.unwrap();
    assert!(
        final_paths < first_paths,
        "the sweep must show the CPU->verification transition"
    );
    println!("\nshape: higher branch cost -> more if-conversion -> fewer paths,");
    println!("paid for with more executed instructions on the CPU side.");
}
