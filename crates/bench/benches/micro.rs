//! Criterion micro-benchmarks for the substrates: front-end, pipeline,
//! solver layers and the concrete interpreter.

use criterion::{criterion_group, criterion_main, Criterion};
use overify::{BuildOptions, OptLevel};
use overify_bench::{wc_text, WC_SOURCE};
use overify_ir::CmpPred;
use overify_symex::{ExprPool, Solver};

fn bench_frontend(c: &mut Criterion) {
    // The raw front-end needs the libc prototypes wc calls.
    let wc_with_decls = format!("{}\n{}", overify_libc::DECLARATIONS, WC_SOURCE);
    c.bench_function("frontend/compile_wc", |b| {
        b.iter(|| overify_lang::compile(std::hint::black_box(&wc_with_decls)).unwrap())
    });
    let libc = overify_libc::libc_source(overify::LibcVariant::Native);
    c.bench_function("frontend/compile_native_libc", |b| {
        b.iter(|| overify_lang::compile(std::hint::black_box(&libc)).unwrap())
    });
}

fn bench_pipeline(c: &mut Criterion) {
    for level in [OptLevel::O2, OptLevel::O3, OptLevel::Overify] {
        c.bench_function(&format!("pipeline/wc_at_{}", level.name()), |b| {
            b.iter(|| overify::compile(WC_SOURCE, &BuildOptions::level(level)).unwrap())
        });
    }
}

fn bench_solver(c: &mut Criterion) {
    c.bench_function("solver/range_query_8bit", |b| {
        b.iter(|| {
            let mut pool = ExprPool::new();
            let mut s = Solver::default();
            let x = pool.fresh_sym(8);
            let a = pool.constant(8, 10);
            let bb = pool.constant(8, 200);
            let c1 = pool.cmp(CmpPred::Ugt, x, a);
            let c2 = pool.cmp(CmpPred::Ult, x, bb);
            s.check(&pool, &[c1, c2])
        })
    });
    c.bench_function("solver/multiply_equation_8bit", |b| {
        b.iter(|| {
            let mut pool = ExprPool::new();
            let mut s = Solver::default();
            let x = pool.fresh_sym(8);
            let k = pool.constant(8, 13);
            let m = pool.bin(overify_ir::BinOp::Mul, x, k);
            let t = pool.constant(8, 17);
            let c1 = pool.cmp(CmpPred::Eq, m, t);
            s.check(&pool, &[c1])
        })
    });
}

fn bench_interp(c: &mut Criterion) {
    let prog = overify::compile(WC_SOURCE, &BuildOptions::level(OptLevel::O3)).unwrap();
    let text = wc_text(4096);
    c.bench_function("interp/wc_o3_4k_text", |b| {
        b.iter(|| {
            overify::run_program(
                &prog,
                "wc",
                std::hint::black_box(&text),
                &[1],
                &overify::ExecConfig::default(),
            )
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_frontend, bench_pipeline, bench_solver, bench_interp
);
criterion_main!(benches);
