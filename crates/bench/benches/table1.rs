//! **Table 1 reproduction** — the `wc` case study.
//!
//! Paper (6.10-era KLEE on x86, strings up to 10 chars):
//!
//! ```text
//! Optimization   -O0      -O2     -O3   -OVERIFY
//! tverify [ms]   13,126   8,079   736   49
//! tcompile [ms]  38       42      43    44
//! trun [ms]      3,318    704     694   1,827
//! # instructions 896,853  480,229 37,829 312
//! # paths        30,537   30,537  2,045  11
//! ```
//!
//! We reproduce the *shape*: paths identical at -O0/-O2, reduced at -O3,
//! linear at -OVERIFY; verification time and interpreted instructions
//! collapse; concrete run time is minimized by -O3, NOT by -OVERIFY.
//!
//! `OVERIFY_SYM_BYTES` (default 6) selects the symbolic string length; 10
//! matches the paper but multiplies -O0 time considerably.

use overify::{compile, BuildOptions, ExecConfig, OptLevel, SymArg, SymConfig};
use overify_bench::{env_u64, wc_text, WC_SOURCE};

fn main() {
    let n = env_u64("OVERIFY_SYM_BYTES", 6) as usize;
    assert!(
        n >= 2,
        "OVERIFY_SYM_BYTES must be >= 2: with fewer symbolic bytes every \
         level explores the same handful of paths and the Table 1 shape \
         checks are meaningless"
    );
    let text = wc_text(8192);
    let levels = [OptLevel::O0, OptLevel::O2, OptLevel::O3, OptLevel::Overify];

    println!("# Table 1: exhaustively exploring wc with {n} symbolic bytes");
    println!("# (paper used 10 bytes; set OVERIFY_SYM_BYTES=10 to match)\n");

    struct Row {
        level: &'static str,
        tverify: f64,
        tcompile: f64,
        trun_cycles: u64,
        instructions: u64,
        paths: u64,
        static_size: usize,
    }
    let mut rows = Vec::new();
    for level in levels {
        let prog = compile(WC_SOURCE, &BuildOptions::level(level)).expect("wc compiles");
        let report = overify::verify_program(
            &prog,
            "wc",
            &SymConfig {
                input_bytes: n,
                pass_len_arg: false,
                extra_args: vec![SymArg::Symbolic],
                ..Default::default()
            },
        );
        assert!(report.exhausted, "{level}: must complete");
        assert!(report.bugs.is_empty());
        let run = overify::run_program(&prog, "wc", &text, &[1], &ExecConfig::default());
        rows.push(Row {
            level: level.name(),
            tverify: report.time.as_secs_f64() * 1e3,
            tcompile: prog.compile_time.as_secs_f64() * 1e3,
            trun_cycles: run.cycles,
            instructions: report.instructions,
            paths: report.total_paths(),
            static_size: prog.size(),
        });
    }

    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10}",
        "Optimization", rows[0].level, rows[1].level, rows[2].level, rows[3].level
    );
    let cell = |f: &dyn Fn(&Row) -> String| -> String {
        format!(
            "{:<16} {:>10} {:>10} {:>10} {:>10}",
            "",
            f(&rows[0]),
            f(&rows[1]),
            f(&rows[2]),
            f(&rows[3])
        )
    };
    println!(
        "tverify [ms]    {}",
        cell(&|r: &Row| format!("{:.1}", r.tverify)).trim_start()
    );
    println!(
        "tcompile [ms]   {}",
        cell(&|r: &Row| format!("{:.1}", r.tcompile)).trim_start()
    );
    println!(
        "trun [cycles]   {}",
        cell(&|r: &Row| r.trun_cycles.to_string()).trim_start()
    );
    println!(
        "# instructions  {}",
        cell(&|r: &Row| r.instructions.to_string()).trim_start()
    );
    println!(
        "# paths         {}",
        cell(&|r: &Row| r.paths.to_string()).trim_start()
    );
    println!(
        "static size     {}",
        cell(&|r: &Row| r.static_size.to_string()).trim_start()
    );

    // Shape assertions (the claims the paper makes).
    assert_eq!(rows[0].paths, rows[1].paths, "O0 and O2 paths identical");
    assert!(rows[2].paths < rows[1].paths, "O3 cuts paths");
    assert!(rows[3].paths < rows[2].paths, "OVERIFY cuts paths further");
    assert!(
        rows[3].paths as usize <= 2 * (n + 1),
        "OVERIFY paths are linear"
    );
    assert!(rows[3].tverify < rows[0].tverify, "verification got faster");
    assert!(
        rows[3].trun_cycles > rows[2].trun_cycles,
        "OVERIFY executes slower than O3 on a CPU"
    );
    let speedup = rows[0].tverify / rows[3].tverify;
    println!("\nverification speedup -O0 -> -OVERIFY: {speedup:.0}x");
    println!("shape checks passed: paths O0==O2>O3>OVERIFY(linear); trun O3<OVERIFY");
}
