//! **Table 3 reproduction** — transformation counts compiling the utility
//! suite at `-O0`, `-O3` and `-OSYMBEX` (our `-OVERIFY`).
//!
//! Paper (Coreutils 6.10, 93 programs):
//!
//! ```text
//! Optimization          -O0    -O3     -OSYMBEX
//! # functions inlined   0      7,746   16,505
//! # loops unswitched    0      377     3,022
//! # loops unrolled      0      1,615   3,299
//! # branches converted  0      959     5,405
//! ```
//!
//! Shape: every counter is 0 at -O0 and grows by a multiple from -O3 to
//! -OSYMBEX (our suite is 30 programs rather than 93, so magnitudes scale
//! down accordingly).

use overify::{BuildOptions, LibcVariant, OptLevel, OptStats};
use overify_bench::selected_utilities;

fn main() {
    let utilities = selected_utilities();
    println!(
        "# Table 3: compiling {} utilities at three levels",
        utilities.len()
    );
    println!("# (the libc is held fixed — native — so the counters compare");
    println!("#  pass behaviour only; the libc effect is ablation_libc)\n");

    let mut totals = Vec::new();
    for level in [OptLevel::O0, OptLevel::O3, OptLevel::Overify] {
        let mut sum = OptStats::default();
        for u in &utilities {
            let mut opts = BuildOptions::level(level);
            opts.libc = Some(LibcVariant::Native);
            let mut module = overify_coreutils::compile_utility(u, LibcVariant::Native)
                .expect("utility compiles");
            sum += overify::build::compile_module(&mut module, &opts);
        }
        totals.push((level, sum));
    }

    println!(
        "{:<24} {:>8} {:>8} {:>10}",
        "Optimization", "-O0", "-O3", "-OSYMBEX"
    );
    let row = |name: &str, f: &dyn Fn(&OptStats) -> u64| {
        println!(
            "{:<24} {:>8} {:>8} {:>10}",
            name,
            f(&totals[0].1),
            f(&totals[1].1),
            f(&totals[2].1)
        );
    };
    row("# functions inlined", &|s| s.functions_inlined);
    row("# loops unswitched", &|s| s.loops_unswitched);
    row("# loops unrolled", &|s| s.loops_unrolled);
    row("# branches converted", &|s| s.branches_converted);
    row("# jumps threaded", &|s| s.jumps_threaded);
    row("# checks inserted", &|s| s.checks_inserted);
    row("# checks elided", &|s| s.checks_elided);
    row("# annotations", &|s| s.annotations_added);

    // Shape assertions.
    let (o0, o3, ov) = (&totals[0].1, &totals[1].1, &totals[2].1);
    assert_eq!(o0.functions_inlined, 0);
    assert_eq!(o0.loops_unswitched, 0);
    assert_eq!(o0.loops_unrolled, 0);
    assert_eq!(o0.branches_converted, 0);
    assert!(ov.functions_inlined >= o3.functions_inlined);
    assert!(ov.branches_converted > o3.branches_converted);
    assert!(ov.loops_unrolled >= o3.loops_unrolled);
    assert!(ov.loops_unswitched > o3.loops_unswitched);
    println!("\nshape checks passed: -O0 all zero; -OSYMBEX >= -O3 everywhere,");
    println!(
        "inlining x{:.1}, branch conversion x{:.1}",
        ov.functions_inlined as f64 / o3.functions_inlined.max(1) as f64,
        ov.branches_converted as f64 / o3.branches_converted.max(1) as f64
    );
}
