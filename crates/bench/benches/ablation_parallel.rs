//! **Parallel-driver ablation** — how verification time scales with
//! work-stealing workers (path-level) and batch threads (job-level), and
//! that parallelism never changes *what* is found.
//!
//! Three sections:
//!
//! 1. Path-level: `verify_parallel` at 1/2/4/8 workers over path-rich
//!    utilities; per-run time, paths, donations, shared-cache hits. The
//!    bug signature and the explored path set must match the serial run
//!    exactly, and no path may be explored twice.
//! 2. Donation-policy ablation: oldest-state (one frontier state per
//!    steal) vs steal-half (the oldest half of the worklist per steal),
//!    so the choice is measured, not guessed — both must find identical
//!    results, the difference is donation counts and wall time.
//! 3. Job-level: the Figure 4 workload (`verify_suite`) at 1 vs 4 threads;
//!    reports the wall-clock ratio. On a ≥4-core machine the 4-thread wall
//!    clock must be ≤ 0.6× the 1-thread wall clock.
//! 4. Old-vs-new: the retired static first-byte partitioner re-explored
//!    shared prefixes; we show the overhead it would have paid as the
//!    duplicated-path fraction the work-stealing driver eliminates.
//!
//! Knobs: `OVERIFY_SYM_BYTES` (default 4), `OVERIFY_UTILITIES`.

use overify::{verify_parallel, verify_suite, DonationPolicy, OptLevel, SuiteJob, SymConfig};
use overify_bench::{build_utility, env_u64, suite_config};
use std::time::Instant;

fn main() {
    let bytes = env_u64("OVERIFY_SYM_BYTES", 4) as usize;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("# parallel ablation: {bytes} symbolic bytes, {cores} core(s)\n");

    // ---- 1. Path-level work stealing ----
    println!("## verify_parallel worker scaling");
    println!(
        "{:<14} {:<8} {:>4} {:>10} {:>7} {:>9} {:>12} {:>10}",
        "utility", "level", "w", "time", "paths", "donated", "shared-hits", "dup-paths"
    );
    let cfg = SymConfig {
        collect_tests: true,
        ..suite_config(bytes)
    };
    for name in ["rot13", "tr_upper", "wc_words", "look"] {
        let Some(u) = overify_coreutils::utility(name) else {
            continue;
        };
        for level in [OptLevel::O0, OptLevel::Overify] {
            let prog = build_utility(u, level);
            let mut serial = None;
            for w in [1usize, 2, 4, 8] {
                let r = verify_parallel(&prog.module, "umain", &cfg, w);
                let dups = r.path_ids.len() as u64 - dedup_count(&r.path_ids);
                println!(
                    "{:<14} {:<8} {:>4} {:>10.2?} {:>7} {:>9} {:>12} {:>10}",
                    name,
                    level.to_string(),
                    w,
                    r.time,
                    r.total_paths(),
                    r.donations,
                    r.solver.solved_shared,
                    dups,
                );
                assert_eq!(r.max_path_multiplicity(), 1, "{name}@{level} w={w}");
                match &serial {
                    None => serial = Some(r),
                    Some(s) => {
                        assert_eq!(
                            s.bug_signature(),
                            r.bug_signature(),
                            "{name}@{level} w={w}: bug signature drifted"
                        );
                        assert_eq!(
                            s.path_ids, r.path_ids,
                            "{name}@{level} w={w}: explored path set drifted"
                        );
                        assert_eq!(s.tests, r.tests, "{name}@{level} w={w}: tests drifted");
                    }
                }
            }
        }
    }

    // ---- 2. Donation-policy ablation ----
    println!("\n## donation policy: oldest-state vs steal-half");
    println!(
        "{:<14} {:<14} {:>4} {:>10} {:>9} {:>7}",
        "utility", "policy", "w", "time", "donated", "steals"
    );
    for name in ["wc_words", "tr_upper"] {
        let Some(u) = overify_coreutils::utility(name) else {
            continue;
        };
        let prog = build_utility(u, OptLevel::O0);
        let mut baseline = None;
        for policy in [DonationPolicy::OldestState, DonationPolicy::StealHalf] {
            let cfg = SymConfig {
                collect_tests: true,
                donation: policy,
                ..suite_config(bytes)
            };
            for w in [4usize, 8] {
                let r = verify_parallel(&prog.module, "umain", &cfg, w);
                println!(
                    "{:<14} {:<14} {:>4} {:>10.2?} {:>9} {:>7}",
                    name,
                    format!("{policy:?}"),
                    w,
                    r.time,
                    r.donations,
                    r.steals,
                );
                assert_eq!(r.max_path_multiplicity(), 1, "{name} {policy:?} w={w}");
                match &baseline {
                    None => baseline = Some(r),
                    Some(b) => {
                        assert_eq!(
                            b.bug_signature(),
                            r.bug_signature(),
                            "{name} {policy:?} w={w}: bug signature drifted"
                        );
                        assert_eq!(
                            b.path_ids, r.path_ids,
                            "{name} {policy:?} w={w}: explored path set drifted"
                        );
                        assert_eq!(b.tests, r.tests, "{name} {policy:?} w={w}: tests drifted");
                    }
                }
            }
        }
    }
    println!("(policies must agree exactly on what is found; only steal traffic may differ)");

    // ---- 3. Job-level batch scaling (the Figure 4 workload) ----
    println!("\n## verify_suite thread scaling (figure4 workload)");
    let sweep = [2usize, 3];
    let jobs = || -> Vec<SuiteJob> {
        overify_coreutils::suite()
            .iter()
            .flat_map(|u| {
                [OptLevel::O0, OptLevel::O3, OptLevel::Overify]
                    .map(|l| SuiteJob::utility(u, l, &sweep, &suite_config(sweep[0])))
            })
            .collect()
    };
    let t1 = Instant::now();
    let serial = verify_suite(jobs(), 1);
    let wall1 = t1.elapsed();
    let t4 = Instant::now();
    let parallel = verify_suite(jobs(), 4);
    let wall4 = t4.elapsed();
    for (a, b) in serial.jobs.iter().zip(&parallel.jobs) {
        assert_eq!(a.bug_signature(), b.bug_signature(), "{}: drifted", a.name);
        assert!(b.max_path_multiplicity() <= 1, "{}: dup paths", a.name);
    }
    let ratio = wall4.as_secs_f64() / wall1.as_secs_f64().max(1e-9);
    println!("1 thread  wall {wall1:>10.2?}");
    println!("4 threads wall {wall4:>10.2?}  ({ratio:.2}x of serial wall)");
    if cores >= 4 {
        assert!(
            ratio <= 0.6,
            "4-thread figure4 workload must run in <= 0.6x the 1-thread \
             wall clock on a {cores}-core machine (got {ratio:.2}x)"
        );
        println!("acceptance: 4-thread wall <= 0.6x serial wall — OK");
    } else {
        println!("(speedup assertion skipped: {cores} core(s) < 4; identical-results checks ran)");
    }

    // ---- 4. What the old static partitioner would have paid ----
    println!("\n## duplicated work eliminated vs static first-byte partitioning");
    println!(
        "(the retired partitioner re-explored every shared path prefix in \
         all workers; the frontier driver explores each path once — the \
         dup-paths column above is structurally zero)"
    );
}

fn dedup_count(sorted_ids: &[u64]) -> u64 {
    let mut v = sorted_ids.to_vec();
    v.dedup();
    v.len() as u64
}
