//! **Observability ablation** — what the flight recorder costs.
//!
//! The instrumentation contract is that *disabled* observability is a few
//! relaxed atomic loads on the hot path: a span or log call that is off
//! must cost nanoseconds, and a whole suite sweep must run within noise
//! of one with no tracing at all. Two sections:
//!
//! 1. Micro: ns/op for the disabled span constructor, a disabled log
//!    macro (the format arguments must not be evaluated), a metrics
//!    counter add, and a histogram observe — measured over a tight loop.
//! 2. Suite wall clock: the same utility sweep with observability
//!    disabled (the shipping default) and with the flight recorder plus
//!    debug logging enabled, reporting the enabled/disabled ratio. There
//!    is no uninstrumented build to race (the counters are compiled in);
//!    the disabled run *is* the baseline the ≤2% overhead budget is
//!    measured against, and the counters' own cost is what section 1
//!    prices.
//!
//! Numbers are printed, never asserted — CI runs this with `--no-run`;
//! timing assertions on shared runners flake.
//!
//! Knobs: `OVERIFY_SYM_BYTES` (default 3), `OVERIFY_UTILITIES`.

use overify::{verify_suite_with, OptLevel, SuiteJob, SymConfig};
use overify_bench::{env_u64, suite_config};
use std::hint::black_box;
use std::time::{Duration, Instant};

fn ns_per_op<F: FnMut()>(iters: u64, mut f: F) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn sweep_jobs(bytes: usize) -> Vec<SuiteJob> {
    let cfg = SymConfig {
        collect_tests: true,
        ..suite_config(bytes)
    };
    ["rot13", "tr_upper", "wc_words"]
        .iter()
        .filter_map(|name| overify_coreutils::utility(name))
        .flat_map(|u| {
            [OptLevel::O0, OptLevel::Overify]
                .into_iter()
                .map(|level| SuiteJob::utility(u, level, &[bytes], &cfg))
        })
        .collect()
}

fn sweep_wall(jobs: Vec<SuiteJob>) -> Duration {
    let start = Instant::now();
    let report = verify_suite_with(jobs, 2, |_, _, _| {});
    black_box(report.jobs.len());
    start.elapsed()
}

/// Best of `n` sweeps: minimum wall clock is the standard noise filter
/// for short benchmarks (everything above the floor is interference).
fn best_sweep(bytes: usize, n: usize) -> Duration {
    (0..n).map(|_| sweep_wall(sweep_jobs(bytes))).min().unwrap()
}

fn main() {
    let bytes = env_u64("OVERIFY_SYM_BYTES", 3) as usize;
    println!("# observability ablation: {bytes} symbolic bytes\n");

    // ---- 1. Micro: the disabled path ----
    println!("## disabled-path micro costs (ns/op)");
    overify_obs::trace::disable();
    overify_obs::log::set_max_level(overify_obs::log::Level::Off);
    const ITERS: u64 = 10_000_000;
    let span_ns = ns_per_op(ITERS, || {
        black_box(overify_obs::trace::span(black_box("bench")));
    });
    let log_ns = ns_per_op(ITERS, || {
        overify_obs::debug!("bench", "value {}", black_box(42));
    });
    let counter_ns = {
        use overify_obs::metrics::LazyCounter;
        static C: LazyCounter = LazyCounter::new("overify_bench_obs_counter_total");
        ns_per_op(ITERS, || C.get().add(black_box(1)))
    };
    let histogram_ns = {
        use overify_obs::metrics::LazyHistogram;
        static H: LazyHistogram = LazyHistogram::new("overify_bench_obs_histogram_ns");
        ns_per_op(ITERS, || H.observe(black_box(1234)))
    };
    println!("{:<28} {:>8.2}", "span (tracing off)", span_ns);
    println!("{:<28} {:>8.2}", "debug! (logging off)", log_ns);
    println!("{:<28} {:>8.2}", "counter add (always on)", counter_ns);
    println!("{:<28} {:>8.2}", "histogram observe (on)", histogram_ns);

    // ---- 1b. Telemetry plane: ring ticks and push deltas ----
    // The fleet telemetry plane adds two recurring costs on top of the
    // always-on counters: the daemon's ring sampler (one registry walk
    // per resolution window) and the worker's delta snapshot (one walk
    // plus diffing per MetricsPush). Both are off the verification hot
    // path — they run on the poller / steal loop — so what matters is
    // that a single tick is microseconds, not milliseconds.
    println!("\n## telemetry-plane costs (ns/op, registry-size dependent)");
    let rings = overify_obs::rings::Rings::new(Duration::from_millis(1), 64);
    let ring_ns = ns_per_op(10_000, || rings.sample());
    let mut tracker = overify_obs::metrics::DeltaTracker::new();
    black_box(tracker.delta()); // baseline established; steady-state diffs
    let delta_ns = ns_per_op(10_000, || {
        black_box(tracker.delta().len());
    });
    let render_ns = ns_per_op(10_000, || {
        black_box(overify_obs::metrics::render().len());
    });
    println!("{:<28} {:>8.0}", "ring sample tick", ring_ns);
    println!("{:<28} {:>8.0}", "push delta snapshot", delta_ns);
    println!("{:<28} {:>8.0}", "full render (scrape)", render_ns);

    // ---- 2. Suite wall clock: disabled vs enabled ----
    println!("\n## suite sweep wall clock");
    // Warm-up pass: compilation caches and allocator state settle so the
    // timed passes see the same world.
    sweep_wall(sweep_jobs(bytes));

    let disabled = best_sweep(bytes, 5);

    // Same sweep with a daemon-style ring sampler ticking in the
    // background at 1ms — far hotter than the shipping 1s default, to
    // make any interference visible.
    let sampler_rings =
        std::sync::Arc::new(overify_obs::rings::Rings::new(Duration::from_millis(1), 64));
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let sampler = {
        let (rings, stop) = (sampler_rings.clone(), stop.clone());
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                rings.sample();
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };
    let sampled = best_sweep(bytes, 5);
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    sampler.join().unwrap();

    overify_obs::trace::enable();
    overify_obs::log::set_max_level(overify_obs::log::Level::Debug);
    let enabled = best_sweep(bytes, 5);
    overify_obs::trace::disable();
    overify_obs::log::set_max_level(overify_obs::log::Level::Off);

    let ratio = enabled.as_secs_f64() / disabled.as_secs_f64().max(1e-9);
    let sampled_ratio = sampled.as_secs_f64() / disabled.as_secs_f64().max(1e-9);
    println!("{:<28} {:>10.2?}", "observability off", disabled);
    println!("{:<28} {:>10.2?}", "ring sampler @1ms", sampled);
    println!("{:<28} {:>10.2?}", "recorder + debug log on", enabled);
    println!("{:<28} {:>9.3}x", "sampler / disabled", sampled_ratio);
    println!("{:<28} {:>9.3}x", "enabled / disabled", ratio);
    println!(
        "\nrecorder buffered {} event(s), dropped {}",
        overify_obs::trace::buffered(),
        overify_obs::trace::dropped()
    );
}
