//! **Ablation F — search strategy.**
//!
//! DFS, BFS and random-state selection explore the same bounded path space
//! but with different cache behaviour: DFS extends one constraint set
//! incrementally (counterexample-cache friendly), BFS hops between distant
//! states.

use overify::{compile, BuildOptions, OptLevel, SearchStrategy, SymConfig};
use overify_bench::env_u64;

const PARSER: &str = r#"
int umain(unsigned char *in, int n) {
    int depth = 0;
    int errs = 0;
    for (int i = 0; in[i]; i++) {
        if (in[i] == '(') depth++;
        else if (in[i] == ')') {
            if (depth > 0) depth--;
            else errs++;
        } else if (!isprint(in[i])) {
            errs += 2;
        }
    }
    return depth * 100 + errs;
}
"#;

fn main() {
    let n = env_u64("OVERIFY_SYM_BYTES", 4) as usize;
    let prog = compile(PARSER, &BuildOptions::level(OptLevel::O3)).expect("compiles");
    println!("# Ablation: search strategy on a parenthesis parser ({n} bytes)\n");
    println!(
        "{:<16} {:>8} {:>10} {:>10} {:>12}",
        "strategy", "paths", "cex-hits", "sat", "tverify[ms]"
    );

    let mut paths = Vec::new();
    for (name, s) in [
        ("DFS", SearchStrategy::Dfs),
        ("BFS", SearchStrategy::Bfs),
        ("random(7)", SearchStrategy::RandomState(7)),
        ("random(99)", SearchStrategy::RandomState(99)),
    ] {
        let r = overify::verify_program(
            &prog,
            "umain",
            &SymConfig {
                input_bytes: n,
                pass_len_arg: true,
                search: s,
                ..Default::default()
            },
        );
        assert!(r.exhausted);
        println!(
            "{:<16} {:>8} {:>10} {:>10} {:>12.1}",
            name,
            r.total_paths(),
            r.solver.solved_cex_cache,
            r.solver.solved_sat,
            r.time.as_secs_f64() * 1e3
        );
        paths.push(r.total_paths());
    }
    assert!(
        paths.windows(2).all(|w| w[0] == w[1]),
        "strategies must cover the same space: {paths:?}"
    );
    println!("\nshape: identical coverage; DFS leans hardest on the cex cache.");
}
