//! **Ablation E — the solver stack.**
//!
//! KLEE's speed rests on its solver chain as much as on exploration. This
//! ablation toggles the interval fast path, the counterexample cache and
//! the query cache while verifying wc, reporting who answers how many
//! queries.

use overify::{compile, BuildOptions, OptLevel, SymArg, SymConfig};
use overify_bench::{env_u64, WC_SOURCE};
use overify_symex::solver::SolverOptions;

fn main() {
    let n = env_u64("OVERIFY_SYM_BYTES", 5) as usize;
    let prog = compile(WC_SOURCE, &BuildOptions::level(OptLevel::O3)).expect("compiles");
    println!("# Ablation: solver layers while verifying wc at -O3 ({n} bytes)\n");
    println!(
        "{:<28} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>12}",
        "configuration", "queries", "interval", "cex", "qcache", "enum", "sat", "tverify[ms]"
    );

    let configs = [
        ("full stack", SolverOptions::default()),
        (
            "no intervals",
            SolverOptions {
                use_intervals: false,
                ..Default::default()
            },
        ),
        (
            "no cex cache",
            SolverOptions {
                use_cex_cache: false,
                ..Default::default()
            },
        ),
        (
            "no query cache",
            SolverOptions {
                use_query_cache: false,
                ..Default::default()
            },
        ),
        (
            "no enumeration",
            SolverOptions {
                use_enumeration: false,
                ..Default::default()
            },
        ),
        (
            "SAT only",
            SolverOptions {
                use_intervals: false,
                use_cex_cache: false,
                use_query_cache: false,
                use_shared_cache: false,
                use_enumeration: false,
            },
        ),
    ];

    let mut sat_counts = Vec::new();
    let mut paths = Vec::new();
    for (name, solver) in configs {
        let r = overify::verify_program(
            &prog,
            "wc",
            &SymConfig {
                input_bytes: n,
                pass_len_arg: false,
                extra_args: vec![SymArg::Symbolic],
                solver,
                ..Default::default()
            },
        );
        assert!(r.exhausted);
        println!(
            "{:<28} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>12.1}",
            name,
            r.solver.queries,
            r.solver.solved_interval,
            r.solver.solved_cex_cache,
            r.solver.solved_query_cache,
            r.solver.solved_enum,
            r.solver.solved_sat,
            r.time.as_secs_f64() * 1e3
        );
        sat_counts.push(r.solver.solved_sat);
        paths.push(r.total_paths());
    }
    // Every configuration explores the same path space.
    assert!(
        paths.windows(2).all(|w| w[0] == w[1]),
        "paths differ: {paths:?}"
    );
    // The full stack sends the fewest queries to SAT.
    assert!(
        sat_counts[0] <= *sat_counts.iter().max().unwrap(),
        "caches must reduce SAT load"
    );
    assert!(
        sat_counts[0] < sat_counts[4],
        "full stack ({}) must beat SAT-only ({})",
        sat_counts[0],
        sat_counts[4]
    );
    println!("\nshape: identical exploration, radically different SAT load —");
    println!("the cache hierarchy is where solver time goes to die.");
}
