//! **Ablation D — runtime checks (paper §3).**
//!
//! Runtime checks turn every class of misbehaviour into the single failure
//! channel a verifier watches. This ablation compiles a buggy and a clean
//! program with checks on/off and compares bug yield and cost.

use overify::{compile, BugKind, BuildOptions, OptLevel, SymConfig};
use overify_bench::env_u64;

const BUGGY: &str = r#"
int umain(unsigned char *in, int n) {
    char buf[4];
    int k = in[0] & 7;   // 0..7: out of bounds for k > 3.
    buf[k] = 'x';
    return k;
}
"#;

const CLEAN: &str = r#"
int umain(unsigned char *in, int n) {
    char buf[8];
    int k = in[0] & 7;
    buf[k] = 'x';
    return k;
}
"#;

fn main() {
    let n = env_u64("OVERIFY_SYM_BYTES", 2) as usize;
    println!("# Ablation: runtime checks on/off at -OVERIFY\n");
    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>8} {:>12}",
        "program/checks", "inserted", "bugs", "paths", "queries", "tverify[ms]"
    );

    for (name, src, expect_bug) in [("buggy", BUGGY, true), ("clean", CLEAN, false)] {
        for checks in [true, false] {
            let mut opts = BuildOptions::level(OptLevel::Overify);
            opts.runtime_checks = Some(checks);
            let prog = compile(src, &opts).expect("compiles");
            let r = overify::verify_program(
                &prog,
                "umain",
                &SymConfig {
                    input_bytes: n,
                    pass_len_arg: true,
                    ..Default::default()
                },
            );
            assert!(r.exhausted);
            println!(
                "{:<22} {:>8} {:>8} {:>8} {:>8} {:>12.1}",
                format!("{name}/checks={checks}"),
                prog.stats.checks_inserted,
                r.bugs.len(),
                r.total_paths(),
                r.solver.queries,
                r.time.as_secs_f64() * 1e3
            );
            // The engine checks memory safety natively, so the bug is found
            // either way — the checks make it a *compiled-in* crash that
            // any tool (or a plain run) would hit.
            assert_eq!(!r.bugs.is_empty(), expect_bug, "{name}/checks={checks}");
            if expect_bug {
                assert!(r.bugs.iter().all(|b| b.kind == BugKind::OutOfBounds));
            }
        }
    }
    println!("\nshape: checks make failures uniform (aborts) at a small path");
    println!("overhead; annotation-elided checks keep clean programs free.");
}
