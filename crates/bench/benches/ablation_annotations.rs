//! **Ablation C — program annotations (paper §3).**
//!
//! The annotation pass records value ranges and trip counts that (a) let
//! the runtime-check inserter elide provably safe checks and (b) let the
//! engine decide annotated comparisons without solver involvement. Turning
//! annotations off shows what they buy.

use overify::{compile, BuildOptions, OptLevel, SymConfig};
use overify_bench::env_u64;

const MASKED_INDEX: &str = r#"
int umain(unsigned char *in, int n) {
    char hist[16];
    for (int i = 0; i < 16; i++) hist[i] = 0;
    for (int i = 0; in[i]; i++) {
        hist[in[i] & 15] += 1;     // Masked: provably in bounds.
    }
    int best = 0;
    for (int i = 0; i < 16; i++) {
        if (hist[i] > best) best = hist[i];
    }
    return best;
}
"#;

fn main() {
    let n = env_u64("OVERIFY_SYM_BYTES", 3) as usize;
    println!("# Ablation: -OVERIFY with and without program annotations");
    println!("# workload: histogram with masked (provably safe) indexing\n");
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "annotations", "checks+", "elided", "facts", "queries", "tverify[ms]"
    );

    let mut results = Vec::new();
    for annotations in [true, false] {
        let mut opts = BuildOptions::level(OptLevel::Overify);
        opts.annotations = Some(annotations);
        let prog = compile(MASKED_INDEX, &opts).expect("compiles");
        let facts: usize = prog
            .module
            .functions
            .iter()
            .map(|f| f.annotations.fact_count())
            .sum();
        let report = overify::verify_program(
            &prog,
            "umain",
            &SymConfig {
                input_bytes: n,
                pass_len_arg: true,
                use_annotations: annotations,
                ..Default::default()
            },
        );
        assert!(report.exhausted);
        assert!(report.bugs.is_empty(), "masked indexing is safe");
        println!(
            "{:<16} {:>10} {:>10} {:>10} {:>12} {:>12.1}",
            annotations,
            prog.stats.checks_inserted,
            prog.stats.checks_elided,
            facts,
            report.solver.queries,
            report.time.as_secs_f64() * 1e3
        );
        results.push((prog.stats.checks_inserted, report.solver.queries));
    }
    let (with, without) = (&results[0], &results[1]);
    assert!(
        with.0 <= without.0,
        "annotations must not add checks ({} vs {})",
        with.0,
        without.0
    );
    assert!(
        with.1 <= without.1,
        "annotations must not add solver queries ({} vs {})",
        with.1,
        without.1
    );
    println!("\nshape: annotations elide provably-safe checks, which removes");
    println!("branches, which removes solver queries — metadata as speedup.");
}
