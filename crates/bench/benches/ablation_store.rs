//! **Persistent-store ablation** — what warm-starting buys on the
//! coreutils sweep.
//!
//! Three sweeps of the same workload matrix:
//!
//! 1. **storeless** — the baseline batch driver;
//! 2. **cold store** — first run against an empty store (pays the write);
//! 3. **warm store** — a fresh handle on the populated store: unchanged
//!    jobs are answered from report artifacts (verification skipped) and
//!    the solver fleet warm-starts from the persisted verdict log.
//!
//! Asserts the warm sweep hits on every job, reproduces byte-identical
//! reports, and (when the workload is big enough to measure) reduces
//! wall clock vs the cold run.
//!
//! Knobs: `OVERIFY_SYM_BYTES` (default 3), `OVERIFY_UTILITIES`.

use overify::{verify_suite_stored, OptLevel, Store, StoreConfig, SuiteJob};
use overify_bench::{env_u64, selected_utilities, suite_config};
use std::time::Duration;

fn main() {
    let bytes = env_u64("OVERIFY_SYM_BYTES", 3) as usize;
    let levels = [OptLevel::O0, OptLevel::O3, OptLevel::Overify];
    let jobs = || -> Vec<SuiteJob> {
        selected_utilities()
            .iter()
            .flat_map(|u| levels.map(|l| SuiteJob::utility(u, l, &[bytes], &suite_config(bytes))))
            .collect()
    };
    let total = jobs().len();
    let threads = overify::default_threads();
    println!("# store ablation: {bytes} symbolic bytes, {total} jobs, {threads} thread(s)\n");

    let root = std::env::temp_dir().join(format!("overify_bench_store_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // Explicitly storeless (`verify_suite` would pick up `OVERIFY_STORE`
    // from the environment, silently warming the baseline).
    let storeless = verify_suite_stored(jobs(), threads, None);

    let cold_store = Store::open(StoreConfig::at(&root)).expect("store opens");
    let cold = verify_suite_stored(jobs(), threads, Some(&cold_store));

    let warm_store = Store::open(StoreConfig::at(&root)).expect("store reopens");
    let warm = verify_suite_stored(jobs(), threads, Some(&warm_store));

    println!(
        "{:<10} {:>10} {:>10} {:>14} {:>16}",
        "sweep", "wall", "hits", "verdicts-in", "verdicts-out"
    );
    for (label, r) in [("storeless", &storeless), ("cold", &cold), ("warm", &warm)] {
        let (loaded, saved) = r
            .store
            .map(|s| (s.solver_entries_loaded, s.solver_entries_saved))
            .unwrap_or((0, 0));
        println!(
            "{label:<10} {:>10.2?} {:>7}/{total:<2} {loaded:>14} {saved:>16}",
            r.wall,
            r.store_hits(),
        );
    }

    // Determinism: the store must never change *what* is reported.
    assert_eq!(warm.store_hits(), total, "warm sweep hits every job");
    for ((a, b), c) in storeless.jobs.iter().zip(&cold.jobs).zip(&warm.jobs) {
        let tag = format!("{}@{}", a.name, a.level);
        assert_eq!(a.bug_signature(), b.bug_signature(), "{tag}: cold drifted");
        assert_eq!(b.bug_signature(), c.bug_signature(), "{tag}: warm drifted");
        assert_eq!(b.runs, c.runs, "{tag}: stored report not byte-identical");
        for ((na, ra), (nb, rb)) in a.runs.iter().zip(&b.runs) {
            assert_eq!(na, nb);
            assert_eq!(ra.tests, rb.tests, "{tag}/{na}B: canonical tests drifted");
            assert_eq!(ra.bugs, rb.bugs, "{tag}/{na}B: canonical witnesses drifted");
        }
    }

    let ratio = warm.wall.as_secs_f64() / cold.wall.as_secs_f64().max(1e-9);
    println!("\nwarm/cold wall ratio: {ratio:.3} (report hits skip verification entirely)");
    if cold.wall >= Duration::from_millis(300) {
        assert!(
            ratio < 0.8,
            "a fully-hit warm sweep must measurably beat the cold sweep \
             (cold {:?}, warm {:?})",
            cold.wall,
            warm.wall
        );
        println!("acceptance: warm sweep < 0.8x cold wall clock — OK");
    } else {
        println!("(speedup assertion skipped: cold sweep too fast to measure reliably)");
    }

    let _ = std::fs::remove_dir_all(&root);
}
