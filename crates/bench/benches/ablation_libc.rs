//! **Ablation B — library-level changes (paper §3).**
//!
//! Cross the two libc variants with three optimization levels on
//! ctype-heavy utilities. The native library's 256-entry classification
//! table turns every `isspace(sym)` into a symbolic table read; the
//! verification library replaces it with comparisons. The gap this opens
//! is the paper's argument for shipping an analysis-friendly libc with
//! `-OVERIFY`.

use overify::{BuildOptions, LibcVariant, OptLevel};
use overify_bench::{env_u64, suite_config};
use overify_coreutils::utility;

fn main() {
    let n = env_u64("OVERIFY_SYM_BYTES", 3) as usize;
    let names = ["wc_words", "vowel_count", "tr_upper"];
    println!("# Ablation: libc variant x optimization level ({n} symbolic bytes)");
    println!("# cells: tverify[ms] / solver queries\n");

    for name in names {
        let u = utility(name).expect("utility exists");
        println!("{name}:");
        println!(
            "  {:<10} {:>20} {:>20}",
            "level", "native libc", "verify libc"
        );
        let mut native_ms = 0.0;
        let mut verify_ms = 0.0;
        for level in [OptLevel::O0, OptLevel::O3, OptLevel::Overify] {
            let mut cells = Vec::new();
            for variant in [LibcVariant::Native, LibcVariant::Verify] {
                let mut opts = BuildOptions::level(level);
                opts.libc = Some(variant);
                let mut module = overify_coreutils::compile_utility(u, variant).expect("compiles");
                let stats = overify::build::compile_module(&mut module, &opts);
                let prog = overify::CompiledProgram {
                    module,
                    stats,
                    level,
                    libc: Some(variant),
                    compile_time: std::time::Duration::ZERO,
                };
                let r = overify::verify_program(&prog, "umain", &suite_config(n));
                let t = r.time.as_secs_f64() * 1e3;
                if level == OptLevel::Overify {
                    match variant {
                        LibcVariant::Native => native_ms = t,
                        LibcVariant::Verify => verify_ms = t,
                    }
                }
                cells.push(format!("{:>9.1} /{:>7}", t, r.solver.queries));
            }
            println!("  {:<10} {:>20} {:>20}", level.name(), cells[0], cells[1]);
        }
        println!(
            "  -OVERIFY with verify libc vs native libc: {:.1}x\n",
            native_ms / verify_ms.max(1e-9)
        );
    }
    println!("shape: the verify libc wins most where classification is hot,");
    println!("and inlining + if-conversion amplify it at -OVERIFY.");
}
