//! Layer 1: the persistent solver-verdict log.
//!
//! Solver verdicts are keyed by pool-independent *structural fingerprints*
//! (`overify_symex::cache`), so a verdict computed in one process is valid
//! in every later one — satisfiability is a property of the formula, not
//! of who asked. This module persists the sharded shared cache as an
//! append-only binary log so repeated suite sweeps (CI, regression loops)
//! warm-start the whole solver fleet.
//!
//! On-disk format (all little-endian):
//!
//! ```text
//! header:  magic  b"OVFYSLG\0"   8 bytes
//!          version u32           (readers reject mismatches cleanly)
//! record:  len     u32           payload length (bounded sanity check)
//!          check   u64           FNV-1a of the payload
//!          payload fp u128, tag u8 (0 = UNSAT, 1 = SAT),
//!                  [count u32, count × (sym u32, value u64)] when SAT
//! ```
//!
//! Loading is **corruption-tolerant**: a torn tail (power loss mid-append,
//! interleaved writers), a bad checksum or an absurd length terminates the
//! scan at the last good record — everything before the damage survives,
//! and the damaged tail's byte count is reported so the owner can compact
//! (rewrite) the log from a live snapshot.

use crate::codec::{fnv64, Reader, Writer};
use overify_symex::{CachedVerdict, Model, SharedQueryCache};
use std::collections::HashSet;
use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

/// Magic prefix of a solver log file.
pub const MAGIC: &[u8; 8] = b"OVFYSLG\0";
/// Current format version. Bump on any layout change; old files are then
/// rejected (and rewritten wholesale on the next save).
pub const VERSION: u32 = 1;
/// Upper bound on one record's payload (a model entry is 12 bytes; a sane
/// model holds at most a few thousand symbols).
const MAX_RECORD: u32 = 1 << 24;

/// Why a log file could not be used at all.
#[derive(Debug, PartialEq, Eq)]
pub enum LogError {
    /// The file exists but does not start with the magic bytes.
    BadMagic,
    /// The file is a solver log of an incompatible version.
    VersionMismatch { found: u32 },
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogError::BadMagic => write!(f, "not a solver log (bad magic)"),
            LogError::VersionMismatch { found } => {
                write!(f, "solver log version {found}, expected {VERSION}")
            }
        }
    }
}

impl std::error::Error for LogError {}

/// What a load pass recovered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoadSummary {
    /// Distinct fingerprints published into the cache.
    pub entries: u64,
    /// Records read, including duplicates from concurrent appenders.
    pub records: u64,
    /// Bytes of damaged/torn tail the scan refused to consume (0 on a
    /// clean log). Nonzero means the next save should compact.
    pub dropped_bytes: u64,
}

/// Serializes one `(fingerprint, verdict)` record, framed and checksummed.
fn encode_record(fp: u128, verdict: &CachedVerdict) -> Vec<u8> {
    let mut payload = Writer::default();
    payload.u128(fp);
    match verdict {
        None => payload.u8(0),
        Some(m) => {
            payload.u8(1);
            // Sorted for byte-stable output across HashMap orders.
            let mut entries: Vec<(u32, u64)> = m.values.iter().map(|(&k, &v)| (k, v)).collect();
            entries.sort_unstable();
            payload.u32(entries.len() as u32);
            for (id, v) in entries {
                payload.u32(id);
                payload.u64(v);
            }
        }
    }
    let mut rec = Writer::default();
    rec.u32(payload.buf.len() as u32);
    rec.u64(fnv64(&payload.buf));
    rec.buf.extend_from_slice(&payload.buf);
    rec.buf
}

/// Parses one payload back into a `(fingerprint, verdict)` pair.
fn decode_payload(payload: &[u8]) -> Option<(u128, CachedVerdict)> {
    let mut r = Reader::new(payload);
    let fp = r.u128()?;
    let verdict = match r.u8()? {
        0 => None,
        1 => {
            let count = r.u32()?;
            let mut m = Model::default();
            for _ in 0..count {
                let id = r.u32()?;
                let v = r.u64()?;
                m.values.insert(id, v);
            }
            Some(m)
        }
        _ => return None,
    };
    // Trailing garbage inside a checksummed frame would mean an encoder
    // bug, not disk damage; reject the record either way.
    (r.remaining() == 0).then_some((fp, verdict))
}

/// Loads a solver log into `cache`, returning what was recovered.
///
/// A missing file is an empty log. A file with a foreign magic or version
/// is rejected with a [`LogError`] — never partially applied. Damage
/// *inside* a well-versioned log only costs the records at and after the
/// damage point.
pub fn load(path: &Path, cache: &SharedQueryCache) -> Result<LoadSummary, LogError> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(_) => return Ok(LoadSummary::default()),
    };
    if bytes.is_empty() {
        return Ok(LoadSummary::default());
    }
    if bytes.len() < MAGIC.len() + 4 || &bytes[..MAGIC.len()] != MAGIC {
        return Err(LogError::BadMagic);
    }
    let mut r = Reader::new(&bytes[MAGIC.len()..]);
    let version = r.u32().ok_or(LogError::BadMagic)?;
    if version != VERSION {
        return Err(LogError::VersionMismatch { found: version });
    }

    let mut summary = LoadSummary::default();
    let mut seen: HashSet<u128> = HashSet::new();
    loop {
        let tail = r.remaining() as u64;
        if tail == 0 {
            break;
        }
        let rec = (|| {
            let len = r.u32()?;
            if len > MAX_RECORD {
                return None;
            }
            let check = r.u64()?;
            let payload = r.bytes_exact(len as usize)?;
            if fnv64(payload) != check {
                return None;
            }
            decode_payload(payload)
        })();
        match rec {
            Some((fp, verdict)) => {
                summary.records += 1;
                if seen.insert(fp) {
                    summary.entries += 1;
                }
                cache.publish(fp, verdict);
            }
            None => {
                summary.dropped_bytes = tail;
                break;
            }
        }
    }
    Ok(summary)
}

/// Appends `entries` to the log at `path`, creating it (with a header)
/// when absent. The caller filters out already-persisted fingerprints.
pub fn append(path: &Path, entries: &[(u128, CachedVerdict)]) -> io::Result<()> {
    // Zero-length counts as fresh (and gets a header): a crash between
    // file creation and the first write leaves an empty file, which
    // `load` accepts as an empty log — appending records to it headerless
    // would make every later load fail with `BadMagic`.
    let fresh = fs::metadata(path).map(|m| m.len() == 0).unwrap_or(true);
    let mut f = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let mut buf = Vec::new();
    if fresh {
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
    }
    for (fp, verdict) in entries {
        buf.extend_from_slice(&encode_record(*fp, verdict));
    }
    f.write_all(&buf)?;
    f.flush()
}

/// Rewrites the log as one clean snapshot (atomically, via a temp file in
/// the same directory) — compaction. Drops duplicate records from
/// concurrent appenders, damaged tails, and stale-version files alike.
pub fn compact(path: &Path, entries: &[(u128, CachedVerdict)]) -> io::Result<()> {
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    for (fp, verdict) in entries {
        buf.extend_from_slice(&encode_record(*fp, verdict));
    }
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, &buf)?;
    fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("overify_store_log_{}_{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("solver.log")
    }

    fn sample_entries() -> Vec<(u128, CachedVerdict)> {
        let mut m = Model::default();
        m.values.insert(0, 65);
        m.values.insert(9, 1);
        vec![(1, None), (2, Some(m)), (3 << 100, Some(Model::default()))]
    }

    #[test]
    fn roundtrip_through_disk() {
        let path = tmp("roundtrip");
        let entries = sample_entries();
        append(&path, &entries).unwrap();
        let cache = SharedQueryCache::new();
        let s = load(&path, &cache).unwrap();
        assert_eq!(s.entries, 3);
        assert_eq!(s.records, 3);
        assert_eq!(s.dropped_bytes, 0);
        assert_eq!(cache.snapshot(), {
            let mut e = entries.clone();
            e.sort_by_key(|&(fp, _)| fp);
            e
        });

        // A second append extends the same file without a second header.
        append(&path, &[(42, None)]).unwrap();
        let cache2 = SharedQueryCache::new();
        let s2 = load(&path, &cache2).unwrap();
        assert_eq!(s2.entries, 4);
    }

    #[test]
    fn truncated_tail_keeps_prefix() {
        let path = tmp("truncate");
        append(&path, &sample_entries()).unwrap();
        let full = fs::read(&path).unwrap();
        // Chop into the last record: everything before it must survive.
        for cut in [full.len() - 1, full.len() - 7, full.len() - 12] {
            fs::write(&path, &full[..cut]).unwrap();
            let cache = SharedQueryCache::new();
            let s = load(&path, &cache).unwrap();
            assert_eq!(s.entries, 2, "cut={cut}");
            assert!(s.dropped_bytes > 0, "cut={cut}");
            assert_eq!(cache.len(), 2, "cut={cut}");
        }
    }

    #[test]
    fn flipped_byte_is_contained() {
        let path = tmp("bitrot");
        append(&path, &sample_entries()).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // Flip one payload byte of the second record: record 1 survives,
        // the scan stops at the damage instead of propagating it.
        let rec1_len = encode_record(1, &None).len();
        let damage = MAGIC.len() + 4 + rec1_len + 13;
        bytes[damage] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let cache = SharedQueryCache::new();
        let s = load(&path, &cache).unwrap();
        assert_eq!(s.entries, 1);
        assert!(s.dropped_bytes > 0);
        assert_eq!(cache.lookup(1), Some(None));
    }

    #[test]
    fn version_mismatch_rejected_cleanly() {
        let path = tmp("version");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&(VERSION + 1).to_le_bytes());
        bytes.extend_from_slice(&encode_record(5, &None));
        fs::write(&path, &bytes).unwrap();
        let cache = SharedQueryCache::new();
        assert_eq!(
            load(&path, &cache),
            Err(LogError::VersionMismatch { found: VERSION + 1 })
        );
        assert!(cache.is_empty(), "nothing partially applied");

        fs::write(&path, b"definitely not a log").unwrap();
        assert_eq!(load(&path, &cache), Err(LogError::BadMagic));
    }

    #[test]
    fn missing_file_is_empty_log() {
        let path = tmp("missing");
        let cache = SharedQueryCache::new();
        assert_eq!(load(&path, &cache), Ok(LoadSummary::default()));
    }

    #[test]
    fn append_to_empty_file_writes_header() {
        // A crash between creation and the first write leaves a 0-byte
        // file; the next append must still start with the header.
        let path = tmp("empty");
        fs::write(&path, b"").unwrap();
        append(&path, &[(5, None)]).unwrap();
        let cache = SharedQueryCache::new();
        let s = load(&path, &cache).unwrap();
        assert_eq!((s.entries, s.dropped_bytes), (1, 0));
        assert_eq!(cache.lookup(5), Some(None));
    }

    #[test]
    fn compaction_dedups_and_repairs() {
        let path = tmp("compact");
        let entries = sample_entries();
        append(&path, &entries).unwrap();
        append(&path, &entries).unwrap(); // Duplicates (second process).
        let cache = SharedQueryCache::new();
        let s = load(&path, &cache).unwrap();
        assert_eq!((s.records, s.entries), (6, 3));

        compact(&path, &cache.snapshot()).unwrap();
        let cache2 = SharedQueryCache::new();
        let s2 = load(&path, &cache2).unwrap();
        assert_eq!((s2.records, s2.entries), (3, 3));
        assert_eq!(cache2.snapshot(), cache.snapshot());
    }
}
